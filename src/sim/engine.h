// Discrete-event simulation engine.
//
// A binary-heap calendar of cancellable events. Cancellation is lazy:
// the heap entry stays behind, but its id is erased from the live map,
// so popping skips it. When dead entries outnumber live ones the heap
// is compacted in place, so churn-heavy workloads (schedule/cancel
// loops like flow rescheduling) keep the calendar bounded by the live
// event count instead of growing monotonically. Events at equal times
// fire in scheduling order (FIFO tie-break via a monotone sequence
// number), which keeps runs deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "obs/registry.h"

namespace eio::sim {

/// Handle to a scheduled event; used for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// The event calendar and simulation clock.
class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now).
  /// Returns a handle that can be passed to cancel().
  EventId schedule_at(Seconds when, Action action) {
    EIO_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                                                 << " now=" << now_);
    EventId id = ++next_id_;
    live_.emplace(id, std::move(action));
    heap_.push_back(Entry{when, id});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return id;
  }

  /// Schedule `action` to run `delay` seconds from now.
  EventId schedule_in(Seconds delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (false if it already ran or was cancelled).
  bool cancel(EventId id) {
    if (live_.erase(id) == 0) return false;
    maybe_compact();
    return true;
  }

  /// True if an event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return live_.count(id) > 0; }

  /// Number of live (not-yet-run, not-cancelled) events.
  [[nodiscard]] std::size_t live_events() const noexcept { return live_.size(); }

  /// Number of calendar entries, live or cancelled-but-not-yet-reaped.
  /// Compaction keeps this within 2x of live_events() (plus a small
  /// constant below which compaction is not worth the scan).
  [[nodiscard]] std::size_t calendar_entries() const noexcept {
    return heap_.size();
  }

  /// Run a single event. Returns false if the calendar is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry top = heap_.front();
      pop_entry();
      auto it = live_.find(top.id);
      if (it == live_.end()) continue;  // cancelled — stale entry discarded
      now_ = top.when;
      Action action = std::move(it->second);
      live_.erase(it);
      ++events_run_;
      action();
      return true;
    }
    return false;
  }

  /// Run until the calendar drains. Returns the final time.
  Seconds run() {
    OBS_SPAN("sim.run");
    std::uint64_t before = events_run_;
    while (step()) {
    }
    OBS_COUNTER_ADD("sim.events_run", events_run_ - before);
    return now_;
  }

  /// Run until the calendar drains or the clock passes `deadline`.
  Seconds run_until(Seconds deadline) {
    while (!heap_.empty()) {
      // Peek at the next live event's time without running it.
      Entry top = heap_.front();
      if (live_.find(top.id) == live_.end()) {
        pop_entry();
        continue;
      }
      if (top.when > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_run() const noexcept { return events_run_; }

 private:
  struct Entry {
    Seconds when;
    EventId id;
    // Min-heap by (time, id): smaller id == scheduled earlier.
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  /// Pop the root of the min-heap.
  void pop_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }

  /// Reap cancelled entries once they exceed the live ones. Linear in
  /// the heap, but amortized O(1) per cancel: a compaction halves the
  /// heap, so the next one needs at least that many new dead entries.
  void maybe_compact() {
    if (heap_.size() < kCompactMinEntries) return;
    if (heap_.size() - live_.size() <= live_.size()) return;
    OBS_COUNTER_ADD("sim.calendar_compactions", 1);
    OBS_COUNTER_ADD("sim.calendar_entries_reaped", heap_.size() - live_.size());
    std::erase_if(heap_,
                  [this](const Entry& e) { return live_.count(e.id) == 0; });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Below this calendar size compaction is not worth the scan.
  static constexpr std::size_t kCompactMinEntries = 64;

  Seconds now_ = 0.0;
  EventId next_id_ = 0;
  std::uint64_t events_run_ = 0;
  // Min-heap via std::*_heap with std::greater (see Entry::operator>).
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Action> live_;
};

}  // namespace eio::sim
