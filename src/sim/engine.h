// Discrete-event simulation engine.
//
// A binary-heap calendar of cancellable events. Cancellation is lazy:
// the heap entry stays behind, but its id is erased from the live map,
// so popping skips it. Events at equal times fire in scheduling order
// (FIFO tie-break via a monotone sequence number), which keeps runs
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace eio::sim {

/// Handle to a scheduled event; used for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// The event calendar and simulation clock.
class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now).
  /// Returns a handle that can be passed to cancel().
  EventId schedule_at(Seconds when, Action action) {
    EIO_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                                                 << " now=" << now_);
    EventId id = ++next_id_;
    live_.emplace(id, std::move(action));
    heap_.push(Entry{when, id});
    return id;
  }

  /// Schedule `action` to run `delay` seconds from now.
  EventId schedule_in(Seconds delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (false if it already ran or was cancelled).
  bool cancel(EventId id) { return live_.erase(id) > 0; }

  /// True if an event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return live_.count(id) > 0; }

  /// Number of live (not-yet-run, not-cancelled) events.
  [[nodiscard]] std::size_t live_events() const noexcept { return live_.size(); }

  /// Run a single event. Returns false if the calendar is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry top = heap_.top();
      auto it = live_.find(top.id);
      if (it == live_.end()) {  // cancelled — discard the stale entry
        heap_.pop();
        continue;
      }
      heap_.pop();
      now_ = top.when;
      Action action = std::move(it->second);
      live_.erase(it);
      ++events_run_;
      action();
      return true;
    }
    return false;
  }

  /// Run until the calendar drains. Returns the final time.
  Seconds run() {
    while (step()) {
    }
    return now_;
  }

  /// Run until the calendar drains or the clock passes `deadline`.
  Seconds run_until(Seconds deadline) {
    while (!heap_.empty()) {
      // Peek at the next live event's time without running it.
      Entry top = heap_.top();
      if (live_.find(top.id) == live_.end()) {
        heap_.pop();
        continue;
      }
      if (top.when > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_run() const noexcept { return events_run_; }

 private:
  struct Entry {
    Seconds when;
    EventId id;
    // Min-heap by (time, id): smaller id == scheduled earlier.
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  Seconds now_ = 0.0;
  EventId next_id_ = 0;
  std::uint64_t events_run_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Action> live_;
};

}  // namespace eio::sim
