// Discrete-event simulation engine.
//
// A binary-heap calendar of cancellable events, built for zero heap
// allocations per event in steady state:
//
//  - Actions are InlineFunction (fixed-size in-place captures; a
//    too-large capture is a compile error, never a hidden allocation).
//  - Live actions sit in a slot slab with a free list. An EventId
//    packs (generation << 32) | (slot + 1); schedule, cancel, pending
//    and step are O(1) array operations, and a stale heap entry is
//    recognized by a generation mismatch instead of a hash probe.
//
// Cancellation is lazy: the heap entry stays behind, but releasing the
// slot bumps its generation, so popping skips it. When dead entries
// outnumber live ones the heap is compacted in place, so churn-heavy
// workloads (schedule/cancel loops like flow rescheduling) keep the
// calendar bounded by the live event count instead of growing
// monotonically. Events at equal times fire in scheduling order (FIFO
// tie-break via a monotone sequence number carried in the heap entry —
// recycled EventIds are not monotone), which keeps runs deterministic.
//
// Generation counters are 32-bit and wrap modularly: an id could alias
// a later event in the same slot only after 2^32 reuses of that slot
// while the stale id is still held, which no simulation approaches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "obs/registry.h"
#include "sim/inline_function.h"

namespace eio::sim {

/// Handle to a scheduled event; used for cancellation. Packs
/// (generation << 32) | (slot index + 1), so 0 stays the sentinel.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

class EngineTestPeer;

/// The event calendar and simulation clock.
class Engine {
 public:
  /// Inline capture budget for scheduled actions. Sized for the
  /// largest hot-path caller (lustre sync-write launch closures and
  /// deferred FlowSpec captures); growing a capture past this is a
  /// static_assert in InlineFunction, not a silent heap fallback.
  static constexpr std::size_t kActionCapacity = 256;

  using Action = InlineFunction<void(), kActionCapacity>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (>= now).
  /// Returns a handle that can be passed to cancel().
  EventId schedule_at(Seconds when, Action action) {
    EIO_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                                                  << " now=" << now_);
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.action = std::move(action);
    EventId id = pack(slot, s.generation);
    heap_.push_back(Entry{when, ++next_seq_, id});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    ++live_count_;
    return id;
  }

  /// Schedule `action` to run `delay` seconds from now.
  EventId schedule_in(Seconds delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (false if it already ran or was cancelled).
  bool cancel(EventId id) {
    if (!pending(id)) return false;
    release_slot(slot_of(id));
    --live_count_;
    maybe_compact();
    return true;
  }

  /// True if an event is still pending. O(1): bounds + generation
  /// check (only ids returned by schedule_* are meaningful here).
  [[nodiscard]] bool pending(EventId id) const {
    if (id == kInvalidEvent) return false;
    std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].generation == gen_of(id);
  }

  /// Number of live (not-yet-run, not-cancelled) events.
  [[nodiscard]] std::size_t live_events() const noexcept { return live_count_; }

  /// Number of calendar entries, live or cancelled-but-not-yet-reaped.
  /// Compaction keeps this within 2x of live_events() (plus a small
  /// constant below which compaction is not worth the scan).
  [[nodiscard]] std::size_t calendar_entries() const noexcept {
    return heap_.size();
  }

  /// Run a single event. Returns false if the calendar is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry top = heap_.front();
      pop_entry();
      std::uint32_t slot = slot_of(top.id);
      if (slots_[slot].generation != gen_of(top.id)) {
        continue;  // cancelled — stale entry discarded
      }
      now_ = top.when;
      // Move the action out and free the slot *before* invoking: the
      // action may schedule (possibly reusing this slot or growing the
      // slab) and the slot reference would not survive that.
      Action action = std::move(slots_[slot].action);
      release_slot(slot);
      --live_count_;
      ++events_run_;
      action();
      return true;
    }
    return false;
  }

  /// Run until the calendar drains. Returns the final time.
  Seconds run() {
    OBS_SPAN("sim.run");
    std::uint64_t before = events_run_;
    while (step()) {
    }
    OBS_COUNTER_ADD("sim.events_run", events_run_ - before);
    return now_;
  }

  /// Run until the calendar drains or the clock passes `deadline`.
  Seconds run_until(Seconds deadline) {
    while (!heap_.empty()) {
      // Peek at the next live event's time without running it.
      Entry top = heap_.front();
      if (slots_[slot_of(top.id)].generation != gen_of(top.id)) {
        pop_entry();
        continue;
      }
      if (top.when > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t events_run() const noexcept { return events_run_; }

 private:
  friend class EngineTestPeer;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Action action;
    std::uint32_t generation = 0;  ///< matches live ids; bumped on release
    std::uint32_t next_free = kNoSlot;
  };

  struct Entry {
    Seconds when;
    std::uint64_t seq;  ///< monotone schedule order (FIFO tie-break)
    EventId id;
    // Min-heap by (time, schedule order).
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  [[nodiscard]] static constexpr EventId pack(std::uint32_t slot,
                                              std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) |
           static_cast<EventId>(slot + 1);
  }
  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  [[nodiscard]] static constexpr std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Return a slot to the free list; the generation bump invalidates
  /// every outstanding id (and stale heap entry) pointing at it.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.action.reset();
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  /// Pop the root of the min-heap.
  void pop_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }

  /// Reap cancelled entries once they exceed the live ones. Linear in
  /// the heap, but amortized O(1) per cancel: a compaction halves the
  /// heap, so the next one needs at least that many new dead entries.
  void maybe_compact() {
    if (heap_.size() < kCompactMinEntries) return;
    if (heap_.size() - live_count_ <= live_count_) return;
    OBS_COUNTER_ADD("sim.calendar_compactions", 1);
    OBS_COUNTER_ADD("sim.calendar_entries_reaped", heap_.size() - live_count_);
    std::erase_if(heap_, [this](const Entry& e) {
      return slots_[slot_of(e.id)].generation != gen_of(e.id);
    });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Below this calendar size compaction is not worth the scan.
  static constexpr std::size_t kCompactMinEntries = 64;

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_run_ = 0;
  std::size_t live_count_ = 0;
  // Min-heap via std::*_heap with std::greater (see Entry::operator>).
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace eio::sim
