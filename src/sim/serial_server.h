// A serialized service queue (FIFO, one request at a time).
//
// Used for the metadata server (MDS): Lustre metadata operations from
// any number of clients serialize through a single service point, which
// is what makes rank-0 HDF5 metadata traffic dominate the GCRM baseline
// run time (Figure 6(g)) until the writes are aggregated and deferred.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/units.h"
#include "sim/engine.h"

namespace eio::sim {

/// One-at-a-time FIFO server with scalar occupancy.
class SerialServer {
 public:
  explicit SerialServer(Engine& engine) : engine_(engine) {}

  SerialServer(const SerialServer&) = delete;
  SerialServer& operator=(const SerialServer&) = delete;

  /// Enqueue a request needing `service_time` seconds of exclusive
  /// service. `on_complete` fires when service finishes. Returns the
  /// completion time.
  Seconds submit(Seconds service_time, Engine::Action on_complete) {
    EIO_CHECK(service_time >= 0.0);
    Seconds start = std::max(engine_.now(), next_free_);
    Seconds done = start + service_time;
    next_free_ = done;
    ++requests_;
    busy_time_ += service_time;
    if (on_complete) engine_.schedule_at(done, std::move(on_complete));
    return done;
  }

  /// Earliest time a new request could begin service.
  [[nodiscard]] Seconds next_free() const noexcept { return next_free_; }

  /// Number of requests accepted so far.
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }

  /// Total busy (service) time accumulated.
  [[nodiscard]] Seconds busy_time() const noexcept { return busy_time_; }

 private:
  Engine& engine_;
  Seconds next_free_ = 0.0;
  std::uint64_t requests_ = 0;
  Seconds busy_time_ = 0.0;
};

}  // namespace eio::sim
