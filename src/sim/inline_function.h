// Small-buffer move-only callable with NO heap fallback.
//
// std::function heap-allocates any capture larger than (typically) two
// pointers, which put an allocation on every scheduled simulation
// event. InlineFunction stores the callable in place and refuses — at
// compile time — anything that does not fit, so hot-path capture
// growth is a build error instead of a silent perf regression.
//
// Move semantics relocate the callable into the destination and leave
// the source empty; the callable must therefore be nothrow-move-
// constructible (also enforced by static_assert).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace eio::sim {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable does not fit the inline buffer: shrink the "
                  "capture or grow the InlineFunction capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callable");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow-move-constructible (moves "
                  "relocate it between inline buffers)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::table;
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsFor {
    static R invoke(void* s, Args&&... args) {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(
          std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void destroy(void* s) noexcept {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops table{&invoke, &relocate, &destroy};
  };

  /// Move-construct from `other`'s buffer and empty it.
  void steal(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace eio::sim
