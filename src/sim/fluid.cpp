#include "sim/fluid.h"

#include <algorithm>
#include <cmath>

namespace eio::sim {

ConcurrencyPolicy::ConcurrencyPolicy(std::vector<Choice> cs)
    : choices(std::move(cs)) {
  EIO_CHECK_MSG(!choices.empty(), "empty concurrency policy");
  cumulative.reserve(choices.size());
  // The partial sums must be the exact sequence the old per-sample
  // accumulation produced, so draws stay bit-identical.
  double acc = 0.0;
  for (const Choice& c : choices) {
    EIO_CHECK_MSG(c.probability > 0.0,
                  "concurrency probability must be positive, got "
                      << c.probability << " for streams=" << c.streams);
    acc += c.probability;
    cumulative.push_back(acc);
  }
  EIO_CHECK_MSG(std::abs(acc - 1.0) <= 1e-9,
                "concurrency probabilities sum to " << acc << ", expected 1");
}

std::uint32_t ConcurrencyPolicy::sample(rng::Stream& s) const {
  EIO_CHECK_MSG(!choices.empty(), "empty concurrency policy");
  double u = s.uniform();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (u < cumulative[i]) return choices[i].streams;
  }
  // Unreachable for valid policies (sum == 1) unless u lands in the
  // rounding sliver at the top; keep the historical fallback.
  return choices.back().streams;
}

FluidNetwork::FluidNetwork(Engine& engine, Config config)
    : engine_(engine),
      contention_(config.contention),
      policy_(std::move(config.node_policy)) {
  EIO_CHECK(!config.nic_capacity.empty());
  EIO_CHECK(!config.ost_capacity.empty());
  rng::StreamFactory factory(config.seed);
  nodes_.resize(config.nic_capacity.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].nic_capacity = config.nic_capacity[i];
    nodes_[i].rng = rng::make_stream(factory, rng::StreamKind::kNodeScheduler, i);
    EIO_CHECK(nodes_[i].nic_capacity > 0.0);
  }
  osts_.resize(config.ost_capacity.size());
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    osts_[i].capacity = config.ost_capacity[i];
    EIO_CHECK(osts_[i].capacity > 0.0);
  }
}

std::uint32_t FluidNetwork::acquire_flow_slot() {
  std::uint32_t slot;
  if (flow_free_head_ != kNoIndex) {
    slot = flow_free_head_;
    flow_free_head_ = flow_slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(flow_slots_.size());
    flow_slots_.emplace_back();
  }
  FlowSlot& s = flow_slots_[slot];
  s.prev = active_tail_;
  s.next = kNoIndex;
  if (active_tail_ != kNoIndex) {
    flow_slots_[active_tail_].next = slot;
  } else {
    active_head_ = slot;
  }
  active_tail_ = slot;
  ++active_count_;
  return slot;
}

void FluidNetwork::unlink_active(std::uint32_t slot) {
  FlowSlot& s = flow_slots_[slot];
  if (s.prev != kNoIndex) {
    flow_slots_[s.prev].next = s.next;
  } else {
    active_head_ = s.next;
  }
  if (s.next != kNoIndex) {
    flow_slots_[s.next].prev = s.prev;
  } else {
    active_tail_ = s.prev;
  }
  s.prev = s.next = kNoIndex;
  --active_count_;
}

void FluidNetwork::release_flow_slot(std::uint32_t slot) {
  FlowSlot& s = flow_slots_[slot];
  ++s.generation;
  s.next_free = flow_free_head_;
  flow_free_head_ = slot;
}

FlowId FluidNetwork::start_flow(FlowSpec spec) {
  EIO_CHECK_MSG(spec.node < nodes_.size(), "bad node id " << spec.node);
  for (OstId o : spec.osts) EIO_CHECK_MSG(o < osts_.size(), "bad ost id " << o);
  EIO_CHECK_MSG(!spec.osts.empty(), "flow must touch at least one OST");

  std::uint32_t slot = acquire_flow_slot();
  FlowSlot& cell = flow_slots_[slot];
  FlowId id = pack(slot, cell.generation);
  Flow& f = cell.f;
  f.id = id;
  f.node = spec.node;
  // Copy into the slot's retained buffer (steady state: no growth)
  // rather than adopting the spec's allocation.
  f.osts.assign(spec.osts.begin(), spec.osts.end());
  // De-duplicate the OST set; shares are computed per unique OST.
  std::sort(f.osts.begin(), f.osts.end());
  f.osts.erase(std::unique(f.osts.begin(), f.osts.end()), f.osts.end());
  f.group_idx.clear();
  f.group_idx.reserve(f.osts.size());
  f.total_bytes = spec.bytes;
  f.remaining = static_cast<double>(spec.bytes);
  f.cap = spec.cap;
  f.ost_efficiency = spec.ost_efficiency;
  f.scheduled = spec.scheduled;
  f.granted = false;
  f.rate = 0.0;
  f.last_update = engine_.now();
  f.visit_epoch = 0;
  f.completion = kInvalidEvent;
  f.on_complete = std::move(spec.on_complete);

  if (f.remaining <= 0.0) {
    // Zero-byte transfer: complete on the next event boundary so the
    // caller's callback never runs re-entrantly inside start_flow. The
    // slot is returned immediately — the id was only minted so the
    // callback has a (now-dead) handle.
    auto cb = std::move(f.on_complete);
    unlink_active(slot);
    release_flow_slot(slot);
    engine_.schedule_in(0.0, [cb = std::move(cb), id]() mutable {
      if (cb) cb(id);
    });
    return id;
  }

  Node& n = nodes_[f.node];
  maybe_start_burst(n);

  bool can_grant = !f.scheduled || n.granted.size() < n.concurrency;
  if (can_grant) {
    grant(f);
    recompute_touching(f.node, f.osts);
  } else {
    n.waiting.push_back(id);
  }
  return id;
}

void FluidNetwork::maybe_start_burst(Node& n) {
  if (n.granted.empty() && n.waiting.empty()) {
    n.concurrency = policy_.sample(n.rng);
    EIO_CHECK(n.concurrency >= 1);
  }
}

std::uint32_t FluidNetwork::find_or_make_group(Ost& ost, NodeId node) {
  auto it = std::lower_bound(
      ost.order.begin(), ost.order.end(), node,
      [&ost](std::uint32_t gi, NodeId n) { return ost.groups[gi].node < n; });
  if (it != ost.order.end() && ost.groups[*it].node == node) return *it;
  std::uint32_t gi;
  if (ost.free_head != kNoIndex) {
    gi = ost.free_head;
    ost.free_head = ost.groups[gi].next_free;
  } else {
    gi = static_cast<std::uint32_t>(ost.groups.size());
    ost.groups.emplace_back();
  }
  Group& g = ost.groups[gi];
  g.node = node;
  g.ids.clear();  // reused cells keep their capacity
  ost.order.insert(it, gi);
  return gi;
}

void FluidNetwork::grant(Flow& f) {
  EIO_CHECK(!f.granted);
  f.granted = true;
  ++granted_count_;
  Node& n = nodes_[f.node];
  n.granted.push_back(f.id);
  f.group_idx.clear();
  f.group_idx.reserve(f.osts.size());
  for (OstId o : f.osts) {
    Ost& ost = osts_[o];
    std::uint32_t gi = find_or_make_group(ost, f.node);
    ost.groups[gi].ids.push_back(f.id);
    f.group_idx.push_back(gi);
    ++ost.flow_count;
  }
}

void FluidNetwork::release_resources(Flow& f) {
  Node& n = nodes_[f.node];
  if (f.granted) {
    --granted_count_;
    auto it = std::find(n.granted.begin(), n.granted.end(), f.id);
    EIO_CHECK(it != n.granted.end());
    n.granted.erase(it);
    for (std::size_t i = 0; i < f.osts.size(); ++i) {
      Ost& ost = osts_[f.osts[i]];
      std::uint32_t gi = f.group_idx[i];
      Group& g = ost.groups[gi];
      auto fit = std::find(g.ids.begin(), g.ids.end(), f.id);
      EIO_CHECK(fit != g.ids.end());
      g.ids.erase(fit);
      if (g.ids.empty()) {
        auto oit = std::lower_bound(
            ost.order.begin(), ost.order.end(), g.node,
            [&ost](std::uint32_t o, NodeId nn) { return ost.groups[o].node < nn; });
        EIO_CHECK(oit != ost.order.end() && *oit == gi);
        ost.order.erase(oit);
        g.next_free = ost.free_head;
        ost.free_head = gi;
      }
      --ost.flow_count;
    }
    f.group_idx.clear();
  } else {
    auto it = std::find(n.waiting.begin(), n.waiting.end(), f.id);
    EIO_CHECK(it != n.waiting.end());
    n.waiting.erase(it);
  }
  f.granted = false;
}

void FluidNetwork::pump_waiting(Node& n) {
  while (!n.waiting.empty() && n.granted.size() < n.concurrency) {
    // Random grant order: scheduler luck is redrawn per stream, which
    // averages out over a task's successive calls (LLN, Figure 2).
    std::size_t pick = static_cast<std::size_t>(n.rng.index(n.waiting.size()));
    FlowId id = n.waiting[pick];
    n.waiting.erase(n.waiting.begin() + static_cast<std::ptrdiff_t>(pick));
    grant(resolve(id));
  }
}

void FluidNetwork::settle(Flow& f) {
  Seconds now = engine_.now();
  double dt = now - f.last_update;
  if (dt > 0.0 && f.rate > 0.0) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  f.last_update = now;
}

Rate FluidNetwork::compute_rate(const Flow& f) const {
  if (!f.granted) return 0.0;
  const Node& n = nodes_[f.node];
  EIO_DCHECK(!n.granted.empty());
  Rate nic_share = n.nic_capacity / static_cast<double>(n.granted.size());

  Rate ost_total = 0.0;
  for (std::size_t i = 0; i < f.osts.size(); ++i) {
    const Ost& ost = osts_[f.osts[i]];
    std::size_t clients = ost.order.size();
    EIO_DCHECK(clients >= 1);
    double eff = contention_.efficiency(static_cast<std::uint32_t>(clients));
    Rate node_slice = ost.capacity * eff / static_cast<double>(clients);
    const Group& g = ost.groups[f.group_idx[i]];
    EIO_DCHECK(!g.ids.empty());
    ost_total += node_slice / static_cast<double>(g.ids.size());
  }
  ost_total *= f.ost_efficiency;

  return std::min({nic_share, ost_total, f.cap});
}

void FluidNetwork::reschedule(Flow& f) {
  if (f.completion != kInvalidEvent) {
    engine_.cancel(f.completion);
    f.completion = kInvalidEvent;
  }
  if (f.rate <= 0.0) return;  // waiting flows have no completion event
  Seconds eta = f.remaining / f.rate;
  FlowId id = f.id;
  f.completion = engine_.schedule_in(eta, [this, id] { complete_flow(id); });
}

void FluidNetwork::refresh(Flow& f) {
  settle(f);
  Rate rate = compute_rate(f);
  // If the rate is unchanged, the pending completion event is still
  // exact (settle advanced last_update by exactly rate*dt), so the
  // cancel+reschedule churn can be skipped.
  if (rate == f.rate && f.completion != kInvalidEvent) return;
  f.rate = rate;
  reschedule(f);
}

void FluidNetwork::recompute_touching(NodeId node, const std::vector<OstId>& osts) {
  // When the touched resources cover most granted flows (typical for
  // full-stripe transfers where every flow uses every OST), a direct
  // scan is cheaper than gathering per-resource lists.
  std::size_t touched = nodes_[node].granted.size();
  for (OstId o : osts) touched += osts_[o].flow_count;
  if (touched >= granted_count_) {
    // Canonical refresh order: flow creation order, i.e. the active
    // list front to back. The order flows are refreshed in fixes the
    // FIFO sequence of any completion events rescheduled to equal
    // times, so it is part of the determinism contract — it must be a
    // defined order, not an accident of hash-map iteration.
    for (std::uint32_t s = active_head_; s != kNoIndex; s = flow_slots_[s].next) {
      Flow& f = flow_slots_[s].f;
      if (f.granted) refresh(f);
    }
    return;
  }

  ++epoch_;
  auto visit = [this](FlowId id) {
    Flow& f = resolve(id);
    if (f.visit_epoch == epoch_) return;
    f.visit_epoch = epoch_;
    refresh(f);
  };
  for (FlowId id : nodes_[node].granted) visit(id);
  // Per-OST groups visited in ascending node order (the `order` index
  // is sorted by node) — the same canonical-order argument as the full
  // scan above.
  for (OstId o : osts) {
    const Ost& ost = osts_[o];
    for (std::uint32_t gi : ost.order) {
      for (FlowId id : ost.groups[gi].ids) visit(id);
    }
  }
}

void FluidNetwork::complete_flow(FlowId id) {
  std::uint32_t slot = slot_of(id);
  EIO_CHECK(slot < flow_slots_.size() &&
            flow_slots_[slot].generation == gen_of(id));
  Flow& f = flow_slots_[slot].f;
  settle(f);
  // The completion event fires exactly at remaining/rate; any residue
  // is floating-point noise.
  EIO_DCHECK(f.remaining < 1.0);
  bytes_completed_ += f.total_bytes;

  NodeId node = f.node;
  FlowCallback on_complete = std::move(f.on_complete);

  release_resources(f);
  // Off the active list before recomputing, so the full scan no longer
  // sees the completing flow; the slot itself (and f.osts) stays alive
  // until after the recompute, which still needs the OST list.
  unlink_active(slot);

  Node& n = nodes_[node];
  pump_waiting(n);
  recompute_touching(node, f.osts);

  // No start_flow can have happened since unlinking (grant/refresh
  // never re-enter user code), so the slot is still ours to return.
  release_flow_slot(slot);
  if (on_complete) on_complete(id);
}

Rate FluidNetwork::flow_rate(FlowId id) const {
  if (!flow_active(id)) return 0.0;
  return flow_slots_[slot_of(id)].f.rate;
}

std::size_t FluidNetwork::ost_flow_count(OstId ost) const {
  EIO_CHECK(ost < osts_.size());
  return osts_[ost].flow_count;
}

std::size_t FluidNetwork::ost_client_count(OstId ost) const {
  EIO_CHECK(ost < osts_.size());
  return osts_[ost].order.size();
}

std::size_t FluidNetwork::node_granted(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].granted.size();
}

std::size_t FluidNetwork::node_waiting(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].waiting.size();
}

void FluidNetwork::set_ost_capacity(OstId ost, Rate capacity) {
  EIO_CHECK(ost < osts_.size());
  EIO_CHECK(capacity > 0.0);
  osts_[ost].capacity = capacity;
  recompute_touching_ost(ost);
}

void FluidNetwork::recompute_touching_ost(OstId ost) {
  // Only flows granted on this OST can see a rate change; a flow
  // appears in exactly one node group, so no visit dedup is needed and
  // no other flow is settled (touching an unrelated flow would perturb
  // its floating-point remaining-bytes trajectory). Groups come out in
  // ascending node order — the canonical order.
  const Ost& o = osts_[ost];
  for (std::uint32_t gi : o.order) {
    for (FlowId id : o.groups[gi].ids) {
      refresh(resolve(id));
    }
  }
}

}  // namespace eio::sim
