#include "sim/fluid.h"

#include <algorithm>
#include <cmath>

namespace eio::sim {

std::uint32_t ConcurrencyPolicy::sample(rng::Stream& s) const {
  EIO_CHECK_MSG(!choices.empty(), "empty concurrency policy");
  double u = s.uniform();
  double acc = 0.0;
  for (const Choice& c : choices) {
    acc += c.probability;
    if (u < acc) return c.streams;
  }
  return choices.back().streams;
}

FluidNetwork::FluidNetwork(Engine& engine, Config config)
    : engine_(engine),
      contention_(config.contention),
      policy_(std::move(config.node_policy)) {
  EIO_CHECK(!config.nic_capacity.empty());
  EIO_CHECK(!config.ost_capacity.empty());
  rng::StreamFactory factory(config.seed);
  nodes_.resize(config.nic_capacity.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].nic_capacity = config.nic_capacity[i];
    nodes_[i].rng = rng::make_stream(factory, rng::StreamKind::kNodeScheduler, i);
    EIO_CHECK(nodes_[i].nic_capacity > 0.0);
  }
  osts_.resize(config.ost_capacity.size());
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    osts_[i].capacity = config.ost_capacity[i];
    EIO_CHECK(osts_[i].capacity > 0.0);
  }
}

FlowId FluidNetwork::start_flow(FlowSpec spec) {
  EIO_CHECK_MSG(spec.node < nodes_.size(), "bad node id " << spec.node);
  for (OstId o : spec.osts) EIO_CHECK_MSG(o < osts_.size(), "bad ost id " << o);
  EIO_CHECK_MSG(!spec.osts.empty(), "flow must touch at least one OST");

  FlowId id = ++next_flow_id_;
  Flow f;
  f.id = id;
  f.node = spec.node;
  f.osts = std::move(spec.osts);
  // De-duplicate the OST set; shares are computed per unique OST.
  std::sort(f.osts.begin(), f.osts.end());
  f.osts.erase(std::unique(f.osts.begin(), f.osts.end()), f.osts.end());
  // One allocation up front; grant() (possibly re-entered after a wait)
  // only fills the already-sized buffer.
  f.group_refs.reserve(f.osts.size());
  f.total_bytes = spec.bytes;
  f.remaining = static_cast<double>(spec.bytes);
  f.cap = spec.cap;
  f.ost_efficiency = spec.ost_efficiency;
  f.scheduled = spec.scheduled;
  f.last_update = engine_.now();
  f.on_complete = std::move(spec.on_complete);

  if (f.remaining <= 0.0) {
    // Zero-byte transfer: complete on the next event boundary so the
    // caller's callback never runs re-entrantly inside start_flow.
    auto cb = std::move(f.on_complete);
    engine_.schedule_in(0.0, [cb = std::move(cb), id] {
      if (cb) cb(id);
    });
    return id;
  }

  Node& n = nodes_[f.node];
  maybe_start_burst(n);

  auto [it, inserted] = flows_.emplace(id, std::move(f));
  EIO_CHECK(inserted);
  Flow& flow = it->second;

  bool can_grant = !flow.scheduled || n.granted.size() < n.concurrency;
  if (can_grant) {
    grant(flow);
    recompute_touching(flow.node, flow.osts);
  } else {
    n.waiting.push_back(id);
  }
  return id;
}

void FluidNetwork::maybe_start_burst(Node& n) {
  if (n.granted.empty() && n.waiting.empty()) {
    n.concurrency = policy_.sample(n.rng);
    EIO_CHECK(n.concurrency >= 1);
  }
}

void FluidNetwork::grant(Flow& f) {
  EIO_CHECK(!f.granted);
  f.granted = true;
  ++granted_count_;
  Node& n = nodes_[f.node];
  n.granted.push_back(f.id);
  f.group_refs.clear();
  f.group_refs.reserve(f.osts.size());
  for (OstId o : f.osts) {
    Ost& ost = osts_[o];
    auto& group = ost.by_node[f.node];
    group.push_back(f.id);
    f.group_refs.push_back(&group);
    ++ost.flow_count;
  }
}

void FluidNetwork::release_resources(Flow& f) {
  Node& n = nodes_[f.node];
  if (f.granted) {
    --granted_count_;
    auto it = std::find(n.granted.begin(), n.granted.end(), f.id);
    EIO_CHECK(it != n.granted.end());
    n.granted.erase(it);
    for (OstId o : f.osts) {
      Ost& ost = osts_[o];
      auto bn = ost.by_node.find(f.node);
      EIO_CHECK(bn != ost.by_node.end());
      auto fit = std::find(bn->second.begin(), bn->second.end(), f.id);
      EIO_CHECK(fit != bn->second.end());
      bn->second.erase(fit);
      if (bn->second.empty()) ost.by_node.erase(bn);
      --ost.flow_count;
    }
    f.group_refs.clear();
  } else {
    auto it = std::find(n.waiting.begin(), n.waiting.end(), f.id);
    EIO_CHECK(it != n.waiting.end());
    n.waiting.erase(it);
  }
  f.granted = false;
}

void FluidNetwork::pump_waiting(Node& n) {
  while (!n.waiting.empty() && n.granted.size() < n.concurrency) {
    // Random grant order: scheduler luck is redrawn per stream, which
    // averages out over a task's successive calls (LLN, Figure 2).
    std::size_t pick = static_cast<std::size_t>(n.rng.index(n.waiting.size()));
    FlowId id = n.waiting[pick];
    n.waiting.erase(n.waiting.begin() + static_cast<std::ptrdiff_t>(pick));
    auto it = flows_.find(id);
    EIO_CHECK(it != flows_.end());
    grant(it->second);
  }
}

void FluidNetwork::settle(Flow& f) {
  Seconds now = engine_.now();
  double dt = now - f.last_update;
  if (dt > 0.0 && f.rate > 0.0) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  f.last_update = now;
}

Rate FluidNetwork::compute_rate(const Flow& f) const {
  if (!f.granted) return 0.0;
  const Node& n = nodes_[f.node];
  EIO_DCHECK(!n.granted.empty());
  Rate nic_share = n.nic_capacity / static_cast<double>(n.granted.size());

  Rate ost_total = 0.0;
  for (std::size_t i = 0; i < f.osts.size(); ++i) {
    const Ost& ost = osts_[f.osts[i]];
    std::size_t clients = ost.by_node.size();
    EIO_DCHECK(clients >= 1);
    double eff = contention_.efficiency(static_cast<std::uint32_t>(clients));
    Rate node_slice = ost.capacity * eff / static_cast<double>(clients);
    EIO_DCHECK(f.group_refs[i] != nullptr && !f.group_refs[i]->empty());
    ost_total += node_slice / static_cast<double>(f.group_refs[i]->size());
  }
  ost_total *= f.ost_efficiency;

  return std::min({nic_share, ost_total, f.cap});
}

void FluidNetwork::reschedule(Flow& f) {
  if (f.completion != kInvalidEvent) {
    engine_.cancel(f.completion);
    f.completion = kInvalidEvent;
  }
  if (f.rate <= 0.0) return;  // waiting flows have no completion event
  Seconds eta = f.remaining / f.rate;
  FlowId id = f.id;
  f.completion = engine_.schedule_in(eta, [this, id] { complete_flow(id); });
}

void FluidNetwork::refresh(Flow& f) {
  settle(f);
  Rate rate = compute_rate(f);
  // If the rate is unchanged, the pending completion event is still
  // exact (settle advanced last_update by exactly rate*dt), so the
  // cancel+reschedule churn can be skipped.
  if (rate == f.rate && f.completion != kInvalidEvent) return;
  f.rate = rate;
  reschedule(f);
}

void FluidNetwork::recompute_touching(NodeId node, const std::vector<OstId>& osts) {
  // When the touched resources cover most granted flows (typical for
  // full-stripe transfers where every flow uses every OST), a direct
  // scan is cheaper than gathering per-resource lists.
  std::size_t touched = nodes_[node].granted.size();
  for (OstId o : osts) touched += osts_[o].flow_count;
  if (touched >= granted_count_) {
    // Canonical refresh order: flow creation (FlowId) order. The order
    // flows are refreshed in fixes the FIFO sequence of any completion
    // events rescheduled to equal times, so it is part of the
    // determinism contract — it must be a defined order, not an
    // accident of hash-map iteration.
    std::vector<FlowId> ids;
    ids.reserve(flows_.size());
    for (auto& [id, f] : flows_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (FlowId id : ids) {
      Flow& f = flows_.at(id);
      if (f.granted) refresh(f);
    }
    return;
  }

  ++epoch_;
  auto visit = [this](FlowId id) {
    auto it = flows_.find(id);
    EIO_DCHECK(it != flows_.end());
    Flow& f = it->second;
    if (f.visit_epoch == epoch_) return;
    f.visit_epoch = epoch_;
    refresh(f);
  };
  for (FlowId id : nodes_[node].granted) visit(id);
  // Per-OST groups visited in ascending node order — the same
  // canonical-order argument as the full scan above.
  for (OstId o : osts) {
    std::vector<NodeId> clients;
    clients.reserve(osts_[o].by_node.size());
    for (const auto& [client, ids] : osts_[o].by_node) clients.push_back(client);
    std::sort(clients.begin(), clients.end());
    for (NodeId client : clients) {
      for (FlowId id : osts_[o].by_node.at(client)) visit(id);
    }
  }
}

void FluidNetwork::complete_flow(FlowId id) {
  auto it = flows_.find(id);
  EIO_CHECK(it != flows_.end());
  Flow& f = it->second;
  settle(f);
  // The completion event fires exactly at remaining/rate; any residue
  // is floating-point noise.
  EIO_DCHECK(f.remaining < 1.0);
  bytes_completed_ += f.total_bytes;

  NodeId node = f.node;
  auto on_complete = std::move(f.on_complete);

  release_resources(f);
  // release_resources walks f.osts, so the move must come after it.
  std::vector<OstId> osts = std::move(f.osts);
  flows_.erase(it);

  Node& n = nodes_[node];
  pump_waiting(n);
  recompute_touching(node, osts);

  if (on_complete) on_complete(id);
}

Rate FluidNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

std::size_t FluidNetwork::ost_flow_count(OstId ost) const {
  EIO_CHECK(ost < osts_.size());
  return osts_[ost].flow_count;
}

std::size_t FluidNetwork::ost_client_count(OstId ost) const {
  EIO_CHECK(ost < osts_.size());
  return osts_[ost].by_node.size();
}

std::size_t FluidNetwork::node_granted(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].granted.size();
}

std::size_t FluidNetwork::node_waiting(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].waiting.size();
}

void FluidNetwork::set_ost_capacity(OstId ost, Rate capacity) {
  EIO_CHECK(ost < osts_.size());
  EIO_CHECK(capacity > 0.0);
  osts_[ost].capacity = capacity;
  recompute_touching_ost(ost);
}

void FluidNetwork::recompute_touching_ost(OstId ost) {
  // Only flows granted on this OST can see a rate change; a flow
  // appears in exactly one node group, so no visit dedup is needed and
  // no other flow is settled (touching an unrelated flow would perturb
  // its floating-point remaining-bytes trajectory).
  std::vector<NodeId> clients;
  clients.reserve(osts_[ost].by_node.size());
  for (const auto& [client, ids] : osts_[ost].by_node) clients.push_back(client);
  std::sort(clients.begin(), clients.end());
  for (NodeId client : clients) {
    for (FlowId id : osts_[ost].by_node.at(client)) {
      refresh(flows_.at(id));
    }
  }
}

}  // namespace eio::sim
