// Run-scoped execution context.
//
// One RunContext is the execution core of exactly one simulated run: it
// owns the event Engine (the calendar and clock) and the run-scoped RNG
// stream factory every stochastic component derives its substreams
// from. Nothing in a RunContext is shared with any other run — that is
// the isolation contract that lets ensembles execute on concurrent
// threads (see workloads::ParallelEnsembleRunner).
//
// The contract, concretely:
//
//  * every per-run component (Filesystem, PosixIo, Runtime, ...) takes
//    a RunContext& at construction instead of a raw Engine& plus an
//    ad-hoc seed, so a component can never pair the clock of one run
//    with the randomness of another;
//  * all RNG substreams derive from stream(kind, index) — i.e. from
//    (run seed, entity kind, entity index) via splitmix64 mixing — so
//    draws are reproducible and independent of event interleaving;
//  * the run seed is supplied by the caller (run_job() passes
//    machine.seed; ensemble runners pass machine.seed + run_index), so
//    serial and parallel execution see byte-identical randomness.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/engine.h"

namespace eio::sim {

/// The self-contained execution state of one run: engine + RNG streams.
class RunContext {
 public:
  /// `seed` is the run-local master seed; `run_index` identifies the
  /// run within an ensemble (0 for standalone runs, metadata only).
  explicit RunContext(std::uint64_t seed, std::uint64_t run_index = 0)
      : seed_(seed), run_index_(run_index), streams_(seed) {}

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }

  /// The run-local master seed all substreams derive from.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Position of this run within its ensemble (0 outside ensembles).
  [[nodiscard]] std::uint64_t run_index() const noexcept { return run_index_; }

  /// The run-scoped substream factory.
  [[nodiscard]] const rng::StreamFactory& streams() const noexcept {
    return streams_;
  }

  /// Substream for entity (kind, index), deterministic in its inputs.
  [[nodiscard]] rng::Stream stream(rng::StreamKind kind,
                                   std::uint64_t index) const {
    return rng::make_stream(streams_, kind, index);
  }

 private:
  std::uint64_t seed_;
  std::uint64_t run_index_;
  rng::StreamFactory streams_;
  Engine engine_;
};

}  // namespace eio::sim
