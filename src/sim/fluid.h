// Fluid-flow bottleneck-share network.
//
// Every bulk transfer in the simulated machine is a *flow*: an amount of
// bytes moving from a compute node to a set of OSTs (or back). A flow's
// instantaneous rate is
//
//     rate = min( NIC share,  Σ_osts OST share,  per-flow cap )
//
// where shares are *structural* (they depend only on how many flows and
// client nodes are active on a resource, never on other flows' rates),
// so a flow arrival/departure only requires recomputing flows that
// share one of its resources — no global water-filling and no cascades.
//
// OST capacity is divided in two levels, mirroring how a Lustre OST
// services RPC streams: first equally among distinct *client nodes*
// with traffic on the OST, then equally among that node's flows on the
// OST. This is the mechanism behind the paper's Figure 1(c) harmonics:
// a node whose client admits only one stream concentrates the node's
// entire OST allocation onto that stream (≈4R), two streams get ≈2R
// each, and four streams get the fair share R.
//
// Each node has a token scheduler that admits a bounded number of
// concurrent streams (concurrency sampled per busy-burst from a
// configurable policy; grant order randomized per grant, which is what
// produces the Law-of-Large-Numbers averaging of Figure 2).
//
// Storage layout (steady-state allocation-free, mirroring the engine's
// calendar): flows live in a slot slab with a free list — FlowId packs
// (generation << 32) | (slot + 1) — threaded onto an intrusive doubly
// linked list in creation order, which is the canonical refresh order
// for full-scan recomputes. Each OST keeps its per-client-node flow
// groups in a small slab with a parallel `order` index vector sorted
// by node id, replacing the previous hash map; recomputes walk groups
// in ascending node order (canonical) and released slots retain their
// vector capacities for reuse.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/inline_function.h"

namespace eio::sim {

/// Handle identifying an active flow. Packs
/// (generation << 32) | (slot index + 1), so 0 stays the sentinel.
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

/// Distribution over per-burst stream concurrency for a node's client
/// I/O scheduler. Probabilities must be positive and sum to 1 (±1e-9);
/// violations throw at construction, not at the millionth sample().
struct ConcurrencyPolicy {
  struct Choice {
    std::uint32_t streams = 1;  ///< concurrent streams admitted
    double probability = 1.0;
  };

  ConcurrencyPolicy() = default;  ///< empty; sample() rejects it

  /// Validates and precomputes the cumulative table (the same partial
  /// sums sample() used to accumulate per call, so draws are
  /// bit-identical to the accumulate-in-the-loop implementation).
  ConcurrencyPolicy(std::vector<Choice> cs);  // NOLINT(google-explicit-constructor)

  /// All bursts admit exactly `n` concurrent streams.
  [[nodiscard]] static ConcurrencyPolicy fixed(std::uint32_t n) {
    return ConcurrencyPolicy{{{n, 1.0}}};
  }

  /// The Franklin-like mixture observed in the paper: most bursts are
  /// fair, but some nodes serialize down to 2 or 1 streams.
  [[nodiscard]] static ConcurrencyPolicy franklin_mix() {
    return ConcurrencyPolicy{{{1, 0.25}, {2, 0.30}, {4, 0.45}}};
  }

  [[nodiscard]] std::uint32_t sample(rng::Stream& s) const;

  std::vector<Choice> choices;
  /// cumulative[i] = sum of probabilities[0..i], built once.
  std::vector<double> cumulative;
};

/// Diminishing OST efficiency as the count of distinct client nodes
/// grows (queue-depth / seek-interleaving contention):
///   eff(c) = 1 / (1 + alpha * max(0, c - knee))
struct ContentionModel {
  double alpha = 0.0;        ///< per-extra-client penalty slope
  std::uint32_t knee = 16;   ///< clients at/below this are free

  [[nodiscard]] double efficiency(std::uint32_t clients) const noexcept {
    if (clients <= knee || alpha <= 0.0) return 1.0;
    return 1.0 / (1.0 + alpha * static_cast<double>(clients - knee));
  }
};

/// Inline capture budget for flow-completion callbacks (largest
/// caller: the lustre sync-write completion closure).
inline constexpr std::size_t kFlowCallbackCapacity = 224;

/// Completion callback; captures stay in place (no heap fallback).
using FlowCallback = InlineFunction<void(FlowId), kFlowCallbackCapacity>;

/// Parameters of a new flow.
struct FlowSpec {
  NodeId node = 0;               ///< originating compute node
  Bytes bytes = 0;               ///< payload to move
  std::vector<OstId> osts;       ///< unique OSTs this flow stripes over
  Rate cap = 1e18;               ///< per-flow rate ceiling (e.g. degraded reads)
  double ost_efficiency = 1.0;   ///< multiplier on OST-side share (read penalty)
  bool scheduled = true;         ///< subject to the node token scheduler
  FlowCallback on_complete;      ///< fired when bytes drain
};

/// The network of NICs and OSTs carrying fluid flows.
class FluidNetwork {
 public:
  struct Config {
    std::vector<Rate> nic_capacity;    ///< per-node injection bandwidth
    std::vector<Rate> ost_capacity;    ///< per-OST service bandwidth
    ConcurrencyPolicy node_policy = ConcurrencyPolicy::fixed(4);
    ContentionModel contention;        ///< OST client-count contention
    std::uint64_t seed = 1;            ///< master seed for scheduler draws
  };

  FluidNetwork(Engine& engine, Config config);

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Launch a flow. Completion (possibly delayed by queueing in the
  /// node scheduler) invokes spec.on_complete.
  FlowId start_flow(FlowSpec spec);

  /// Number of flows not yet completed (granted + waiting).
  [[nodiscard]] std::size_t active_flows() const noexcept { return active_count_; }

  /// Instantaneous rate of a flow (0 if waiting for a token or done).
  [[nodiscard]] Rate flow_rate(FlowId id) const;

  /// True while the flow exists (granted or queued). O(1): bounds +
  /// generation check.
  [[nodiscard]] bool flow_active(FlowId id) const {
    if (id == kInvalidFlow) return false;
    std::uint32_t slot = slot_of(id);
    return slot < flow_slots_.size() &&
           flow_slots_[slot].generation == gen_of(id);
  }

  /// Count of granted flows currently registered on an OST.
  [[nodiscard]] std::size_t ost_flow_count(OstId ost) const;

  /// Count of distinct client nodes currently active on an OST.
  [[nodiscard]] std::size_t ost_client_count(OstId ost) const;

  /// Count of granted flows on a node (streams holding a token).
  [[nodiscard]] std::size_t node_granted(NodeId node) const;

  /// Count of flows queued behind the node's token scheduler.
  [[nodiscard]] std::size_t node_waiting(NodeId node) const;

  /// Total bytes fully drained through the network so far.
  [[nodiscard]] Bytes bytes_completed() const noexcept { return bytes_completed_; }

  /// Adjust an OST's base capacity (used by fault-injection tests).
  void set_ost_capacity(OstId ost, Rate capacity);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t ost_count() const noexcept { return osts_.size(); }

 private:
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  struct Flow {
    FlowId id = kInvalidFlow;
    NodeId node = 0;
    std::vector<OstId> osts;
    /// Index of this flow's node group in osts_[osts[i]].groups,
    /// parallel to `osts`; valid while granted. Slab indices are
    /// stable under unrelated group insert/release.
    std::vector<std::uint32_t> group_idx;
    Bytes total_bytes = 0;        ///< original payload size
    double remaining = 0.0;       ///< bytes left to move
    Rate cap = 1e18;
    double ost_efficiency = 1.0;
    bool scheduled = true;
    bool granted = false;
    Rate rate = 0.0;
    Seconds last_update = 0.0;
    std::uint64_t visit_epoch = 0;
    EventId completion = kInvalidEvent;
    FlowCallback on_complete;
  };

  /// Slab cell: flow + generation tag + free-list / active-list links.
  /// The active list is threaded in creation order — the canonical
  /// full-scan refresh order (packed FlowIds are not monotone).
  struct FlowSlot {
    Flow f;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoIndex;
    std::uint32_t prev = kNoIndex;  ///< active-list link
    std::uint32_t next = kNoIndex;  ///< active-list link
  };

  struct Node {
    Rate nic_capacity = 0.0;
    std::uint32_t concurrency = 1;   ///< tokens for the current burst
    std::vector<FlowId> granted;     ///< flows holding a token
    std::vector<FlowId> waiting;     ///< flows queued for a token
    rng::Stream rng;
  };

  /// Granted flows from one client node on one OST.
  struct Group {
    NodeId node = 0;
    std::vector<FlowId> ids;
    std::uint32_t next_free = kNoIndex;
  };

  struct Ost {
    Rate capacity = 0.0;
    std::vector<Group> groups;          ///< slab; indices are stable
    std::vector<std::uint32_t> order;   ///< live groups, sorted by node
    std::uint32_t free_head = kNoIndex; ///< group slab free list
    std::size_t flow_count = 0;
  };

  [[nodiscard]] static constexpr FlowId pack(std::uint32_t slot,
                                             std::uint32_t gen) noexcept {
    return (static_cast<FlowId>(gen) << 32) | static_cast<FlowId>(slot + 1);
  }
  [[nodiscard]] static constexpr std::uint32_t slot_of(FlowId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  [[nodiscard]] static constexpr std::uint32_t gen_of(FlowId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] Flow& resolve(FlowId id) {
    std::uint32_t slot = slot_of(id);
    EIO_CHECK_MSG(slot < flow_slots_.size() &&
                      flow_slots_[slot].generation == gen_of(id),
                  "dead flow id " << id);
    return flow_slots_[slot].f;
  }

  /// Take a slab cell (free list first) and link it at the active-list
  /// tail. Reused cells keep their vectors' capacities.
  std::uint32_t acquire_flow_slot();
  /// Unlink from the active list (creation-order scan skips it).
  void unlink_active(std::uint32_t slot);
  /// Bump the generation and push onto the free list; container
  /// capacities are retained for the next flow.
  void release_flow_slot(std::uint32_t slot);

  /// Index into ost.groups for `node`'s group, creating (slab reuse
  /// first) and splicing into the sorted order vector if absent.
  std::uint32_t find_or_make_group(Ost& ost, NodeId node);

  void grant(Flow& f);
  void release_resources(Flow& f);
  void complete_flow(FlowId id);
  /// Settle + recompute + reschedule every granted flow touching the
  /// given node or any of the given OSTs. Falls back to a full scan of
  /// granted flows when the touched set covers most of them.
  void recompute_touching(NodeId node, const std::vector<OstId>& osts);
  /// OST-only variant for capacity changes (fault windows): refreshes
  /// exactly the flows granted on `ost`, in node order, without the
  /// phantom node walk or the temp OST vector. (Not an overload of
  /// recompute_touching: NodeId and OstId are both std::uint32_t.)
  void recompute_touching_ost(OstId ost);
  /// Settle one flow, recompute its rate and reschedule completion.
  void refresh(Flow& f);
  void settle(Flow& f);
  [[nodiscard]] Rate compute_rate(const Flow& f) const;
  void reschedule(Flow& f);
  void maybe_start_burst(Node& n);
  void pump_waiting(Node& n);

  Engine& engine_;
  ContentionModel contention_;
  ConcurrencyPolicy policy_;
  std::vector<Node> nodes_;
  std::vector<Ost> osts_;
  std::vector<FlowSlot> flow_slots_;
  std::uint32_t flow_free_head_ = kNoIndex;
  std::uint32_t active_head_ = kNoIndex;  ///< oldest live flow
  std::uint32_t active_tail_ = kNoIndex;  ///< newest live flow
  std::size_t active_count_ = 0;
  Bytes bytes_completed_ = 0;
  std::size_t granted_count_ = 0;
  std::uint64_t epoch_ = 0;  ///< visitation stamp for recompute dedup
};

}  // namespace eio::sim
