// Parallel ensemble execution.
//
// The paper's method lives on ensembles — conclusions come from the
// distribution over many runs, not from single events — and tight
// confidence on modes and tails needs dozens-to-hundreds of runs per
// configuration. Because a RunInstance shares no mutable state with
// any other (see workloads/experiment.h), runs are embarrassingly
// parallel: the ParallelEnsembleRunner executes them on a fixed pool
// of worker threads, one isolated RunInstance per task, with seed
// derivation identical to the serial runner (machine.seed + run
// index). Results are therefore byte-identical to serial execution —
// same traces, same histograms, same KS statistics — for any thread
// count.
#pragma once

#include <cstddef>
#include <vector>

#include "workloads/experiment.h"

namespace eio::workloads {

/// Resolve a jobs knob: nonzero values pass through; 0 means the
/// EIO_JOBS environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs);

struct EnsembleOptions {
  /// Worker threads. 0 = default (EIO_JOBS env or hardware concurrency).
  std::size_t jobs = 0;
};

/// Executes sets of runs on a fixed thread pool. Stateless between
/// calls; safe to reuse and cheap to construct.
class ParallelEnsembleRunner {
 public:
  explicit ParallelEnsembleRunner(EnsembleOptions options = {});

  /// The resolved worker-thread count.
  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Execute arbitrary job specs concurrently; results land in input
  /// order. If any run throws, the remaining runs still execute and
  /// the first exception is rethrown after the pool drains.
  [[nodiscard]] std::vector<RunResult> run_jobs(
      const std::vector<JobSpec>& specs) const;

  /// Execute `runs` runs of one experiment with seeds machine.seed + r
  /// and result names "<name>#r" — exactly the serial run_ensemble()
  /// contract, parallelized.
  [[nodiscard]] std::vector<RunResult> run_ensemble(JobSpec spec,
                                                    std::size_t runs) const;

 private:
  std::size_t jobs_;
};

/// Convenience: run arbitrary specs on a temporary runner.
[[nodiscard]] std::vector<RunResult> run_jobs(const std::vector<JobSpec>& specs,
                                              std::size_t jobs = 0);

}  // namespace eio::workloads
