// Experiment driver: build a simulated job, run it, keep everything.
//
// The paper's vocabulary: "we refer to a particular choice of test
// parameters as an experiment and a specific instance of running that
// experiment simply as a run". A JobSpec is an experiment; run_job()
// performs one run (seeded deterministically); run_ensemble() performs
// several runs with derived seeds for reproducibility studies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "ipm/monitor.h"
#include "lustre/filesystem.h"
#include "lustre/machine.h"
#include "mpi/program.h"
#include "mpi/runtime.h"

namespace eio::workloads {

/// An experiment: machine + per-rank programs + capture settings.
struct JobSpec {
  std::string name = "job";
  lustre::MachineConfig machine;
  std::vector<mpi::Program> programs;  ///< one per rank
  std::map<std::string, lustre::FileOptions> stripe_options;  ///< per path
  ipm::Mode capture = ipm::Mode::kBoth;
  mpi::CollectiveCosts collective_costs;
};

/// Everything a run produces.
struct RunResult {
  std::string name;
  Seconds job_time = 0.0;        ///< slowest rank's finish time
  ipm::Trace trace;
  ipm::Profile profile;
  lustre::FilesystemStats fs_stats;
  std::uint64_t engine_events = 0;
  Seconds monitor_overhead = 0.0;
  /// Reported aggregate data rate the way benchmarks report it:
  /// payload bytes moved / job wall time.
  [[nodiscard]] double reported_rate() const {
    return job_time > 0.0
               ? static_cast<double>(fs_stats.bytes_written + fs_stats.bytes_read) /
                     job_time
               : 0.0;
  }
};

/// Execute one run of the experiment.
[[nodiscard]] RunResult run_job(const JobSpec& spec);

/// Execute `runs` runs with seeds derived from the machine seed
/// (machine.seed + run index); the per-run traces land in the results.
[[nodiscard]] std::vector<RunResult> run_ensemble(JobSpec spec, std::size_t runs);

/// Per-task fair-share rate of a machine at a given task count:
/// aggregate OST bandwidth divided by the number of tasks.
[[nodiscard]] Rate fair_share_rate(const lustre::MachineConfig& machine,
                                   std::uint32_t tasks);

/// Nodes needed for `tasks` ranks on this machine.
[[nodiscard]] std::uint32_t node_count_for(const lustre::MachineConfig& machine,
                                           std::uint32_t tasks);

}  // namespace eio::workloads
