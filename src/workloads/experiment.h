// Experiment driver: build a simulated job, run it, keep everything.
//
// The paper's vocabulary: "we refer to a particular choice of test
// parameters as an experiment and a specific instance of running that
// experiment simply as a run". A JobSpec is an experiment; run_job()
// performs one run (seeded deterministically); run_ensemble() performs
// several runs with derived seeds for reproducibility studies.
//
// A RunInstance is the isolation boundary: it owns one run's complete
// object graph (the sim::RunContext with engine + RNG streams, the
// Filesystem, the POSIX layer, the IPM monitor, and the MPI runtime)
// and shares nothing with any other RunInstance. That is what lets
// ensembles execute runs on concurrent threads (see
// workloads/ensemble.h) with byte-identical results to serial
// execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "fault/injector.h"
#include "ipm/monitor.h"
#include "ipm/sink.h"
#include "lustre/filesystem.h"
#include "lustre/machine.h"
#include "mpi/program.h"
#include "mpi/runtime.h"
#include "posix/vfs.h"
#include "sim/run_context.h"

namespace eio::workloads {

/// An experiment: machine + per-rank programs + capture settings.
struct JobSpec {
  std::string name = "job";
  lustre::MachineConfig machine;
  std::vector<mpi::Program> programs;  ///< one per rank
  std::map<std::string, lustre::FileOptions> stripe_options;  ///< per path
  ipm::Mode capture = ipm::Mode::kBoth;
  mpi::CollectiveCosts collective_costs;
  /// Fault plan injected into every run of this experiment (empty =
  /// healthy machine, no perturbation, no extra RNG draws). Faults are
  /// executed by a per-run fault::Injector, so an ensemble's runs each
  /// suffer their own deterministic instance of the pathology.
  fault::Plan faults;
  /// Optional per-run streaming sink: called once per run with the run
  /// index; the returned sink receives every completed call as it
  /// retires (before any trace/profile harvesting) and its finish() is
  /// invoked when the run completes. Lets ensembles compute per-run
  /// statistics without retaining whole traces (capture = kProfile).
  std::function<std::shared_ptr<ipm::EventSink>(std::size_t run_index)>
      sink_factory;
};

/// Everything a run produces.
struct RunResult {
  std::string name;
  Seconds job_time = 0.0;        ///< slowest rank's finish time
  ipm::Trace trace;
  ipm::Profile profile;
  lustre::FilesystemStats fs_stats;
  std::uint64_t engine_events = 0;
  Seconds monitor_overhead = 0.0;
  /// Injection counters of this run's fault::Injector (all zero when
  /// the job's fault plan is empty).
  fault::Counts fault_counts;
  /// The sink produced by JobSpec::sink_factory for this run (if any),
  /// already finish()ed — ready for result extraction.
  std::shared_ptr<ipm::EventSink> sink;
  /// Reported aggregate data rate the way benchmarks report it:
  /// payload bytes moved / job wall time.
  [[nodiscard]] double reported_rate() const {
    return job_time > 0.0
               ? static_cast<double>(fs_stats.bytes_written + fs_stats.bytes_read) /
                     job_time
               : 0.0;
  }
};

/// One run as a self-contained, thread-safe unit. Owns a private copy
/// of the JobSpec and every piece of simulation state the run touches:
///
///   sim::RunContext  — event engine (clock + calendar) and the
///                      run-scoped RNG stream factory, seeded from
///                      spec.machine.seed (+ run index in ensembles);
///   lustre::Filesystem, posix::PosixIo — the storage stack;
///   ipm::Monitor     — the per-run trace/profile collectors;
///   mpi::Runtime     — the rank programs and collectives.
///
/// Two RunInstances never share mutable state, so any number of them
/// may execute() on concurrent threads.
class RunInstance {
 public:
  /// Builds the run's object graph; the run executes with seed
  /// spec.machine.seed. `run_index` tags the context in ensembles.
  explicit RunInstance(JobSpec spec, std::uint64_t run_index = 0);

  RunInstance(const RunInstance&) = delete;
  RunInstance& operator=(const RunInstance&) = delete;

  /// Run every rank to completion and collect the results. Call once.
  [[nodiscard]] RunResult execute();

  [[nodiscard]] const JobSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] sim::RunContext& context() noexcept { return run_; }
  [[nodiscard]] lustre::Filesystem& filesystem() noexcept { return fs_; }
  [[nodiscard]] posix::PosixIo& io() noexcept { return io_; }
  [[nodiscard]] ipm::Monitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] mpi::Runtime& runtime() noexcept { return runtime_; }
  /// The run's fault injector (nullptr when the plan is empty).
  [[nodiscard]] fault::Injector* injector() noexcept { return injector_.get(); }

 private:
  JobSpec spec_;
  std::uint32_t ranks_;
  sim::RunContext run_;
  std::unique_ptr<fault::Injector> injector_;  ///< before fs_: fs uses it
  lustre::Filesystem fs_;
  posix::PosixIo io_;
  ipm::Monitor monitor_;
  mpi::Runtime runtime_;
  std::shared_ptr<ipm::EventSink> sink_;
  bool executed_ = false;
};

/// Execute one run of the experiment.
[[nodiscard]] RunResult run_job(const JobSpec& spec);

/// Execute `runs` runs with seeds derived from the machine seed
/// (machine.seed + run index); the per-run traces land in the results.
/// Runs execute on `jobs` worker threads (0 = the EIO_JOBS environment
/// variable if set, else hardware concurrency); results are identical
/// to serial execution for any thread count.
[[nodiscard]] std::vector<RunResult> run_ensemble(JobSpec spec, std::size_t runs,
                                                  std::size_t jobs = 0);

/// Per-task fair-share rate of a machine at a given task count:
/// aggregate OST bandwidth divided by the number of tasks.
[[nodiscard]] Rate fair_share_rate(const lustre::MachineConfig& machine,
                                   std::uint32_t tasks);

/// Nodes needed for `tasks` ranks on this machine.
[[nodiscard]] std::uint32_t node_count_for(const lustre::MachineConfig& machine,
                                           std::uint32_t tasks);

}  // namespace eio::workloads
