// Sweep expansion: a campaign manifest → a deterministic run list.
//
// A campaign sweeps many scenarios. The manifest names them three
// ways, freely mixed:
//
//   * a scenario JSON file          → exactly one run;
//   * a sweep-spec JSON file        → a grid or random sweep over a
//                                     base scenario (axes patch dotted
//                                     paths in the scenario document);
//   * a directory                   → every *.json inside, sorted by
//                                     file name, expanded as above.
//
// A sweep spec is recognized by its "sweep" key (scenario files reject
// unknown keys, so the two formats cannot be confused):
//
//   {
//     "schema_version": 1,
//     "name": "ior-grid",                  // optional, defaults to file stem
//     "base": "scenarios/small_ior.json",  // path (relative to the spec
//                                          // file) or an inline scenario
//     "sweep": {
//       "mode": "grid",                    // or "random"
//       "samples": 64,                     // random only: draw count
//       "seed": 7,                         // random only: draw seed
//       "axes": {
//         "runs": [1, 2, 4],               // ensemble size
//         "seed": [1, 2, 3],               // machine seed
//         "workload.tasks": [64, 128],     // any dotted scenario path
//         "faults": [null, {...}]          // null deletes the key
//       }
//     }
//   }
//
// Expansion is deterministic: axes apply in sorted-name order, a grid
// walks them as an odometer with the last (sorted) axis fastest, and
// random mode draws axis indices from a splitmix64 stream seeded by
// "seed" — the same run list for the same inputs on every invocation,
// independent of directory enumeration order or worker count. Every
// expanded document is validated through scenario_from_json at
// expansion time, so a bad axis path fails the campaign up front with
// the run's label, not worker-deep at execution time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace eio::workloads {

/// Version of the sweep-spec JSON schema (the "schema_version" key).
inline constexpr int kSweepSchemaVersion = 1;

/// Grid expansions larger than this are rejected — a typo'd axis list
/// should fail loudly, not enqueue a million simulations.
inline constexpr std::size_t kMaxSweepRuns = 100000;

/// One planned campaign run: a fully-resolved scenario document plus
/// the provenance needed for labeling and fleet grouping. The index is
/// the run's global position in the campaign (assigned after the whole
/// manifest is expanded) and is the merge key of the campaign store.
struct RunPlan {
  std::uint64_t index = 0;
  std::string source;    ///< manifest entry stem (fleet-report grouping key)
  std::string label;     ///< axis assignment, e.g. "runs=2 seed=3" ("" = plain)
  json::Value scenario;  ///< the complete scenario document
};

/// Expand one manifest path — scenario file, sweep-spec file, or
/// directory — into the ordered run list. Throws std::runtime_error
/// with a precise message on malformed specs, invalid axes, or
/// documents that fail scenario validation.
[[nodiscard]] std::vector<RunPlan> expand_manifest(const std::string& path);

/// Expand an explicit file list. The list is sorted internally (by
/// file stem, then full path), so the run list is independent of the
/// order the caller discovered the files in.
[[nodiscard]] std::vector<RunPlan> expand_files(std::vector<std::string> files);

/// Expand one parsed document (scenario or sweep spec). `source` names
/// the manifest entry; `base_dir` resolves a sweep's relative "base"
/// path (pass "" when the document must be self-contained). Indices
/// are local (0-based within this document's expansion).
[[nodiscard]] std::vector<RunPlan> expand_document(const json::Value& doc,
                                                   const std::string& source,
                                                   const std::string& base_dir);

/// Serialize one plan as the campaign's runs.jsonl line (no trailing
/// newline): {"run":N,"source":"...","label":"...","scenario":{...}}
/// with deterministic bytes (see common/json_writer.h).
[[nodiscard]] std::string plan_to_jsonl(const RunPlan& plan);

/// Parse a runs.jsonl line back into a plan.
[[nodiscard]] RunPlan plan_from_jsonl(const std::string& line);

}  // namespace eio::workloads
