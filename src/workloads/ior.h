// The Interleaved-Or-Random (IOR) micro-benchmark, as configured in
// Section III of the paper.
//
// Each of `tasks` MPI tasks writes `block_size` bytes to its own offset
// in one shared file, in `calls_per_block` successive write() calls
// (k = 1 reproduces Figure 1; k = 2/4/8 reproduce Figure 2), followed
// by a barrier; the pattern repeats for `segments` phases.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "workloads/experiment.h"

namespace eio::workloads {

/// IOR experiment parameters.
struct IorConfig {
  std::uint32_t tasks = 1024;
  Bytes block_size = 512 * MiB;       ///< per task per segment
  std::uint32_t segments = 5;         ///< barrier-separated repeats
  std::uint32_t calls_per_block = 1;  ///< k: write() calls per block
  std::uint32_t stripe_count = 0;     ///< 0 = stripe over every OST
  bool read_back = false;             ///< also read each block back
  /// The "Random" in Interleaved-Or-Random: permute each task's
  /// segment slots instead of walking them in order.
  bool random_offsets = false;
  /// N-to-N instead of N-to-1: every rank writes its own file.
  bool file_per_process = false;
  std::uint32_t fpp_stripe_count = 1;  ///< striping of per-process files
  std::string file_name = "ior.dat";

  /// Phase label of segment s (write part).
  [[nodiscard]] static std::int32_t write_phase(std::uint32_t s) {
    return static_cast<std::int32_t>(1 + s);
  }
  /// Phase label of segment s (read-back part).
  [[nodiscard]] static std::int32_t read_phase(std::uint32_t s) {
    return static_cast<std::int32_t>(51 + s);
  }
};

/// Build the runnable experiment.
[[nodiscard]] JobSpec make_ior_job(const lustre::MachineConfig& machine,
                                   const IorConfig& config);

}  // namespace eio::workloads
