// Declarative scenarios: one document = machine + workload + ensemble
// + fault plan.
//
// A scenario names everything a simulation needs — the machine preset,
// the workload and its parameters, the ensemble size, and the fault
// plan — so an experiment is a checked-in, schema-versioned JSON file
// (`eiotrace simulate --scenario file.json`, examples/scenarios/)
// instead of a command line remembered in a shell history. The same
// ScenarioBuilder is the single place JobSpecs are assembled: the CLI,
// the figure benches, and the tests all construct jobs through it, so
// "the bench's job" and "the scenario file's job" cannot drift apart.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "fault/plan.h"
#include "workloads/experiment.h"
#include "workloads/gcrm.h"
#include "workloads/ior.h"
#include "workloads/madbench.h"

namespace eio::workloads {

/// Version of the scenario JSON schema (the "schema_version" key).
inline constexpr int kScenarioSchemaVersion = 1;

/// The workloads a scenario can name.
enum class WorkloadKind : std::uint8_t { kIor, kMadbench, kGcrm };

[[nodiscard]] const char* workload_kind_name(WorkloadKind kind) noexcept;

/// Machine preset by name. Throws std::invalid_argument naming the
/// valid presets on an unknown name (the CLI turns that into its
/// uniform bad-value error).
[[nodiscard]] lustre::MachineConfig machine_preset(const std::string& name);

/// The names machine_preset accepts, for usage/error text.
[[nodiscard]] const char* machine_preset_names() noexcept;

/// Fluent assembly of one experiment. Defaults: IOR with IorConfig
/// defaults on franklin, 1 run, no background load, empty fault plan.
class ScenarioBuilder {
 public:
  ScenarioBuilder() : machine_(lustre::MachineConfig::franklin()) {}

  /// Scenario name; also becomes JobSpec::name (otherwise the
  /// workload builder's generated name stands).
  ScenarioBuilder& name(std::string n) {
    name_ = std::move(n);
    return *this;
  }
  /// Machine by preset name (throws on unknown) or explicit config.
  ScenarioBuilder& machine(const std::string& preset) {
    machine_ = machine_preset(preset);
    return *this;
  }
  ScenarioBuilder& machine(lustre::MachineConfig m) {
    machine_ = std::move(m);
    return *this;
  }
  /// Override the machine seed (ensembles derive per-run seeds from it).
  ScenarioBuilder& seed(std::uint64_t s) {
    machine_.seed = s;
    return *this;
  }
  /// Background ("other jobs") load at `intensity` of aggregate
  /// bandwidth; 0 disables.
  ScenarioBuilder& background(double intensity) {
    machine_.background.enabled = intensity > 0.0;
    machine_.background.intensity = intensity;
    return *this;
  }
  ScenarioBuilder& ior(IorConfig cfg) {
    kind_ = WorkloadKind::kIor;
    ior_ = cfg;
    return *this;
  }
  ScenarioBuilder& madbench(MadbenchConfig cfg) {
    kind_ = WorkloadKind::kMadbench;
    madbench_ = std::move(cfg);
    return *this;
  }
  ScenarioBuilder& gcrm(GcrmConfig cfg) {
    kind_ = WorkloadKind::kGcrm;
    gcrm_ = std::move(cfg);
    return *this;
  }
  ScenarioBuilder& faults(fault::Plan plan) {
    faults_ = std::move(plan);
    return *this;
  }
  /// Ensemble size the scenario asks for (callers may override).
  ScenarioBuilder& runs(std::size_t n) {
    runs_ = n;
    return *this;
  }

  [[nodiscard]] const std::string& scenario_name() const noexcept { return name_; }
  [[nodiscard]] const lustre::MachineConfig& machine_config() const noexcept {
    return machine_;
  }
  [[nodiscard]] WorkloadKind kind() const noexcept { return kind_; }
  [[nodiscard]] const IorConfig& ior_config() const noexcept { return ior_; }
  [[nodiscard]] const MadbenchConfig& madbench_config() const noexcept {
    return madbench_;
  }
  [[nodiscard]] const GcrmConfig& gcrm_config() const noexcept { return gcrm_; }
  [[nodiscard]] const fault::Plan& fault_plan() const noexcept { return faults_; }
  [[nodiscard]] std::size_t run_count() const noexcept { return runs_; }

  /// Assemble the runnable experiment: workload builder + machine +
  /// fault plan (+ the scenario name, when set).
  [[nodiscard]] JobSpec job() const;

 private:
  std::string name_;
  lustre::MachineConfig machine_;
  WorkloadKind kind_ = WorkloadKind::kIor;
  IorConfig ior_;
  MadbenchConfig madbench_;
  GcrmConfig gcrm_;
  fault::Plan faults_;
  std::size_t runs_ = 1;
};

/// Build a scenario from a parsed JSON document. Strict: unknown keys
/// anywhere, a missing/unsupported "schema_version", or an unknown
/// workload kind / machine preset all throw (std::runtime_error with
/// the offending key, so a typo'd scenario points at itself).
[[nodiscard]] ScenarioBuilder scenario_from_json(const json::Value& v);

/// Read and parse a scenario file. Throws on I/O or validation errors.
[[nodiscard]] ScenarioBuilder load_scenario(const std::string& path);

}  // namespace eio::workloads
