// The GCRM I/O kernel (Section V): H5Part writes of geodesic-grid
// variables to one shared HDF5 file, plus the metadata stream the
// format implies.
//
// Per simulated time step, each of `tasks` ranks writes three variables
// of one 1.6 MB record and three variables of six 1.6 MB records, with
// a barrier after every variable. All format traffic — superblock,
// step groups, dataset headers, chunk-index B-tree nodes — is emitted
// structurally by the eio::h5 middleware on rank 0.
//
// Four configurations reproduce Figure 6:
//   baseline            — 10,240 writers, unaligned records, per-variable
//                         metadata                     (Fig 6 a–c)
//   collective_buffering— data gathered to `io_tasks` aggregators which
//                         issue the same write calls   (Fig 6 d–f)
//   + align_records     — record slots padded to the stripe size
//                         (H5Pset_alignment)           (Fig 6 g–i)
//   + aggregate_metadata— metadata cached and flushed as large writes
//                         at close                     (Fig 6 j–l)
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "workloads/experiment.h"

namespace eio::workloads {

/// GCRM experiment parameters.
struct GcrmConfig {
  std::uint32_t tasks = 10240;
  /// 1.6 MB (decimal-ish) record: deliberately not stripe-aligned.
  Bytes record_bytes = 1600 * KiB;
  std::uint32_t single_record_vars = 3;
  std::uint32_t multi_record_vars = 3;
  std::uint32_t records_per_multi = 6;

  bool collective_buffering = false;
  std::uint32_t io_tasks = 80;  ///< aggregator count when buffering

  bool align_records = false;      ///< pad record slots to the stripe size
  bool aggregate_metadata = false; ///< defer metadata to writes at close

  /// Chunk-index fanout of the H5 model: metadata volume follows from
  /// the dataset geometry (ranks x records / fanout B-tree nodes).
  std::uint32_t btree_fanout = 40;
  Bytes meta_bytes = 2 * KiB;

  /// HDF5/H5Part library time per record write (hyperslab selection,
  /// dataspace bookkeeping) — negligible at 10,240 writers, but the
  /// per-aggregator serial cost that bounds the optimized configs.
  Seconds h5_overhead_per_write = ms(16.0);

  std::uint32_t stripe_count = 0;  ///< 0 = all OSTs
  std::string file_name = "gcrm.h5";

  /// Records a rank writes over the whole run.
  [[nodiscard]] std::uint32_t records_per_task() const {
    return single_record_vars + multi_record_vars * records_per_multi;
  }

  /// Phase label of variable v (0-based across all six variables).
  [[nodiscard]] static std::int32_t var_phase(std::uint32_t v) {
    return static_cast<std::int32_t>(1 + v);
  }
  static constexpr std::int32_t kClosePhase = 99;

  /// Named preset for each Figure 6 row.
  [[nodiscard]] static GcrmConfig baseline() { return GcrmConfig{}; }
  [[nodiscard]] static GcrmConfig with_collective_buffering() {
    GcrmConfig c;
    c.collective_buffering = true;
    return c;
  }
  [[nodiscard]] static GcrmConfig with_alignment() {
    GcrmConfig c = with_collective_buffering();
    c.align_records = true;
    return c;
  }
  [[nodiscard]] static GcrmConfig fully_optimized() {
    GcrmConfig c = with_alignment();
    c.aggregate_metadata = true;
    return c;
  }
};

/// Build the runnable experiment.
[[nodiscard]] JobSpec make_gcrm_job(const lustre::MachineConfig& machine,
                                    const GcrmConfig& config);

}  // namespace eio::workloads
