#include "workloads/ensemble.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/jobs.h"
#include "obs/registry.h"

namespace eio::workloads {

std::size_t resolve_jobs(std::size_t jobs) { return eio::resolve_jobs(jobs); }

ParallelEnsembleRunner::ParallelEnsembleRunner(EnsembleOptions options)
    : jobs_(resolve_jobs(options.jobs)) {}

std::vector<RunResult> ParallelEnsembleRunner::run_jobs(
    const std::vector<JobSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;
  OBS_SPAN("ensemble.run_jobs");

  std::size_t workers = std::min(jobs_, specs.size());
  OBS_GAUGE_SET("ensemble.jobs", workers);
  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      OBS_SPAN("ensemble.run");
      RunInstance run(specs[i], i);
      results[i] = run.execute();
      OBS_COUNTER_ADD("ensemble.runs_completed", 1);
    }
    return results;
  }

  // Work-stealing by atomic index: each worker claims the next
  // unstarted run. Every run builds its own RunInstance, so workers
  // share only the read-only specs and disjoint result slots.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      try {
        OBS_SPAN("ensemble.run");
        RunInstance run(specs[i], i);
        results[i] = run.execute();
        OBS_COUNTER_ADD("ensemble.runs_completed", 1);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<RunResult> ParallelEnsembleRunner::run_ensemble(
    JobSpec spec, std::size_t runs) const {
  EIO_CHECK(runs >= 1);
  // Seed derivation identical to the historical serial runner: run r
  // executes with master seed machine.seed + r and keeps the spec's
  // name (the "#r" suffix goes on the result, not the trace).
  std::vector<JobSpec> specs;
  specs.reserve(runs);
  const std::uint64_t base_seed = spec.machine.seed;
  for (std::size_t r = 0; r < runs; ++r) {
    spec.machine.seed = base_seed + r;
    specs.push_back(spec);
  }
  std::vector<RunResult> results = run_jobs(specs);
  for (std::size_t r = 0; r < runs; ++r) {
    results[r].name = specs[r].name + "#" + std::to_string(r);
  }
  return results;
}

std::vector<RunResult> run_jobs(const std::vector<JobSpec>& specs,
                                std::size_t jobs) {
  return ParallelEnsembleRunner(EnsembleOptions{.jobs = jobs}).run_jobs(specs);
}

}  // namespace eio::workloads
