#include "workloads/madbench.h"

#include "common/check.h"
#include "mpiio/collective.h"

namespace eio::workloads {

namespace {

/// Per-matrix collective extents. The collective variant stores the
/// file matrix-major (matrix m's task slices contiguous), the natural
/// MPI-IO file view — each collective then covers one dense-ish region
/// instead of sieving the whole file.
std::vector<mpiio::Extent> matrix_extents(const MadbenchConfig& config,
                                          std::uint32_t m) {
  const Bytes slot = config.slot();
  const Bytes matrix_base = static_cast<Bytes>(m) * slot * config.tasks;
  std::vector<mpiio::Extent> extents;
  extents.reserve(config.tasks);
  for (RankId rank = 0; rank < config.tasks; ++rank) {
    extents.push_back({matrix_base + slot * rank, config.matrix_bytes});
  }
  return extents;
}

/// The independent-POSIX variant: each rank seeks and transfers its
/// own matrix (the configuration the paper traces).
void build_independent(const MadbenchConfig& config, JobSpec& job) {
  const Bytes slot = config.slot();
  for (RankId rank = 0; rank < config.tasks; ++rank) {
    mpi::Program p;
    p.open(0, config.file_name);
    Bytes base = static_cast<Bytes>(rank) * slot * config.matrices;
    auto matrix_offset = [&](std::uint32_t m) { return base + slot * m; };

    // Phase S: generate and write each matrix.
    for (std::uint32_t m = 0; m < config.matrices; ++m) {
      p.phase(MadbenchConfig::generate_phase(m + 1));
      p.seek(0, matrix_offset(m));
      p.write(0, config.matrix_bytes);
      p.barrier();
    }
    // Phase W: read each matrix back, write the product in its place.
    for (std::uint32_t m = 0; m < config.matrices; ++m) {
      p.phase(MadbenchConfig::middle_phase(m + 1));
      p.seek(0, matrix_offset(m));
      p.read(0, config.matrix_bytes);
      p.seek(0, matrix_offset(m));
      p.write(0, config.matrix_bytes);
      p.barrier();
    }
    // Phase C: read the result matrices.
    for (std::uint32_t m = 0; m < config.matrices; ++m) {
      p.phase(MadbenchConfig::final_phase(m + 1));
      p.seek(0, matrix_offset(m));
      p.read(0, config.matrix_bytes);
      p.barrier();
    }
    p.close(0);
    job.programs.push_back(std::move(p));
  }
}

/// The MPI-IO collective variant: the same logical phases, but every
/// matrix transfer is a two-phase collective over all ranks.
void build_collective(const MadbenchConfig& config, JobSpec& job) {
  mpiio::TwoPhaseIo io(config.tasks,
                       {.cb_nodes = config.cb_nodes,
                        .cb_buffer_size = 16 * MiB,
                        .alignment = config.alignment,
                        .data_sieving = true});
  job.programs.assign(config.tasks, {});
  auto all_phase = [&](std::int32_t phase) {
    for (auto& p : job.programs) p.phase(phase);
  };
  for (auto& p : job.programs) p.open(0, config.file_name);

  for (std::uint32_t m = 0; m < config.matrices; ++m) {
    all_phase(MadbenchConfig::generate_phase(m + 1));
    io.emit_write_all(job.programs, 0, matrix_extents(config, m));
  }
  for (std::uint32_t m = 0; m < config.matrices; ++m) {
    all_phase(MadbenchConfig::middle_phase(m + 1));
    io.emit_read_all(job.programs, 0, matrix_extents(config, m));
    io.emit_write_all(job.programs, 0, matrix_extents(config, m));
  }
  for (std::uint32_t m = 0; m < config.matrices; ++m) {
    all_phase(MadbenchConfig::final_phase(m + 1));
    io.emit_read_all(job.programs, 0, matrix_extents(config, m));
  }
  for (auto& p : job.programs) p.close(0);
}

}  // namespace

JobSpec make_madbench_job(const lustre::MachineConfig& machine,
                          const MadbenchConfig& config) {
  EIO_CHECK(config.tasks >= 1);
  EIO_CHECK(config.matrices >= 1);
  EIO_CHECK(config.alignment >= 1);

  JobSpec job;
  job.machine = machine;
  job.name = "madbench-" + std::to_string(config.tasks) + "t-" + machine.name;
  if (config.collective_io) job.name += "-mpiio";
  std::uint32_t stripes =
      config.stripe_count == 0 ? machine.ost_count : config.stripe_count;
  job.stripe_options[config.file_name] = {.stripe_count = stripes,
                                          .shared = config.tasks > 1};
  job.programs.reserve(config.tasks);
  if (config.collective_io) {
    build_collective(config, job);
  } else {
    build_independent(config, job);
  }
  return job;
}

}  // namespace eio::workloads
