// MADbench: the MADCAP-derived out-of-core I/O benchmark (Section IV).
//
// Per MPI task, with all computation/communication disabled, the I/O
// pattern is:
//
//   8 x (write 300 MB)                            -- phase S (generate)
//   8 x (seek, read 300 MB, seek, write 300 MB)   -- phase W (multiply)
//   8 x (read 300 MB)                             -- phase C (trace)
//
// All matrices of a task sit consecutively in one shared file, each
// matrix slot aligned up to `alignment` — which leaves a small gap
// after every matrix and creates the strided read pattern the Lustre
// read-ahead defect latches onto.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "workloads/experiment.h"

namespace eio::workloads {

/// MADbench experiment parameters.
struct MadbenchConfig {
  std::uint32_t tasks = 256;
  /// Matrix bytes per task; deliberately not a stripe multiple, so the
  /// aligned slot leaves a gap (as in the real code).
  Bytes matrix_bytes = 300 * MiB + 300 * KiB;
  std::uint32_t matrices = 8;
  Bytes alignment = 1 * MiB;
  std::uint32_t stripe_count = 0;  ///< 0 = all OSTs
  std::string file_name = "madbench.dat";
  /// Route matrix I/O through MPI-IO-style two-phase collectives
  /// instead of independent POSIX calls. Aggregators then access the
  /// file *sequentially*, so the strided read-ahead defect never trips
  /// — collective I/O dodges the Lustre bug.
  bool collective_io = false;
  std::uint32_t cb_nodes = 48;     ///< aggregators when collective_io

  /// Aligned per-matrix slot size.
  [[nodiscard]] Bytes slot() const {
    return (matrix_bytes + alignment - 1) / alignment * alignment;
  }

  // Phase labels: generate-phase writes, middle-phase reads/writes
  // (the "read i" of Figures 4-5 is middle_phase(i)), final reads.
  [[nodiscard]] static std::int32_t generate_phase(std::uint32_t i) {
    return static_cast<std::int32_t>(100 + i);  // i in [1, matrices]
  }
  [[nodiscard]] static std::int32_t middle_phase(std::uint32_t i) {
    return static_cast<std::int32_t>(200 + i);
  }
  [[nodiscard]] static std::int32_t final_phase(std::uint32_t i) {
    return static_cast<std::int32_t>(300 + i);
  }
};

/// Build the runnable experiment.
[[nodiscard]] JobSpec make_madbench_job(const lustre::MachineConfig& machine,
                                        const MadbenchConfig& config);

}  // namespace eio::workloads
