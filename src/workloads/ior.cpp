#include "workloads/ior.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace eio::workloads {

JobSpec make_ior_job(const lustre::MachineConfig& machine, const IorConfig& config) {
  EIO_CHECK(config.tasks >= 1);
  EIO_CHECK(config.segments >= 1);
  EIO_CHECK(config.calls_per_block >= 1);
  EIO_CHECK_MSG(config.block_size % config.calls_per_block == 0,
                "block size must divide evenly into k calls");

  JobSpec job;
  job.machine = machine;
  job.name = "ior-" + std::to_string(config.tasks) + "x" +
             std::to_string(to_mib(config.block_size)) + "MiB-k" +
             std::to_string(config.calls_per_block);
  if (config.random_offsets) job.name += "-random";
  if (config.file_per_process) job.name += "-fpp";

  std::uint32_t stripes =
      config.stripe_count == 0 ? machine.ost_count : config.stripe_count;
  if (!config.file_per_process) {
    job.stripe_options[config.file_name] = {.stripe_count = stripes,
                                            .shared = config.tasks > 1};
  }

  const Bytes call_bytes = config.block_size / config.calls_per_block;
  rng::StreamFactory shuffles(machine.seed ^ 0x10BULL);

  job.programs.reserve(config.tasks);
  for (RankId rank = 0; rank < config.tasks; ++rank) {
    std::string path = config.file_name;
    if (config.file_per_process) {
      path = config.file_name + "." + std::to_string(rank);
      job.stripe_options[path] = {.stripe_count = config.fpp_stripe_count,
                                  .shared = false};
    }

    // Segment slot order: sequential ("interleaved") or a per-task
    // permutation ("random").
    std::vector<std::uint32_t> slots(config.segments);
    std::iota(slots.begin(), slots.end(), 0u);
    if (config.random_offsets) {
      rng::Stream rs = rng::make_stream(shuffles, rng::StreamKind::kWorkload, rank);
      for (std::size_t i = slots.size(); i > 1; --i) {
        std::swap(slots[i - 1], slots[rs.index(i)]);
      }
    }
    auto slot_offset = [&](std::uint32_t slot) {
      // Shared file: segments of task-interleaved blocks. Private
      // file: consecutive blocks.
      return config.file_per_process
                 ? static_cast<Bytes>(slot) * config.block_size
                 : (static_cast<Bytes>(slot) * config.tasks + rank) *
                       config.block_size;
    };

    mpi::Program p;
    p.open(0, path);
    for (std::uint32_t s = 0; s < config.segments; ++s) {
      p.phase(IorConfig::write_phase(s));
      p.seek(0, slot_offset(slots[s]));
      for (std::uint32_t c = 0; c < config.calls_per_block; ++c) {
        p.write(0, call_bytes);
      }
      p.barrier();
      if (config.read_back) {
        p.phase(IorConfig::read_phase(s));
        p.seek(0, slot_offset(slots[s]));
        for (std::uint32_t c = 0; c < config.calls_per_block; ++c) {
          p.read(0, call_bytes);
        }
        p.barrier();
      }
    }
    p.close(0);
    job.programs.push_back(std::move(p));
  }
  return job;
}

}  // namespace eio::workloads
