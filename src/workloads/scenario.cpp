#include "workloads/scenario.h"

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>

namespace eio::workloads {

namespace {

void reject_unknown_keys(const json::Object& o,
                         std::initializer_list<const char*> known,
                         const char* where) {
  for (const auto& [key, value] : o) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(std::string("scenario: unknown key '") + key +
                               "' in " + where);
    }
  }
}

[[nodiscard]] IorConfig ior_from_json(const json::Value& w) {
  reject_unknown_keys(w.as_object(),
                      {"kind", "tasks", "block_mib", "segments",
                       "calls_per_block", "stripe_count", "read_back",
                       "random_offsets", "file_per_process",
                       "fpp_stripe_count", "file_name"},
                      "workload (ior)");
  IorConfig cfg;
  cfg.tasks = static_cast<std::uint32_t>(
      w.number_or("tasks", static_cast<double>(cfg.tasks)));
  cfg.block_size = static_cast<Bytes>(
      w.number_or("block_mib", to_mib(cfg.block_size)) *
      static_cast<double>(MiB));
  cfg.segments = static_cast<std::uint32_t>(
      w.number_or("segments", static_cast<double>(cfg.segments)));
  cfg.calls_per_block = static_cast<std::uint32_t>(
      w.number_or("calls_per_block", static_cast<double>(cfg.calls_per_block)));
  cfg.stripe_count = static_cast<std::uint32_t>(
      w.number_or("stripe_count", static_cast<double>(cfg.stripe_count)));
  cfg.read_back = w.bool_or("read_back", cfg.read_back);
  cfg.random_offsets = w.bool_or("random_offsets", cfg.random_offsets);
  cfg.file_per_process = w.bool_or("file_per_process", cfg.file_per_process);
  cfg.fpp_stripe_count = static_cast<std::uint32_t>(w.number_or(
      "fpp_stripe_count", static_cast<double>(cfg.fpp_stripe_count)));
  cfg.file_name = w.string_or("file_name", cfg.file_name);
  return cfg;
}

[[nodiscard]] MadbenchConfig madbench_from_json(const json::Value& w) {
  reject_unknown_keys(w.as_object(),
                      {"kind", "tasks", "matrix_mib", "matrices",
                       "alignment_mib", "stripe_count", "collective_io",
                       "cb_nodes", "file_name"},
                      "workload (madbench)");
  MadbenchConfig cfg;
  cfg.tasks = static_cast<std::uint32_t>(
      w.number_or("tasks", static_cast<double>(cfg.tasks)));
  if (w.has("matrix_mib")) {
    cfg.matrix_bytes = static_cast<Bytes>(w.at("matrix_mib").as_number() *
                                          static_cast<double>(MiB));
  }
  cfg.matrices = static_cast<std::uint32_t>(
      w.number_or("matrices", static_cast<double>(cfg.matrices)));
  if (w.has("alignment_mib")) {
    cfg.alignment = static_cast<Bytes>(w.at("alignment_mib").as_number() *
                                       static_cast<double>(MiB));
  }
  cfg.stripe_count = static_cast<std::uint32_t>(
      w.number_or("stripe_count", static_cast<double>(cfg.stripe_count)));
  cfg.collective_io = w.bool_or("collective_io", cfg.collective_io);
  cfg.cb_nodes = static_cast<std::uint32_t>(
      w.number_or("cb_nodes", static_cast<double>(cfg.cb_nodes)));
  cfg.file_name = w.string_or("file_name", cfg.file_name);
  return cfg;
}

[[nodiscard]] GcrmConfig gcrm_from_json(const json::Value& w) {
  reject_unknown_keys(
      w.as_object(),
      {"kind", "preset", "tasks", "io_tasks", "stripe_count", "file_name"},
      "workload (gcrm)");
  std::string preset = w.string_or("preset", "baseline");
  GcrmConfig cfg;
  if (preset == "baseline") {
    cfg = GcrmConfig::baseline();
  } else if (preset == "collective") {
    cfg = GcrmConfig::with_collective_buffering();
  } else if (preset == "aligned") {
    cfg = GcrmConfig::with_alignment();
  } else if (preset == "optimized") {
    cfg = GcrmConfig::fully_optimized();
  } else {
    throw std::runtime_error(
        "scenario: unknown gcrm preset '" + preset +
        "' (baseline|collective|aligned|optimized)");
  }
  cfg.tasks = static_cast<std::uint32_t>(
      w.number_or("tasks", static_cast<double>(cfg.tasks)));
  cfg.io_tasks = static_cast<std::uint32_t>(
      w.number_or("io_tasks", static_cast<double>(cfg.io_tasks)));
  cfg.stripe_count = static_cast<std::uint32_t>(
      w.number_or("stripe_count", static_cast<double>(cfg.stripe_count)));
  cfg.file_name = w.string_or("file_name", cfg.file_name);
  return cfg;
}

}  // namespace

const char* workload_kind_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kIor: return "ior";
    case WorkloadKind::kMadbench: return "madbench";
    case WorkloadKind::kGcrm: return "gcrm";
  }
  return "?";
}

lustre::MachineConfig machine_preset(const std::string& name) {
  if (name == "franklin") return lustre::MachineConfig::franklin();
  if (name == "franklin-patched") return lustre::MachineConfig::franklin_patched();
  if (name == "jaguar") return lustre::MachineConfig::jaguar();
  throw std::invalid_argument("unknown machine '" + name + "' (" +
                              machine_preset_names() + ")");
}

const char* machine_preset_names() noexcept {
  return "franklin|franklin-patched|jaguar";
}

JobSpec ScenarioBuilder::job() const {
  JobSpec spec;
  switch (kind_) {
    case WorkloadKind::kIor: spec = make_ior_job(machine_, ior_); break;
    case WorkloadKind::kMadbench:
      spec = make_madbench_job(machine_, madbench_);
      break;
    case WorkloadKind::kGcrm: spec = make_gcrm_job(machine_, gcrm_); break;
  }
  if (!name_.empty()) spec.name = name_;
  spec.faults = faults_;
  return spec;
}

ScenarioBuilder scenario_from_json(const json::Value& v) {
  reject_unknown_keys(v.as_object(),
                      {"schema_version", "name", "machine", "seed", "runs",
                       "background", "workload", "faults"},
                      "scenario");
  auto version = static_cast<int>(v.at("schema_version").as_number());
  if (version != kScenarioSchemaVersion) {
    throw std::runtime_error(
        "scenario: unsupported schema_version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kScenarioSchemaVersion) + ")");
  }

  ScenarioBuilder b;
  b.name(v.string_or("name", ""));
  try {
    b.machine(v.string_or("machine", "franklin"));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }
  if (v.has("seed")) {
    b.seed(static_cast<std::uint64_t>(v.at("seed").as_number()));
  }
  b.runs(static_cast<std::size_t>(v.number_or("runs", 1.0)));

  if (v.has("background")) {
    const json::Value& bg = v.at("background");
    reject_unknown_keys(bg.as_object(), {"intensity"}, "background");
    b.background(bg.number_or("intensity", 0.2));
  }

  const json::Value& w = v.at("workload");
  std::string kind = w.at("kind").as_string();
  if (kind == "ior") {
    b.ior(ior_from_json(w));
  } else if (kind == "madbench") {
    b.madbench(madbench_from_json(w));
  } else if (kind == "gcrm") {
    b.gcrm(gcrm_from_json(w));
  } else {
    throw std::runtime_error("scenario: unknown workload kind '" + kind +
                             "' (ior|madbench|gcrm)");
  }

  if (v.has("faults")) b.faults(fault::plan_from_json(v.at("faults")));
  return b;
}

ScenarioBuilder load_scenario(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) {
    throw std::runtime_error("cannot open scenario file: " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return scenario_from_json(json::parse(text.str()));
}

}  // namespace eio::workloads
