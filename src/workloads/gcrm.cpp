#include "workloads/gcrm.h"

#include <vector>

#include "common/check.h"
#include "h5/h5part.h"

namespace eio::workloads {

namespace {

/// Per-variable record counts in program order: the three single-record
/// variables first, then the three six-record variables.
std::vector<std::uint32_t> variable_records(const GcrmConfig& c) {
  std::vector<std::uint32_t> v;
  v.insert(v.end(), c.single_record_vars, 1);
  v.insert(v.end(), c.multi_record_vars, c.records_per_multi);
  return v;
}

}  // namespace

JobSpec make_gcrm_job(const lustre::MachineConfig& machine,
                      const GcrmConfig& config) {
  EIO_CHECK(config.tasks >= 1);
  EIO_CHECK(config.record_bytes >= 1);
  std::uint32_t io_ranks = 0;
  if (config.collective_buffering) {
    EIO_CHECK_MSG(config.io_tasks >= 1 && config.tasks % config.io_tasks == 0,
                  "io_tasks must divide tasks");
    io_ranks = config.io_tasks;
  }

  JobSpec job;
  job.machine = machine;
  job.name = "gcrm-" + std::to_string(config.tasks) + "t";
  if (config.collective_buffering) job.name += "-cb" + std::to_string(config.io_tasks);
  if (config.align_records) job.name += "-aligned";
  if (config.aggregate_metadata) job.name += "-aggmeta";

  std::uint32_t stripes =
      config.stripe_count == 0 ? machine.ost_count : config.stripe_count;
  job.stripe_options[config.file_name] = {.stripe_count = stripes,
                                          .shared = config.tasks > 1};

  h5::H5Config h5_config;
  h5_config.meta_block = config.meta_bytes;
  h5_config.btree_fanout = config.btree_fanout;
  h5_config.alignment = config.align_records ? machine.stripe_size : 0;
  h5_config.defer_metadata = config.aggregate_metadata;
  h5_config.per_write_overhead = config.h5_overhead_per_write;
  h5::H5PartWriter h5(config.tasks, h5_config, config.record_bytes);

  job.programs.assign(config.tasks, {});
  auto all_phase = [&](std::int32_t phase) {
    for (auto& p : job.programs) p.phase(phase);
  };

  h5.emit_open(job.programs, 0, config.file_name);
  h5.emit_set_step(job.programs, 0);

  const auto records = variable_records(config);
  const std::uint32_t group =
      io_ranks > 0 ? config.tasks / io_ranks : 1;
  for (std::size_t v = 0; v < records.size(); ++v) {
    all_phase(GcrmConfig::var_phase(static_cast<std::uint32_t>(v)));
    if (io_ranks > 0) {
      // Collective-buffering stage one: ship this variable's records
      // to the aggregators before they issue the file writes.
      for (auto& p : job.programs) {
        p.gather(group, static_cast<Bytes>(records[v]) * config.record_bytes);
      }
    }
    h5.emit_write_field(job.programs, 0, records[v], io_ranks);
    for (auto& p : job.programs) p.barrier();
  }

  all_phase(GcrmConfig::kClosePhase);
  h5.emit_close(job.programs, 0);
  return job;
}

}  // namespace eio::workloads
