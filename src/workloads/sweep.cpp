#include "workloads/sweep.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.h"
#include "common/rng.h"
#include "workloads/scenario.h"

namespace eio::workloads {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail(const std::string& source, const std::string& what) {
  throw std::runtime_error("sweep: " + source + ": " + what);
}

json::Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("sweep: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return json::parse(text.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("sweep: " + path + ": " + e.what());
  }
}

std::string stem_of(const std::string& path) {
  std::string stem = fs::path(path).stem().string();
  return stem.empty() ? path : stem;
}

/// Render an axis value for the run label: scalars inline, composites
/// (fault plans and the like) summarized by kind so labels stay short.
std::string label_value(const json::Value& v) {
  if (v.is_object()) return "{...}";
  if (v.is_array()) return "[...]";
  return json::dump(v);
}

/// Set (or, for null, delete) the value at a dotted path, creating
/// intermediate objects as needed. Throws when a path step traverses
/// a non-object — the axis is aimed at something that cannot hold it.
void patch_path(json::Object& root, const std::string& path,
                const json::Value& value) {
  json::Object* obj = &root;
  std::size_t start = 0;
  while (true) {
    std::size_t dot = path.find('.', start);
    std::string step = path.substr(start, dot - start);
    if (step.empty()) {
      throw std::runtime_error("empty path segment");
    }
    if (dot == std::string::npos) {
      if (value.is_null()) {
        obj->erase(step);
      } else {
        (*obj)[step] = value;
      }
      return;
    }
    json::Value& next = (*obj)[step];
    if (next.is_null()) next = json::Value(json::Object{});
    if (!next.is_object()) {
      throw std::runtime_error("path step '" + step + "' is not an object");
    }
    // Object storage is stable across the mutations below (we only
    // touch deeper levels), so holding the pointer is safe.
    obj = const_cast<json::Object*>(&next.as_object());
    start = dot + 1;
  }
}

/// Validate one expanded document as a scenario, wrapping the error
/// with the run's provenance so a bad axis points at itself.
void check_scenario(const json::Value& doc, const std::string& source,
                    const std::string& label) {
  try {
    (void)scenario_from_json(doc);
  } catch (const std::exception& e) {
    std::string where = source;
    if (!label.empty()) where += " [" + label + "]";
    fail(where, e.what());
  }
}

struct Axis {
  std::string path;
  const json::Array* values = nullptr;
};

/// Parse and validate the sweep spec's axes, in sorted-name order
/// (json::Object iterates sorted, which is exactly the order the
/// determinism contract wants).
std::vector<Axis> axes_from(const json::Value& sweep, const std::string& source) {
  if (!sweep.has("axes") || !sweep.at("axes").is_object()) {
    fail(source, "sweep requires an \"axes\" object");
  }
  std::vector<Axis> axes;
  for (const auto& [path, values] : sweep.at("axes").as_object()) {
    if (!values.is_array()) {
      fail(source, "axis '" + path + "' must be an array of values");
    }
    if (values.as_array().empty()) {
      fail(source, "axis '" + path + "' has no values");
    }
    axes.push_back(Axis{path, &values.as_array()});
  }
  if (axes.empty()) fail(source, "sweep has no axes");
  return axes;
}

/// Materialize one run from an axis assignment: patch the base
/// document, build the label, validate.
RunPlan make_run(const json::Value& base, const std::vector<Axis>& axes,
                 const std::vector<std::size_t>& choice,
                 const std::string& source) {
  json::Object doc = base.as_object();
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const json::Value& value = (*axes[a].values)[choice[a]];
    if (!label.empty()) label += ' ';
    label += axes[a].path + '=' + label_value(value);
    try {
      patch_path(doc, axes[a].path, value);
    } catch (const std::exception& e) {
      fail(source, "axis '" + axes[a].path + "': " + e.what());
    }
  }
  RunPlan plan;
  plan.source = source;
  plan.label = label;
  plan.scenario = json::Value(std::move(doc));
  check_scenario(plan.scenario, source, plan.label);
  return plan;
}

std::vector<RunPlan> expand_sweep(const json::Value& doc,
                                  const std::string& source,
                                  const std::string& base_dir) {
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "schema_version" && key != "name" && key != "base" &&
        key != "sweep") {
      fail(source, "unknown key '" + key + "' in sweep spec");
    }
  }
  int version = static_cast<int>(doc.number_or("schema_version", -1));
  if (version != kSweepSchemaVersion) {
    fail(source, "unsupported schema_version (want " +
                     std::to_string(kSweepSchemaVersion) + ")");
  }
  std::string name = doc.string_or("name", source);

  if (!doc.has("base")) fail(source, "sweep spec requires a \"base\"");
  json::Value base;
  if (doc.at("base").is_string()) {
    fs::path base_path(doc.at("base").as_string());
    if (base_path.is_relative() && !base_dir.empty()) {
      base_path = fs::path(base_dir) / base_path;
    }
    base = parse_file(base_path.string());
  } else if (doc.at("base").is_object()) {
    base = doc.at("base");
  } else {
    fail(source, "\"base\" must be a scenario object or a file path");
  }
  if (!base.is_object()) fail(source, "base scenario is not an object");

  const json::Value& sweep = doc.at("sweep");
  if (!sweep.is_object()) fail(source, "\"sweep\" must be an object");
  for (const auto& [key, value] : sweep.as_object()) {
    (void)value;
    if (key != "mode" && key != "samples" && key != "seed" && key != "axes") {
      fail(source, "unknown key '" + key + "' in sweep");
    }
  }
  std::string mode = sweep.string_or("mode", "grid");
  std::vector<Axis> axes = axes_from(sweep, name);

  std::vector<RunPlan> plans;
  if (mode == "grid") {
    if (sweep.has("samples") || sweep.has("seed")) {
      fail(name, "\"samples\"/\"seed\" only apply to mode \"random\"");
    }
    std::size_t total = 1;
    for (const Axis& axis : axes) {
      std::size_t n = axis.values->size();
      if (total > kMaxSweepRuns / n) {
        fail(name, "grid larger than " + std::to_string(kMaxSweepRuns) +
                       " runs; shrink an axis or use mode \"random\"");
      }
      total *= n;
    }
    // Odometer over sorted axis names, last axis fastest.
    std::vector<std::size_t> choice(axes.size(), 0);
    for (std::size_t r = 0; r < total; ++r) {
      plans.push_back(make_run(base, axes, choice, name));
      for (std::size_t a = axes.size(); a-- > 0;) {
        if (++choice[a] < axes[a].values->size()) break;
        choice[a] = 0;
      }
    }
  } else if (mode == "random") {
    if (!sweep.has("samples")) fail(name, "mode \"random\" requires \"samples\"");
    double samples_raw = sweep.at("samples").as_number();
    if (samples_raw < 1 || samples_raw != static_cast<std::size_t>(samples_raw)) {
      fail(name, "\"samples\" must be a positive integer");
    }
    auto samples = static_cast<std::size_t>(samples_raw);
    if (samples > kMaxSweepRuns) {
      fail(name, "\"samples\" larger than " + std::to_string(kMaxSweepRuns));
    }
    auto seed = static_cast<std::uint64_t>(sweep.number_or("seed", 0.0));
    // Counter-based splitmix64 draws: portable across standard
    // libraries, unlike std:: distributions.
    std::uint64_t state = rng::splitmix64(seed + 0x9E3779B97F4A7C15ULL);
    std::vector<std::size_t> choice(axes.size(), 0);
    for (std::size_t r = 0; r < samples; ++r) {
      for (std::size_t a = 0; a < axes.size(); ++a) {
        state = rng::splitmix64(state);
        choice[a] = static_cast<std::size_t>(state % axes[a].values->size());
      }
      plans.push_back(make_run(base, axes, choice, name));
    }
  } else {
    fail(name, "unknown sweep mode '" + mode + "' (want grid|random)");
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    plans[i].index = i;
  }
  return plans;
}

}  // namespace

std::vector<RunPlan> expand_document(const json::Value& doc,
                                     const std::string& source,
                                     const std::string& base_dir) {
  if (!doc.is_object()) fail(source, "document is not a JSON object");
  if (doc.has("sweep")) return expand_sweep(doc, source, base_dir);
  check_scenario(doc, source, "");
  RunPlan plan;
  plan.source = source;
  plan.scenario = doc;
  return {std::move(plan)};
}

std::vector<RunPlan> expand_files(std::vector<std::string> files) {
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              std::string sa = stem_of(a);
              std::string sb = stem_of(b);
              return sa != sb ? sa < sb : a < b;
            });
  std::vector<RunPlan> all;
  for (const std::string& file : files) {
    json::Value doc = parse_file(file);
    std::string base_dir = fs::path(file).parent_path().string();
    std::vector<RunPlan> plans = expand_document(doc, stem_of(file), base_dir);
    all.insert(all.end(), std::make_move_iterator(plans.begin()),
               std::make_move_iterator(plans.end()));
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].index = i;
  }
  return all;
}

std::vector<RunPlan> expand_manifest(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    if (files.empty()) {
      throw std::runtime_error("sweep: no *.json files in '" + path + "'");
    }
    return expand_files(std::move(files));
  }
  if (fs::is_regular_file(path, ec)) {
    return expand_files({path});
  }
  throw std::runtime_error("sweep: manifest '" + path +
                           "' is neither a file nor a directory");
}

std::string plan_to_jsonl(const RunPlan& plan) {
  std::ostringstream out;
  json::Writer w(out);
  w.begin_object()
      .kv("run", plan.index)
      .kv("source", plan.source)
      .kv("label", plan.label)
      .key("scenario");
  json::write(out, plan.scenario);
  w.end_object();
  return out.str();
}

RunPlan plan_from_jsonl(const std::string& line) {
  json::Value doc = json::parse(line);
  RunPlan plan;
  plan.index = static_cast<std::uint64_t>(doc.at("run").as_number());
  plan.source = doc.at("source").as_string();
  plan.label = doc.at("label").as_string();
  plan.scenario = doc.at("scenario");
  return plan;
}

}  // namespace eio::workloads
