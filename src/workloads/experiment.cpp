#include "workloads/experiment.h"

#include "common/check.h"
#include "posix/vfs.h"
#include "sim/engine.h"

namespace eio::workloads {

std::uint32_t node_count_for(const lustre::MachineConfig& machine,
                             std::uint32_t tasks) {
  EIO_CHECK(tasks >= 1);
  return (tasks + machine.tasks_per_node - 1) / machine.tasks_per_node;
}

Rate fair_share_rate(const lustre::MachineConfig& machine, std::uint32_t tasks) {
  EIO_CHECK(tasks >= 1);
  return machine.ost_bandwidth * static_cast<double>(machine.ost_count) /
         static_cast<double>(tasks);
}

RunResult run_job(const JobSpec& spec) {
  EIO_CHECK_MSG(!spec.programs.empty(), "job has no programs");
  auto ranks = static_cast<std::uint32_t>(spec.programs.size());
  std::uint32_t nodes = node_count_for(spec.machine, ranks);

  sim::Engine engine;
  lustre::Filesystem fs(engine, spec.machine, nodes);
  posix::PosixIo io(engine, fs, spec.machine.tasks_per_node);
  for (const auto& [path, options] : spec.stripe_options) {
    io.setstripe(path, options);
  }

  ipm::Monitor monitor(ipm::Monitor::Config{.mode = spec.capture});
  monitor.attach(io);
  monitor.trace().set_experiment(spec.name);
  monitor.trace().set_ranks(ranks);

  mpi::Runtime runtime(engine, io, spec.collective_costs);
  runtime.set_phase_hook(
      [&monitor](RankId rank, std::int32_t phase) { monitor.set_phase(rank, phase); });
  runtime.load(spec.programs);

  RunResult result;
  result.name = spec.name;
  // Step until every rank has finished (the interference stream, when
  // enabled, would keep the calendar alive forever), then stop the
  // generator and drain the remaining in-flight work.
  runtime.start();
  fs.start_background();
  while (!runtime.all_done()) {
    EIO_CHECK_MSG(engine.step(), "engine drained before ranks finished — deadlock?");
  }
  fs.stop_background();
  engine.run();
  result.job_time = runtime.job_finish_time();
  result.trace = std::move(monitor.trace());
  result.profile = monitor.profile();
  result.fs_stats = fs.stats();
  result.engine_events = engine.events_run();
  result.monitor_overhead = monitor.accounted_overhead();
  return result;
}

std::vector<RunResult> run_ensemble(JobSpec spec, std::size_t runs) {
  EIO_CHECK(runs >= 1);
  std::vector<RunResult> results;
  results.reserve(runs);
  std::uint64_t base_seed = spec.machine.seed;
  for (std::size_t r = 0; r < runs; ++r) {
    spec.machine.seed = base_seed + r;
    results.push_back(run_job(spec));
    results.back().name = spec.name + "#" + std::to_string(r);
  }
  return results;
}

}  // namespace eio::workloads
