#include "workloads/experiment.h"

#include <utility>

#include "common/check.h"
#include "obs/registry.h"
#include "workloads/ensemble.h"

namespace eio::workloads {

namespace {

std::uint32_t checked_rank_count(const JobSpec& spec) {
  EIO_CHECK_MSG(!spec.programs.empty(), "job has no programs");
  return static_cast<std::uint32_t>(spec.programs.size());
}

}  // namespace

std::uint32_t node_count_for(const lustre::MachineConfig& machine,
                             std::uint32_t tasks) {
  EIO_CHECK(tasks >= 1);
  return (tasks + machine.tasks_per_node - 1) / machine.tasks_per_node;
}

Rate fair_share_rate(const lustre::MachineConfig& machine, std::uint32_t tasks) {
  EIO_CHECK(tasks >= 1);
  return machine.ost_bandwidth * static_cast<double>(machine.ost_count) /
         static_cast<double>(tasks);
}

RunInstance::RunInstance(JobSpec spec, std::uint64_t run_index)
    : spec_(std::move(spec)),
      ranks_(checked_rank_count(spec_)),
      run_(spec_.machine.seed, run_index),
      injector_(spec_.faults.enabled()
                    ? std::make_unique<fault::Injector>(spec_.faults, run_)
                    : nullptr),
      fs_(run_, spec_.machine, node_count_for(spec_.machine, ranks_),
          injector_.get()),
      io_(run_, fs_, spec_.machine.tasks_per_node, injector_.get()),
      monitor_(ipm::Monitor::Config{.mode = spec_.capture}),
      runtime_(run_, io_, spec_.collective_costs, injector_.get()) {
  for (const auto& [path, options] : spec_.stripe_options) {
    io_.setstripe(path, options);
  }
  monitor_.attach(io_);
  // Fault markers become OpType::kFault events in the IPM pipeline —
  // they ride through traces, sinks, and scans like any other call.
  if (injector_) {
    injector_->set_marker_hook(
        [this](const fault::Marker& m) { io_.notify_fault(m); });
  }
  if (spec_.sink_factory) {
    sink_ = spec_.sink_factory(run_index);
    if (sink_) monitor_.add_sink(sink_.get());
  }
  monitor_.trace().set_experiment(spec_.name);
  monitor_.trace().set_ranks(ranks_);
  runtime_.set_phase_hook([this](RankId rank, std::int32_t phase) {
    monitor_.set_phase(rank, phase);
  });
  runtime_.load(spec_.programs);
}

RunResult RunInstance::execute() {
  EIO_CHECK_MSG(!executed_, "RunInstance::execute() called twice");
  executed_ = true;
  OBS_SPAN("run.execute");

  RunResult result;
  result.name = spec_.name;
  // Step until every rank has finished (the interference stream, when
  // enabled, would keep the calendar alive forever), then stop the
  // generator and drain the remaining in-flight work.
  sim::Engine& engine = run_.engine();
  runtime_.start();
  fs_.start_background();
  {
    OBS_SPAN("sim.event_loop");
    std::uint64_t before = engine.events_run();
    while (!runtime_.all_done()) {
      EIO_CHECK_MSG(engine.step(),
                    "engine drained before ranks finished — deadlock?");
    }
    OBS_COUNTER_ADD("sim.events_run", engine.events_run() - before);
  }
  fs_.stop_background();
  engine.run();
  result.job_time = runtime_.job_finish_time();
  monitor_.finish();  // flush the sink chain before harvesting
  result.trace = std::move(monitor_.trace());
  result.profile = monitor_.profile();
  result.fs_stats = fs_.stats();
  result.engine_events = engine.events_run();
  result.monitor_overhead = monitor_.accounted_overhead();
  if (injector_) result.fault_counts = injector_->counts();
  result.sink = sink_;
  return result;
}

RunResult run_job(const JobSpec& spec) {
  RunInstance run(spec);
  return run.execute();
}

std::vector<RunResult> run_ensemble(JobSpec spec, std::size_t runs,
                                    std::size_t jobs) {
  ParallelEnsembleRunner runner(EnsembleOptions{.jobs = jobs});
  return runner.run_ensemble(std::move(spec), runs);
}

}  // namespace eio::workloads
