// IPM-style job summary report.
//
// Real IPM prints a job banner at MPI_Finalize: wall time, per-call
// counts/bytes/time, and the load-imbalance min/mean/max across ranks.
// This module renders the same summary from a Trace (or incrementally
// from per-rank statistics), giving the "profiling" counterpart of the
// event-level trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "ipm/sink.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"

namespace eio::ipm {

/// Aggregate statistics for one call type.
struct CallStats {
  std::uint64_t count = 0;
  Bytes bytes = 0;
  Seconds total_time = 0.0;
  Seconds max_time = 0.0;

  [[nodiscard]] Seconds avg_time() const noexcept {
    return count > 0 ? total_time / static_cast<double>(count) : 0.0;
  }
  /// Achieved bandwidth over time spent inside the call.
  [[nodiscard]] Rate bandwidth() const noexcept {
    return total_time > 0.0 ? static_cast<double>(bytes) / total_time : 0.0;
  }
};

/// Min/mean/max of a per-rank quantity (IPM's imbalance triple).
struct Imbalance {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  /// max/mean — 1.0 means perfectly balanced.
  [[nodiscard]] double factor() const noexcept {
    return mean > 0.0 ? max / mean : 0.0;
  }
};

/// The computed job summary.
struct JobReport {
  std::string experiment;
  std::uint32_t ranks = 0;
  Seconds wall_time = 0.0;           ///< span of the trace
  Seconds total_io_time = 0.0;       ///< summed across ranks
  std::map<posix::OpType, CallStats> by_op;
  Imbalance io_time_per_rank;        ///< total I/O seconds per rank
  Imbalance bytes_per_rank;          ///< data bytes per rank
  RankId busiest_rank = 0;           ///< rank with the most I/O time

  /// Fraction of rank-seconds spent inside I/O calls.
  [[nodiscard]] double io_fraction() const noexcept {
    double denom = wall_time * static_cast<double>(ranks);
    return denom > 0.0 ? total_io_time / denom : 0.0;
  }
};

/// One-pass report builder: an EventSink folding each event into the
/// per-op and per-rank aggregates. Memory is O(ranks + op types),
/// independent of the event count — this is the kernel both summarize
/// overloads wrap, so streaming and materialized reports are
/// identical by construction.
class JobReportAccumulator final : public EventSink {
 public:
  JobReportAccumulator(std::string experiment, std::uint32_t ranks);

  void on_event(const TraceEvent& event) override;
  void add(const TraceEvent& event) { on_event(event); }

  /// The summary of everything seen so far.
  [[nodiscard]] JobReport report() const;

 private:
  JobReport report_;
  std::vector<double> time_per_rank_;
  std::vector<double> bytes_per_rank_;
};

/// Compute the summary from a materialized trace.
[[nodiscard]] JobReport summarize(const Trace& trace);
/// Compute the summary in one streaming pass (O(ranks) memory).
[[nodiscard]] JobReport summarize(const TraceSource& source);

/// Render the classic banner.
void print_report(std::ostream& out, const JobReport& report);

/// Convenience: summarize + render to a string.
[[nodiscard]] std::string report_text(const Trace& trace);
[[nodiscard]] std::string report_text(const TraceSource& source);

}  // namespace eio::ipm
