// IPM-style job summary report.
//
// Real IPM prints a job banner at MPI_Finalize: wall time, per-call
// counts/bytes/time, and the load-imbalance min/mean/max across ranks.
// This module renders the same summary from a Trace (or incrementally
// from per-rank statistics), giving the "profiling" counterpart of the
// event-level trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "ipm/trace.h"

namespace eio::ipm {

/// Aggregate statistics for one call type.
struct CallStats {
  std::uint64_t count = 0;
  Bytes bytes = 0;
  Seconds total_time = 0.0;
  Seconds max_time = 0.0;

  [[nodiscard]] Seconds avg_time() const noexcept {
    return count > 0 ? total_time / static_cast<double>(count) : 0.0;
  }
  /// Achieved bandwidth over time spent inside the call.
  [[nodiscard]] Rate bandwidth() const noexcept {
    return total_time > 0.0 ? static_cast<double>(bytes) / total_time : 0.0;
  }
};

/// Min/mean/max of a per-rank quantity (IPM's imbalance triple).
struct Imbalance {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  /// max/mean — 1.0 means perfectly balanced.
  [[nodiscard]] double factor() const noexcept {
    return mean > 0.0 ? max / mean : 0.0;
  }
};

/// The computed job summary.
struct JobReport {
  std::string experiment;
  std::uint32_t ranks = 0;
  Seconds wall_time = 0.0;           ///< span of the trace
  Seconds total_io_time = 0.0;       ///< summed across ranks
  std::map<posix::OpType, CallStats> by_op;
  Imbalance io_time_per_rank;        ///< total I/O seconds per rank
  Imbalance bytes_per_rank;          ///< data bytes per rank
  RankId busiest_rank = 0;           ///< rank with the most I/O time

  /// Fraction of rank-seconds spent inside I/O calls.
  [[nodiscard]] double io_fraction() const noexcept {
    double denom = wall_time * static_cast<double>(ranks);
    return denom > 0.0 ? total_io_time / denom : 0.0;
  }
};

/// Compute the summary from a trace.
[[nodiscard]] JobReport summarize(const Trace& trace);

/// Render the classic banner.
void print_report(std::ostream& out, const JobReport& report);

/// Convenience: summarize + render to a string.
[[nodiscard]] std::string report_text(const Trace& trace);

}  // namespace eio::ipm
