#include "ipm/trace_v3.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ipm/wire.h"
#include "obs/registry.h"

namespace eio::ipm {

namespace {

constexpr int kNumCols = 8;

// Base column encodings (low 7 bits of the column's `enc` byte).
constexpr std::uint8_t kEncRawF64 = 0;
constexpr std::uint8_t kEncVarint = 1;
constexpr std::uint8_t kEncDelta = 2;

constexpr std::uint8_t kRleFlag = 0x80;

// Fixed column order and, per column, the one encoding the writer
// emits and the reader accepts. A corrupt encoding byte therefore
// throws instead of silently mis-decoding.
constexpr std::uint8_t kColEnc[kNumCols] = {
    kEncRawF64,  // start
    kEncRawF64,  // duration
    kEncVarint,  // op
    kEncDelta,   // rank
    kEncDelta,   // file
    kEncDelta,   // offset
    kEncDelta,   // bytes
    kEncDelta,   // phase (zigzagged before delta)
};
constexpr ColumnMask kColBit[kNumCols] = {
    kColStart, kColDuration, kColOp,    kColRank,
    kColFile,  kColOffset,   kColBytes, kColPhase,
};

// Caps on self-declared sizes in chunk records, so corrupt input
// fails with runtime_error instead of a multi-gigabyte allocation. A
// varint value is at most 10 bytes; RLE adds at most one control byte
// per 128 literals.
constexpr std::uint64_t kMaxChunkEvents = std::uint64_t{1} << 28;
[[nodiscard]] std::uint64_t max_col_bytes(std::uint64_t count) {
  return count * 16 + 64;
}

struct ColHeader {
  std::uint8_t enc = 0;  ///< base encoding (flag bit stripped)
  bool rle = false;
  std::uint64_t enc_len = 0;  ///< payload bytes as stored
  std::uint64_t raw_len = 0;  ///< payload bytes after decompression
};

void check_col_header(int col, const ColHeader& h, std::uint64_t count) {
  if (h.enc != kColEnc[col]) {
    throw std::runtime_error("corrupt v3 trace: unexpected column encoding");
  }
  if (h.enc_len > max_col_bytes(count) || h.raw_len > max_col_bytes(count)) {
    throw std::runtime_error("corrupt v3 trace: absurd column length");
  }
}

void decode_f64_column(const char* raw, std::uint64_t raw_len,
                       std::uint64_t count, std::vector<double>& out) {
  if (raw_len != count * sizeof(double)) {
    throw std::runtime_error("corrupt v3 trace: f64 column size mismatch");
  }
  out.resize(count);
  if (count > 0) std::memcpy(out.data(), raw, raw_len);
}

/// Decode `count` varints covering exactly [raw, raw+raw_len), with
/// optional delta accumulation, calling emit(i, value) per element.
template <typename Emit>
void decode_varint_column(const char* raw, std::uint64_t raw_len,
                          std::uint64_t count, bool delta, Emit&& emit) {
  wire::ByteReader r{raw, raw + raw_len};
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t v = r.varint();
    if (delta) {
      // Wraparound-safe: the writer stored zigzag(cur - prev mod 2^64).
      v = prev + static_cast<std::uint64_t>(wire::unzigzag(v));
      prev = v;
    }
    emit(i, v);
  }
  if (r.p != r.end) {
    throw std::runtime_error("corrupt v3 trace: column length mismatch");
  }
}

/// Decompress (when flagged) and parse one column payload into its
/// typed scratch vector. `payload` spans enc_len stored bytes.
void decode_column(int col, const ColHeader& h, const char* payload,
                   std::uint64_t count, ColumnScratch& s) {
  const char* raw = payload;
  std::uint64_t raw_len = h.enc_len;
  if (h.rle) {
    rle_decompress({payload, static_cast<std::size_t>(h.enc_len)},
                   static_cast<std::size_t>(h.raw_len), s.blob);
    raw = s.blob.data();
    raw_len = h.raw_len;
  }
  switch (col) {
    case 0:
      decode_f64_column(raw, raw_len, count, s.start);
      break;
    case 1:
      decode_f64_column(raw, raw_len, count, s.duration);
      break;
    case 2:
      s.op.resize(count);
      decode_varint_column(raw, raw_len, count, false,
                           [&s](std::uint64_t i, std::uint64_t v) {
        if (v > static_cast<std::uint64_t>(posix::OpType::kFault)) {
          throw std::runtime_error("corrupt v3 trace: bad op code");
        }
        s.op[i] = static_cast<std::uint8_t>(v);
      });
      break;
    case 3:
      s.rank.resize(count);
      decode_varint_column(raw, raw_len, count, true,
                           [&s](std::uint64_t i, std::uint64_t v) {
        s.rank[i] = static_cast<RankId>(v);
      });
      break;
    case 4:
      s.file.resize(count);
      decode_varint_column(raw, raw_len, count, true,
                           [&s](std::uint64_t i, std::uint64_t v) {
        s.file[i] = v;
      });
      break;
    case 5:
      s.offset.resize(count);
      decode_varint_column(raw, raw_len, count, true,
                           [&s](std::uint64_t i, std::uint64_t v) {
        s.offset[i] = v;
      });
      break;
    case 6:
      s.bytes.resize(count);
      decode_varint_column(raw, raw_len, count, true,
                           [&s](std::uint64_t i, std::uint64_t v) {
        s.bytes[i] = v;
      });
      break;
    case 7:
      s.phase.resize(count);
      decode_varint_column(raw, raw_len, count, true,
                           [&s](std::uint64_t i, std::uint64_t v) {
        s.phase[i] = static_cast<std::int32_t>(wire::unzigzag(v));
      });
      break;
  }
}

/// Assemble the span view over freshly decoded scratch columns.
[[nodiscard]] ColumnBatch batch_from_scratch(const ColumnScratch& s,
                                             ColumnMask mask,
                                             std::uint64_t count) {
  ColumnBatch batch;
  batch.events = static_cast<std::size_t>(count);
  if (mask & kColStart) batch.start = s.start;
  if (mask & kColDuration) batch.duration = s.duration;
  if (mask & kColOp) batch.op = s.op;
  if (mask & kColRank) batch.rank = s.rank;
  if (mask & kColFile) batch.file = s.file;
  if (mask & kColOffset) batch.offset = s.offset;
  if (mask & kColBytes) batch.bytes = s.bytes;
  if (mask & kColPhase) batch.phase = s.phase;
  return batch;
}

}  // namespace

void rle_compress(std::span<const char> src, std::vector<char>& out) {
  out.clear();
  const std::size_t n = src.size();
  std::size_t lit_start = 0;
  auto flush_literals = [&](std::size_t end) {
    std::size_t s = lit_start;
    while (s < end) {
      std::size_t run = std::min<std::size_t>(128, end - s);
      out.push_back(static_cast<char>(run - 1));
      out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(s),
                 src.begin() + static_cast<std::ptrdiff_t>(s + run));
      s += run;
    }
  };
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && src[j] == src[i]) ++j;
    std::size_t run = j - i;
    if (run >= 3) {
      flush_literals(i);
      while (run >= 3) {
        std::size_t take = std::min<std::size_t>(130, run);
        out.push_back(static_cast<char>(kRleFlag | (take - 3)));
        out.push_back(src[i]);
        run -= take;
      }
      lit_start = j - run;  // a 1-2 byte remainder joins the literals
    }
    i = j;
  }
  flush_literals(n);
}

void rle_decompress(std::span<const char> src, std::size_t raw_len,
                    std::vector<char>& out) {
  out.clear();
  out.reserve(raw_len);
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    auto c = static_cast<std::uint8_t>(src[i++]);
    if (c < 0x80) {
      std::size_t run = std::size_t{c} + 1;
      if (i + run > n || out.size() + run > raw_len) {
        throw std::runtime_error("corrupt v3 trace: bad RLE block");
      }
      out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(i),
                 src.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    } else {
      std::size_t rep = std::size_t{c} - 0x80 + 3;
      if (i >= n || out.size() + rep > raw_len) {
        throw std::runtime_error("corrupt v3 trace: bad RLE block");
      }
      out.insert(out.end(), rep, src[i]);
      ++i;
    }
  }
  if (out.size() != raw_len) {
    throw std::runtime_error("corrupt v3 trace: RLE size mismatch");
  }
}

TraceWriterV3::TraceWriterV3(std::ostream& out, std::string experiment,
                             std::uint32_t ranks)
    : TraceWriterV3(out, std::move(experiment), ranks, Options{}) {}

TraceWriterV3::TraceWriterV3(std::ostream& out, std::string experiment,
                             std::uint32_t ranks, Options options)
    : out_(&out), options_(options) {
  if (options_.chunk_events == 0) options_.chunk_events = 1;
  buffer_.reserve(options_.chunk_events);
  wire::write_header(out, wire::kMagicV3, ranks, experiment);
}

TraceWriterV3::~TraceWriterV3() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers wanting the error should
    // call finish() explicitly.
  }
}

void TraceWriterV3::add(const TraceEvent& event) {
  buffer_.push_back(event);
  ++total_events_;
  if (buffer_.size() >= options_.chunk_events) flush_chunk();
}

void TraceWriterV3::write_column(std::uint8_t base_enc) {
  if (options_.compress) {
    rle_compress(col_buf_, rle_buf_);
    if (rle_buf_.size() < col_buf_.size()) {
      wire::put<std::uint8_t>(*out_, base_enc | kRleFlag);
      wire::put_varint(*out_, rle_buf_.size());
      wire::put_varint(*out_, col_buf_.size());
      out_->write(rle_buf_.data(),
                  static_cast<std::streamsize>(rle_buf_.size()));
      return;
    }
  }
  wire::put<std::uint8_t>(*out_, base_enc);
  wire::put_varint(*out_, col_buf_.size());
  out_->write(col_buf_.data(), static_cast<std::streamsize>(col_buf_.size()));
}

void TraceWriterV3::flush_chunk() {
  if (buffer_.empty()) return;
  OBS_SPAN("v3.flush_chunk");
  OBS_COUNTER_ADD("v3.chunks_written", 1);
  OBS_COUNTER_ADD("v3.events_written", buffer_.size());
  const std::size_t n = buffer_.size();
  ChunkMeta meta;
  meta.offset = static_cast<std::uint64_t>(out_->tellp());
  for (const TraceEvent& e : buffer_) wire::fold_into(meta, e);
  wire::put<std::uint8_t>(*out_, wire::kChunkTag);
  wire::put_varint(*out_, n);

  // start, duration: raw little-endian f64.
  col_buf_.resize(n * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(col_buf_.data() + i * sizeof(double), &buffer_[i].start,
                sizeof(double));
  }
  write_column(kEncRawF64);
  col_buf_.resize(n * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(col_buf_.data() + i * sizeof(double), &buffer_[i].duration,
                sizeof(double));
  }
  write_column(kEncRawF64);

  // op: plain varint.
  col_buf_.clear();
  for (const TraceEvent& e : buffer_) {
    wire::append_varint(col_buf_, static_cast<std::uint64_t>(e.op));
  }
  write_column(kEncVarint);

  // rank, file, offset, bytes, zigzag(phase): delta+zigzag varint.
  auto write_delta = [this](auto&& value_of) {
    col_buf_.clear();
    std::uint64_t prev = 0;
    for (const TraceEvent& e : buffer_) {
      std::uint64_t v = value_of(e);
      wire::append_varint(
          col_buf_, wire::zigzag(static_cast<std::int64_t>(v - prev)));
      prev = v;
    }
    write_column(kEncDelta);
  };
  write_delta([](const TraceEvent& e) { return std::uint64_t{e.rank}; });
  write_delta([](const TraceEvent& e) { return std::uint64_t{e.file}; });
  write_delta([](const TraceEvent& e) { return std::uint64_t{e.offset}; });
  write_delta([](const TraceEvent& e) { return std::uint64_t{e.bytes}; });
  write_delta([](const TraceEvent& e) { return wire::zigzag(e.phase); });

  chunks_.push_back(meta);
  buffer_.clear();
}

void TraceWriterV3::finish() {
  if (finished_) return;
  finished_ = true;
  flush_chunk();
  wire::write_footer(*out_, chunks_, total_events_, wire::kTrailerV3);
  if (!out_->good()) throw std::runtime_error("v3 trace write failed");
}

TraceIndex read_index_v3(std::istream& in) {
  return wire::read_index(in, wire::kMagicV3, wire::kTrailerV3,
                          "v3 binary ipm-io trace");
}

ColumnBatch decode_chunk_v3(const char* data, std::size_t len,
                            const ChunkMeta& chunk, ColumnScratch& scratch,
                            ColumnMask mask) {
  // The v3 decode chokepoint shared by the serial, parallel and mmap
  // scan paths — counters are work-proportional, identical at any
  // --jobs value.
  OBS_SPAN("v3.decode_chunk");
  OBS_COUNTER_ADD("v3.chunks_decoded", 1);
  OBS_COUNTER_ADD("v3.events_decoded", chunk.events);
  OBS_COUNTER_ADD("v3.bytes_decoded", len);
  wire::ByteReader r{data, data + len};
  if (r.u8() != wire::kChunkTag) {
    throw std::runtime_error("corrupt v3 trace: expected chunk tag");
  }
  auto count = r.varint();
  if (count != chunk.events) {
    throw std::runtime_error("corrupt v3 trace: chunk count mismatch");
  }
  if (count > kMaxChunkEvents) {
    throw std::runtime_error("corrupt v3 trace: absurd chunk event count");
  }
  for (int col = 0; col < kNumCols; ++col) {
    ColHeader h;
    auto enc = r.u8();
    h.rle = (enc & kRleFlag) != 0;
    h.enc = enc & static_cast<std::uint8_t>(~kRleFlag);
    h.enc_len = r.varint();
    h.raw_len = h.rle ? r.varint() : h.enc_len;
    check_col_header(col, h, count);
    const char* payload = r.bytes(static_cast<std::size_t>(h.enc_len));
    if (mask & kColBit[col]) decode_column(col, h, payload, count, scratch);
  }
  if (r.p != r.end) {
    throw std::runtime_error("corrupt v3 trace: chunk length mismatch");
  }
  return batch_from_scratch(scratch, mask, count);
}

ColumnBatch read_chunk_v3(std::istream& in, const ChunkMeta& chunk,
                          std::uint64_t byte_len, std::vector<char>& raw,
                          ColumnScratch& scratch, ColumnMask mask) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(chunk.offset));
  raw.resize(byte_len);
  in.read(raw.data(), static_cast<std::streamsize>(byte_len));
  if (static_cast<std::uint64_t>(in.gcount()) != byte_len) {
    throw std::runtime_error("truncated v3 trace (chunk body)");
  }
  return decode_chunk_v3(raw.data(), static_cast<std::size_t>(byte_len),
                         chunk, scratch, mask);
}

TraceMeta stream_binary_v3(std::istream& in, const EventVisitor& visit) {
  TraceMeta meta =
      wire::get_header(in, wire::kMagicV3, "v3 binary ipm-io trace");
  ColumnScratch scratch;
  std::vector<char> payload;
  std::uint64_t parsed = 0;
  for (;;) {
    auto record_start = static_cast<std::uint64_t>(in.tellg());
    auto tag = wire::get<std::uint8_t>(in);
    if (tag == wire::kChunkTag) {
      auto count = wire::get_varint(in);
      if (count > kMaxChunkEvents) {
        throw std::runtime_error("corrupt v3 trace: absurd chunk event count");
      }
      for (int col = 0; col < kNumCols; ++col) {
        ColHeader h;
        auto enc = wire::get<std::uint8_t>(in);
        h.rle = (enc & kRleFlag) != 0;
        h.enc = enc & static_cast<std::uint8_t>(~kRleFlag);
        h.enc_len = wire::get_varint(in);
        h.raw_len = h.rle ? wire::get_varint(in) : h.enc_len;
        check_col_header(col, h, count);
        payload.resize(static_cast<std::size_t>(h.enc_len));
        in.read(payload.data(), static_cast<std::streamsize>(h.enc_len));
        if (static_cast<std::uint64_t>(in.gcount()) != h.enc_len) {
          throw std::runtime_error("truncated v3 trace (column stream)");
        }
        decode_column(col, h, payload.data(), count, scratch);
      }
      ColumnBatch batch = batch_from_scratch(scratch, kColAll, count);
      for (std::size_t i = 0; i < batch.size(); ++i) visit(batch.event_at(i));
      parsed += count;
      continue;
    }
    if (tag != wire::kFooterTag) {
      throw std::runtime_error("corrupt v3 trace: bad chunk tag");
    }
    auto [chunks, total] = wire::get_footer(in);
    if (parsed != total) {
      throw std::runtime_error(
          "truncated v3 trace: chunk events disagree with footer");
    }
    meta.declared_events = total;
    // The trailer must be present and intact even on a sequential read
    // — it is what distinguishes a complete file from one cut off
    // exactly at a chunk boundary. Its footer pointer must also agree
    // with where the footer was actually found, so a trailer patched
    // to point past EOF (or anywhere else) is rejected on every path,
    // not just the seeking one.
    if (wire::get<std::uint64_t>(in) != record_start) {
      throw std::runtime_error("corrupt v3 trace: footer offset out of bounds");
    }
    wire::check_magic(in, wire::kTrailerV3, "complete v3 trace trailer");
    return meta;
  }
}

}  // namespace eio::ipm
