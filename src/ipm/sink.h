// Streaming event sinks: the capture side of the trace pipeline.
//
// The paper's §VI argues the tracing paradigm must give way to
// scalable statistical capture — "from events to ensembles" as an
// architecture. An EventSink receives each completed call exactly once,
// as it happens, and decides what bounded state to keep. The Monitor
// drives a chain of sinks, so full tracing, in-situ profiling, on-line
// statistics and streaming file emission are all the same mechanism:
// one event dispatched to N accumulators, none of which needs the
// whole trace in memory.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ipm/profile.h"
#include "ipm/trace.h"

namespace eio::ipm {

/// Receives every captured event once, in completion order.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// One completed, phase-tagged call.
  virtual void on_event(const TraceEvent& event) = 0;

  /// A run of consecutive events, in stored order. The default loops
  /// over on_event; sinks on the analysis hot path override it so one
  /// virtual dispatch amortizes over a whole decoded chunk instead of
  /// costing one indirect call per event.
  virtual void on_batch(std::span<const TraceEvent> events) {
    for (const TraceEvent& e : events) on_event(e);
  }

  /// Capture is over; flush any buffered state (e.g. a trailing chunk
  /// and footer index for file writers). Must be idempotent.
  virtual void finish() {}
};

/// Full-trace sink: appends every event to a Trace (O(events) memory —
/// the paper's default capture mode).
class TraceSink final : public EventSink {
 public:
  explicit TraceSink(Trace& trace) : trace_(&trace) {}
  void on_event(const TraceEvent& event) override { trace_->add(event); }

 private:
  Trace* trace_;
};

/// In-situ profile sink: folds each event into the (op, size-bucket)
/// duration histograms (O(1) memory — the paper's future-work mode).
class ProfileSink final : public EventSink {
 public:
  explicit ProfileSink(Profile& profile) : profile_(&profile) {}
  void on_event(const TraceEvent& event) override {
    profile_->observe(event.op, event.bytes, event.duration);
  }

 private:
  Profile* profile_;
};

/// Fan-out: one event dispatched to N member sinks in order. Members
/// are borrowed shared_ptrs so a caller can keep a typed handle to
/// each (e.g. a SummarySink plus a monitor::HealthSink on one run).
class FanoutSink final : public EventSink {
 public:
  explicit FanoutSink(std::vector<std::shared_ptr<EventSink>> sinks)
      : sinks_(std::move(sinks)) {}

  void on_event(const TraceEvent& event) override {
    for (const auto& s : sinks_) s->on_event(event);
  }
  void on_batch(std::span<const TraceEvent> events) override {
    for (const auto& s : sinks_) s->on_batch(events);
  }
  void finish() override {
    for (const auto& s : sinks_) s->finish();
  }

 private:
  std::vector<std::shared_ptr<EventSink>> sinks_;
};

/// Adapter for ad-hoc consumers (tests, lambdas).
class FunctionSink final : public EventSink {
 public:
  explicit FunctionSink(std::function<void(const TraceEvent&)> fn)
      : fn_(std::move(fn)) {}
  void on_event(const TraceEvent& event) override { fn_(event); }

 private:
  std::function<void(const TraceEvent&)> fn_;
};

}  // namespace eio::ipm
