// Read-only memory-mapped file for zero-copy trace decoding.
//
// A v3 scan wants to decode column streams straight out of the page
// cache: no read() syscall per chunk, no staging buffer, one shared
// immutable mapping that any number of scanner workers walk
// concurrently. MappedFile is that primitive — RAII over
// open/fstat/mmap on POSIX platforms, with a heap-buffered fallback
// (one up-front read of the whole file) where mmap is unavailable, so
// callers never need a platform #if: bytes() is always the file's
// contents.
//
// Mapping a zero-length file throws std::runtime_error (it cannot be
// any trace format, and mmap itself rejects length 0), as does any
// open/map failure.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace eio::ipm {

class MappedFile {
 public:
  /// Map `path` read-only. Throws std::runtime_error when the file
  /// cannot be opened, is empty, or the map fails.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// True when this platform maps (false: the read-whole-file fallback
  /// is in use — correct, just not zero-copy).
  [[nodiscard]] static bool mmap_supported() noexcept;

  [[nodiscard]] std::span<const char> bytes() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] const char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<char> fallback_;  ///< owns the bytes when not mapped
  bool mapped_ = false;
};

}  // namespace eio::ipm
