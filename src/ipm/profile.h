// In-situ I/O profiling (the paper's future-work capture mode).
//
// Instead of storing every event, the profile keeps log-spaced duration
// histograms per (call type, transfer-size bucket). The paper's closing
// observation is that "it may not even be necessary to store a majority
// of the performance data, just enough to define the distribution" —
// this class is that data structure. Analysis code can reconstruct
// approximate distributions (bin centers weighted by counts) from it,
// and tests validate the reconstruction against the full trace.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "posix/hooks.h"

namespace eio::ipm {

/// Fixed log-spaced duration binning: `kBinsPerDecade` bins per decade
/// from 1 µs to 10^5 s (out-of-range durations clamp to the end bins).
class DurationBins {
 public:
  static constexpr int kBinsPerDecade = 8;
  static constexpr double kFloor = 1e-6;   // 1 µs
  static constexpr int kDecades = 11;      // up to 1e5 s
  static constexpr int kBinCount = kBinsPerDecade * kDecades;

  /// Bin index for a duration.
  [[nodiscard]] static int index(Seconds duration) noexcept;
  /// Geometric center of a bin.
  [[nodiscard]] static Seconds center(int bin) noexcept;
  /// Lower edge of a bin.
  [[nodiscard]] static Seconds lower_edge(int bin) noexcept;
};

/// Histogram-only capture of traced calls.
class Profile {
 public:
  /// Size buckets are powers of two of the byte count (0 for
  /// zero-byte/metadata calls).
  struct Key {
    posix::OpType op = posix::OpType::kRead;
    std::uint32_t size_bucket = 0;
    [[nodiscard]] auto operator<=>(const Key&) const = default;
  };

  /// A weighted sample reconstructed from one histogram bin.
  struct WeightedSample {
    Seconds duration = 0.0;
    std::uint64_t count = 0;
  };

  /// Record one call.
  void observe(posix::OpType op, Bytes bytes, Seconds duration);

  /// Merge another profile (e.g. from another rank or run).
  void merge(const Profile& other);

  /// Total events recorded.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Events recorded for one op type (across all size buckets).
  [[nodiscard]] std::uint64_t count(posix::OpType op) const;

  /// All (key, bins) pairs, ordered by key.
  [[nodiscard]] const std::map<Key, std::array<std::uint64_t, DurationBins::kBinCount>>&
  cells() const noexcept {
    return cells_;
  }

  /// Reconstruct the duration distribution of an op type as weighted
  /// bin centers (all size buckets combined).
  [[nodiscard]] std::vector<WeightedSample> distribution(posix::OpType op) const;

  /// Reconstruct for one (op, size bucket) cell.
  [[nodiscard]] std::vector<WeightedSample> distribution(Key key) const;

  /// Approximate mean duration of an op from histogram contents.
  [[nodiscard]] Seconds approximate_mean(posix::OpType op) const;

  /// Size bucket for a byte count (log2, 0 for 0 bytes).
  [[nodiscard]] static std::uint32_t size_bucket(Bytes bytes) noexcept;

 private:
  std::map<Key, std::array<std::uint64_t, DurationBins::kBinCount>> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace eio::ipm
