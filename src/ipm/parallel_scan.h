// Chunk-parallel map-reduce over indexed (v2/v3) traces.
//
// The paper's premise — ensembles are mergeable statistics, not event
// sequences — makes trace analysis embarrassingly parallel over
// indexed chunks: every chunk folds into a bounded partial (moments,
// histogram bins, reservoir, rate bins), and partials merge. The
// ParallelTraceScanner partitions a file's TraceIndex across a worker
// pool (the same claim-by-atomic-index pattern as
// workloads::ParallelEnsembleRunner), decodes chunks concurrently,
// folds each chunk into its own partial, and merges partials on the
// calling thread in ascending chunk order.
//
// Format seam: row-oriented v2 chunks are decoded through per-thread
// ifstreams with single sized reads; columnar v3 chunks are decoded
// straight out of one shared read-only mmap of the file (every worker
// reads the same immutable pages — no locks, no per-thread streams, no
// staging copies), falling back to per-thread streams when the map is
// unavailable. Both formats serve both fold shapes: scan() hands the
// fold row spans, scan_columns() hands it decoded ColumnBatches (v3
// decodes only the masked columns; v2 shreds its rows).
//
// Determinism contract: the partial built for chunk c depends only on
// chunk c (per-chunk reservoir seeds come from the chunk index), and
// the merge sequence is always chunk 0, 1, 2, ... regardless of which
// worker folded what first. A scan is therefore byte-identical for
// every jobs value, including jobs=1 — "--jobs 1 == serial" holds by
// construction, not by tolerance. Column order equals event order, so
// the same holds across scan()/scan_columns() and across v2/v3 copies
// of the same trace.
//
// Memory contract: workers may run at most merge_window chunks ahead
// of the merge frontier, so at most O(jobs + merge_window) partials
// and O(jobs) chunk buffers are live — peak memory stays O(chunk),
// never O(events). The v3 mmap adds address space, not resident
// memory; pages are faulted in as decoded and evictable at any time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/jobs.h"
#include "ipm/columns.h"
#include "ipm/mapped_file.h"
#include "ipm/trace_source.h"
#include "ipm/trace_stream.h"
#include "ipm/trace_v3.h"
#include "obs/registry.h"

namespace eio::ipm {

struct ScanOptions {
  /// Worker threads. 0 = default (EIO_JOBS env or hardware concurrency).
  std::size_t jobs = 0;
  /// How many chunks workers may run ahead of the in-order merge
  /// frontier before throttling (bounds live partials). 0 = default
  /// (max(2 * jobs, 8)).
  std::size_t merge_window = 0;
};

/// Per-thread chunk decoder behind the v2/v3 seam: a v2 reader owns one
/// seekable stream plus reusable buffers; a v3 reader borrows a shared
/// read-only mapping (or falls back to its own stream) plus a column
/// scratch. Either way a worker's steady state allocates nothing.
class ChunkReader {
 public:
  /// `map` (may be null) must outlive the reader; non-null only for v3.
  ChunkReader(const std::string& path, TraceFormat format,
              const MappedFile* map = nullptr)
      : format_(format), map_(map) {
    if (map_ == nullptr) {
      in_.open(path, std::ios::binary);
      EIO_CHECK_MSG(in_.good(), "cannot open for reading: " << path);
    }
  }

  /// Decode one indexed chunk as a row span; the span aliases this
  /// reader's buffer and is valid until the next read.
  [[nodiscard]] std::span<const TraceEvent> read(const TraceIndex& index,
                                                 std::size_t chunk) {
    if (format_ == TraceFormat::kBinaryV2) {
      read_chunk_v2(in_, index.chunks[chunk], chunk_byte_length(index, chunk),
                    raw_, events_);
    } else {
      unshred(read_columns(index, chunk, kColAll), events_);
    }
    return std::span<const TraceEvent>(events_);
  }

  /// Decode one indexed chunk as a ColumnBatch with only the masked
  /// columns materialized; spans stay valid until the next read.
  [[nodiscard]] ColumnBatch read_columns(const TraceIndex& index,
                                         std::size_t chunk, ColumnMask mask) {
    const ChunkMeta& meta = index.chunks[chunk];
    std::uint64_t byte_len = chunk_byte_length(index, chunk);
    if (format_ == TraceFormat::kBinaryV2) {
      read_chunk_v2(in_, meta, byte_len, raw_, events_);
      return shred(events_, scratch_, mask);
    }
    if (map_ != nullptr) {
      // Zero-copy: the index validated offsets against the footer, and
      // the footer against the file size, so this sub-span is in-bounds.
      return decode_chunk_v3(map_->data() + meta.offset,
                             static_cast<std::size_t>(byte_len), meta,
                             scratch_, mask);
    }
    return read_chunk_v3(in_, meta, byte_len, raw_, scratch_, mask);
  }

 private:
  TraceFormat format_;
  const MappedFile* map_;
  std::ifstream in_;
  std::vector<char> raw_;
  std::vector<TraceEvent> events_;
  ColumnScratch scratch_;
};

/// Map-reduce engine over one indexed trace file (v2 or v3). Stateless
/// between scans; safe to reuse and cheap to construct (the index is
/// read once or borrowed from a FileTraceSource).
class ParallelTraceScanner {
 public:
  /// Open `path` and read its footer index. Throws std::runtime_error
  /// when the file is not an indexed (v2 or v3) trace.
  explicit ParallelTraceScanner(std::string path, ScanOptions options = {})
      : path_(std::move(path)),
        jobs_(resolve_jobs(options.jobs)),
        merge_window_(resolve_window(options, jobs_)) {
    std::ifstream in(path_, std::ios::binary);
    EIO_CHECK_MSG(in.good(), "cannot open for reading: " << path_);
    format_ = sniff_format(in);
    switch (format_) {
      case TraceFormat::kBinaryV2: index_ = read_index_v2(in); break;
      case TraceFormat::kBinaryV3: index_ = read_index_v3(in); break;
      case TraceFormat::kTsv:
      case TraceFormat::kBinaryV1:
        throw std::runtime_error(
            "parallel scan needs an indexed (v2/v3) trace: " + path_);
    }
    open_map();
  }

  /// Reuse an index already read by a FileTraceSource (whose format()
  /// tells which indexed variant it is).
  ParallelTraceScanner(std::string path, TraceFormat format, TraceIndex index,
                       ScanOptions options = {})
      : path_(std::move(path)),
        format_(format),
        index_(std::move(index)),
        jobs_(resolve_jobs(options.jobs)),
        merge_window_(resolve_window(options, jobs_)) {
    EIO_CHECK_MSG(format_ == TraceFormat::kBinaryV2 ||
                      format_ == TraceFormat::kBinaryV3,
                  "parallel scan needs an indexed (v2/v3) trace");
    open_map();
  }

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] TraceFormat format() const noexcept { return format_; }
  [[nodiscard]] const TraceIndex& index() const noexcept { return index_; }
  /// True when v3 chunks decode from a shared mmap (the zero-copy path).
  [[nodiscard]] bool zero_copy() const noexcept { return map_ != nullptr; }

  /// Wall-clock span of the whole trace (max chunk end time) — free
  /// from the index, no event pass.
  [[nodiscard]] double time_span() const noexcept {
    double span = 0.0;
    for (const ChunkMeta& c : index_.chunks) span = std::max(span, c.t_hi);
    return span;
  }

  /// Map-reduce over the chunks `hint` admits (all chunks when null):
  ///
  ///   make(chunk_index)       -> Partial   (fresh, possibly seeded)
  ///   fold(partial, events)                (one span = one chunk)
  ///   merge(into, std::move(from))         (ascending chunk order)
  ///
  /// Returns the merged Partial; make(0) when no chunk is admitted.
  /// The first worker exception is rethrown after the pool drains.
  template <typename Make, typename Fold, typename Merge>
  [[nodiscard]] auto scan(const Make& make, const Fold& fold,
                          const Merge& merge,
                          const ChunkHint* hint = nullptr) const
      -> std::invoke_result_t<Make, std::size_t> {
    using Partial = std::invoke_result_t<Make, std::size_t>;
    return scan_impl(
        make,
        [this, &fold](ChunkReader& reader, Partial& p, std::size_t chunk) {
          OBS_SPAN("scan.fold_chunk");
          fold(p, reader.read(index_, chunk));
        },
        merge, hint);
  }

  /// Columnar map-reduce: same shape and determinism contract as
  /// scan(), but the fold receives a decoded ColumnBatch restricted to
  /// `mask`. On v3 files unmasked columns are never decoded (and with
  /// the mmap path never copied); on v2 files rows are decoded then
  /// shredded, so both formats fold the identical value sequence.
  template <typename Make, typename Fold, typename Merge>
  [[nodiscard]] auto scan_columns(const Make& make, const Fold& fold,
                                  const Merge& merge,
                                  const ChunkHint* hint = nullptr,
                                  ColumnMask mask = kColAll) const
      -> std::invoke_result_t<Make, std::size_t> {
    using Partial = std::invoke_result_t<Make, std::size_t>;
    return scan_impl(
        make,
        [this, &fold, mask](ChunkReader& reader, Partial& p,
                            std::size_t chunk) {
          OBS_SPAN("scan.fold_chunk");
          fold(p, reader.read_columns(index_, chunk, mask));
        },
        merge, hint);
  }

  /// Kernel-set fold path: make(chunk_index) builds anything modeling
  /// the analysis::Kernel concept (one kernel or a whole KernelSet);
  /// ONE decode of each admitted chunk — restricted to the union
  /// column mask the set reports — feeds every kernel in it, and
  /// partials merge member-wise in chunk order. This is the fused
  /// single-pass driver behind every eiotrace analysis subcommand.
  template <typename Make>
  [[nodiscard]] auto scan_kernels(const Make& make,
                                  const ChunkHint* hint = nullptr) const
      -> std::invoke_result_t<Make, std::size_t> {
    using Set = std::invoke_result_t<Make, std::size_t>;
    const ColumnMask mask = make(std::size_t{0}).required_columns();
    return scan_columns(
        make,
        [](Set& set, const ColumnBatch& batch) { set.add_batch(batch); },
        [](Set& into, Set&& from) { into.merge(std::move(from)); }, hint, mask);
  }

 private:
  /// The shared pool/merge machinery: produce(reader, partial, chunk)
  /// decodes + folds one chunk however the public entry point decided.
  template <typename Make, typename Produce, typename Merge>
  [[nodiscard]] auto scan_impl(const Make& make, const Produce& produce,
                               const Merge& merge, const ChunkHint* hint) const
      -> std::invoke_result_t<Make, std::size_t> {
    using Partial = std::invoke_result_t<Make, std::size_t>;
    OBS_SPAN("scan.scan");
    std::vector<std::size_t> picks = admitted(hint);
    // Hint-pruned chunks are skipped silently on the fast path; the
    // counter pair makes the pruning visible in --obs-summary.
    OBS_COUNTER_ADD("scan.chunks_scanned", picks.size());
    OBS_COUNTER_ADD("scan.chunks_skipped", index_.chunks.size() - picks.size());
    if (picks.empty()) return make(std::size_t{0});

    std::size_t workers = std::min(jobs_, picks.size());
    if (workers <= 1) {
      // Same per-chunk partial + ordered merge as the parallel path,
      // on one thread — the determinism contract's base case.
      ChunkReader reader = make_reader();
      Partial result = make(picks[0]);
      produce(reader, result, picks[0]);
      for (std::size_t k = 1; k < picks.size(); ++k) {
        Partial p = make(picks[k]);
        produce(reader, p, picks[k]);
        OBS_SPAN("scan.merge_partial");
        merge(result, std::move(p));
      }
      return result;
    }

    std::mutex mu;
    std::condition_variable cv;
    std::map<std::size_t, Partial> ready;  // slot -> folded partial
    std::size_t merge_pos = 0;             // next slot to merge
    std::exception_ptr error;
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
      try {
        ChunkReader reader = make_reader();
        for (;;) {
          std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
          if (k >= picks.size()) return;
          {
            // Throttle: stay within merge_window of the merge frontier
            // so un-merged partials stay bounded. The worker holding
            // slot merge_pos is never throttled, so the frontier
            // always advances.
            OBS_SPAN("scan.merge_wait");
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [&] { return error || k < merge_pos + merge_window_; });
            if (error) return;
          }
          Partial p = make(picks[k]);
          produce(reader, p, picks[k]);
          std::lock_guard<std::mutex> lock(mu);
          ready.emplace(k, std::move(p));
          cv.notify_all();
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        cv.notify_all();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);

    // The calling thread is the merger: consume partials strictly in
    // slot order, merging outside the lock.
    std::optional<Partial> result;
    {
      std::unique_lock<std::mutex> lock(mu);
      while (merge_pos < picks.size()) {
        cv.wait(lock, [&] { return error || ready.count(merge_pos) > 0; });
        if (error) break;
        auto it = ready.find(merge_pos);
        Partial p = std::move(it->second);
        ready.erase(it);
        lock.unlock();
        if (result) {
          OBS_SPAN("scan.merge_partial");
          merge(*result, std::move(p));
        } else {
          result.emplace(std::move(p));
        }
        lock.lock();
        ++merge_pos;
        cv.notify_all();
      }
    }
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return std::move(*result);
  }

  /// Map v3 files once; every worker decodes from the same read-only
  /// pages. A failed map (file vanished between index and scan) is not
  /// fatal — readers fall back to per-thread streams.
  void open_map() {
    if (format_ != TraceFormat::kBinaryV3) return;
    try {
      map_ = std::make_unique<MappedFile>(path_);
    } catch (const std::runtime_error&) {
      map_ = nullptr;
    }
  }

  [[nodiscard]] ChunkReader make_reader() const {
    return {path_, format_, map_.get()};
  }

  [[nodiscard]] static std::size_t resolve_window(const ScanOptions& options,
                                                  std::size_t jobs) {
    if (options.merge_window > 0) return options.merge_window;
    return std::max<std::size_t>(2 * jobs, 8);
  }

  [[nodiscard]] std::vector<std::size_t> admitted(const ChunkHint* hint) const {
    std::vector<std::size_t> picks;
    picks.reserve(index_.chunks.size());
    for (std::size_t i = 0; i < index_.chunks.size(); ++i) {
      if (!hint || hint->admits(index_.chunks[i])) picks.push_back(i);
    }
    return picks;
  }

  std::string path_;
  TraceFormat format_ = TraceFormat::kBinaryV2;
  TraceIndex index_;
  std::size_t jobs_;
  std::size_t merge_window_;
  std::unique_ptr<const MappedFile> map_;
};

}  // namespace eio::ipm
