#include "ipm/columns.h"

#include "common/check.h"

namespace eio::ipm {

ColumnBatch shred(std::span<const TraceEvent> events, ColumnScratch& scratch,
                  ColumnMask mask) {
  const std::size_t n = events.size();
  ColumnBatch batch;
  batch.events = n;
  if (mask & kColStart) {
    scratch.start.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.start[i] = events[i].start;
    batch.start = scratch.start;
  }
  if (mask & kColDuration) {
    scratch.duration.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch.duration[i] = events[i].duration;
    }
    batch.duration = scratch.duration;
  }
  if (mask & kColOp) {
    scratch.op.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch.op[i] = static_cast<std::uint8_t>(events[i].op);
    }
    batch.op = scratch.op;
  }
  if (mask & kColRank) {
    scratch.rank.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.rank[i] = events[i].rank;
    batch.rank = scratch.rank;
  }
  if (mask & kColFile) {
    scratch.file.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.file[i] = events[i].file;
    batch.file = scratch.file;
  }
  if (mask & kColOffset) {
    scratch.offset.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.offset[i] = events[i].offset;
    batch.offset = scratch.offset;
  }
  if (mask & kColBytes) {
    scratch.bytes.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.bytes[i] = events[i].bytes;
    batch.bytes = scratch.bytes;
  }
  if (mask & kColPhase) {
    scratch.phase.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.phase[i] = events[i].phase;
    batch.phase = scratch.phase;
  }
  return batch;
}

void unshred(const ColumnBatch& batch, std::vector<TraceEvent>& events) {
  const std::size_t n = batch.events;
  EIO_CHECK_MSG(batch.start.size() == n && batch.duration.size() == n &&
                    batch.op.size() == n && batch.rank.size() == n &&
                    batch.file.size() == n && batch.offset.size() == n &&
                    batch.bytes.size() == n && batch.phase.size() == n,
                "unshred needs every column decoded (kColAll)");
  events.clear();
  events.resize(n);
  for (std::size_t i = 0; i < n; ++i) events[i] = batch.event_at(i);
}

}  // namespace eio::ipm
