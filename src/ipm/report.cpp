#include "ipm/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace eio::ipm {

namespace {

Imbalance imbalance_of(const std::vector<double>& per_rank) {
  Imbalance im;
  if (per_rank.empty()) return im;
  im.min = per_rank[0];
  im.max = per_rank[0];
  double sum = 0.0;
  for (double v : per_rank) {
    im.min = std::min(im.min, v);
    im.max = std::max(im.max, v);
    sum += v;
  }
  im.mean = sum / static_cast<double>(per_rank.size());
  return im;
}

}  // namespace

JobReportAccumulator::JobReportAccumulator(std::string experiment,
                                           std::uint32_t ranks) {
  report_.experiment = std::move(experiment);
  report_.ranks = std::max<std::uint32_t>(ranks, 1);
  time_per_rank_.assign(report_.ranks, 0.0);
  bytes_per_rank_.assign(report_.ranks, 0.0);
}

void JobReportAccumulator::on_event(const TraceEvent& e) {
  report_.wall_time = std::max(report_.wall_time, e.end());
  CallStats& s = report_.by_op[e.op];
  ++s.count;
  s.bytes += e.bytes;
  s.total_time += e.duration;
  s.max_time = std::max(s.max_time, e.duration);
  report_.total_io_time += e.duration;
  if (e.rank < report_.ranks) {
    time_per_rank_[e.rank] += e.duration;
    bytes_per_rank_[e.rank] += static_cast<double>(e.bytes);
  }
}

JobReport JobReportAccumulator::report() const {
  JobReport report = report_;
  report.io_time_per_rank = imbalance_of(time_per_rank_);
  report.bytes_per_rank = imbalance_of(bytes_per_rank_);
  report.busiest_rank = static_cast<RankId>(
      std::max_element(time_per_rank_.begin(), time_per_rank_.end()) -
      time_per_rank_.begin());
  return report;
}

JobReport summarize(const Trace& trace) {
  JobReportAccumulator acc(trace.experiment(), trace.ranks());
  for (const TraceEvent& e : trace.events()) acc.add(e);
  return acc.report();
}

JobReport summarize(const TraceSource& source) {
  JobReportAccumulator acc(source.meta().experiment, source.meta().ranks);
  source.for_each([&acc](const TraceEvent& e) { acc.add(e); });
  return acc.report();
}

void print_report(std::ostream& out, const JobReport& report) {
  out << "##IPM-I/O######################################################\n";
  out << "# experiment : " << report.experiment << "\n";
  out << "# ranks      : " << report.ranks << "\n";
  out << std::fixed;
  out << "# wall time  : " << std::setprecision(2) << report.wall_time << " s\n";
  out << "# io time    : " << report.total_io_time << " rank-seconds ("
      << std::setprecision(1) << report.io_fraction() * 100.0
      << "% of rank-time)\n";
  out << "#\n";
  out << "# " << std::left << std::setw(8) << "call" << std::right
      << std::setw(10) << "count" << std::setw(14) << "bytes" << std::setw(12)
      << "time(s)" << std::setw(12) << "avg(s)" << std::setw(12) << "max(s)"
      << std::setw(14) << "MiB/s" << "\n";
  for (const auto& [op, s] : report.by_op) {
    out << "# " << std::left << std::setw(8) << posix::op_name(op) << std::right
        << std::setw(10) << s.count << std::setw(14) << s.bytes
        << std::setw(12) << std::setprecision(2) << s.total_time
        << std::setw(12) << std::setprecision(4) << s.avg_time()
        << std::setw(12) << std::setprecision(2) << s.max_time << std::setw(14)
        << std::setprecision(1) << to_mib_per_s(s.bandwidth()) << "\n";
  }
  out << "#\n";
  out << "# per-rank io time  [min/mean/max] : " << std::setprecision(2)
      << report.io_time_per_rank.min << " / " << report.io_time_per_rank.mean
      << " / " << report.io_time_per_rank.max << " s  (imbalance x"
      << report.io_time_per_rank.factor() << ")\n";
  out << "# per-rank io bytes [min/mean/max] : " << std::setprecision(0)
      << report.bytes_per_rank.min << " / " << report.bytes_per_rank.mean
      << " / " << report.bytes_per_rank.max << "\n";
  out << "# busiest rank : " << report.busiest_rank << "\n";
  out << "###############################################################\n";
}

std::string report_text(const Trace& trace) {
  std::ostringstream os;
  print_report(os, summarize(trace));
  return os.str();
}

std::string report_text(const TraceSource& source) {
  std::ostringstream os;
  print_report(os, summarize(source));
  return os.str();
}

}  // namespace eio::ipm
