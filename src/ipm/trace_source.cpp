#include "ipm/trace_source.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "common/check.h"
#include "ipm/trace_v3.h"
#include "obs/registry.h"

namespace eio::ipm {

void TraceSource::for_each_batch(const BatchVisitor& visit) const {
  std::vector<TraceEvent> buffer;
  buffer.reserve(kDefaultBatchEvents);
  for_each([&](const TraceEvent& e) {
    buffer.push_back(e);
    if (buffer.size() == kDefaultBatchEvents) {
      visit(std::span<const TraceEvent>(buffer));
      buffer.clear();
    }
  });
  if (!buffer.empty()) visit(std::span<const TraceEvent>(buffer));
}

void TraceSource::for_each_batch_hinted(const ChunkHint& hint,
                                        const BatchVisitor& visit) const {
  std::vector<TraceEvent> buffer;
  buffer.reserve(kDefaultBatchEvents);
  for_each_hinted(hint, [&](const TraceEvent& e) {
    buffer.push_back(e);
    if (buffer.size() == kDefaultBatchEvents) {
      visit(std::span<const TraceEvent>(buffer));
      buffer.clear();
    }
  });
  if (!buffer.empty()) visit(std::span<const TraceEvent>(buffer));
}

void TraceSource::for_each_columns(ColumnMask mask,
                                   const ColumnBatchVisitor& visit) const {
  ColumnScratch scratch;
  for_each_batch([&](std::span<const TraceEvent> events) {
    visit(shred(events, scratch, mask));
  });
}

void TraceSource::for_each_columns_hinted(
    const ChunkHint& hint, ColumnMask mask,
    const ColumnBatchVisitor& visit) const {
  ColumnScratch scratch;
  for_each_batch_hinted(hint, [&](std::span<const TraceEvent> events) {
    visit(shred(events, scratch, mask));
  });
}

double TraceSource::time_span() const {
  double span = 0.0;
  for_each([&span](const TraceEvent& e) { span = std::max(span, e.end()); });
  return span;
}

std::uint64_t TraceSource::event_count() const {
  if (meta().declared_events) return *meta().declared_events;
  std::uint64_t n = 0;
  for_each([&n](const TraceEvent&) { ++n; });
  return n;
}

Trace TraceSource::materialize() const {
  Trace trace(meta().experiment, meta().ranks);
  if (meta().declared_events) trace.reserve(*meta().declared_events);
  for_each([&trace](const TraceEvent& e) { trace.add(e); });
  return trace;
}

MemoryTraceSource::MemoryTraceSource(const Trace& trace) : trace_(&trace) {
  meta_.experiment = trace.experiment();
  meta_.ranks = trace.ranks();
  meta_.declared_events = trace.size();
}

void MemoryTraceSource::for_each(const EventVisitor& visit) const {
  for (const TraceEvent& e : trace_->events()) visit(e);
}

void MemoryTraceSource::for_each_batch(const BatchVisitor& visit) const {
  // The whole trace is one contiguous run — a single span, no copying.
  if (!trace_->empty()) visit(std::span<const TraceEvent>(trace_->events()));
}

void MemoryTraceSource::for_each_batch_hinted(const ChunkHint& hint,
                                              const BatchVisitor& visit) const {
  (void)hint;  // full scan is a valid superset
  for_each_batch(visit);
}

void MemoryTraceSource::for_each_columns(
    ColumnMask mask, const ColumnBatchVisitor& visit) const {
  // One shred of the contiguous trace — a single columnar batch.
  if (!trace_->empty()) {
    visit(shred(std::span<const TraceEvent>(trace_->events()), scratch_, mask));
  }
}

double MemoryTraceSource::time_span() const { return trace_->span(); }

std::uint64_t MemoryTraceSource::event_count() const { return trace_->size(); }

Trace MemoryTraceSource::materialize() const {
  Trace copy = *trace_;
  return copy;
}

namespace {

std::ifstream open_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EIO_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  return in;
}

}  // namespace

FileTraceSource::FileTraceSource(std::string path) : path_(std::move(path)) {
  stream_ = open_trace(path_);
  format_ = sniff_format(stream_);
  switch (format_) {
    case TraceFormat::kBinaryV2:
      index_ = read_index_v2(stream_);
      meta_ = index_->meta;
      break;
    case TraceFormat::kBinaryV3:
      index_ = read_index_v3(stream_);
      meta_ = index_->meta;
      // Prefer decoding chunks straight from page cache; a failed map
      // is not fatal — passes fall back to the cached stream.
      try {
        map_ = std::make_unique<MappedFile>(path_);
      } catch (const std::runtime_error&) {
        map_ = nullptr;
      }
      break;
    case TraceFormat::kTsv:
    case TraceFormat::kBinaryV1: {
      // The legacy formats keep no trailing index, so validating the
      // header costs one pass; the constructor pays it once and meta()
      // stays cheap thereafter.
      std::uint64_t counted = 0;
      meta_ = stream_any(stream_, [&counted](const TraceEvent&) { ++counted; });
      if (!meta_.declared_events) meta_.declared_events = counted;
      break;
    }
  }
}

std::istream& FileTraceSource::reset_stream() const {
  stream_.clear();
  stream_.seekg(0);
  EIO_CHECK_MSG(stream_.good(), "cannot rewind trace: " << path_);
  return stream_;
}

void FileTraceSource::stream_legacy(const EventVisitor& visit) const {
  // The format was sniffed at open; dispatch directly instead of
  // re-sniffing the magic on every pass.
  auto& in = reset_stream();
  switch (format_) {
    case TraceFormat::kTsv: (void)stream_tsv(in, visit); return;
    case TraceFormat::kBinaryV1: (void)stream_binary_v1(in, visit); return;
    case TraceFormat::kBinaryV2:
    case TraceFormat::kBinaryV3: break;  // handled by scan_chunks
  }
  EIO_CHECK_MSG(false, "stream_legacy on an indexed trace");
}

ColumnBatch FileTraceSource::decode_columns(std::size_t i,
                                            ColumnMask mask) const {
  const ChunkMeta& chunk = index_->chunks[i];
  std::uint64_t byte_len = chunk_byte_length(*index_, i);
  if (map_) {
    // Zero-copy: the index validated offsets against the footer, and
    // the footer against the file size, so this sub-span is in-bounds.
    return decode_chunk_v3(map_->data() + chunk.offset,
                           static_cast<std::size_t>(byte_len), chunk,
                           scratch_, mask);
  }
  return read_chunk_v3(stream_, chunk, byte_len, raw_, scratch_, mask);
}

void FileTraceSource::scan_chunks(const ChunkHint* hint,
                                  const BatchVisitor& batch) const {
  auto& in = reset_stream();
  for (std::size_t i = 0; i < index_->chunks.size(); ++i) {
    const ChunkMeta& chunk = index_->chunks[i];
    if (hint && !hint->admits(chunk)) {
      OBS_COUNTER_ADD("scan.chunks_skipped", 1);
      continue;
    }
    OBS_COUNTER_ADD("scan.chunks_scanned", 1);
    if (format_ == TraceFormat::kBinaryV2) {
      read_chunk_v2(in, chunk, chunk_byte_length(*index_, i), raw_, batch_);
    } else {
      unshred(decode_columns(i, kColAll), batch_);
    }
    batch(std::span<const TraceEvent>(batch_));
  }
}

void FileTraceSource::scan_chunk_columns(
    const ChunkHint* hint, ColumnMask mask,
    const ColumnBatchVisitor& visit) const {
  (void)reset_stream();
  for (std::size_t i = 0; i < index_->chunks.size(); ++i) {
    const ChunkMeta& chunk = index_->chunks[i];
    if (hint && !hint->admits(chunk)) {
      OBS_COUNTER_ADD("scan.chunks_skipped", 1);
      continue;
    }
    OBS_COUNTER_ADD("scan.chunks_scanned", 1);
    if (format_ == TraceFormat::kBinaryV2) {
      read_chunk_v2(stream_, chunk, chunk_byte_length(*index_, i), raw_,
                    batch_);
      visit(shred(std::span<const TraceEvent>(batch_), scratch_, mask));
    } else {
      visit(decode_columns(i, mask));
    }
  }
}

void FileTraceSource::for_each(const EventVisitor& visit) const {
  if (index_) {
    scan_chunks(nullptr, [&visit](std::span<const TraceEvent> events) {
      for (const TraceEvent& e : events) visit(e);
    });
    return;
  }
  stream_legacy(visit);
}

void FileTraceSource::for_each_hinted(const ChunkHint& hint,
                                      const EventVisitor& visit) const {
  if (!index_) {
    stream_legacy(visit);
    return;
  }
  scan_chunks(&hint, [&visit](std::span<const TraceEvent> events) {
    for (const TraceEvent& e : events) visit(e);
  });
}

void FileTraceSource::for_each_batch(const BatchVisitor& visit) const {
  if (index_) {
    scan_chunks(nullptr, visit);
    return;
  }
  TraceSource::for_each_batch(visit);
}

void FileTraceSource::for_each_batch_hinted(const ChunkHint& hint,
                                            const BatchVisitor& visit) const {
  if (index_) {
    scan_chunks(&hint, visit);
    return;
  }
  TraceSource::for_each_batch_hinted(hint, visit);
}

void FileTraceSource::for_each_columns(ColumnMask mask,
                                       const ColumnBatchVisitor& visit) const {
  if (index_) {
    scan_chunk_columns(nullptr, mask, visit);
    return;
  }
  TraceSource::for_each_columns(mask, visit);
}

void FileTraceSource::for_each_columns_hinted(
    const ChunkHint& hint, ColumnMask mask,
    const ColumnBatchVisitor& visit) const {
  if (index_) {
    scan_chunk_columns(&hint, mask, visit);
    return;
  }
  TraceSource::for_each_columns_hinted(hint, mask, visit);
}

double FileTraceSource::time_span() const {
  if (!index_) return TraceSource::time_span();
  double span = 0.0;
  for (const ChunkMeta& c : index_->chunks) span = std::max(span, c.t_hi);
  return span;
}

std::uint64_t FileTraceSource::event_count() const {
  // Every backing format declares its count (TSV via the header field,
  // v1 via the up-front varint, v2/v3 via the footer), and the
  // constructor's metadata pass validated it.
  return meta_.declared_events.value_or(0);
}

}  // namespace eio::ipm
