#include "ipm/trace_source.h"

#include <fstream>
#include <stdexcept>

#include "common/check.h"

namespace eio::ipm {

std::uint64_t TraceSource::event_count() const {
  if (meta().declared_events) return *meta().declared_events;
  std::uint64_t n = 0;
  for_each([&n](const TraceEvent&) { ++n; });
  return n;
}

Trace TraceSource::materialize() const {
  Trace trace(meta().experiment, meta().ranks);
  if (meta().declared_events) trace.reserve(*meta().declared_events);
  for_each([&trace](const TraceEvent& e) { trace.add(e); });
  return trace;
}

MemoryTraceSource::MemoryTraceSource(const Trace& trace) : trace_(&trace) {
  meta_.experiment = trace.experiment();
  meta_.ranks = trace.ranks();
  meta_.declared_events = trace.size();
}

void MemoryTraceSource::for_each(const EventVisitor& visit) const {
  for (const TraceEvent& e : trace_->events()) visit(e);
}

std::uint64_t MemoryTraceSource::event_count() const { return trace_->size(); }

Trace MemoryTraceSource::materialize() const {
  Trace copy = *trace_;
  return copy;
}

namespace {

std::ifstream open_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EIO_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  return in;
}

}  // namespace

FileTraceSource::FileTraceSource(std::string path) : path_(std::move(path)) {
  auto in = open_trace(path_);
  format_ = sniff_format(in);
  switch (format_) {
    case TraceFormat::kBinaryV2:
      index_ = read_index_v2(in);
      meta_ = index_->meta;
      break;
    case TraceFormat::kTsv:
    case TraceFormat::kBinaryV1: {
      // The legacy formats keep no trailing index, so validating the
      // header costs one pass; the constructor pays it once and meta()
      // stays cheap thereafter.
      std::uint64_t counted = 0;
      meta_ = stream_any(in, [&counted](const TraceEvent&) { ++counted; });
      if (!meta_.declared_events) meta_.declared_events = counted;
      break;
    }
  }
}

void FileTraceSource::for_each(const EventVisitor& visit) const {
  auto in = open_trace(path_);
  (void)stream_any(in, visit);
}

void FileTraceSource::for_each_hinted(const ChunkHint& hint,
                                      const EventVisitor& visit) const {
  if (!index_) {
    for_each(visit);
    return;
  }
  auto in = open_trace(path_);
  for (const ChunkMeta& chunk : index_->chunks) {
    if (hint.admits(chunk)) stream_chunk_v2(in, chunk, visit);
  }
}

std::uint64_t FileTraceSource::event_count() const {
  // Every backing format declares its count (TSV via the header field,
  // v1 via the up-front varint, v2 via the footer), and the
  // constructor's metadata pass validated it.
  return meta_.declared_events.value_or(0);
}

}  // namespace eio::ipm
