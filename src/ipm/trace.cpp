#include "ipm/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace eio::ipm {

namespace {

[[nodiscard]] posix::OpType op_from_name(const std::string& name) {
  using posix::OpType;
  if (name == "open") return OpType::kOpen;
  if (name == "close") return OpType::kClose;
  if (name == "seek") return OpType::kSeek;
  if (name == "read") return OpType::kRead;
  if (name == "write") return OpType::kWrite;
  if (name == "fsync") return OpType::kFsync;
  throw std::runtime_error("unknown op name in trace: " + name);
}

}  // namespace

Seconds Trace::span() const noexcept {
  Seconds latest = 0.0;
  for (const TraceEvent& e : events_) latest = std::max(latest, e.end());
  return latest;
}

void Trace::merge(const Trace& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  ranks_ = std::max(ranks_, other.ranks_);
  if (experiment_.empty()) experiment_ = other.experiment_;
}

void Trace::sort_by_start() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start < b.start;
                   });
}

void Trace::write(std::ostream& out) const {
  out << "# ipm-io-trace v1\texperiment=" << experiment_ << "\tranks=" << ranks_
      << "\tevents=" << events_.size() << "\n";
  out << "start\tduration\top\trank\tfile\toffset\tbytes\tphase\n";
  out.precision(9);
  for (const TraceEvent& e : events_) {
    out << e.start << '\t' << e.duration << '\t' << posix::op_name(e.op) << '\t'
        << e.rank << '\t' << e.file << '\t' << e.offset << '\t' << e.bytes << '\t'
        << e.phase << '\n';
  }
}

Trace Trace::read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("# ipm-io-trace", 0) != 0) {
    throw std::runtime_error("not an ipm-io trace (missing magic)");
  }
  Trace trace;
  {
    std::istringstream header(line);
    std::string field;
    while (std::getline(header, field, '\t')) {
      if (field.rfind("experiment=", 0) == 0) {
        trace.experiment_ = field.substr(11);
      } else if (field.rfind("ranks=", 0) == 0) {
        trace.ranks_ = static_cast<std::uint32_t>(std::stoul(field.substr(6)));
      }
    }
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace missing column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TraceEvent e;
    std::string op;
    if (!(row >> e.start >> e.duration >> op >> e.rank >> e.file >> e.offset >>
          e.bytes >> e.phase)) {
      throw std::runtime_error("malformed trace row: " + line);
    }
    e.op = op_from_name(op);
    trace.events_.push_back(e);
  }
  return trace;
}

namespace {

constexpr char kBinaryMagic[8] = {'I', 'P', 'M', 'I', 'O', 'B', '1', '\n'};

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in.good()) throw std::runtime_error("truncated binary trace");
  return value;
}

/// LEB128 unsigned varint — small integers (ranks, byte counts, op
/// codes) take 1-3 bytes instead of 8.
void put_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    auto byte = get<std::uint8_t>(in);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("corrupt varint in binary trace");
  }
}

/// Zigzag for the (rarely negative) phase label.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void Trace::write_binary(std::ostream& out) const {
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  put_varint(out, ranks_);
  put_varint(out, experiment_.size());
  out.write(experiment_.data(),
            static_cast<std::streamsize>(experiment_.size()));
  put_varint(out, events_.size());
  for (const TraceEvent& e : events_) {
    put<double>(out, e.start);
    put<double>(out, e.duration);
    put_varint(out, static_cast<std::uint64_t>(e.op));
    put_varint(out, e.rank);
    put_varint(out, e.file);
    put_varint(out, e.offset);
    put_varint(out, e.bytes);
    put_varint(out, zigzag(e.phase));
  }
}

Trace Trace::read_binary(std::istream& in) {
  char magic[sizeof kBinaryMagic];
  in.read(magic, sizeof magic);
  if (!in.good() || !std::equal(std::begin(magic), std::end(magic),
                                std::begin(kBinaryMagic))) {
    throw std::runtime_error("not a binary ipm-io trace (missing magic)");
  }
  Trace trace;
  trace.ranks_ = static_cast<std::uint32_t>(get_varint(in));
  auto name_len = get_varint(in);
  trace.experiment_.resize(name_len);
  in.read(trace.experiment_.data(), static_cast<std::streamsize>(name_len));
  auto count = get_varint(in);
  trace.events_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    e.start = get<double>(in);
    e.duration = get<double>(in);
    auto op = get_varint(in);
    if (op > static_cast<std::uint64_t>(posix::OpType::kFsync)) {
      throw std::runtime_error("corrupt binary trace: bad op code");
    }
    e.op = static_cast<posix::OpType>(op);
    e.rank = static_cast<RankId>(get_varint(in));
    e.file = get_varint(in);
    e.offset = get_varint(in);
    e.bytes = get_varint(in);
    e.phase = static_cast<std::int32_t>(unzigzag(get_varint(in)));
    trace.events_.push_back(e);
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

void Trace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_binary(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EIO_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  // Sniff the magic to pick the format.
  char first = static_cast<char>(in.peek());
  if (first == kBinaryMagic[0]) {
    return read_binary(in);
  }
  return read(in);
}

}  // namespace eio::ipm
