// Materializing wrappers over the streaming kernels in trace_stream.h.
// All parsing, validation, and encoding lives there; a Trace is just
// what you get when the visitor appends to a vector.
#include "ipm/trace.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common/check.h"
#include "ipm/trace_stream.h"
#include "ipm/trace_v3.h"

namespace eio::ipm {

Seconds Trace::span() const noexcept {
  Seconds latest = 0.0;
  for (const TraceEvent& e : events_) latest = std::max(latest, e.end());
  return latest;
}

void Trace::merge(const Trace& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  ranks_ = std::max(ranks_, other.ranks_);
  if (experiment_.empty()) experiment_ = other.experiment_;
}

void Trace::sort_by_start() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start < b.start;
                   });
}

namespace {

Trace materialize(std::istream& in,
                  TraceMeta (*kernel)(std::istream&, const EventVisitor&)) {
  Trace trace;
  TraceMeta meta =
      kernel(in, [&trace](const TraceEvent& e) { trace.add(e); });
  trace.set_experiment(meta.experiment);
  trace.set_ranks(meta.ranks);
  return trace;
}

}  // namespace

void Trace::write(std::ostream& out) const {
  write_tsv_header(out, experiment_, ranks_, events_.size());
  for (const TraceEvent& e : events_) write_tsv_event(out, e);
}

Trace Trace::read(std::istream& in) { return materialize(in, stream_tsv); }

void Trace::write_binary(std::ostream& out) const {
  write_binary_v1_header(out, experiment_, ranks_, events_.size());
  for (const TraceEvent& e : events_) write_binary_v1_event(out, e);
}

void Trace::write_binary_v2(std::ostream& out) const {
  TraceWriterV2 writer(out, experiment_, ranks_);
  for (const TraceEvent& e : events_) writer.add(e);
  writer.finish();
}

void Trace::write_binary_v3(std::ostream& out) const {
  TraceWriterV3 writer(out, experiment_, ranks_);
  for (const TraceEvent& e : events_) writer.add(e);
  writer.finish();
}

Trace Trace::read_binary(std::istream& in) {
  switch (sniff_format(in)) {
    case TraceFormat::kBinaryV1: return materialize(in, stream_binary_v1);
    case TraceFormat::kBinaryV2: return materialize(in, stream_binary_v2);
    case TraceFormat::kBinaryV3: return materialize(in, stream_binary_v3);
    case TraceFormat::kTsv: break;
  }
  throw std::runtime_error("not a binary ipm-io trace (missing magic)");
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

void Trace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_binary(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

void Trace::save_binary_v2(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_binary_v2(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

void Trace::save_binary_v3(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  EIO_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_binary_v3(out);
  EIO_CHECK_MSG(out.good(), "write failed: " << path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EIO_CHECK_MSG(in.good(), "cannot open for reading: " << path);
  return materialize(in, stream_any);
}

}  // namespace eio::ipm
