// IPM-I/O trace records and trace containers.
//
// IPM-I/O "collects timestamped trace entries containing the libc
// call, its arguments, and its duration", associating events on the
// same file through a table of open descriptors. TraceEvent carries
// exactly that, plus the IPM region (phase) active when the call
// completed. A Trace is the per-job collection, with a text
// serialization for offline analysis and a merge operation for
// combining per-rank or per-run traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "posix/hooks.h"

namespace eio::ipm {

/// One traced POSIX call.
struct TraceEvent {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  posix::OpType op = posix::OpType::kRead;
  RankId rank = 0;
  FileId file = kInvalidFile;
  Bytes offset = 0;
  Bytes bytes = 0;
  std::int32_t phase = 0;

  [[nodiscard]] Seconds end() const noexcept { return start + duration; }
};

/// A job's collected events plus job-level metadata.
class Trace {
 public:
  Trace() = default;
  Trace(std::string experiment, std::uint32_t ranks)
      : experiment_(std::move(experiment)), ranks_(ranks) {}

  void add(const TraceEvent& event) { events_.push_back(event); }
  void reserve(std::size_t n) { events_.reserve(n); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::string& experiment() const noexcept {
    return experiment_;
  }
  [[nodiscard]] std::uint32_t ranks() const noexcept { return ranks_; }
  void set_ranks(std::uint32_t ranks) { ranks_ = ranks; }
  void set_experiment(std::string name) { experiment_ = std::move(name); }

  /// Wall-clock span covered by the trace (latest end time).
  [[nodiscard]] Seconds span() const noexcept;

  /// Append another trace's events (ranks must not overlap meaningfully;
  /// rank count becomes the max).
  void merge(const Trace& other);

  /// Sort events by start time (stable within equal timestamps).
  void sort_by_start();

  /// Serialize as a TSV stream (header line + one event per line).
  void write(std::ostream& out) const;
  /// Parse a stream produced by write(). Throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static Trace read(std::istream& in);

  /// Serialize as the compact binary v1 format (varint-packed records
  /// behind a magic header) — ~3x smaller and much faster to parse
  /// than the TSV form.
  void write_binary(std::ostream& out) const;
  /// Serialize as the chunked, indexed binary v2 format (see
  /// trace_stream.h) — the row-oriented at-scale format readers can
  /// stream or selectively scan.
  void write_binary_v2(std::ostream& out) const;
  /// Serialize as the columnar binary v3 format (see trace_v3.h) —
  /// same container as v2, per-column delta/varint streams with
  /// optional RLE compression.
  void write_binary_v3(std::ostream& out) const;
  /// Parse a stream produced by any of the binary writers (v1, v2 or
  /// v3). Throws std::runtime_error on truncated or corrupt input.
  [[nodiscard]] static Trace read_binary(std::istream& in);

  /// Convenience file-path wrappers. save()/load() use TSV;
  /// save_binary()/save_binary_v2()/save_binary_v3() write the compact
  /// forms; load() auto-detects the format from the magic bytes.
  void save(const std::string& path) const;
  void save_binary(const std::string& path) const;
  void save_binary_v2(const std::string& path) const;
  void save_binary_v3(const std::string& path) const;
  [[nodiscard]] static Trace load(const std::string& path);

 private:
  std::string experiment_;
  std::uint32_t ranks_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace eio::ipm
