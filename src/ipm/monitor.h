// The IPM-I/O monitor: interposed call recording.
//
// Attach a Monitor to the POSIX layer and it stamps every completed
// call with the rank's current IPM region (phase) and emits it into a
// chain of EventSinks. The built-in sinks match the paper's present
// and future-work capture paradigms:
//
//  * full tracing (default): a TraceSink keeps every event — "by
//    default IPM-I/O emits the entire trace";
//  * in-situ profiling (`Mode::kProfile`): a ProfileSink keeps only
//    per-(op, size-bucket) duration histograms, the paper's proposed
//    transition "from an I/O tracing paradigm to an I/O profiling
//    paradigm".
//
// Callers can add further sinks (streaming statistics accumulators,
// an indexed-file TraceWriterV2, ...) with add_sink(); every sink sees
// each event exactly once, in completion order. The monitor also
// accounts its own overhead (a fixed cost per intercepted call) so
// the "lightweight" claim is checkable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "ipm/profile.h"
#include "ipm/sink.h"
#include "ipm/trace.h"
#include "posix/hooks.h"
#include "posix/vfs.h"

namespace eio::ipm {

/// Capture paradigm.
enum class Mode : std::uint8_t {
  kTrace,    ///< keep every event
  kProfile,  ///< keep only histograms (scalable future-work mode)
  kBoth,     ///< keep both (used to validate profile against trace)
};

class Monitor final : public posix::IoObserver {
 public:
  struct Config {
    Mode mode = Mode::kTrace;
    Seconds per_event_overhead = us(1.5);  ///< cost of one interception
    bool record_metadata_calls = true;     ///< include open/close/seek/fsync
  };

  Monitor();
  explicit Monitor(Config config);
  ~Monitor() override;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Start observing a POSIX layer (detaches automatically on
  /// destruction).
  void attach(posix::PosixIo& io);
  void detach();

  /// Set the IPM region subsequent events of `rank` are tagged with.
  void set_phase(RankId rank, std::int32_t phase);

  /// Append a sink to the chain (non-owning; must outlive capture).
  /// Added sinks receive every subsequent event after the built-ins.
  void add_sink(EventSink* sink);

  /// Capture is over: finish() every sink in the chain. Idempotent;
  /// called by the destructor, but explicit calls are preferred for
  /// sinks whose finish can fail (e.g. file writers).
  void finish();

  /// IoObserver hook.
  void on_call(const posix::CallRecord& record) override;

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Profile& profile() const noexcept { return profile_; }

  /// Number of intercepted calls.
  [[nodiscard]] std::uint64_t intercepted() const noexcept { return intercepted_; }

  /// Total accounted monitoring overhead (intercepted * per-event cost).
  [[nodiscard]] Seconds accounted_overhead() const noexcept {
    return static_cast<double>(intercepted_) * config_.per_event_overhead;
  }

 private:
  Config config_;
  posix::PosixIo* attached_ = nullptr;
  Trace trace_;
  Profile profile_;
  TraceSink trace_sink_{trace_};
  ProfileSink profile_sink_{profile_};
  std::vector<EventSink*> sinks_;    ///< the dispatch chain
  std::vector<std::int32_t> phase_;  ///< per-rank current region
  std::uint64_t intercepted_ = 0;
  bool finished_ = false;
};

}  // namespace eio::ipm
