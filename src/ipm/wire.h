// Shared wire-format primitives for the binary trace formats.
//
// v1, v2 and v3 all speak the same low-level vocabulary: little-endian
// fixed-width scalars, LEB128 varints, zigzag for signed fields, a
// bounds-checked in-memory cursor for hot decode paths, and (for the
// indexed formats) the chunk-meta/footer/trailer records. This header
// is that vocabulary, factored out of trace_stream.cpp so the v3
// columnar codec in trace_v3.cpp shares one implementation instead of
// copying it. Everything here is an internal detail of eio::ipm's
// serialization layer — analysis code should stay on the public
// surfaces in trace_stream.h / trace_v3.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ipm/trace.h"
#include "ipm/trace_stream.h"

namespace eio::ipm::wire {

// The format magics. Each binary format opens with an 8-byte magic;
// the indexed formats (v2, v3) also end with an 8-byte trailer magic
// preceded by the u64 footer offset.
inline constexpr char kTsvMagic[] = "# ipm-io-trace";
inline constexpr char kMagicV1[8] = {'I', 'P', 'M', 'I', 'O', 'B', '1', '\n'};
inline constexpr char kMagicV2[8] = {'I', 'P', 'M', 'I', 'O', 'B', '2', '\n'};
inline constexpr char kMagicV3[8] = {'I', 'P', 'M', 'I', 'O', 'B', '3', '\n'};
inline constexpr char kTrailerV2[8] = {'I', 'P', 'M', '2', 'I', 'D', 'X', '\n'};
inline constexpr char kTrailerV3[8] = {'I', 'P', 'M', '3', 'I', 'D', 'X', '\n'};

// Sanity caps rejecting absurd header fields before they turn into
// multi-gigabyte allocations on corrupt input.
inline constexpr std::uint64_t kMaxNameLen = 1 << 20;
inline constexpr std::uint64_t kMaxChunks = std::uint64_t{1} << 32;

inline constexpr std::uint8_t kChunkTag = 0x01;
inline constexpr std::uint8_t kFooterTag = 0x00;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in.good()) throw std::runtime_error("truncated binary trace");
  return value;
}

/// LEB128 unsigned varint — small integers (ranks, byte counts, op
/// codes) take 1-3 bytes instead of 8.
inline void put_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(value));
}

inline std::uint64_t get_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    auto byte = get<std::uint8_t>(in);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("corrupt varint in binary trace");
  }
}

/// Varint append into a byte buffer (the columnar encoder's sink).
inline void append_varint(std::vector<char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(value)));
}

/// Zigzag for signed fields (phase labels, column deltas).
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked cursor over an in-memory image — decode hot paths
/// work on bytes already read (or mapped), paying zero istream calls.
struct ByteReader {
  const char* p;
  const char* end;

  [[noreturn]] static void truncated() {
    throw std::runtime_error("truncated binary trace");
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end - p);
  }

  std::uint8_t u8() {
    if (p == end) truncated();
    return static_cast<std::uint8_t>(*p++);
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      std::uint8_t byte = u8();
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift >= 64) {
        throw std::runtime_error("corrupt varint in binary trace");
      }
    }
  }

  double f64() {
    if (end - p < static_cast<std::ptrdiff_t>(sizeof(double))) truncated();
    double value;
    std::memcpy(&value, p, sizeof value);
    p += sizeof value;
    return value;
  }

  /// A sized sub-span of raw bytes (column payloads).
  const char* bytes(std::size_t n) {
    if (remaining() < n) truncated();
    const char* at = p;
    p += n;
    return at;
  }
};

inline std::string get_name(std::istream& in) {
  auto len = get_varint(in);
  if (len > kMaxNameLen) {
    throw std::runtime_error("corrupt binary trace: absurd experiment name");
  }
  std::string name(len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(len));
  if (!in.good() && len > 0) {
    throw std::runtime_error("truncated binary trace (experiment name)");
  }
  return name;
}

inline void check_magic(std::istream& in, const char (&magic)[8],
                        const char* what) {
  char buf[8];
  in.read(buf, sizeof buf);
  if (!in.good() || !std::equal(std::begin(buf), std::end(buf), magic)) {
    throw std::runtime_error(std::string("not a ") + what +
                             " (missing magic)");
  }
}

/// Fold one event into a chunk's footer metadata.
inline void fold_into(ChunkMeta& meta, const TraceEvent& e) {
  if (meta.events == 0) {
    meta.rank_lo = meta.rank_hi = e.rank;
    meta.phase_lo = meta.phase_hi = e.phase;
    meta.t_lo = e.start;
    meta.t_hi = e.end();
  } else {
    meta.rank_lo = std::min(meta.rank_lo, e.rank);
    meta.rank_hi = std::max(meta.rank_hi, e.rank);
    meta.phase_lo = std::min(meta.phase_lo, e.phase);
    meta.phase_hi = std::max(meta.phase_hi, e.phase);
    meta.t_lo = std::min(meta.t_lo, e.start);
    meta.t_hi = std::max(meta.t_hi, e.end());
  }
  ++meta.events;
  meta.op_mask |= 1u << static_cast<unsigned>(e.op);
  if (e.op == posix::OpType::kRead || e.op == posix::OpType::kWrite) {
    meta.data_bytes += e.bytes;
  }
}

inline void put_chunk_meta(std::ostream& out, const ChunkMeta& c) {
  put_varint(out, c.offset);
  put_varint(out, c.events);
  put_varint(out, c.op_mask);
  put_varint(out, c.rank_lo);
  put_varint(out, c.rank_hi);
  put_varint(out, zigzag(c.phase_lo));
  put_varint(out, zigzag(c.phase_hi));
  put<double>(out, c.t_lo);
  put<double>(out, c.t_hi);
  put_varint(out, c.data_bytes);
}

inline ChunkMeta get_chunk_meta(std::istream& in) {
  ChunkMeta c;
  c.offset = get_varint(in);
  c.events = get_varint(in);
  c.op_mask = static_cast<std::uint32_t>(get_varint(in));
  c.rank_lo = static_cast<RankId>(get_varint(in));
  c.rank_hi = static_cast<RankId>(get_varint(in));
  c.phase_lo = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  c.phase_hi = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  c.t_lo = get<double>(in);
  c.t_hi = get<double>(in);
  c.data_bytes = get_varint(in);
  return c;
}

/// Parse a footer body (after its tag byte): chunk metas + total.
inline std::pair<std::vector<ChunkMeta>, std::uint64_t> get_footer(
    std::istream& in) {
  auto chunk_count = get_varint(in);
  if (chunk_count > kMaxChunks) {
    throw std::runtime_error("corrupt trace: absurd chunk count");
  }
  std::vector<ChunkMeta> chunks;
  chunks.reserve(chunk_count);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    chunks.push_back(get_chunk_meta(in));
  }
  auto total = get_varint(in);
  std::uint64_t sum = 0;
  for (const ChunkMeta& c : chunks) sum += c.events;
  if (sum != total) {
    throw std::runtime_error("corrupt trace: footer event counts disagree");
  }
  return {std::move(chunks), total};
}

/// Write the shared chunked-format header (magic + ranks + name).
inline void write_header(std::ostream& out, const char (&magic)[8],
                         std::uint32_t ranks, const std::string& experiment) {
  out.write(magic, 8);
  put_varint(out, ranks);
  put_varint(out, experiment.size());
  out.write(experiment.data(),
            static_cast<std::streamsize>(experiment.size()));
}

/// Read the shared chunked-format header back.
inline TraceMeta get_header(std::istream& in, const char (&magic)[8],
                            const char* what) {
  check_magic(in, magic, what);
  TraceMeta meta;
  meta.ranks = static_cast<std::uint32_t>(get_varint(in));
  meta.experiment = get_name(in);
  return meta;
}

/// Write the footer index + 16-byte trailer the indexed formats share:
/// footer tag, chunk metas, total, then the fixed (footer offset +
/// trailer magic) record a seekable reader jumps to.
inline void write_footer(std::ostream& out,
                         const std::vector<ChunkMeta>& chunks,
                         std::uint64_t total_events,
                         const char (&trailer_magic)[8]) {
  auto footer_offset = static_cast<std::uint64_t>(out.tellp());
  put<std::uint8_t>(out, kFooterTag);
  put_varint(out, chunks.size());
  for (const ChunkMeta& c : chunks) put_chunk_meta(out, c);
  put_varint(out, total_events);
  put<std::uint64_t>(out, footer_offset);
  out.write(trailer_magic, 8);
}

/// Read the footer index of an indexed (v2/v3) trace from a seekable
/// stream: validate the trailer magic and footer bounds, then check
/// every chunk offset is in-bounds and strictly increasing (the sized
/// chunk reads derive each chunk's byte length from the next offset,
/// so out-of-order entries would alias chunk extents).
inline TraceIndex read_index(std::istream& in, const char (&file_magic)[8],
                             const char (&trailer_magic)[8],
                             const char* what) {
  TraceIndex index;
  index.meta = get_header(in, file_magic, what);
  auto header_end = static_cast<std::uint64_t>(in.tellg());

  in.seekg(0, std::ios::end);
  auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < header_end + 16) {
    throw std::runtime_error("truncated trace (no trailer)");
  }
  in.seekg(static_cast<std::streamoff>(file_size - 16));
  auto footer_offset = get<std::uint64_t>(in);
  check_magic(in, trailer_magic, what);
  if (footer_offset < header_end || footer_offset >= file_size - 16) {
    throw std::runtime_error("corrupt trace: footer offset out of bounds");
  }
  in.seekg(static_cast<std::streamoff>(footer_offset));
  if (get<std::uint8_t>(in) != kFooterTag) {
    throw std::runtime_error("corrupt trace: footer tag mismatch");
  }
  auto [chunks, total] = get_footer(in);
  index.chunks = std::move(chunks);
  index.meta.declared_events = total;
  index.footer_offset = footer_offset;
  std::uint64_t prev = header_end;
  for (const ChunkMeta& c : index.chunks) {
    if (c.offset < prev || c.offset >= footer_offset) {
      throw std::runtime_error("corrupt trace: chunk offset out of bounds");
    }
    prev = c.offset + 1;
  }
  return index;
}

}  // namespace eio::ipm::wire
