#include "ipm/monitor.h"

#include "common/check.h"
#include "obs/registry.h"

namespace eio::ipm {

Monitor::Monitor() : Monitor(Config{}) {}

Monitor::Monitor(Config config) : config_(config) {
  if (config_.mode == Mode::kTrace || config_.mode == Mode::kBoth) {
    sinks_.push_back(&trace_sink_);
  }
  if (config_.mode == Mode::kProfile || config_.mode == Mode::kBoth) {
    sinks_.push_back(&profile_sink_);
  }
}

Monitor::~Monitor() {
  detach();
  finish();
}

void Monitor::attach(posix::PosixIo& io) {
  EIO_CHECK_MSG(attached_ == nullptr, "monitor already attached");
  attached_ = &io;
  io.add_observer(this);
}

void Monitor::detach() {
  if (attached_ != nullptr) {
    attached_->remove_observer(this);
    attached_ = nullptr;
  }
}

void Monitor::set_phase(RankId rank, std::int32_t phase) {
  if (phase_.size() <= rank) phase_.resize(rank + 1, 0);
  phase_[rank] = phase;
}

void Monitor::add_sink(EventSink* sink) {
  EIO_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void Monitor::finish() {
  if (finished_) return;
  OBS_SPAN("monitor.finish");
  finished_ = true;
  for (EventSink* sink : sinks_) sink->finish();
}

void Monitor::on_call(const posix::CallRecord& record) {
  using posix::OpType;
  ++intercepted_;
  OBS_COUNTER_ADD("ipm.calls_intercepted", 1);
  bool is_data = record.op == OpType::kRead || record.op == OpType::kWrite;
  if (!is_data && !config_.record_metadata_calls) return;

  TraceEvent e;
  e.start = record.start;
  e.duration = record.duration;
  e.op = record.op;
  e.rank = record.rank;
  e.file = record.file;
  e.offset = record.offset;
  e.bytes = record.bytes;
  e.phase = record.rank < phase_.size() ? phase_[record.rank] : 0;
  for (EventSink* sink : sinks_) sink->on_event(e);
}

}  // namespace eio::ipm
