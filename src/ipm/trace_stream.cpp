#include "ipm/trace_stream.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "obs/registry.h"

namespace eio::ipm {

namespace {

constexpr char kTsvMagic[] = "# ipm-io-trace";
constexpr char kBinaryMagicV1[8] = {'I', 'P', 'M', 'I', 'O', 'B', '1', '\n'};
constexpr char kBinaryMagicV2[8] = {'I', 'P', 'M', 'I', 'O', 'B', '2', '\n'};
constexpr char kTrailerMagicV2[8] = {'I', 'P', 'M', '2', 'I', 'D', 'X', '\n'};

// Sanity caps rejecting absurd header fields before they turn into
// multi-gigabyte allocations on corrupt input.
constexpr std::uint64_t kMaxNameLen = 1 << 20;
constexpr std::uint64_t kMaxChunks = std::uint64_t{1} << 32;

constexpr std::uint8_t kChunkTag = 0x01;
constexpr std::uint8_t kFooterTag = 0x00;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in.good()) throw std::runtime_error("truncated binary trace");
  return value;
}

/// LEB128 unsigned varint — small integers (ranks, byte counts, op
/// codes) take 1-3 bytes instead of 8.
void put_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    auto byte = get<std::uint8_t>(in);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("corrupt varint in binary trace");
  }
}

/// Zigzag for the (rarely negative) phase label.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_event(std::ostream& out, const TraceEvent& e) {
  put<double>(out, e.start);
  put<double>(out, e.duration);
  put_varint(out, static_cast<std::uint64_t>(e.op));
  put_varint(out, e.rank);
  put_varint(out, e.file);
  put_varint(out, e.offset);
  put_varint(out, e.bytes);
  put_varint(out, zigzag(e.phase));
}

TraceEvent get_event(std::istream& in) {
  TraceEvent e;
  e.start = get<double>(in);
  e.duration = get<double>(in);
  auto op = get_varint(in);
  if (op > static_cast<std::uint64_t>(posix::OpType::kFault)) {
    throw std::runtime_error("corrupt binary trace: bad op code");
  }
  e.op = static_cast<posix::OpType>(op);
  e.rank = static_cast<RankId>(get_varint(in));
  e.file = get_varint(in);
  e.offset = get_varint(in);
  e.bytes = get_varint(in);
  e.phase = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  return e;
}

/// Bounds-checked cursor over an in-memory chunk image — the decode
/// hot path works on bytes already read, paying one istream call per
/// chunk instead of several per field.
struct ByteReader {
  const char* p;
  const char* end;

  [[noreturn]] static void truncated() {
    throw std::runtime_error("truncated binary trace");
  }

  std::uint8_t u8() {
    if (p == end) truncated();
    return static_cast<std::uint8_t>(*p++);
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      std::uint8_t byte = u8();
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift >= 64) {
        throw std::runtime_error("corrupt varint in binary trace");
      }
    }
  }

  double f64() {
    if (end - p < static_cast<std::ptrdiff_t>(sizeof(double))) truncated();
    double value;
    std::memcpy(&value, p, sizeof value);
    p += sizeof value;
    return value;
  }
};

TraceEvent get_event(ByteReader& in) {
  TraceEvent e;
  e.start = in.f64();
  e.duration = in.f64();
  auto op = in.varint();
  if (op > static_cast<std::uint64_t>(posix::OpType::kFault)) {
    throw std::runtime_error("corrupt binary trace: bad op code");
  }
  e.op = static_cast<posix::OpType>(op);
  e.rank = static_cast<RankId>(in.varint());
  e.file = in.varint();
  e.offset = in.varint();
  e.bytes = in.varint();
  e.phase = static_cast<std::int32_t>(unzigzag(in.varint()));
  return e;
}

std::string get_name(std::istream& in) {
  auto len = get_varint(in);
  if (len > kMaxNameLen) {
    throw std::runtime_error("corrupt binary trace: absurd experiment name");
  }
  std::string name(len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(len));
  if (!in.good() && len > 0) {
    throw std::runtime_error("truncated binary trace (experiment name)");
  }
  return name;
}

[[nodiscard]] posix::OpType op_from_name(const std::string& name) {
  using posix::OpType;
  if (name == "open") return OpType::kOpen;
  if (name == "close") return OpType::kClose;
  if (name == "seek") return OpType::kSeek;
  if (name == "read") return OpType::kRead;
  if (name == "write") return OpType::kWrite;
  if (name == "fsync") return OpType::kFsync;
  if (name == "fault") return OpType::kFault;
  throw std::runtime_error("unknown op name in trace: " + name);
}

void check_magic(std::istream& in, const char (&magic)[8], const char* what) {
  char buf[8];
  in.read(buf, sizeof buf);
  if (!in.good() || !std::equal(std::begin(buf), std::end(buf), magic)) {
    throw std::runtime_error(std::string("not a ") + what +
                             " (missing magic)");
  }
}

void fold_into(ChunkMeta& meta, const TraceEvent& e) {
  if (meta.events == 0) {
    meta.rank_lo = meta.rank_hi = e.rank;
    meta.phase_lo = meta.phase_hi = e.phase;
    meta.t_lo = e.start;
    meta.t_hi = e.end();
  } else {
    meta.rank_lo = std::min(meta.rank_lo, e.rank);
    meta.rank_hi = std::max(meta.rank_hi, e.rank);
    meta.phase_lo = std::min(meta.phase_lo, e.phase);
    meta.phase_hi = std::max(meta.phase_hi, e.phase);
    meta.t_lo = std::min(meta.t_lo, e.start);
    meta.t_hi = std::max(meta.t_hi, e.end());
  }
  ++meta.events;
  meta.op_mask |= 1u << static_cast<unsigned>(e.op);
  if (e.op == posix::OpType::kRead || e.op == posix::OpType::kWrite) {
    meta.data_bytes += e.bytes;
  }
}

void put_chunk_meta(std::ostream& out, const ChunkMeta& c) {
  put_varint(out, c.offset);
  put_varint(out, c.events);
  put_varint(out, c.op_mask);
  put_varint(out, c.rank_lo);
  put_varint(out, c.rank_hi);
  put_varint(out, zigzag(c.phase_lo));
  put_varint(out, zigzag(c.phase_hi));
  put<double>(out, c.t_lo);
  put<double>(out, c.t_hi);
  put_varint(out, c.data_bytes);
}

ChunkMeta get_chunk_meta(std::istream& in) {
  ChunkMeta c;
  c.offset = get_varint(in);
  c.events = get_varint(in);
  c.op_mask = static_cast<std::uint32_t>(get_varint(in));
  c.rank_lo = static_cast<RankId>(get_varint(in));
  c.rank_hi = static_cast<RankId>(get_varint(in));
  c.phase_lo = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  c.phase_hi = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  c.t_lo = get<double>(in);
  c.t_hi = get<double>(in);
  c.data_bytes = get_varint(in);
  return c;
}

/// Parse the footer body (after its tag byte): chunk metas + total.
std::pair<std::vector<ChunkMeta>, std::uint64_t> get_footer(std::istream& in) {
  auto chunk_count = get_varint(in);
  if (chunk_count > kMaxChunks) {
    throw std::runtime_error("corrupt v2 trace: absurd chunk count");
  }
  std::vector<ChunkMeta> chunks;
  chunks.reserve(chunk_count);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    chunks.push_back(get_chunk_meta(in));
  }
  auto total = get_varint(in);
  std::uint64_t sum = 0;
  for (const ChunkMeta& c : chunks) sum += c.events;
  if (sum != total) {
    throw std::runtime_error("corrupt v2 trace: footer event counts disagree");
  }
  return {std::move(chunks), total};
}

/// Read the shared v2 header (magic + ranks + name).
TraceMeta get_header_v2(std::istream& in) {
  check_magic(in, kBinaryMagicV2, "v2 binary ipm-io trace");
  TraceMeta meta;
  meta.ranks = static_cast<std::uint32_t>(get_varint(in));
  meta.experiment = get_name(in);
  return meta;
}

}  // namespace

TraceFormat sniff_format(std::istream& in) {
  char buf[8] = {};
  in.read(buf, sizeof buf);
  auto got = in.gcount();
  in.clear();
  in.seekg(-got, std::ios::cur);
  if (got >= 8 && std::equal(std::begin(buf), std::end(buf),
                             std::begin(kBinaryMagicV1))) {
    return TraceFormat::kBinaryV1;
  }
  if (got >= 8 && std::equal(std::begin(buf), std::end(buf),
                             std::begin(kBinaryMagicV2))) {
    return TraceFormat::kBinaryV2;
  }
  if (got >= 1 && buf[0] == '#') return TraceFormat::kTsv;
  throw std::runtime_error("not an ipm-io trace (unrecognized magic)");
}

TraceMeta stream_tsv(std::istream& in, const EventVisitor& visit) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(kTsvMagic, 0) != 0) {
    throw std::runtime_error("not an ipm-io trace (missing magic)");
  }
  TraceMeta meta;
  {
    std::istringstream header(line);
    std::string field;
    while (std::getline(header, field, '\t')) {
      if (field.rfind("experiment=", 0) == 0) {
        meta.experiment = field.substr(11);
      } else if (field.rfind("ranks=", 0) == 0) {
        meta.ranks = static_cast<std::uint32_t>(std::stoul(field.substr(6)));
      } else if (field.rfind("events=", 0) == 0) {
        meta.declared_events = std::stoull(field.substr(7));
      }
    }
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace missing column header");
  }
  std::uint64_t parsed = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TraceEvent e;
    std::string op;
    if (!(row >> e.start >> e.duration >> op >> e.rank >> e.file >> e.offset >>
          e.bytes >> e.phase)) {
      throw std::runtime_error("malformed trace row: " + line);
    }
    e.op = op_from_name(op);
    visit(e);
    ++parsed;
  }
  if (meta.declared_events && parsed != *meta.declared_events) {
    std::ostringstream os;
    os << "truncated trace: header declares " << *meta.declared_events
       << " events, found " << parsed;
    throw std::runtime_error(os.str());
  }
  return meta;
}

TraceMeta stream_binary_v1(std::istream& in, const EventVisitor& visit) {
  check_magic(in, kBinaryMagicV1, "binary ipm-io trace");
  TraceMeta meta;
  meta.ranks = static_cast<std::uint32_t>(get_varint(in));
  meta.experiment = get_name(in);
  auto count = get_varint(in);
  meta.declared_events = count;
  for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
  return meta;
}

TraceMeta stream_binary_v2(std::istream& in, const EventVisitor& visit) {
  TraceMeta meta = get_header_v2(in);
  std::uint64_t parsed = 0;
  for (;;) {
    auto tag = get<std::uint8_t>(in);
    if (tag == kChunkTag) {
      auto count = get_varint(in);
      for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
      parsed += count;
      continue;
    }
    if (tag != kFooterTag) {
      throw std::runtime_error("corrupt v2 trace: bad chunk tag");
    }
    auto [chunks, total] = get_footer(in);
    if (parsed != total) {
      throw std::runtime_error(
          "truncated v2 trace: chunk events disagree with footer");
    }
    meta.declared_events = total;
    // The trailer must be present and intact even on a sequential read
    // — it is what distinguishes a complete file from one cut off
    // exactly at a chunk boundary.
    (void)get<std::uint64_t>(in);
    check_magic(in, kTrailerMagicV2, "complete v2 trace trailer");
    return meta;
  }
}

void write_tsv_header(std::ostream& out, const std::string& experiment,
                      std::uint32_t ranks, std::uint64_t events) {
  out << "# ipm-io-trace v1\texperiment=" << experiment << "\tranks=" << ranks
      << "\tevents=" << events << "\n";
  out << "start\tduration\top\trank\tfile\toffset\tbytes\tphase\n";
  out.precision(9);
}

void write_tsv_event(std::ostream& out, const TraceEvent& e) {
  out << e.start << '\t' << e.duration << '\t' << posix::op_name(e.op) << '\t'
      << e.rank << '\t' << e.file << '\t' << e.offset << '\t' << e.bytes
      << '\t' << e.phase << '\n';
}

void write_binary_v1_header(std::ostream& out, const std::string& experiment,
                            std::uint32_t ranks, std::uint64_t events) {
  out.write(kBinaryMagicV1, sizeof kBinaryMagicV1);
  put_varint(out, ranks);
  put_varint(out, experiment.size());
  out.write(experiment.data(), static_cast<std::streamsize>(experiment.size()));
  put_varint(out, events);
}

void write_binary_v1_event(std::ostream& out, const TraceEvent& event) {
  put_event(out, event);
}

TraceMeta stream_any(std::istream& in, const EventVisitor& visit) {
  switch (sniff_format(in)) {
    case TraceFormat::kTsv: return stream_tsv(in, visit);
    case TraceFormat::kBinaryV1: return stream_binary_v1(in, visit);
    case TraceFormat::kBinaryV2: return stream_binary_v2(in, visit);
  }
  throw std::runtime_error("unreachable trace format");
}

TraceWriterV2::TraceWriterV2(std::ostream& out, std::string experiment,
                             std::uint32_t ranks)
    : TraceWriterV2(out, std::move(experiment), ranks, Options{}) {}

TraceWriterV2::TraceWriterV2(std::ostream& out, std::string experiment,
                             std::uint32_t ranks, Options options)
    : out_(&out), options_(options) {
  if (options_.chunk_events == 0) options_.chunk_events = 1;
  buffer_.reserve(options_.chunk_events);
  out.write(kBinaryMagicV2, sizeof kBinaryMagicV2);
  put_varint(out, ranks);
  put_varint(out, experiment.size());
  out.write(experiment.data(), static_cast<std::streamsize>(experiment.size()));
}

TraceWriterV2::~TraceWriterV2() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers wanting the error should
    // call finish() explicitly.
  }
}

void TraceWriterV2::add(const TraceEvent& event) {
  buffer_.push_back(event);
  ++total_events_;
  if (buffer_.size() >= options_.chunk_events) flush_chunk();
}

void TraceWriterV2::flush_chunk() {
  if (buffer_.empty()) return;
  OBS_SPAN("v2.flush_chunk");
  OBS_COUNTER_ADD("v2.chunks_written", 1);
  OBS_COUNTER_ADD("v2.events_written", buffer_.size());
  ChunkMeta meta;
  meta.offset = static_cast<std::uint64_t>(out_->tellp());
  put<std::uint8_t>(*out_, kChunkTag);
  put_varint(*out_, buffer_.size());
  for (const TraceEvent& e : buffer_) {
    fold_into(meta, e);
    put_event(*out_, e);
  }
  chunks_.push_back(meta);
  buffer_.clear();
}

void TraceWriterV2::finish() {
  if (finished_) return;
  finished_ = true;
  flush_chunk();
  auto footer_offset = static_cast<std::uint64_t>(out_->tellp());
  put<std::uint8_t>(*out_, kFooterTag);
  put_varint(*out_, chunks_.size());
  for (const ChunkMeta& c : chunks_) put_chunk_meta(*out_, c);
  put_varint(*out_, total_events_);
  put<std::uint64_t>(*out_, footer_offset);
  out_->write(kTrailerMagicV2, sizeof kTrailerMagicV2);
  if (!out_->good()) throw std::runtime_error("v2 trace write failed");
}

TraceIndex read_index_v2(std::istream& in) {
  TraceIndex index;
  index.meta = get_header_v2(in);
  auto header_end = static_cast<std::uint64_t>(in.tellg());

  in.seekg(0, std::ios::end);
  auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < header_end + 16) {
    throw std::runtime_error("truncated v2 trace (no trailer)");
  }
  in.seekg(static_cast<std::streamoff>(file_size - 16));
  auto footer_offset = get<std::uint64_t>(in);
  check_magic(in, kTrailerMagicV2, "complete v2 trace trailer");
  if (footer_offset < header_end || footer_offset >= file_size - 16) {
    throw std::runtime_error("corrupt v2 trace: footer offset out of bounds");
  }
  in.seekg(static_cast<std::streamoff>(footer_offset));
  if (get<std::uint8_t>(in) != kFooterTag) {
    throw std::runtime_error("corrupt v2 trace: footer tag mismatch");
  }
  auto [chunks, total] = get_footer(in);
  index.chunks = std::move(chunks);
  index.meta.declared_events = total;
  index.footer_offset = footer_offset;
  std::uint64_t prev = header_end;
  for (const ChunkMeta& c : index.chunks) {
    // Offsets must be in-bounds and strictly increasing — the sized
    // chunk reads below derive each chunk's byte length from the next
    // offset, so out-of-order entries would alias chunk extents.
    if (c.offset < prev || c.offset >= footer_offset) {
      throw std::runtime_error("corrupt v2 trace: chunk offset out of bounds");
    }
    prev = c.offset + 1;
  }
  return index;
}

std::uint64_t chunk_byte_length(const TraceIndex& index, std::size_t i) {
  EIO_CHECK_MSG(i < index.chunks.size() && index.footer_offset != 0,
                "chunk_byte_length needs an indexed chunk");
  std::uint64_t end = i + 1 < index.chunks.size() ? index.chunks[i + 1].offset
                                                  : index.footer_offset;
  return end - index.chunks[i].offset;
}

void read_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                   std::uint64_t byte_len, std::vector<char>& raw,
                   std::vector<TraceEvent>& events) {
  // The decode chokepoint shared by the serial and parallel scan paths
  // — its counters are work-proportional, so they are identical for
  // any --jobs value.
  OBS_SPAN("v2.decode_chunk");
  OBS_COUNTER_ADD("v2.chunks_decoded", 1);
  OBS_COUNTER_ADD("v2.events_decoded", chunk.events);
  OBS_COUNTER_ADD("v2.bytes_decoded", byte_len);
  in.clear();
  in.seekg(static_cast<std::streamoff>(chunk.offset));
  raw.resize(byte_len);
  in.read(raw.data(), static_cast<std::streamsize>(byte_len));
  if (static_cast<std::uint64_t>(in.gcount()) != byte_len) {
    throw std::runtime_error("truncated v2 trace (chunk body)");
  }
  ByteReader r{raw.data(), raw.data() + byte_len};
  if (r.u8() != kChunkTag) {
    throw std::runtime_error("corrupt v2 trace: expected chunk tag");
  }
  auto count = r.varint();
  if (count != chunk.events) {
    throw std::runtime_error("corrupt v2 trace: chunk count mismatch");
  }
  events.clear();
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) events.push_back(get_event(r));
  if (r.p != r.end) {
    throw std::runtime_error("corrupt v2 trace: chunk length mismatch");
  }
}

void stream_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                     const EventVisitor& visit) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(chunk.offset));
  if (get<std::uint8_t>(in) != kChunkTag) {
    throw std::runtime_error("corrupt v2 trace: expected chunk tag");
  }
  auto count = get_varint(in);
  if (count != chunk.events) {
    throw std::runtime_error("corrupt v2 trace: chunk count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
}

}  // namespace eio::ipm
