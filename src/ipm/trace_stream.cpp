#include "ipm/trace_stream.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "ipm/trace_v3.h"
#include "ipm/wire.h"
#include "obs/registry.h"

namespace eio::ipm {

namespace {

using wire::ByteReader;
using wire::check_magic;
using wire::get;
using wire::get_varint;
using wire::put;
using wire::put_varint;
using wire::unzigzag;
using wire::zigzag;

void put_event(std::ostream& out, const TraceEvent& e) {
  put<double>(out, e.start);
  put<double>(out, e.duration);
  put_varint(out, static_cast<std::uint64_t>(e.op));
  put_varint(out, e.rank);
  put_varint(out, e.file);
  put_varint(out, e.offset);
  put_varint(out, e.bytes);
  put_varint(out, zigzag(e.phase));
}

TraceEvent get_event(std::istream& in) {
  TraceEvent e;
  e.start = get<double>(in);
  e.duration = get<double>(in);
  auto op = get_varint(in);
  if (op > static_cast<std::uint64_t>(posix::OpType::kFault)) {
    throw std::runtime_error("corrupt binary trace: bad op code");
  }
  e.op = static_cast<posix::OpType>(op);
  e.rank = static_cast<RankId>(get_varint(in));
  e.file = get_varint(in);
  e.offset = get_varint(in);
  e.bytes = get_varint(in);
  e.phase = static_cast<std::int32_t>(unzigzag(get_varint(in)));
  return e;
}

TraceEvent get_event(ByteReader& in) {
  TraceEvent e;
  e.start = in.f64();
  e.duration = in.f64();
  auto op = in.varint();
  if (op > static_cast<std::uint64_t>(posix::OpType::kFault)) {
    throw std::runtime_error("corrupt binary trace: bad op code");
  }
  e.op = static_cast<posix::OpType>(op);
  e.rank = static_cast<RankId>(in.varint());
  e.file = in.varint();
  e.offset = in.varint();
  e.bytes = in.varint();
  e.phase = static_cast<std::int32_t>(unzigzag(in.varint()));
  return e;
}

[[nodiscard]] posix::OpType op_from_name(const std::string& name) {
  using posix::OpType;
  if (name == "open") return OpType::kOpen;
  if (name == "close") return OpType::kClose;
  if (name == "seek") return OpType::kSeek;
  if (name == "read") return OpType::kRead;
  if (name == "write") return OpType::kWrite;
  if (name == "fsync") return OpType::kFsync;
  if (name == "fault") return OpType::kFault;
  throw std::runtime_error("unknown op name in trace: " + name);
}

}  // namespace

TraceFormat sniff_format(std::istream& in) {
  char buf[8] = {};
  in.read(buf, sizeof buf);
  auto got = in.gcount();
  in.clear();
  in.seekg(-got, std::ios::cur);
  auto is = [&](const char (&magic)[8]) {
    return got >= 8 &&
           std::equal(std::begin(buf), std::end(buf), std::begin(magic));
  };
  if (is(wire::kMagicV1)) return TraceFormat::kBinaryV1;
  if (is(wire::kMagicV2)) return TraceFormat::kBinaryV2;
  if (is(wire::kMagicV3)) return TraceFormat::kBinaryV3;
  if (got >= 1 && buf[0] == '#') return TraceFormat::kTsv;
  throw std::runtime_error("not an ipm-io trace (unrecognized magic)");
}

TraceMeta stream_tsv(std::istream& in, const EventVisitor& visit) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(wire::kTsvMagic, 0) != 0) {
    throw std::runtime_error("not an ipm-io trace (missing magic)");
  }
  TraceMeta meta;
  {
    std::istringstream header(line);
    std::string field;
    while (std::getline(header, field, '\t')) {
      if (field.rfind("experiment=", 0) == 0) {
        meta.experiment = field.substr(11);
      } else if (field.rfind("ranks=", 0) == 0) {
        meta.ranks = static_cast<std::uint32_t>(std::stoul(field.substr(6)));
      } else if (field.rfind("events=", 0) == 0) {
        meta.declared_events = std::stoull(field.substr(7));
      }
    }
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace missing column header");
  }
  std::uint64_t parsed = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TraceEvent e;
    std::string op;
    if (!(row >> e.start >> e.duration >> op >> e.rank >> e.file >> e.offset >>
          e.bytes >> e.phase)) {
      throw std::runtime_error("malformed trace row: " + line);
    }
    e.op = op_from_name(op);
    visit(e);
    ++parsed;
  }
  if (meta.declared_events && parsed != *meta.declared_events) {
    std::ostringstream os;
    os << "truncated trace: header declares " << *meta.declared_events
       << " events, found " << parsed;
    throw std::runtime_error(os.str());
  }
  return meta;
}

TraceMeta stream_binary_v1(std::istream& in, const EventVisitor& visit) {
  check_magic(in, wire::kMagicV1, "binary ipm-io trace");
  TraceMeta meta;
  meta.ranks = static_cast<std::uint32_t>(get_varint(in));
  meta.experiment = wire::get_name(in);
  auto count = get_varint(in);
  meta.declared_events = count;
  for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
  return meta;
}

TraceMeta stream_binary_v2(std::istream& in, const EventVisitor& visit) {
  TraceMeta meta = wire::get_header(in, wire::kMagicV2, "v2 binary ipm-io trace");
  std::uint64_t parsed = 0;
  for (;;) {
    auto tag = get<std::uint8_t>(in);
    if (tag == wire::kChunkTag) {
      auto count = get_varint(in);
      for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
      parsed += count;
      continue;
    }
    if (tag != wire::kFooterTag) {
      throw std::runtime_error("corrupt v2 trace: bad chunk tag");
    }
    auto [chunks, total] = wire::get_footer(in);
    if (parsed != total) {
      throw std::runtime_error(
          "truncated v2 trace: chunk events disagree with footer");
    }
    meta.declared_events = total;
    // The trailer must be present and intact even on a sequential read
    // — it is what distinguishes a complete file from one cut off
    // exactly at a chunk boundary.
    (void)get<std::uint64_t>(in);
    check_magic(in, wire::kTrailerV2, "complete v2 trace trailer");
    return meta;
  }
}

void write_tsv_header(std::ostream& out, const std::string& experiment,
                      std::uint32_t ranks, std::uint64_t events) {
  out << "# ipm-io-trace v1\texperiment=" << experiment << "\tranks=" << ranks
      << "\tevents=" << events << "\n";
  out << "start\tduration\top\trank\tfile\toffset\tbytes\tphase\n";
  out.precision(9);
}

void write_tsv_event(std::ostream& out, const TraceEvent& e) {
  out << e.start << '\t' << e.duration << '\t' << posix::op_name(e.op) << '\t'
      << e.rank << '\t' << e.file << '\t' << e.offset << '\t' << e.bytes
      << '\t' << e.phase << '\n';
}

void write_binary_v1_header(std::ostream& out, const std::string& experiment,
                            std::uint32_t ranks, std::uint64_t events) {
  wire::write_header(out, wire::kMagicV1, ranks, experiment);
  put_varint(out, events);
}

void write_binary_v1_event(std::ostream& out, const TraceEvent& event) {
  put_event(out, event);
}

TraceMeta stream_any(std::istream& in, const EventVisitor& visit) {
  switch (sniff_format(in)) {
    case TraceFormat::kTsv: return stream_tsv(in, visit);
    case TraceFormat::kBinaryV1: return stream_binary_v1(in, visit);
    case TraceFormat::kBinaryV2: return stream_binary_v2(in, visit);
    case TraceFormat::kBinaryV3: return stream_binary_v3(in, visit);
  }
  throw std::runtime_error("unreachable trace format");
}

TraceWriterV2::TraceWriterV2(std::ostream& out, std::string experiment,
                             std::uint32_t ranks)
    : TraceWriterV2(out, std::move(experiment), ranks, Options{}) {}

TraceWriterV2::TraceWriterV2(std::ostream& out, std::string experiment,
                             std::uint32_t ranks, Options options)
    : out_(&out), options_(options) {
  if (options_.chunk_events == 0) options_.chunk_events = 1;
  buffer_.reserve(options_.chunk_events);
  wire::write_header(out, wire::kMagicV2, ranks, experiment);
}

TraceWriterV2::~TraceWriterV2() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers wanting the error should
    // call finish() explicitly.
  }
}

void TraceWriterV2::add(const TraceEvent& event) {
  buffer_.push_back(event);
  ++total_events_;
  if (buffer_.size() >= options_.chunk_events) flush_chunk();
}

void TraceWriterV2::flush_chunk() {
  if (buffer_.empty()) return;
  OBS_SPAN("v2.flush_chunk");
  OBS_COUNTER_ADD("v2.chunks_written", 1);
  OBS_COUNTER_ADD("v2.events_written", buffer_.size());
  ChunkMeta meta;
  meta.offset = static_cast<std::uint64_t>(out_->tellp());
  put<std::uint8_t>(*out_, wire::kChunkTag);
  put_varint(*out_, buffer_.size());
  for (const TraceEvent& e : buffer_) {
    wire::fold_into(meta, e);
    put_event(*out_, e);
  }
  chunks_.push_back(meta);
  buffer_.clear();
}

void TraceWriterV2::finish() {
  if (finished_) return;
  finished_ = true;
  flush_chunk();
  wire::write_footer(*out_, chunks_, total_events_, wire::kTrailerV2);
  if (!out_->good()) throw std::runtime_error("v2 trace write failed");
}

TraceIndex read_index_v2(std::istream& in) {
  return wire::read_index(in, wire::kMagicV2, wire::kTrailerV2,
                          "v2 binary ipm-io trace");
}

std::uint64_t chunk_byte_length(const TraceIndex& index, std::size_t i) {
  EIO_CHECK_MSG(i < index.chunks.size() && index.footer_offset != 0,
                "chunk_byte_length needs an indexed chunk");
  std::uint64_t end = i + 1 < index.chunks.size() ? index.chunks[i + 1].offset
                                                  : index.footer_offset;
  return end - index.chunks[i].offset;
}

void read_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                   std::uint64_t byte_len, std::vector<char>& raw,
                   std::vector<TraceEvent>& events) {
  // The decode chokepoint shared by the serial and parallel scan paths
  // — its counters are work-proportional, so they are identical for
  // any --jobs value.
  OBS_SPAN("v2.decode_chunk");
  OBS_COUNTER_ADD("v2.chunks_decoded", 1);
  OBS_COUNTER_ADD("v2.events_decoded", chunk.events);
  OBS_COUNTER_ADD("v2.bytes_decoded", byte_len);
  in.clear();
  in.seekg(static_cast<std::streamoff>(chunk.offset));
  raw.resize(byte_len);
  in.read(raw.data(), static_cast<std::streamsize>(byte_len));
  if (static_cast<std::uint64_t>(in.gcount()) != byte_len) {
    throw std::runtime_error("truncated v2 trace (chunk body)");
  }
  ByteReader r{raw.data(), raw.data() + byte_len};
  if (r.u8() != wire::kChunkTag) {
    throw std::runtime_error("corrupt v2 trace: expected chunk tag");
  }
  auto count = r.varint();
  if (count != chunk.events) {
    throw std::runtime_error("corrupt v2 trace: chunk count mismatch");
  }
  events.clear();
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) events.push_back(get_event(r));
  if (r.p != r.end) {
    throw std::runtime_error("corrupt v2 trace: chunk length mismatch");
  }
}

void stream_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                     const EventVisitor& visit) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(chunk.offset));
  if (get<std::uint8_t>(in) != wire::kChunkTag) {
    throw std::runtime_error("corrupt v2 trace: expected chunk tag");
  }
  auto count = get_varint(in);
  if (count != chunk.events) {
    throw std::runtime_error("corrupt v2 trace: chunk count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) visit(get_event(in));
}

}  // namespace eio::ipm
