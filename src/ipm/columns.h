// Columnar event batches: the decoded form of a v3 chunk.
//
// The v3 format stores each event field as its own stream, so a
// decoded chunk is naturally a struct-of-arrays: parallel spans, one
// per field, all the same length. Analysis kernels that consume a
// ColumnBatch touch only the columns they need (a filter over op +
// bytes + duration reads three dense arrays instead of striding
// through 64-byte TraceEvent structs), and the decoder can skip
// columns a scan never reads via a ColumnMask. shred()/unshred()
// convert between the row and columnar views so every format can serve
// both APIs: v2 chunks shred into columns for the columnar kernels,
// v3 chunks unshred into rows for the legacy per-event visitors.
//
// Determinism contract: column order is event order. A kernel that
// walks a ColumnBatch index 0..events-1 performs the identical
// floating-point operation sequence as the same kernel over the row
// batch, so row and columnar paths agree byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ipm/trace.h"

namespace eio::ipm {

/// Bitmask selecting which columns a consumer needs decoded. Spans of
/// unmasked columns are left empty (size 0), never partially filled.
using ColumnMask = std::uint32_t;
inline constexpr ColumnMask kColStart = 1u << 0;
inline constexpr ColumnMask kColDuration = 1u << 1;
inline constexpr ColumnMask kColOp = 1u << 2;
inline constexpr ColumnMask kColRank = 1u << 3;
inline constexpr ColumnMask kColFile = 1u << 4;
inline constexpr ColumnMask kColOffset = 1u << 5;
inline constexpr ColumnMask kColBytes = 1u << 6;
inline constexpr ColumnMask kColPhase = 1u << 7;
inline constexpr ColumnMask kColAll = 0xFF;

/// Caller-owned backing storage for a ColumnBatch, reused across
/// chunks so a steady-state decode allocates nothing.
struct ColumnScratch {
  std::vector<double> start;
  std::vector<double> duration;
  std::vector<std::uint8_t> op;
  std::vector<RankId> rank;
  std::vector<FileId> file;
  std::vector<Bytes> offset;
  std::vector<Bytes> bytes;
  std::vector<std::int32_t> phase;
  std::vector<char> blob;  ///< staging for compressed column payloads
};

/// One decoded run of consecutive events, as parallel column spans.
/// Spans alias a ColumnScratch (or, for raw v3 file columns, the
/// decoder's scratch filled straight from the mapped file) and are
/// valid until the next decode into the same scratch.
struct ColumnBatch {
  std::size_t events = 0;
  std::span<const double> start;
  std::span<const double> duration;
  std::span<const std::uint8_t> op;  ///< posix::OpType codes
  std::span<const RankId> rank;
  std::span<const FileId> file;
  std::span<const Bytes> offset;
  std::span<const Bytes> bytes;
  std::span<const std::int32_t> phase;

  [[nodiscard]] std::size_t size() const noexcept { return events; }
  [[nodiscard]] bool empty() const noexcept { return events == 0; }

  /// Row view of one index — requires every column decoded (kColAll).
  [[nodiscard]] TraceEvent event_at(std::size_t i) const {
    TraceEvent e;
    e.start = start[i];
    e.duration = duration[i];
    e.op = static_cast<posix::OpType>(op[i]);
    e.rank = rank[i];
    e.file = file[i];
    e.offset = offset[i];
    e.bytes = bytes[i];
    e.phase = phase[i];
    return e;
  }
};

/// Per-columnar-batch visitor (one call per decoded chunk).
using ColumnBatchVisitor = std::function<void(const ColumnBatch&)>;

/// Transpose rows into columns (only the masked columns are filled).
[[nodiscard]] ColumnBatch shred(std::span<const TraceEvent> events,
                                ColumnScratch& scratch,
                                ColumnMask mask = kColAll);

/// Transpose columns back into rows (requires every column decoded).
/// `events` is cleared first and reuses its capacity.
void unshred(const ColumnBatch& batch, std::vector<TraceEvent>& events);

}  // namespace eio::ipm
