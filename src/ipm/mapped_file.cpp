#include "ipm/mapped_file.h"

#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define EIO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define EIO_HAVE_MMAP 0
#endif

namespace eio::ipm {

bool MappedFile::mmap_supported() noexcept { return EIO_HAVE_MMAP != 0; }

#if EIO_HAVE_MMAP

MappedFile::MappedFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat trace file: " + path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error("cannot map empty trace file: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (addr == MAP_FAILED) {
    throw std::runtime_error("cannot mmap trace file: " + path);
  }
  data_ = static_cast<const char*>(addr);
  mapped_ = true;
}

MappedFile::~MappedFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

#else  // !EIO_HAVE_MMAP

MappedFile::MappedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  in.seekg(0, std::ios::end);
  auto size = in.tellg();
  if (size <= 0) {
    throw std::runtime_error("cannot map empty trace file: " + path);
  }
  fallback_.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(fallback_.data(), size);
  if (!in.good()) {
    throw std::runtime_error("cannot read trace file: " + path);
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() = default;

#endif

}  // namespace eio::ipm
