// Binary trace format v3: columnar chunks, per-column compression,
// zero-copy decode.
//
// v3 keeps v2's container shape — "IPMIOB3\n" header, tagged chunks,
// footer index of ChunkMeta records, 16-byte trailer ("IPM3IDX\n") —
// but stores each chunk as eight per-column streams instead of
// interleaved event records:
//
//   chunk   := 0x01 varint(count) column*8
//   column  := u8 enc varint(enc_len) [varint(raw_len)] payload
//
// Column order is fixed (start, duration, op, rank, file, offset,
// bytes, phase) and matches event order within each stream. The low
// seven bits of `enc` pick the base encoding — raw little-endian f64
// for the two time columns (bit-exact, memcpy-decodable), plain LEB128
// varint for op codes, and wraparound-safe delta+zigzag varint for the
// monotonic-ish integer columns (rank, file, offset, bytes, and
// zigzagged phase). Bit 0x80 flags an optional per-column byte-RLE
// compression pass, applied by the writer only when it shrinks the
// payload; raw_len (the decompressed size) is present exactly when
// that flag is set. Every encoding is exact: a v2→v3→v2 round trip
// reproduces the original file byte for byte.
//
// The explicit length prefix on every column is what buys selective
// decode: a reader hands decode_chunk_v3 a ColumnMask and unneeded
// columns are skipped in O(1), so a summary scan touching op + bytes +
// duration never parses ranks, files, offsets or phases. Combined with
// the mmap path (see mapped_file.h) a v3 scan decodes columns straight
// from the page cache with no read() syscalls and no staging copies.
//
// Error contract matches v2: truncated or corrupt input — short column
// stream, bad compression header, footer past EOF, wrong trailer —
// always throws std::runtime_error, never crashes or yields a partial
// batch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ipm/columns.h"
#include "ipm/sink.h"
#include "ipm/trace_stream.h"

namespace eio::ipm {

/// Streaming v3 writer; usable directly as a capture sink (same
/// contract as TraceWriterV2). The default chunk size matches v2's so
/// the two formats produce identical chunk boundaries — which keeps
/// chunk-partial analysis (per-chunk reservoir substreams, hint
/// admission) byte-identical across formats.
class TraceWriterV3 final : public EventSink {
 public:
  struct Options {
    std::size_t chunk_events = 4096;  ///< events buffered per chunk
    bool compress = true;  ///< RLE columns when it shrinks the payload
  };

  TraceWriterV3(std::ostream& out, std::string experiment,
                std::uint32_t ranks);
  TraceWriterV3(std::ostream& out, std::string experiment,
                std::uint32_t ranks, Options options);
  ~TraceWriterV3() override;

  TraceWriterV3(const TraceWriterV3&) = delete;
  TraceWriterV3& operator=(const TraceWriterV3&) = delete;

  void add(const TraceEvent& event);
  void on_event(const TraceEvent& event) override { add(event); }

  /// Flush the trailing chunk and write the footer index + trailer.
  /// Idempotent; called by the destructor if the caller forgot, but
  /// explicit calls are preferred (destructors swallow I/O errors).
  void finish() override;

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return total_events_;
  }

 private:
  void flush_chunk();
  void write_column(std::uint8_t base_enc);

  std::ostream* out_;
  Options options_;
  std::vector<TraceEvent> buffer_;
  std::vector<ChunkMeta> chunks_;
  std::vector<char> col_buf_;  ///< plain column payload being built
  std::vector<char> rle_buf_;  ///< RLE candidate for the same payload
  std::uint64_t total_events_ = 0;
  bool finished_ = false;
};

/// Read the footer index of a v3 trace from a seekable stream.
/// Validates trailer magic, footer bounds and chunk-offset monotonicity
/// exactly like read_index_v2.
[[nodiscard]] TraceIndex read_index_v3(std::istream& in);

/// Sequential reader: visit every event in stored order (decodes each
/// chunk's columns, then re-rows them). Validates the footer totals and
/// trailer, so a file cut at a chunk boundary still throws.
TraceMeta stream_binary_v3(std::istream& in, const EventVisitor& visit);

/// Decode one v3 chunk from an in-memory image (a mapped file region
/// or a sized read). `data` must span exactly the chunk record —
/// tag byte through last column payload (see chunk_byte_length); the
/// decode must consume every byte or it throws. Only the masked
/// columns are materialized (into `scratch`); the rest are skipped via
/// their length prefixes. The returned spans alias `scratch` and stay
/// valid until the next decode into it.
ColumnBatch decode_chunk_v3(const char* data, std::size_t len,
                            const ChunkMeta& chunk, ColumnScratch& scratch,
                            ColumnMask mask = kColAll);

/// Stream-fallback chunk decode: seek to chunk.offset, pull byte_len
/// bytes into `raw`, then decode_chunk_v3 from memory. Mirrors
/// read_chunk_v2 for platforms (or callers) without an mmap.
ColumnBatch read_chunk_v3(std::istream& in, const ChunkMeta& chunk,
                          std::uint64_t byte_len, std::vector<char>& raw,
                          ColumnScratch& scratch, ColumnMask mask = kColAll);

/// The per-column byte-RLE codec (exposed for tests). Control byte
/// c in [0,127]: the next c+1 bytes are literals; c in [128,255]: the
/// next byte repeats c-125 (= 3..130) times. Decompression must yield
/// exactly raw_len bytes and consume all of src, else it throws.
void rle_compress(std::span<const char> src, std::vector<char>& out);
void rle_decompress(std::span<const char> src, std::size_t raw_len,
                    std::vector<char>& out);

}  // namespace eio::ipm
