#include "ipm/profile.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eio::ipm {

int DurationBins::index(Seconds duration) noexcept {
  if (duration <= kFloor) return 0;
  double decades = std::log10(duration / kFloor);
  int bin = static_cast<int>(decades * kBinsPerDecade);
  return std::clamp(bin, 0, kBinCount - 1);
}

Seconds DurationBins::lower_edge(int bin) noexcept {
  return kFloor * std::pow(10.0, static_cast<double>(bin) / kBinsPerDecade);
}

Seconds DurationBins::center(int bin) noexcept {
  return kFloor *
         std::pow(10.0, (static_cast<double>(bin) + 0.5) / kBinsPerDecade);
}

std::uint32_t Profile::size_bucket(Bytes bytes) noexcept {
  if (bytes == 0) return 0;
  return static_cast<std::uint32_t>(std::bit_width(bytes));
}

void Profile::observe(posix::OpType op, Bytes bytes, Seconds duration) {
  Key key{op, size_bucket(bytes)};
  auto& bins = cells_[key];
  ++bins[static_cast<std::size_t>(DurationBins::index(duration))];
  ++total_;
}

void Profile::merge(const Profile& other) {
  for (const auto& [key, bins] : other.cells_) {
    auto& mine = cells_[key];
    for (std::size_t i = 0; i < bins.size(); ++i) mine[i] += bins[i];
  }
  total_ += other.total_;
}

std::uint64_t Profile::count(posix::OpType op) const {
  std::uint64_t n = 0;
  for (const auto& [key, bins] : cells_) {
    if (key.op != op) continue;
    for (std::uint64_t c : bins) n += c;
  }
  return n;
}

std::vector<Profile::WeightedSample> Profile::distribution(posix::OpType op) const {
  std::array<std::uint64_t, DurationBins::kBinCount> merged{};
  for (const auto& [key, bins] : cells_) {
    if (key.op != op) continue;
    for (std::size_t i = 0; i < bins.size(); ++i) merged[i] += bins[i];
  }
  std::vector<WeightedSample> out;
  for (int i = 0; i < DurationBins::kBinCount; ++i) {
    if (merged[static_cast<std::size_t>(i)] == 0) continue;
    out.push_back({DurationBins::center(i), merged[static_cast<std::size_t>(i)]});
  }
  return out;
}

std::vector<Profile::WeightedSample> Profile::distribution(Key key) const {
  std::vector<WeightedSample> out;
  auto it = cells_.find(key);
  if (it == cells_.end()) return out;
  for (int i = 0; i < DurationBins::kBinCount; ++i) {
    std::uint64_t c = it->second[static_cast<std::size_t>(i)];
    if (c != 0) out.push_back({DurationBins::center(i), c});
  }
  return out;
}

Seconds Profile::approximate_mean(posix::OpType op) const {
  double weighted = 0.0;
  std::uint64_t n = 0;
  for (const WeightedSample& s : distribution(op)) {
    weighted += s.duration * static_cast<double>(s.count);
    n += s.count;
  }
  return n == 0 ? 0.0 : weighted / static_cast<double>(n);
}

}  // namespace eio::ipm
