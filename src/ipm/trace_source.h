// TraceSource: the analysis side of the streaming pipeline.
//
// Every consumer of a trace — eiotrace subcommands, the reporters, the
// streaming accumulators in core — pulls events through this interface
// instead of demanding a materialized std::vector<TraceEvent>. A
// MemoryTraceSource adapts an in-memory Trace (so the batch paths stay
// available and the streaming kernels can be validated against them);
// a FileTraceSource replays a trace file on every pass, keeping memory
// O(1) in the event count. For indexed (v2/v3) files, a ChunkHint lets
// the source skip whole chunks whose footer metadata cannot match,
// turning filtered scans into selective reads.
//
// Three dispatch granularities are offered: for_each (one visitor call
// per event), for_each_batch (one call per run of consecutive events —
// a decoded chunk, or the whole in-memory trace), and for_each_columns
// (one ColumnBatch per run, restricted to a ColumnMask). The batch
// forms are the hot path: the per-event std::function indirection
// disappears from the decode→accumulate loop. The columnar form is the
// hottest: on v3 files unneeded columns are never decoded — and with
// the mmap path the needed ones decode straight from page cache —
// while every other source shreds its row batches, so columnar
// consumers see the identical value sequence from any backing format.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ipm/columns.h"
#include "ipm/mapped_file.h"
#include "ipm/trace.h"
#include "ipm/trace_stream.h"

namespace eio::ipm {

/// A conservative pre-filter for indexed scans: a chunk is skipped only
/// when its footer metadata proves no event can match. Hints are a
/// superset promise — visitors still see non-matching events inside
/// surviving chunks and must filter exactly.
struct ChunkHint {
  std::optional<posix::OpType> op;
  /// Op *set* pre-filter: when nonzero, a chunk is skipped unless it
  /// contains at least one op whose bit (1 << op) is set. Generalizes
  /// the single-op pin for multi-op scans (e.g. data_calls_only keeps
  /// read|write; a fused write+read summary pass unions both pins).
  /// 0 means unconstrained.
  std::uint32_t op_mask = 0;
  std::optional<std::int32_t> phase;
  std::optional<RankId> rank;
  /// Time window [t_lo, t_hi]: chunks whose [t_lo, t_hi] span does not
  /// intersect the window are skipped, so windowed scans are selective
  /// reads too.
  std::optional<double> t_lo;
  std::optional<double> t_hi;

  /// True when the hinted chunk may contain matching events.
  [[nodiscard]] bool admits(const ChunkMeta& chunk) const noexcept {
    if (op && (chunk.op_mask & (1u << static_cast<unsigned>(*op))) == 0) {
      return false;
    }
    if (op_mask != 0 && (chunk.op_mask & op_mask) == 0) return false;
    if (phase && (*phase < chunk.phase_lo || *phase > chunk.phase_hi)) {
      return false;
    }
    if (rank && (*rank < chunk.rank_lo || *rank > chunk.rank_hi)) {
      return false;
    }
    if (t_lo && chunk.t_hi < *t_lo) return false;
    if (t_hi && chunk.t_lo > *t_hi) return false;
    return true;
  }

  /// The op-set constraint both `op` and `op_mask` express together
  /// (0 = unconstrained).
  [[nodiscard]] std::uint32_t effective_op_mask() const noexcept {
    std::uint32_t m = op ? (1u << static_cast<unsigned>(*op)) : 0u;
    if (op_mask != 0) m = op ? (m & op_mask) : op_mask;
    return m;
  }

  /// The weakest hint admitting everything either input admits — what
  /// a fused pass over several filters must scan. Fields where the
  /// inputs disagree are dropped (hints are a superset promise, so
  /// widening is always sound); op pins union into op_mask.
  [[nodiscard]] static ChunkHint union_of(const ChunkHint& a,
                                          const ChunkHint& b) noexcept {
    ChunkHint u;
    std::uint32_t ma = a.effective_op_mask();
    std::uint32_t mb = b.effective_op_mask();
    if (ma != 0 && mb != 0) u.op_mask = ma | mb;
    if (a.phase && b.phase && *a.phase == *b.phase) u.phase = a.phase;
    if (a.rank && b.rank && *a.rank == *b.rank) u.rank = a.rank;
    if (a.t_lo && b.t_lo) u.t_lo = std::min(*a.t_lo, *b.t_lo);
    if (a.t_hi && b.t_hi) u.t_hi = std::max(*a.t_hi, *b.t_hi);
    return u;
  }
};

/// Abstract multi-pass event stream with job metadata.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Events buffered per batch when a backing format has no natural
  /// chunking (matches the v2 writer's default chunk size).
  static constexpr std::size_t kDefaultBatchEvents = 4096;

  /// Job-level metadata (experiment name, rank count, event count when
  /// the backing format declares it).
  [[nodiscard]] virtual const TraceMeta& meta() const = 0;

  /// Visit every event in stored order. May be called repeatedly; each
  /// call replays the full stream.
  virtual void for_each(const EventVisitor& visit) const = 0;

  /// Visit events from chunks a hint admits. Default: full scan (exact
  /// for any source, since hints only promise a superset).
  virtual void for_each_hinted(const ChunkHint& hint,
                               const EventVisitor& visit) const {
    (void)hint;
    for_each(visit);
  }

  /// Visit every event in stored order, one span per run of
  /// consecutive events. Default: buffer kDefaultBatchEvents at a time
  /// over for_each; sources with natural chunk boundaries hand out
  /// their decode buffers directly.
  virtual void for_each_batch(const BatchVisitor& visit) const;

  /// Batched form of for_each_hinted (same superset contract).
  virtual void for_each_batch_hinted(const ChunkHint& hint,
                                     const BatchVisitor& visit) const;

  /// Visit every event as columnar batches with (at least) the masked
  /// columns materialized. Column order is event order, so folding a
  /// ColumnBatch index 0..n-1 is value-identical to folding the same
  /// run of rows. Default: shred the row batches; columnar-native
  /// sources decode only what the mask asks for.
  virtual void for_each_columns(ColumnMask mask,
                                const ColumnBatchVisitor& visit) const;

  /// Columnar form of for_each_batch_hinted (same superset contract).
  virtual void for_each_columns_hinted(const ChunkHint& hint, ColumnMask mask,
                                       const ColumnBatchVisitor& visit) const;

  /// Wall-clock span covered by the stream (latest event end time; 0
  /// when empty) — the batch Trace::span() semantics. Default: one
  /// pass; indexed sources answer from chunk metadata.
  [[nodiscard]] virtual double time_span() const;

  /// Total events (one pass when the format does not declare it).
  [[nodiscard]] virtual std::uint64_t event_count() const;

  /// Copy the stream into an in-memory Trace — the escape hatch for
  /// analyses that genuinely need random access (O(events) memory).
  [[nodiscard]] virtual Trace materialize() const;
};

/// Non-owning view over an in-memory Trace.
class MemoryTraceSource final : public TraceSource {
 public:
  explicit MemoryTraceSource(const Trace& trace);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  void for_each(const EventVisitor& visit) const override;
  void for_each_batch(const BatchVisitor& visit) const override;
  void for_each_batch_hinted(const ChunkHint& hint,
                             const BatchVisitor& visit) const override;
  void for_each_columns(ColumnMask mask,
                        const ColumnBatchVisitor& visit) const override;
  [[nodiscard]] double time_span() const override;
  [[nodiscard]] std::uint64_t event_count() const override;
  [[nodiscard]] Trace materialize() const override;

 private:
  const Trace* trace_;
  TraceMeta meta_;
  mutable ColumnScratch scratch_;  ///< shred target for columnar passes
};

/// Streams a trace file (TSV, binary v1, v2 or v3) from disk on every
/// pass. Holds only the header metadata — plus, for the indexed
/// formats, the footer index, which the hinted passes use to skip
/// chunks. The file is opened (and its format sniffed) exactly once;
/// every pass rewinds the same seekable stream, and indexed passes
/// decode whole chunks with single sized reads into reusable buffers.
/// A v3 file is additionally mmap'd when the platform allows, so its
/// chunks decode zero-copy from page cache (the stream remains as the
/// fallback). Passes mutate the cached stream and scratch buffers, so
/// one FileTraceSource must not run concurrent passes —
/// ParallelTraceScanner decodes through per-thread readers instead.
class FileTraceSource final : public TraceSource {
 public:
  /// Opens the file once to sniff the format and cache metadata (for
  /// v2/v3 this reads just header + footer, not the events). Throws
  /// std::runtime_error if unreadable or unrecognized.
  explicit FileTraceSource(std::string path);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  void for_each(const EventVisitor& visit) const override;
  void for_each_hinted(const ChunkHint& hint,
                       const EventVisitor& visit) const override;
  void for_each_batch(const BatchVisitor& visit) const override;
  void for_each_batch_hinted(const ChunkHint& hint,
                             const BatchVisitor& visit) const override;
  void for_each_columns(ColumnMask mask,
                        const ColumnBatchVisitor& visit) const override;
  void for_each_columns_hinted(const ChunkHint& hint, ColumnMask mask,
                               const ColumnBatchVisitor& visit) const override;
  [[nodiscard]] double time_span() const override;
  [[nodiscard]] std::uint64_t event_count() const override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] TraceFormat format() const noexcept { return format_; }
  /// The footer index; nullopt for TSV/v1 files.
  [[nodiscard]] const std::optional<TraceIndex>& index() const noexcept {
    return index_;
  }
  /// True when a v3 file decodes from an mmap (the zero-copy path).
  [[nodiscard]] bool zero_copy() const noexcept { return map_ != nullptr; }

 private:
  /// Rewind the cached stream for a fresh pass.
  [[nodiscard]] std::istream& reset_stream() const;
  /// Replay the legacy (TSV/v1) formats through the cached stream.
  void stream_legacy(const EventVisitor& visit) const;
  /// Decode indexed chunk i as columns (mask-restricted; v3 native,
  /// v2 rows + shred). Spans are valid until the next decode.
  [[nodiscard]] ColumnBatch decode_columns(std::size_t i,
                                           ColumnMask mask) const;
  /// Decode the admitted indexed chunks in order, handing each decoded
  /// buffer to `batch` (all chunks when hint is null).
  void scan_chunks(const ChunkHint* hint, const BatchVisitor& batch) const;
  /// Columnar twin of scan_chunks.
  void scan_chunk_columns(const ChunkHint* hint, ColumnMask mask,
                          const ColumnBatchVisitor& visit) const;

  std::string path_;
  TraceFormat format_;
  TraceMeta meta_;
  std::optional<TraceIndex> index_;
  mutable std::ifstream stream_;
  std::unique_ptr<const MappedFile> map_;  ///< v3 zero-copy image
  // Per-pass scratch, reused so a pass costs zero steady-state
  // allocations (one chunk's worth of bytes + decoded events/columns).
  mutable std::vector<char> raw_;
  mutable std::vector<TraceEvent> batch_;
  mutable ColumnScratch scratch_;
};

}  // namespace eio::ipm
