// TraceSource: the analysis side of the streaming pipeline.
//
// Every consumer of a trace — eiotrace subcommands, the reporters, the
// streaming accumulators in core — pulls events through this interface
// instead of demanding a materialized std::vector<TraceEvent>. A
// MemoryTraceSource adapts an in-memory Trace (so the batch paths stay
// available and the streaming kernels can be validated against them);
// a FileTraceSource replays a trace file on every pass, keeping memory
// O(1) in the event count. For indexed v2 files, a ChunkHint lets the
// source skip whole chunks whose footer metadata cannot match, turning
// filtered scans into selective reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ipm/trace.h"
#include "ipm/trace_stream.h"

namespace eio::ipm {

/// A conservative pre-filter for indexed scans: a chunk is skipped only
/// when its footer metadata proves no event can match. Hints are a
/// superset promise — visitors still see non-matching events inside
/// surviving chunks and must filter exactly.
struct ChunkHint {
  std::optional<posix::OpType> op;
  std::optional<std::int32_t> phase;
  std::optional<RankId> rank;

  /// True when the hinted chunk may contain matching events.
  [[nodiscard]] bool admits(const ChunkMeta& chunk) const noexcept {
    if (op && (chunk.op_mask & (1u << static_cast<unsigned>(*op))) == 0) {
      return false;
    }
    if (phase && (*phase < chunk.phase_lo || *phase > chunk.phase_hi)) {
      return false;
    }
    if (rank && (*rank < chunk.rank_lo || *rank > chunk.rank_hi)) {
      return false;
    }
    return true;
  }
};

/// Abstract multi-pass event stream with job metadata.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Job-level metadata (experiment name, rank count, event count when
  /// the backing format declares it).
  [[nodiscard]] virtual const TraceMeta& meta() const = 0;

  /// Visit every event in stored order. May be called repeatedly; each
  /// call replays the full stream.
  virtual void for_each(const EventVisitor& visit) const = 0;

  /// Visit events from chunks a hint admits. Default: full scan (exact
  /// for any source, since hints only promise a superset).
  virtual void for_each_hinted(const ChunkHint& hint,
                               const EventVisitor& visit) const {
    (void)hint;
    for_each(visit);
  }

  /// Total events (one pass when the format does not declare it).
  [[nodiscard]] virtual std::uint64_t event_count() const;

  /// Copy the stream into an in-memory Trace — the escape hatch for
  /// analyses that genuinely need random access (O(events) memory).
  [[nodiscard]] virtual Trace materialize() const;
};

/// Non-owning view over an in-memory Trace.
class MemoryTraceSource final : public TraceSource {
 public:
  explicit MemoryTraceSource(const Trace& trace);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  void for_each(const EventVisitor& visit) const override;
  [[nodiscard]] std::uint64_t event_count() const override;
  [[nodiscard]] Trace materialize() const override;

 private:
  const Trace* trace_;
  TraceMeta meta_;
};

/// Streams a trace file (TSV, binary v1, or binary v2) from disk on
/// every pass. Holds only the header metadata — plus, for v2, the
/// footer index, which for_each_hinted uses to skip chunks.
class FileTraceSource final : public TraceSource {
 public:
  /// Opens the file once to sniff the format and cache metadata (for
  /// v2 this reads just header + footer, not the events). Throws
  /// std::runtime_error if unreadable or unrecognized.
  explicit FileTraceSource(std::string path);

  [[nodiscard]] const TraceMeta& meta() const override { return meta_; }
  void for_each(const EventVisitor& visit) const override;
  void for_each_hinted(const ChunkHint& hint,
                       const EventVisitor& visit) const override;
  [[nodiscard]] std::uint64_t event_count() const override;

  [[nodiscard]] TraceFormat format() const noexcept { return format_; }
  /// The v2 footer index; nullopt for TSV/v1 files.
  [[nodiscard]] const std::optional<TraceIndex>& index() const noexcept {
    return index_;
  }

 private:
  std::string path_;
  TraceFormat format_;
  TraceMeta meta_;
  std::optional<TraceIndex> index_;
};

}  // namespace eio::ipm
