// Streaming trace serialization: format kernels and the chunked,
// indexed binary format v2.
//
// Three on-disk formats share one event schema:
//
//  * TSV ("# ipm-io-trace v1"): human-readable, one event per line;
//  * binary v1 ("IPMIOB1\n"): varint-packed records behind an up-front
//    event count — compact, but monolithic;
//  * binary v2 ("IPMIOB2\n"): the row-oriented at-scale format. Events
//    are written in chunks, each preceded by a one-byte tag, and a
//    footer index records every chunk's offset, event count, op mask,
//    rank/phase ranges and time span. A fixed 16-byte trailer (footer
//    offset + magic) lets a seekable reader jump straight to the index
//    and scan only the chunks that can match a filter; a non-seekable
//    reader streams the tagged chunks in order. Either way, memory
//    stays O(chunk), never O(events);
//  * binary v3 ("IPMIOB3\n"): the columnar at-scale format — same
//    chunk/footer/trailer container as v2, but each chunk stores
//    per-column streams with delta+varint encoding and optional RLE
//    compression (see trace_v3.h).
//
// The functions here are the *kernels*: they parse or emit events one
// at a time through a visitor, and every error path throws
// std::runtime_error (truncated or corrupt input never yields a
// partial, silently-wrong trace). Trace::read/read_binary/load are
// thin materializing wrappers over these; TraceSource streams from
// them without materializing.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ipm/sink.h"
#include "ipm/trace.h"

namespace eio::ipm {

/// Per-event visitor used by all streaming readers.
using EventVisitor = std::function<void(const TraceEvent&)>;

/// Per-batch visitor: one call per run of consecutive events (one v2
/// chunk, one whole in-memory trace), amortizing the indirect call.
using BatchVisitor = std::function<void(std::span<const TraceEvent>)>;

/// Job-level metadata parsed from any format's header.
struct TraceMeta {
  std::string experiment;
  std::uint32_t ranks = 0;
  /// Total events, when the format declares it up front (TSV header
  /// field, v1 count, v2 footer); validated against the events
  /// actually parsed.
  std::optional<std::uint64_t> declared_events;
};

/// The serialization formats, as sniffed from leading magic bytes.
enum class TraceFormat : std::uint8_t { kTsv, kBinaryV1, kBinaryV2, kBinaryV3 };

/// Identify the format from the first bytes of a stream (the stream is
/// left positioned at the start). Throws if it matches none.
[[nodiscard]] TraceFormat sniff_format(std::istream& in);

/// Streaming readers: parse the header, call `visit` once per event in
/// stored order, and return the metadata. Throw std::runtime_error on
/// any malformed, truncated, or count-mismatched input.
TraceMeta stream_tsv(std::istream& in, const EventVisitor& visit);
TraceMeta stream_binary_v1(std::istream& in, const EventVisitor& visit);
TraceMeta stream_binary_v2(std::istream& in, const EventVisitor& visit);

/// Dispatch on sniff_format().
TraceMeta stream_any(std::istream& in, const EventVisitor& visit);

/// Streaming writers for the legacy formats. Both declare the event
/// count up front, so callers must know it before emitting (v2 has no
/// such requirement — its count lives in the footer).
void write_tsv_header(std::ostream& out, const std::string& experiment,
                      std::uint32_t ranks, std::uint64_t events);
void write_tsv_event(std::ostream& out, const TraceEvent& event);
void write_binary_v1_header(std::ostream& out, const std::string& experiment,
                            std::uint32_t ranks, std::uint64_t events);
void write_binary_v1_event(std::ostream& out, const TraceEvent& event);

// ---------------------------------------------------------------------------
// Binary format v2: chunked events + footer index.

/// Index entry summarizing one chunk of events.
struct ChunkMeta {
  std::uint64_t offset = 0;     ///< stream offset of the chunk tag byte
  std::uint64_t events = 0;
  std::uint32_t op_mask = 0;    ///< bit (1 << op) per op type present
  RankId rank_lo = 0, rank_hi = 0;
  std::int32_t phase_lo = 0, phase_hi = 0;
  double t_lo = 0.0;            ///< earliest event start
  double t_hi = 0.0;            ///< latest event end
  std::uint64_t data_bytes = 0; ///< read+write payload bytes in the chunk
};

/// The footer index of a v2 trace.
struct TraceIndex {
  TraceMeta meta;  ///< declared_events always set (footer total)
  std::vector<ChunkMeta> chunks;
  /// Stream offset of the footer tag byte (chunks end here). Zero for
  /// indexes not produced by read_index_v2 (e.g. default-constructed).
  std::uint64_t footer_offset = 0;
};

/// Exact on-disk byte length of chunk `i` (tag byte through last
/// event), derived from consecutive index offsets — chunks are written
/// back to back, so chunk i ends where chunk i+1 (or the footer)
/// begins. Requires an index from read_index_v2 (footer_offset set).
[[nodiscard]] std::uint64_t chunk_byte_length(const TraceIndex& index,
                                              std::size_t i);

/// Streaming v2 writer; usable directly as a capture sink, so the
/// monitor can emit an indexed trace file without ever materializing
/// the event list.
class TraceWriterV2 final : public EventSink {
 public:
  struct Options {
    std::size_t chunk_events = 4096;  ///< events buffered per chunk
  };

  TraceWriterV2(std::ostream& out, std::string experiment,
                std::uint32_t ranks);
  TraceWriterV2(std::ostream& out, std::string experiment,
                std::uint32_t ranks, Options options);
  ~TraceWriterV2() override;

  TraceWriterV2(const TraceWriterV2&) = delete;
  TraceWriterV2& operator=(const TraceWriterV2&) = delete;

  void add(const TraceEvent& event);
  void on_event(const TraceEvent& event) override { add(event); }

  /// Flush the trailing chunk and write the footer index + trailer.
  /// Idempotent; called by the destructor if the caller forgot, but
  /// explicit calls are preferred (destructors swallow I/O errors).
  void finish() override;

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return total_events_;
  }

 private:
  void flush_chunk();

  std::ostream* out_;
  Options options_;
  std::vector<TraceEvent> buffer_;
  std::vector<ChunkMeta> chunks_;
  std::uint64_t total_events_ = 0;
  bool finished_ = false;
};

/// Read the footer index of a v2 trace from a seekable stream.
/// Validates the trailer magic and footer bounds.
[[nodiscard]] TraceIndex read_index_v2(std::istream& in);

/// Visit the events of one indexed chunk (seeks to chunk.offset).
void stream_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                     const EventVisitor& visit);

/// Decode one indexed chunk with a single sized read: seek to
/// chunk.offset, pull byte_len raw bytes into `raw`, then decode the
/// events into `events` (cleared first) from memory — no per-field
/// istream calls on the hot path. byte_len must be the exact chunk
/// record length (see chunk_byte_length); the decode is required to
/// consume every byte, so a wrong length or corrupt chunk throws
/// std::runtime_error instead of yielding a partial batch. `raw` and
/// `events` are caller-owned scratch so repeated calls reuse their
/// capacity.
void read_chunk_v2(std::istream& in, const ChunkMeta& chunk,
                   std::uint64_t byte_len, std::vector<char>& raw,
                   std::vector<TraceEvent>& events);

}  // namespace eio::ipm
