// Online I/O health monitoring: streaming anomaly detection with
// deterministic incident records.
//
// The paper's core claim is that ensemble distributions of I/O event
// times are stable and reproducible — so *deviation from the
// distribution is a signal*. This module promotes the post-hoc
// core/diagnose detectors into an online layer that watches the event
// stream as it flows (through an EventSink during simulation, or as a
// Kernel inside the chunk-parallel analysis scan) and emits typed
// Incident records while the pathology is happening:
//
//  * degraded-ost       — rolling per-OST-class medians vs the median
//                         of class medians over a sliding event
//                         window, the exact diagnose rule evaluated
//                         incrementally;
//  * straggler-rank     — online order-statistics gap on phase
//                         completions, folded cumulatively as barriers
//                         close phases (converges to the post-hoc
//                         detector at end of stream);
//  * dist-drift         — two-sample KS statistic of the most recent
//                         per-op duration window against a frozen
//                         warm-up baseline (the IO500 statistical-
//                         characterization recipe);
//  * injected-*         — fault markers (OpType::kFault events carry
//                         the fault layer's Marker records through
//                         every trace format) are recovered into
//                         incidents directly, closing the loop: every
//                         injected plan is re-detected online.
//
// Determinism contract: incidents are a function of event content and
// window boundaries alone — never of wall clock, thread count, or
// backing format. HealthKernel models analysis::Kernel: the chunk-0
// kernel is "rooted" and evaluates detectors as events stream through
// it; later-chunk partials buffer the (rare) admissible events and
// replay them, in stream order, when merged — so merging per-chunk
// partials in chunk order is value-identical to one serial pass, and
// the incident log is byte-identical for any --jobs value and across
// tsv/v2/v3 encodings of the same values.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/kernel.h"
#include "ipm/columns.h"
#include "ipm/sink.h"
#include "ipm/trace.h"

namespace eio::monitor {

/// Detector identities (the statistical three + the injected-marker
/// family that recovers fault::Plan executions online).
enum class IncidentKind : std::uint8_t {
  kDegradedOst,
  kStragglerRank,
  kDistributionDrift,
  kInjectedOstDegraded,
  kInjectedStall,
  kInjectedRetry,
  kInjectedStraggler,
};

[[nodiscard]] const char* incident_name(IncidentKind kind) noexcept;

/// One health incident: a detector firing over a span of the event
/// stream. Onset/clear are global event indices (position in the
/// stored stream), so records are exact join keys into the trace.
struct Incident {
  IncidentKind kind{};
  /// What the incident is about: OST id (degraded/injected-ost), rank
  /// (straggler/stall/retry), or posix::OpType code (drift).
  std::uint64_t subject = 0;
  std::uint64_t onset_event = 0;  ///< stream index at which it opened
  std::int64_t clear_event = -1;  ///< -1: still open at end of stream
  double onset_time = 0.0;        ///< start time of the opening event
  double clear_time = -1.0;       ///< -1: still open
  double severity = 0.0;          ///< 0..1, mirrors diagnose formulas
  double statistic = 0.0;         ///< the offending statistic
  double threshold = 0.0;         ///< what it was compared against
  std::string evidence;           ///< human-readable one-liner
};

/// Aggregate monitoring counters for one stream (fault::Counts-style:
/// deterministic, mergeable by the kernel contract).
struct Counts {
  std::uint64_t windows_evaluated = 0;  ///< sliding-window evaluations
  std::uint64_t phases_evaluated = 0;   ///< straggler phase closures
  std::uint64_t incidents_opened = 0;
  std::uint64_t incidents_cleared = 0;
  std::uint64_t degraded_ost = 0;    ///< opened, by detector
  std::uint64_t straggler_rank = 0;
  std::uint64_t drift = 0;
  std::uint64_t injected = 0;

  [[nodiscard]] std::uint64_t open_at_finish() const noexcept {
    return incidents_opened - incidents_cleared;
  }
};

/// Detector tunables. The statistical thresholds are the diagnose
/// defaults so the online and post-hoc layers agree by construction.
struct HealthOptions {
  /// Master switch: a disabled kernel admits nothing, reads no
  /// columns, and costs one early-out per batch — what `analyze`
  /// without --monitor pays.
  bool enabled = true;
  /// OSTs on the machine the stream came from (0 disables the
  /// degraded-OST detector). Attribution is the diagnose convention:
  /// `(file - 1) % ost_count`.
  std::uint32_t ost_count = 0;
  Bytes stripe_size = 1 * MiB;
  /// Bulk-transfer admission threshold; 0 means stripe_size / 4 (the
  /// diagnose bulk filter).
  Bytes min_bytes = 0;
  /// Sliding-window capacity (admitted events) for the per-OST class
  /// statistics.
  std::size_t window = 2048;
  /// Admitted events between detector evaluations. Half the window:
  /// evaluations are 50%-overlapping slides, and the evaluation's
  /// O(window) median selection amortizes to ~2 doubles per admitted
  /// event — what keeps the monitored fused scan within a sliver of
  /// the unmonitored one.
  std::size_t stride = 1024;
  /// Per-op sample size of the frozen warm-up baseline and of the
  /// current window the KS drift test compares against it.
  std::size_t drift_window = 256;
  /// KS D at/above which drift fires; <= 0 disables the detector (the
  /// default: phase-structured workloads — write-back absorption, per-
  /// segment ramps — legitimately shift their duration distribution
  /// after warm-up, so drift-vs-baseline is an opt-in assertion that
  /// the workload is supposed to be stationary).
  double drift_d = 0.0;
  double degraded_ratio = 2.5;   ///< mirror of DiagnoserOptions
  double straggler_gap = 1.5;    ///< mirror of DiagnoserOptions
  std::size_t min_events = 32;   ///< mirror of DiagnoserOptions
  /// Hysteresis: consecutive firing evaluations before an incident
  /// opens, and consecutive quiet ones before it clears.
  int open_after = 1;
  int clear_after = 2;

  [[nodiscard]] Bytes admission_bytes() const noexcept {
    return min_bytes != 0 ? min_bytes : stripe_size / 4;
  }
};

/// The streaming health monitor as an analysis kernel (models
/// analysis::Kernel; see the determinism contract above). Construct
/// with chunk 0 for the rooted, immediately-evaluating instance — the
/// serial scan path and the EventSink wrapper below — or chunk > 0
/// for a buffering partial that replays on merge.
class HealthKernel {
 public:
  HealthKernel() : HealthKernel(HealthOptions{}, 0) {}
  explicit HealthKernel(HealthOptions options, std::size_t chunk = 0);

  void add(const ipm::TraceEvent& e);
  void add_batch(const ipm::ColumnBatch& b);

  /// Fold a later-stream partial into this one (kernel contract:
  /// merging chunk partials in chunk order == one serial pass).
  void merge(HealthKernel&& rhs);

  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept {
    // Markers ride in offset/file, detectors read everything else.
    return options_.enabled ? ipm::kColAll : ipm::ColumnMask{0};
  }

  /// End of stream: close open phases, run a final trailing-window
  /// evaluation, and leave unresolved incidents open (clear_event
  /// stays -1). Idempotent; only meaningful on the rooted kernel.
  void finish();

  [[nodiscard]] const HealthOptions& options() const noexcept {
    return options_;
  }
  /// Incidents in deterministic open order (evaluation order).
  [[nodiscard]] const std::vector<Incident>& incidents() const noexcept {
    return incidents_;
  }
  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }
  /// Total events consumed (all rows, admitted or not).
  [[nodiscard]] std::uint64_t events_consumed() const noexcept {
    return consumed_;
  }

 private:
  struct PhaseAgg {
    double start = 0.0;
    bool any = false;
    /// Latest completion per rank, indexed by rank; -1 = rank unseen.
    /// Flat so the per-event update is an array store, and the
    /// closing scan walks ranks ascending (ties resolve to the lowest
    /// rank, exactly as the ordered map it replaced).
    std::vector<double> end_by_rank;
    std::size_t ranks = 0;  ///< slots >= 0 in end_by_rank
  };
  struct DriftState {
    std::vector<double> baseline;  ///< frozen once it reaches drift_window
    bool frozen = false;
    std::deque<double> recent;     ///< sliding current window
    std::uint64_t since_freeze = 0;
  };
  /// Hysteresis + open-incident bookkeeping per (kind, subject).
  struct Track {
    int hot = 0;
    int cold = 0;
    std::ptrdiff_t open = -1;    ///< index into incidents_, -1 = none
    std::uint64_t count = 0;     ///< injected-marker accumulator
    double seconds = 0.0;        ///< injected-marker accumulator
  };

  void process(const ipm::TraceEvent& e, std::uint64_t idx);
  void on_marker(const ipm::TraceEvent& e, std::uint64_t idx);
  void close_phases_below(std::int32_t phase, std::uint64_t idx, double time);
  void evaluate_straggler(std::uint64_t idx, double time);
  void evaluate_windows(std::uint64_t idx, double time);
  void evaluate_degraded(std::uint64_t idx, double time);
  void evaluate_drift(std::uint64_t idx, double time);

  /// One evaluation outcome for `kind`: `firing` names the offending
  /// subject (nullopt = quiet). Applies hysteresis, opens/clears.
  void score(IncidentKind kind, std::optional<std::uint64_t> firing,
             double statistic, double threshold, double severity,
             const std::string& evidence, std::uint64_t idx, double time);
  Incident& open_incident(IncidentKind kind, std::uint64_t subject,
                          Track& track, std::uint64_t idx, double time);
  void clear_incident(Track& track, std::uint64_t idx, double time);

  HealthOptions options_;
  bool rooted_ = true;
  bool finished_ = false;
  std::uint64_t consumed_ = 0;  ///< all rows seen (global index base)
  std::uint64_t admitted_ = 0;
  std::uint64_t since_eval_ = 0;
  double last_time_ = 0.0;

  /// Buffered admissible events of an unrooted partial: (local index,
  /// event) pairs replayed on merge.
  std::vector<std::pair<std::uint64_t, ipm::TraceEvent>> buffered_;

  // --- degraded-OST sliding window (class id, duration); class
  // UINT32_MAX = admitted bulk event without a file id (counted for
  // min_events, never classed — mirrors diagnose). Fixed-capacity
  // ring: order never matters to the per-class medians, so eviction
  // is an overwrite at the wrap cursor.
  std::vector<std::pair<std::uint32_t, double>> class_ring_;
  std::size_t ring_next_ = 0;
  // Evaluation scratch, reused so the stride-periodic evaluation
  // allocates only while a buffer is still growing.
  std::vector<std::vector<double>> by_class_scratch_;
  std::vector<std::pair<std::uint32_t, double>> medians_scratch_;
  std::vector<double> meds_scratch_;

  // --- straggler cumulative phase statistics. The current phase is
  // cached as a raw pointer: map nodes are stable, and the lookup
  // only reruns when the stream's phase actually changes.
  std::map<std::int32_t, PhaseAgg> phases_;
  std::int32_t cur_phase_ = 0;
  PhaseAgg* cur_agg_ = nullptr;
  std::uint64_t phase_events_ = 0;
  std::size_t phases_considered_ = 0;
  std::size_t phases_firing_ = 0;
  std::map<RankId, std::size_t> votes_;
  double worst_gap_ = 1.0;

  // --- per-op drift state (key: posix::OpType code).
  std::map<std::uint8_t, DriftState> drift_;

  std::map<std::pair<std::uint8_t, std::uint64_t>, Track> tracks_;
  std::vector<Incident> incidents_;
  Counts counts_;
};

static_assert(analysis::Kernel<HealthKernel>);

/// EventSink adapter: live monitoring during simulation (the --monitor
/// path of `eiotrace simulate`). Wraps a rooted kernel; finish() seals
/// the stream.
class HealthSink final : public ipm::EventSink {
 public:
  explicit HealthSink(HealthOptions options)
      : kernel_(std::move(options), 0) {}

  void on_event(const ipm::TraceEvent& event) override { kernel_.add(event); }
  void finish() override { kernel_.finish(); }

  [[nodiscard]] HealthKernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const HealthKernel& kernel() const noexcept { return kernel_; }

 private:
  HealthKernel kernel_;
};

/// Serialize incidents as JSONL (one object per line, fixed key order,
/// %.9g doubles): deterministic given deterministic incidents. `run`
/// tags each line for multi-run ensembles.
void write_incidents_jsonl(std::ostream& out,
                           const std::vector<Incident>& incidents,
                           std::uint64_t run = 0);

/// Human-readable incident table (the `eiotrace monitor` output).
void print_incident_table(std::ostream& out,
                          const std::vector<Incident>& incidents);

/// One-line counters summary.
void print_counts(std::ostream& out, const Counts& counts);

}  // namespace eio::monitor
