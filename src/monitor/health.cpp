#include "monitor/health.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/ks.h"
#include "fault/plan.h"
#include "obs/registry.h"
#include "posix/hooks.h"

namespace eio::monitor {
namespace {

/// %.9g matches the binary formats' value fidelity: two streams that
/// carry the same doubles serialize to the same bytes.
void append_double(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  s += buf;
}

[[nodiscard]] std::string fmt(double v, const char* spec = "%.6g") {
  char buf[40];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

[[nodiscard]] bool is_data_op(posix::OpType op) noexcept {
  return op == posix::OpType::kRead || op == posix::OpType::kWrite;
}

/// Exact mirror of EmpiricalDistribution::median() — the interpolated
/// quantile at q = 0.5 — via selection instead of a full sort.
/// Reorders `v`.
[[nodiscard]] double median_inplace(std::vector<double>& v) {
  if (v.size() == 1) return v[0];
  const double pos = 0.5 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  auto mid = v.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(v.begin(), mid, v.end());
  const double a = v[lo];
  if (frac == 0.0) return a;
  const double b = *std::min_element(mid + 1, v.end());
  return a * (1.0 - frac) + b * frac;
}

}  // namespace

const char* incident_name(IncidentKind kind) noexcept {
  switch (kind) {
    case IncidentKind::kDegradedOst: return "degraded-ost";
    case IncidentKind::kStragglerRank: return "straggler-rank";
    case IncidentKind::kDistributionDrift: return "dist-drift";
    case IncidentKind::kInjectedOstDegraded: return "injected-ost-degraded";
    case IncidentKind::kInjectedStall: return "injected-stall";
    case IncidentKind::kInjectedRetry: return "injected-retry";
    case IncidentKind::kInjectedStraggler: return "injected-straggler-stall";
  }
  return "?";
}

HealthKernel::HealthKernel(HealthOptions options, std::size_t chunk)
    : options_(std::move(options)), rooted_(chunk == 0) {}

void HealthKernel::add(const ipm::TraceEvent& e) {
  if (!options_.enabled) return;
  const std::uint64_t idx = consumed_++;
  const bool interesting =
      e.op == posix::OpType::kFault ||
      (is_data_op(e.op) && e.bytes >= options_.admission_bytes());
  if (!interesting) return;
  if (rooted_) {
    process(e, idx);
  } else {
    buffered_.emplace_back(idx, e);
  }
}

void HealthKernel::add_batch(const ipm::ColumnBatch& b) {
  if (!options_.enabled) return;
  // Columnar fast path: the admission filter reads only op and bytes,
  // so rejected rows (the common case on mixed traces) never
  // materialize a row view. Same admission + indexing as add().
  const Bytes admit = options_.admission_bytes();
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto op = static_cast<posix::OpType>(b.op[i]);
    const bool interesting =
        op == posix::OpType::kFault || (is_data_op(op) && b.bytes[i] >= admit);
    const std::uint64_t idx = consumed_++;
    if (!interesting) continue;
    if (rooted_) {
      process(b.event_at(i), idx);
    } else {
      buffered_.emplace_back(idx, b.event_at(i));
    }
  }
}

void HealthKernel::merge(HealthKernel&& rhs) {
  if (!options_.enabled) return;
  const std::uint64_t base = consumed_;
  if (rooted_) {
    for (const auto& [idx, e] : rhs.buffered_) process(e, base + idx);
  } else {
    buffered_.reserve(buffered_.size() + rhs.buffered_.size());
    for (auto& [idx, e] : rhs.buffered_) buffered_.emplace_back(base + idx, e);
  }
  consumed_ = base + rhs.consumed_;
}

void HealthKernel::process(const ipm::TraceEvent& e, std::uint64_t idx) {
  last_time_ = e.start;
  if (e.op == posix::OpType::kFault) {
    on_marker(e, idx);
    return;
  }

  // Phase bookkeeping first: an admitted event with a later phase
  // proves every earlier phase is barrier-complete, so close them.
  // The close + map lookup only run on a phase transition; within a
  // phase the cached pointer is current (transitions are the only
  // place aggs are created, so no lower phase can appear in between).
  if (cur_agg_ == nullptr || e.phase != cur_phase_) {
    close_phases_below(e.phase, idx, e.start);
    cur_agg_ = &phases_[e.phase];
    cur_phase_ = e.phase;
  }
  PhaseAgg& agg = *cur_agg_;
  if (!agg.any || e.start < agg.start) agg.start = e.start;
  agg.any = true;
  if (agg.end_by_rank.size() <= e.rank) {
    agg.end_by_rank.resize(static_cast<std::size_t>(e.rank) + 1, -1.0);
  }
  double& end = agg.end_by_rank[e.rank];
  if (end < 0.0) {
    ++agg.ranks;
    end = e.end();
  } else {
    end = std::max(end, e.end());
  }
  ++phase_events_;

  // Degraded-OST sliding window.
  if (options_.ost_count != 0) {
    const std::uint32_t cls =
        e.file != kInvalidFile
            ? static_cast<std::uint32_t>((e.file - 1) % options_.ost_count)
            : ~std::uint32_t{0};
    if (class_ring_.size() < options_.window) {
      class_ring_.emplace_back(cls, e.duration);
    } else {
      class_ring_[ring_next_] = {cls, e.duration};
      if (++ring_next_ == options_.window) ring_next_ = 0;
    }
  }

  // Drift: per-op warm-up baseline, then a sliding current window.
  if (options_.drift_d > 0.0) {
    DriftState& d = drift_[static_cast<std::uint8_t>(e.op)];
    if (!d.frozen) {
      d.baseline.push_back(e.duration);
      if (d.baseline.size() >= options_.drift_window) d.frozen = true;
    } else {
      d.recent.push_back(e.duration);
      if (d.recent.size() > options_.drift_window) d.recent.pop_front();
      ++d.since_freeze;
    }
  }

  ++admitted_;
  if (++since_eval_ >= options_.stride) {
    since_eval_ = 0;
    evaluate_windows(idx, e.start);
  }
}

void HealthKernel::on_marker(const ipm::TraceEvent& e, std::uint64_t idx) {
  // Marker encoding (fault/plan.h): file = component, offset = kind,
  // duration = detail seconds.
  const auto kind = static_cast<fault::Kind>(e.offset);
  switch (kind) {
    case fault::Kind::kOstDegraded: {
      Track& t = tracks_[{static_cast<std::uint8_t>(
                              IncidentKind::kInjectedOstDegraded),
                          e.file}];
      if (t.open >= 0) return;  // window already open for this OST
      Incident& inc = open_incident(IncidentKind::kInjectedOstDegraded, e.file,
                                    t, idx, e.start);
      const double factor = e.duration;
      inc.severity = std::clamp(1.0 - factor, 0.0, 1.0);
      inc.statistic = factor;
      inc.threshold = 1.0;
      inc.evidence = "OST " + std::to_string(e.file) +
                     " bandwidth degraded to " + fmt(factor) + "x (injected)";
      ++counts_.injected;
      break;
    }
    case fault::Kind::kOstRestored: {
      auto it = tracks_.find({static_cast<std::uint8_t>(
                                  IncidentKind::kInjectedOstDegraded),
                              e.file});
      if (it != tracks_.end() && it->second.open >= 0) {
        clear_incident(it->second, idx, e.start);
      }
      break;
    }
    case fault::Kind::kStall:
    case fault::Kind::kRetry:
    case fault::Kind::kStragglerStall: {
      const IncidentKind ik = kind == fault::Kind::kStall
                                  ? IncidentKind::kInjectedStall
                              : kind == fault::Kind::kRetry
                                  ? IncidentKind::kInjectedRetry
                                  : IncidentKind::kInjectedStraggler;
      const std::uint64_t subject = e.rank;
      Track& t = tracks_[{static_cast<std::uint8_t>(ik), subject}];
      ++t.count;
      t.seconds += e.duration;
      if (t.open < 0) {
        open_incident(ik, subject, t, idx, e.start);
        ++counts_.injected;
      }
      Incident& inc = incidents_[static_cast<std::size_t>(t.open)];
      inc.statistic = static_cast<double>(t.count);
      inc.threshold = 1.0;
      inc.severity = std::min(1.0, 0.05 * static_cast<double>(t.count));
      const char* what = ik == IncidentKind::kInjectedStall ? "stall(s)"
                         : ik == IncidentKind::kInjectedRetry
                             ? "retried op(s)"
                             : "straggler stall(s)";
      inc.evidence = "rank " + std::to_string(subject) + ": " +
                     std::to_string(t.count) + " injected " + what + ", " +
                     fmt(t.seconds) + "s total delay";
      break;
    }
  }
}

void HealthKernel::close_phases_below(std::int32_t phase, std::uint64_t idx,
                                      double time) {
  while (!phases_.empty() && phases_.begin()->first < phase) {
    const PhaseAgg& agg = phases_.begin()->second;
    // Mirror of detect_straggler_rank's per-phase step: top-two
    // completion offsets, a vote for the slowest when the gap fires.
    if (agg.ranks >= 4) {
      ++phases_considered_;
      ++counts_.phases_evaluated;
      RankId slowest = kInvalidRank;
      double t1 = 0.0, t2 = 0.0;
      for (RankId rank = 0; rank < agg.end_by_rank.size(); ++rank) {
        const double end = agg.end_by_rank[rank];
        if (end < 0.0) continue;  // rank unseen this phase
        double t = end - agg.start;
        if (t > t1) {
          t2 = t1;
          t1 = t;
          slowest = rank;
        } else if (t > t2) {
          t2 = t;
        }
      }
      if (t2 > 0.0 && t1 / t2 >= options_.straggler_gap) {
        ++phases_firing_;
        ++votes_[slowest];
        worst_gap_ = std::max(worst_gap_, t1 / t2);
      }
      evaluate_straggler(idx, time);
    }
    phases_.erase(phases_.begin());
  }
}

void HealthKernel::evaluate_straggler(std::uint64_t idx, double time) {
  // Cumulative mirror of the post-hoc overall rule: at end of stream
  // this state equals detect_straggler_rank's, so online and post-hoc
  // findings agree on the rank by construction.
  std::optional<std::uint64_t> firing;
  double severity = 0.0;
  std::string evidence;
  if (phase_events_ >= options_.min_events && phases_considered_ >= 3 &&
      phases_firing_ >= 2 && phases_firing_ * 2 >= phases_considered_) {
    auto leader = std::max_element(
        votes_.begin(), votes_.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    double consistency = static_cast<double>(leader->second) /
                         static_cast<double>(phases_firing_);
    if (consistency >= 2.0 / 3.0) {
      firing = leader->first;
      severity = std::min(1.0, consistency * (0.4 + 0.1 * worst_gap_));
      evidence = "rank " + std::to_string(leader->first) + ": slowest in " +
                 std::to_string(leader->second) + " of " +
                 std::to_string(phases_firing_) + " stretched phases (worst gap " +
                 fmt(worst_gap_) + "x the second-slowest)";
    }
  }
  score(IncidentKind::kStragglerRank, firing, worst_gap_,
        options_.straggler_gap, severity, evidence, idx, time);
}

void HealthKernel::evaluate_windows(std::uint64_t idx, double time) {
  ++counts_.windows_evaluated;
  OBS_COUNTER_ADD("monitor.windows_evaluated", 1);
  evaluate_degraded(idx, time);
  evaluate_drift(idx, time);
}

void HealthKernel::evaluate_degraded(std::uint64_t idx, double time) {
  if (options_.ost_count == 0) return;
  std::optional<std::uint64_t> firing;
  double statistic = 0.0;
  double severity = 0.0;
  std::string evidence;
  if (class_ring_.size() >= options_.min_events) {
    // The diagnose rule over the sliding window: per-class medians for
    // classes with >= 6 events, baseline = median of class medians,
    // fire on a lone dominant outlier class. All buffers are reused
    // scratch; the medians come from selection, not full sorts.
    if (by_class_scratch_.size() != options_.ost_count) {
      by_class_scratch_.assign(options_.ost_count, {});
    }
    for (auto& ds : by_class_scratch_) ds.clear();
    for (const auto& [cls, dur] : class_ring_) {
      if (cls == ~std::uint32_t{0}) continue;
      by_class_scratch_[cls].push_back(dur);
    }
    medians_scratch_.clear();
    for (std::uint32_t ost = 0; ost < options_.ost_count; ++ost) {
      std::vector<double>& ds = by_class_scratch_[ost];
      if (ds.size() < 6) continue;
      medians_scratch_.emplace_back(ost, median_inplace(ds));
    }
    const auto& class_medians = medians_scratch_;
    if (class_medians.size() >= 3) {
      meds_scratch_.clear();
      for (const auto& [ost, m] : class_medians) meds_scratch_.push_back(m);
      double baseline = median_inplace(meds_scratch_);
      if (baseline > 0.0) {
        const std::pair<std::uint32_t, double>* top = nullptr;
        double second_ratio = 0.0;
        for (const auto& cm : class_medians) {
          double r = cm.second / baseline;
          if (top == nullptr || r > top->second / baseline) {
            if (top != nullptr) {
              second_ratio = std::max(second_ratio, top->second / baseline);
            }
            top = &cm;
          } else {
            second_ratio = std::max(second_ratio, r);
          }
        }
        double top_ratio = top->second / baseline;
        if (top_ratio >= options_.degraded_ratio &&
            top_ratio >= 1.5 * std::max(1.0, second_ratio)) {
          firing = top->first;
          statistic = top_ratio;
          severity = std::min(1.0, 0.25 * top_ratio);
          evidence = "OST " + std::to_string(top->first) +
                     ": class median runs " + fmt(top_ratio) +
                     "x the fleet median over the last " +
                     std::to_string(class_ring_.size()) +
                     " bulk transfers (" +
                     std::to_string(by_class_scratch_[top->first].size()) +
                     " events; runner-up at " + fmt(second_ratio) + "x)";
        }
      }
    }
  }
  score(IncidentKind::kDegradedOst, firing, statistic, options_.degraded_ratio,
        severity, evidence, idx, time);
}

void HealthKernel::evaluate_drift(std::uint64_t idx, double time) {
  if (options_.drift_d <= 0.0) return;
  // Each op with a frozen baseline and a full, baseline-disjoint
  // current window gets its own KS test — one score() per op so the
  // hysteresis tracks stay per-subject.
  for (auto& [op, d] : drift_) {
    if (!d.frozen || d.recent.size() < options_.drift_window) continue;
    std::vector<double> current(d.recent.begin(), d.recent.end());
    stats::KsResult ks = stats::ks_two_sample(d.baseline, current);
    std::optional<std::uint64_t> firing;
    double severity = 0.0;
    std::string evidence;
    if (ks.statistic >= options_.drift_d) {
      firing = op;
      severity = std::min(1.0, ks.statistic);
      evidence = std::string(posix::op_name(static_cast<posix::OpType>(op))) +
                 " durations: KS D = " + fmt(ks.statistic) +
                 " vs the warm-up baseline (" +
                 std::to_string(options_.drift_window) + " samples each)";
    }
    score(IncidentKind::kDistributionDrift, firing, ks.statistic,
          options_.drift_d, severity, evidence, idx, time);
  }
}

void HealthKernel::score(IncidentKind kind,
                         std::optional<std::uint64_t> firing, double statistic,
                         double threshold, double severity,
                         const std::string& evidence, std::uint64_t idx,
                         double time) {
  const auto code = static_cast<std::uint8_t>(kind);
  if (firing) {
    Track& t = tracks_[{code, *firing}];
    ++t.hot;
    t.cold = 0;
    if (t.open < 0 && t.hot >= options_.open_after) {
      Incident& inc = open_incident(kind, *firing, t, idx, time);
      inc.statistic = statistic;
      inc.threshold = threshold;
      inc.severity = severity;
      inc.evidence = evidence;
      switch (kind) {
        case IncidentKind::kDegradedOst: ++counts_.degraded_ost; break;
        case IncidentKind::kStragglerRank: ++counts_.straggler_rank; break;
        case IncidentKind::kDistributionDrift: ++counts_.drift; break;
        default: break;
      }
    } else if (t.open >= 0) {
      // Keep the open incident's evidence current: the record shows
      // the strongest statistic seen while it was open.
      Incident& inc = incidents_[static_cast<std::size_t>(t.open)];
      if (statistic > inc.statistic) {
        inc.statistic = statistic;
        inc.severity = severity;
        inc.evidence = evidence;
      }
    }
  }
  // Every other track of this kind saw a quiet evaluation.
  for (auto& [key, t] : tracks_) {
    if (key.first != code) continue;
    if (firing && key.second == *firing) continue;
    t.hot = 0;
    if (t.open >= 0 && ++t.cold >= options_.clear_after) {
      clear_incident(t, idx, time);
    }
  }
}

Incident& HealthKernel::open_incident(IncidentKind kind, std::uint64_t subject,
                                      Track& track, std::uint64_t idx,
                                      double time) {
  Incident inc;
  inc.kind = kind;
  inc.subject = subject;
  inc.onset_event = idx;
  inc.onset_time = time;
  track.open = static_cast<std::ptrdiff_t>(incidents_.size());
  incidents_.push_back(std::move(inc));
  ++counts_.incidents_opened;
  OBS_COUNTER_ADD("monitor.incidents_opened", 1);
  obs::record_instant(std::string("incident open: ") + incident_name(kind) +
                      " #" + std::to_string(subject));
  return incidents_.back();
}

void HealthKernel::clear_incident(Track& track, std::uint64_t idx,
                                  double time) {
  Incident& inc = incidents_[static_cast<std::size_t>(track.open)];
  inc.clear_event = static_cast<std::int64_t>(idx);
  inc.clear_time = time;
  track.open = -1;
  track.hot = 0;
  track.cold = 0;
  ++counts_.incidents_cleared;
  OBS_COUNTER_ADD("monitor.incidents_cleared", 1);
  obs::record_instant(std::string("incident clear: ") +
                      incident_name(inc.kind) + " #" +
                      std::to_string(inc.subject));
}

void HealthKernel::finish() {
  if (!options_.enabled || !rooted_ || finished_) return;
  finished_ = true;
  const std::uint64_t idx = consumed_;
  // Barriers never close the final phase — the end of stream does.
  close_phases_below(std::numeric_limits<std::int32_t>::max(), idx, last_time_);
  cur_agg_ = nullptr;  // everything it could point at was just erased
  if (since_eval_ > 0) {
    since_eval_ = 0;
    evaluate_windows(idx, last_time_);
  }
}

void write_incidents_jsonl(std::ostream& out,
                           const std::vector<Incident>& incidents,
                           std::uint64_t run) {
  std::string line;
  for (const Incident& inc : incidents) {
    line.clear();
    line += "{\"run\":";
    line += std::to_string(run);
    line += ",\"kind\":\"";
    line += incident_name(inc.kind);
    line += "\",\"subject\":";
    line += std::to_string(inc.subject);
    line += ",\"onset_event\":";
    line += std::to_string(inc.onset_event);
    line += ",\"clear_event\":";
    line += std::to_string(inc.clear_event);
    line += ",\"onset_time\":";
    append_double(line, inc.onset_time);
    line += ",\"clear_time\":";
    append_double(line, inc.clear_time);
    line += ",\"severity\":";
    append_double(line, inc.severity);
    line += ",\"statistic\":";
    append_double(line, inc.statistic);
    line += ",\"threshold\":";
    append_double(line, inc.threshold);
    line += ",\"evidence\":\"";
    for (char c : inc.evidence) {
      // Evidence strings are ASCII by construction; escape the two
      // JSON-significant characters anyway.
      if (c == '"' || c == '\\') line += '\\';
      line += c;
    }
    line += "\"}\n";
    out << line;
  }
}

void print_incident_table(std::ostream& out,
                          const std::vector<Incident>& incidents) {
  if (incidents.empty()) {
    out << "no incidents\n";
    return;
  }
  out << "  kind                      subj   onset-evt   onset(s)   "
         "clear-evt   sev    evidence\n";
  for (const Incident& inc : incidents) {
    char line[128];
    std::snprintf(line, sizeof line, "  %-25s %5llu %11llu %10.4f %11lld %5.2f",
                  incident_name(inc.kind),
                  static_cast<unsigned long long>(inc.subject),
                  static_cast<unsigned long long>(inc.onset_event),
                  inc.onset_time, static_cast<long long>(inc.clear_event),
                  inc.severity);
    out << line << "   " << inc.evidence << "\n";
  }
}

void print_counts(std::ostream& out, const Counts& counts) {
  out << "monitor: " << counts.incidents_opened << " incident(s) opened, "
      << counts.incidents_cleared << " cleared, " << counts.open_at_finish()
      << " open at end (" << counts.windows_evaluated
      << " window evaluations, " << counts.phases_evaluated
      << " phase closures)\n";
}

}  // namespace eio::monitor
