// The campaign service commands: `campaign` (parent dispatcher) and
// `campaign-worker` (child process mode). Both are thin flag shims
// over the campaign library — the orchestration itself (sweep
// expansion, fork/exec sharding, store merge, fleet report) lives in
// src/campaign so tests and embedding binaries drive it as library
// calls.
#include <iostream>
#include <ostream>

#include "campaign/campaign.h"
#include "campaign/worker.h"
#include "cli/commands.h"

namespace eio::cli {

int cmd_campaign(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  if (args.positional().empty()) {
    ctx.es() << "eiotrace: campaign needs a manifest (scenario/sweep file "
                "or directory)\n";
    return 1;
  }
  campaign::CampaignOptions opt;
  opt.manifest = args.positional()[0];
  opt.out_dir = args.get("out", "campaign-out");
  opt.workers = args.get_size("workers", 1);
  opt.run_jobs = args.get_size("run-jobs", 1);
  opt.run_timeout = args.get_double("run-timeout", 0.0);
  opt.plan_only = args.has("plan-only");
  opt.worker_exe = args.get("worker-exe", "");
  if (args.has("inject-crash-run")) {
    opt.inject_crash_run = args.get_size("inject-crash-run", 0);
  }
  if (args.has("inject-hang-run")) {
    opt.inject_hang_run = args.get_size("inject-hang-run", 0);
  }
  return campaign::run_campaign(opt, ctx.os(), ctx.es());
}

int cmd_campaign_worker(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  campaign::WorkerOptions opt;
  opt.plans_path = args.get("plans", "");
  opt.store_path = args.get("store", "");
  opt.run_jobs = args.get_size("run-jobs", 1);
  if (opt.plans_path.empty() || opt.store_path.empty()) {
    ctx.es() << "eiotrace: campaign-worker needs --plans and --store\n";
    return 1;
  }
  // The protocol rides the process's real stdin/stdout (the dispatcher
  // holds the pipe ends), not the CommandContext streams.
  return campaign::run_worker(opt, std::cin, std::cout, ctx.es());
}

}  // namespace eio::cli
