// Shared pieces of the command implementations: filter construction,
// the chunk-parallel scanner, table/chart renderers, and the monitor
// plumbing. Internal to the CLI library — commands include this, the
// public surface is cli/eiotrace.h + cli/command.h + cli/options.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cli/options.h"
#include "core/parallel_analysis.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "ipm/trace_source.h"
#include "monitor/health.h"

namespace eio::cli {

/// Build an event filter from the common --op/--phase/--min-bytes/...
/// flags. Throws std::invalid_argument (after printing) on a bad --op.
[[nodiscard]] analysis::EventFilter filter_from(const Parsed& args,
                                                std::ostream& err);

/// The chunk-parallel engine for this invocation, when the source is
/// an indexed (v2/v3) file: borrows the already-read footer index, so
/// construction is free. TSV/v1 sources return nullopt and commands
/// fall back to serial batched streaming.
[[nodiscard]] std::optional<ipm::ParallelTraceScanner> scanner_for(
    const ipm::TraceSource& source, const Parsed& args);

// Shared table/chart renderers, so the standalone subcommands and the
// fused `analyze` bundle print identical sections.
void print_summary_header(std::ostream& out);
void print_summary_row(std::ostream& out, posix::OpType op,
                       const stats::StreamingSummary& s);
void print_phase_table(
    std::ostream& out,
    const std::map<std::int32_t, stats::StreamingSummary>& by_phase);
void print_histogram_chart(std::ostream& out, const stats::Histogram& h,
                           bool log);
void print_rate_chart(std::ostream& out, const analysis::TimeSeries& series);

/// Monitor options from the --ost-count/--window/--stride/--drift-d
/// flags (defaults match the monitor command's table).
[[nodiscard]] monitor::HealthOptions monitor_options_from(const Parsed& args);

/// Write the incident log named by --incidents (0 = ok, 1 = I/O error,
/// no-op when the flag is absent). `runs` is a parallel run-id vector
/// for ensembles; empty means "all run 0".
int write_incident_log(const Parsed& args,
                       const std::vector<monitor::Incident>& incidents,
                       const std::vector<std::uint64_t>& runs,
                       std::ostream& out, std::ostream& err);

/// Short name of a trace format ("tsv", "v1", ...).
[[nodiscard]] const char* format_label(ipm::TraceFormat format);

}  // namespace eio::cli
