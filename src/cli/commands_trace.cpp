// The trace-analysis command handlers. Every subcommand consumes a
// TraceSource: the trace file is streamed per analysis pass, never
// materialized, so peak memory is independent of the event count
// (except where noted: diagnose/patterns need random access and
// materialize internally).
//
// Each analysis subcommand builds a kernel (or KernelSet) factory and
// hands it to analysis::run_kernels: exactly ONE trace scan per
// invocation — chunk-parallel on indexed (v2/v3) files, one serial
// columnar pass otherwise — no matter how many statistics it fuses.
//
// Commands on the machine-readable contract (summary, analyze,
// diagnose, monitor) honor --json: one compact JSON document on
// stdout, schema_version + fixed key order + %.9g floats via the
// shared campaign::json_out emitters.
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "campaign/json_out.h"
#include "cli/commands.h"
#include "cli/helpers.h"
#include "common/units.h"
#include "core/diagnose.h"
#include "core/distribution.h"
#include "core/histogram.h"
#include "core/ks.h"
#include "core/modes.h"
#include "core/patterns.h"
#include "core/streaming.h"
#include "core/trace_diagram.h"
#include "ipm/report.h"
#include "ipm/trace.h"
#include "ipm/trace_stream.h"
#include "ipm/trace_v3.h"
#include "monitor/health.h"

namespace eio::cli {

int cmd_report(CommandContext& ctx) {
  ipm::print_report(ctx.os(), ipm::summarize(*ctx.source));
  return 0;
}

int cmd_summary(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  analysis::EventFilter base = filter_from(args, ctx.es());
  analysis::EventFilter wf = base, rf = base;
  wf.op = posix::OpType::kWrite;
  rf.op = posix::OpType::kRead;
  auto scanner = scanner_for(source, args);
  // One fused scan feeds both per-op summaries; the hint union still
  // skips chunks containing neither op. Per-chunk substream seeds keep
  // the result identical to the former scan-per-op output (a chunk
  // without, say, writes folds an empty write partial, and empty
  // partials merge as no-ops).
  const ipm::ChunkHint hint =
      ipm::ChunkHint::union_of(analysis::hint_for(wf), analysis::hint_for(rf));
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        stats::SummaryOptions opts = analysis::chunk_summary_options({}, chunk);
        return analysis::KernelSet(analysis::SummarySink(wf, opts),
                                   analysis::SummarySink(rf, opts));
      });
  if (ctx.json()) {
    json::Writer w(ctx.os());
    w.begin_object();
    w.kv("schema_version", campaign::kOutputSchemaVersion);
    w.kv("command", "summary");
    w.key("write");
    campaign::write_summary(w, merged.get<0>().summary());
    w.key("read");
    campaign::write_summary(w, merged.get<1>().summary());
    w.end_object();
    ctx.os() << "\n";
    return 0;
  }
  print_summary_header(ctx.os());
  print_summary_row(ctx.os(), posix::OpType::kWrite, merged.get<0>().summary());
  print_summary_row(ctx.os(), posix::OpType::kRead, merged.get<1>().summary());
  return 0;
}

int cmd_histogram(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  analysis::EventFilter filter = filter_from(args, ctx.es());
  bool log = args.has("log");
  auto bins = args.get_size("bins", 40);
  stats::BinScale scale =
      log ? stats::BinScale::kLog10 : stats::BinScale::kLinear;
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  // ONE scan: StreamingHistogram folds range discovery and filling
  // together (bit-identical to the historical extrema+fill double scan
  // while the matched count fits its exact buffer).
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t) {
        return analysis::HistogramKernel(filter, {.scale = scale, .bins = bins});
      });
  std::optional<stats::Histogram> h = merged.histogram().materialize();
  if (!h) {
    ctx.es() << "eiotrace: no events match the filter\n";
    return 2;
  }
  print_histogram_chart(ctx.os(), *h, log);
  return 0;
}

int cmd_modes(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  analysis::EventFilter filter = filter_from(args, ctx.es());
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        return analysis::SummarySink(filter,
                                     analysis::chunk_summary_options({}, chunk));
      });
  const stats::StreamingSummary& s = merged.summary();
  if (s.empty()) {
    ctx.es() << "eiotrace: no events match the filter\n";
    return 2;
  }
  // KDE runs over the reservoir — every duration while the stream fits
  // (so results match the materialized path exactly), a uniform sample
  // beyond that.
  auto modes = stats::find_modes(
      s.reservoir().samples(),
      {.log_axis = args.has("log"),
       .bandwidth_scale = args.get_double("bandwidth", 0.5)});
  ctx.os() << "modes (" << s.count() << " events):\n";
  for (const auto& m : modes) {
    char line[120];
    std::snprintf(line, sizeof line, "  at %10.4f s   mass %5.1f%%\n",
                  m.location, m.mass * 100.0);
    ctx.os() << line;
  }
  auto matched = stats::harmonic_signature(modes);
  if (matched.size() > 1) {
    ctx.os() << "harmonic signature:";
    for (int h : matched) ctx.os() << " T/" << h;
    ctx.os() << "  -> intra-node stream serialization likely\n";
  }
  return 0;
}

int cmd_rates(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  auto bins = args.get_size("bins", 100);
  analysis::EventFilter filter = filter_from(args, ctx.es());
  auto scanner = scanner_for(source, args);
  // Indexed traces answer the span from the chunk index (free); only
  // non-indexed formats pay a span pass before the single fold scan.
  const double span = scanner ? scanner->time_span() : source.time_span();
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t) {
        return analysis::RateKernel(filter, span, bins);
      });
  print_rate_chart(ctx.os(), merged.series());
  return 0;
}

int cmd_diagram(CommandContext& ctx) {
  analysis::TraceDiagram diagram(
      *ctx.source, {.max_rows = ctx.args.get_size("rows", 24),
                    .columns = ctx.args.get_size("cols", 72)});
  ctx.os() << diagram.render_text();
  return 0;
}

int cmd_diagnose(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  analysis::DiagnoserOptions opt;
  opt.fair_share_rate =
      args.get_double("fair-share-mibs", 0.0) * static_cast<double>(MiB);
  opt.ost_count = static_cast<std::uint32_t>(args.get_size("ost-count", 0));
  // The diagnoser cross-references events (stragglers vs. the pack,
  // per-file contention), so it materializes — the documented
  // O(events) exception to the streaming contract.
  ipm::Trace trace = ctx.source->materialize();
  auto findings = analysis::diagnose(trace, opt);
  if (ctx.json()) {
    json::Writer w(ctx.os());
    w.begin_object();
    w.kv("schema_version", campaign::kOutputSchemaVersion);
    w.kv("command", "diagnose");
    w.key("findings").begin_array();
    for (const auto& f : findings) {
      w.begin_object();
      w.kv("code", analysis::finding_name(f.code));
      w.kv("severity", f.severity);
      w.kv("metric", f.metric);
      w.kv("message", std::string_view(f.message));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    ctx.os() << "\n";
    return 0;
  }
  if (findings.empty()) {
    ctx.os() << "no findings\n";
    return 0;
  }
  for (const auto& f : findings) {
    ctx.os() << "[" << analysis::finding_name(f.code) << " sev ";
    char sev[16];
    std::snprintf(sev, sizeof sev, "%.2f", f.severity);
    ctx.os() << sev << "] " << f.message << "\n";
  }
  return 0;
}

int cmd_monitor(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  monitor::HealthOptions opt = monitor_options_from(args);
  auto scanner = scanner_for(*ctx.source, args);
  // Deliberately the default (admit-everything) chunk hint: fault
  // markers (OpType::kFault) must reach the detectors, so chunks can
  // never be pruned by op here.
  auto merged = analysis::run_kernels(
      *ctx.source, scanner, ipm::ChunkHint{},
      [&](std::size_t chunk) { return monitor::HealthKernel(opt, chunk); });
  merged.finish();
  if (ctx.json()) {
    json::Writer w(ctx.os());
    w.begin_object();
    w.kv("schema_version", campaign::kOutputSchemaVersion);
    w.kv("command", "monitor");
    w.key("counts");
    campaign::write_monitor_counts(w, merged.counts());
    w.key("incidents");
    campaign::write_incidents(w, merged.incidents(), {});
    w.end_object();
    ctx.os() << "\n";
    // --incidents still writes its file; the confirmation chatter goes
    // to stderr so stdout stays one parseable document.
    return write_incident_log(args, merged.incidents(), {}, ctx.es(), ctx.es());
  }
  monitor::print_incident_table(ctx.os(), merged.incidents());
  monitor::print_counts(ctx.os(), merged.counts());
  return write_incident_log(args, merged.incidents(), {}, ctx.os(), ctx.es());
}

int cmd_phases(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  analysis::EventFilter base = filter_from(args, ctx.es());
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(base);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        return analysis::PhaseSummarySink(
            base, analysis::chunk_summary_options({}, chunk));
      });
  const auto& by_phase = merged.by_phase();
  if (by_phase.empty()) {
    ctx.es() << "eiotrace: no events match the filter\n";
    return 2;
  }
  print_phase_table(ctx.os(), by_phase);
  return 0;
}

int cmd_analyze(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  analysis::EventFilter base = filter_from(args, ctx.es());
  analysis::EventFilter wf = base, rf = base;
  wf.op = posix::OpType::kWrite;
  rf.op = posix::OpType::kRead;
  bool log = args.has("log");
  auto bins = args.get_size("bins", 40);
  auto rate_bins = args.get_size("rate-bins", 100);
  stats::BinScale scale =
      log ? stats::BinScale::kLog10 : stats::BinScale::kLinear;
  monitor::HealthOptions mopt = monitor_options_from(args);
  mopt.enabled = args.has("monitor");
  auto scanner = scanner_for(source, args);
  const double span = scanner ? scanner->time_span() : source.time_span();
  // The whole bundle — per-op summaries, per-phase table, duration
  // histogram, rate series, and (when --monitor) the health monitor —
  // as ONE KernelSet over ONE scan whose column mask and chunk hint
  // are the unions of its members'. A monitored pass keeps the default
  // hint: fault-marker chunks must not be pruned by op.
  const ipm::ChunkHint hint =
      mopt.enabled ? ipm::ChunkHint{}
                   : ipm::ChunkHint::union_of(
                         ipm::ChunkHint::union_of(analysis::hint_for(wf),
                                                  analysis::hint_for(rf)),
                         analysis::hint_for(base));
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        stats::SummaryOptions opts = analysis::chunk_summary_options({}, chunk);
        return analysis::KernelSet(
            analysis::SummarySink(wf, opts), analysis::SummarySink(rf, opts),
            analysis::PhaseSummarySink(base, opts),
            analysis::HistogramKernel(base, {.scale = scale, .bins = bins}),
            analysis::RateKernel(base, span, rate_bins),
            monitor::HealthKernel(mopt, chunk));
      });
  std::optional<stats::Histogram> h = merged.get<3>().histogram().materialize();
  if (!h) {
    ctx.es() << "eiotrace: no events match the filter\n";
    return 2;
  }
  if (ctx.json()) {
    if (mopt.enabled) merged.get<5>().finish();
    json::Writer w(ctx.os());
    w.begin_object();
    w.kv("schema_version", campaign::kOutputSchemaVersion);
    w.kv("command", "analyze");
    w.key("write");
    campaign::write_summary(w, merged.get<0>().summary());
    w.key("read");
    campaign::write_summary(w, merged.get<1>().summary());
    w.key("phases");
    campaign::write_phase_summaries(w, merged.get<2>().by_phase());
    w.key("histogram");
    campaign::write_histogram(w, *h);
    w.key("rates");
    campaign::write_rates(w, merged.get<4>().series());
    if (mopt.enabled) {
      auto& health = merged.get<5>();
      w.key("monitor").begin_object();
      w.key("counts");
      campaign::write_monitor_counts(w, health.counts());
      w.key("incidents");
      campaign::write_incidents(w, health.incidents(), {});
      w.end_object();
    }
    w.end_object();
    ctx.os() << "\n";
    if (mopt.enabled) {
      return write_incident_log(args, merged.get<5>().incidents(), {},
                                ctx.es(), ctx.es());
    }
    return 0;
  }
  ctx.os() << "== summary ==\n";
  print_summary_header(ctx.os());
  print_summary_row(ctx.os(), posix::OpType::kWrite, merged.get<0>().summary());
  print_summary_row(ctx.os(), posix::OpType::kRead, merged.get<1>().summary());
  ctx.os() << "\n== phases ==\n";
  print_phase_table(ctx.os(), merged.get<2>().by_phase());
  ctx.os() << "\n== histogram ==\n";
  print_histogram_chart(ctx.os(), *h, log);
  ctx.os() << "\n== rates ==\n";
  print_rate_chart(ctx.os(), merged.get<4>().series());
  if (mopt.enabled) {
    auto& health = merged.get<5>();
    health.finish();
    ctx.os() << "\n== monitor ==\n";
    monitor::print_incident_table(ctx.os(), health.incidents());
    monitor::print_counts(ctx.os(), health.counts());
    return write_incident_log(args, health.incidents(), {}, ctx.os(),
                              ctx.es());
  }
  return 0;
}

int cmd_compare(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  if (args.positional().size() < 2) {
    ctx.es() << "eiotrace: compare needs two trace files\n";
    return 1;
  }
  ipm::FileTraceSource other(args.positional()[1]);
  analysis::EventFilter base = filter_from(args, ctx.es());
  ctx.os() << "  op      A-median    B-median     B/A        KS-D     p-value\n";
  for (posix::OpType op : {posix::OpType::kWrite, posix::OpType::kRead}) {
    analysis::EventFilter f = base;
    f.op = op;
    auto a = analysis::durations(*ctx.source, f);
    auto b = analysis::durations(other, f);
    if (a.empty() || b.empty()) continue;
    stats::KsResult ks = stats::ks_two_sample(a, b);
    stats::EmpiricalDistribution da(std::move(a));
    stats::EmpiricalDistribution db(std::move(b));
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-6s %9.4f %11.4f %9.3f %11.4f %11.4f\n",
                  posix::op_name(op), da.median(), db.median(),
                  da.median() > 0 ? db.median() / da.median() : 0.0,
                  ks.statistic, ks.p_value);
    ctx.os() << line;
  }
  return 0;
}

int cmd_convert(CommandContext& ctx) {
  const ipm::TraceSource& source = *ctx.source;
  const Parsed& args = ctx.args;
  std::ostream& out = ctx.os();
  std::ostream& err = ctx.es();
  if (args.positional().size() < 2) {
    err << "eiotrace: convert needs an output path\n";
    return 1;
  }
  const std::string& target = args.positional()[1];
  std::string fmt = args.get("format", "");
  if (!fmt.empty() && (args.has("tsv") || args.has("v1"))) {
    err << "eiotrace: --format conflicts with --tsv/--v1\n";
    return 1;
  }
  if (fmt.empty()) {
    fmt = args.has("tsv") ? "tsv" : args.has("v1") ? "v1" : "v2";
  }
  if (fmt != "tsv" && fmt != "v1" && fmt != "v2" && fmt != "v3") {
    err << "eiotrace: unknown --format '" << fmt << "' (tsv|v1|v2|v3)\n";
    return 1;
  }

  // Converting a file to the format it is already in is a checked
  // no-op: decode every event once to prove the file is intact, then
  // copy the bytes verbatim — never a silent re-encode.
  const auto* file = dynamic_cast<const ipm::FileTraceSource*>(&source);
  if (file != nullptr && fmt == format_label(file->format())) {
    std::uint64_t checked = 0;
    source.for_each([&checked](const ipm::TraceEvent&) { ++checked; });
    std::ifstream in(file->path(), std::ios::binary);
    std::ofstream copy(target, std::ios::binary);
    if (!in.good() || !copy.good()) {
      err << "eiotrace: cannot open for copying: " << target << "\n";
      return 2;
    }
    copy << in.rdbuf();
    if (!copy.good()) {
      err << "eiotrace: write failed: " << target << "\n";
      return 2;
    }
    out << "input is already " << fmt << "; verified " << checked
        << " events and copied byte-for-byte to " << target << "\n";
    return 0;
  }

  std::ofstream outfile(target, std::ios::binary);
  if (!outfile.good()) {
    err << "eiotrace: cannot open for writing: " << target << "\n";
    return 2;
  }
  std::uint64_t written = 0;
  if (fmt == "tsv") {
    ipm::write_tsv_header(outfile, source.meta().experiment,
                          source.meta().ranks, source.event_count());
    source.for_each([&](const ipm::TraceEvent& e) {
      ipm::write_tsv_event(outfile, e);
      ++written;
    });
  } else if (fmt == "v1") {
    ipm::write_binary_v1_header(outfile, source.meta().experiment,
                                source.meta().ranks, source.event_count());
    source.for_each([&](const ipm::TraceEvent& e) {
      ipm::write_binary_v1_event(outfile, e);
      ++written;
    });
  } else if (fmt == "v3") {
    // Columnar v3 — a single streaming pass, no up-front event count.
    ipm::TraceWriterV3 writer(outfile, source.meta().experiment,
                              source.meta().ranks);
    source.for_each([&writer](const ipm::TraceEvent& e) { writer.add(e); });
    writer.finish();
    written = writer.events_written();
  } else {
    // Default: chunked v2 with the footer index — a single streaming
    // pass, no up-front event count needed.
    ipm::TraceWriterV2 writer(outfile, source.meta().experiment,
                              source.meta().ranks);
    source.for_each([&writer](const ipm::TraceEvent& e) { writer.add(e); });
    writer.finish();
    written = writer.events_written();
  }
  if (!outfile.good()) {
    err << "eiotrace: write failed: " << target << "\n";
    return 2;
  }
  out << "wrote " << written << " events to " << target << "\n";
  return 0;
}

int cmd_patterns(CommandContext& ctx) {
  // Pattern detection orders each (rank, file) stream by offset, so it
  // materializes — documented O(events), like diagnose.
  ipm::Trace trace = ctx.source->materialize();
  auto patterns = analysis::detect_patterns(trace);
  ctx.os() << patterns.size() << " streams\n";
  // Aggregate per (file, op, pattern) so 10k-rank traces stay readable.
  std::map<std::string, std::size_t> counts;
  for (const auto& p : patterns) {
    std::ostringstream key;
    key << "file " << p.file << " " << posix::op_name(p.op) << " "
        << analysis::pattern_name(p.pattern)
        << (p.stripe_aligned ? "" : " unaligned");
    ++counts[key.str()];
  }
  for (const auto& [key, n] : counts) {
    ctx.os() << "  " << key << ": " << n << " streams\n";
  }
  for (const auto& h : analysis::derive_hints(patterns)) {
    ctx.os() << "hint: file " << h.file << " (" << posix::op_name(h.op)
             << "): " << h.rationale << "\n";
  }
  return 0;
}

}  // namespace eio::cli
