#include "cli/command.h"

#include <sstream>

#include "cli/commands.h"
#include "cli/eiotrace.h"

namespace eio::cli {

namespace {

// ---------------------------------------------------------------------------
// The option tables. Shared groups (filter, parallelism, output) are
// composed into each command's group list by the registry below.

constexpr OptionSpec kFilterSpecs[] = {
    {"op", OptKind::kString, "any",
     "event filter: write|read|open|close|seek|fsync"},
    {"phase", OptKind::kDouble, "", "keep only this phase label"},
    {"min-bytes", OptKind::kDouble, "0", "minimum transfer size (bytes)"},
    {"max-bytes", OptKind::kDouble, "", "maximum transfer size (bytes)"},
    {"t-lo", OptKind::kDouble, "", "window start (wall-clock seconds)"},
    {"t-hi", OptKind::kDouble, "", "window end (wall-clock seconds)"},
};

constexpr OptionSpec kJobsSpecs[] = {
    {"jobs", OptKind::kSize, "0",
     "worker threads (0 = EIO_JOBS env, else hardware concurrency)"},
};

/// The machine-readable output contract: one flag, one schema (fixed
/// key order, %.9g floats, schema_version) shared with the campaign
/// store's records.
constexpr OptionSpec kOutputSpecs[] = {
    {"json", OptKind::kFlag, "",
     "machine-readable JSON output (schema_version, fixed key order, "
     "%.9g floats)"},
};

constexpr OptionSpec kHistogramSpecs[] = {
    {"log", OptKind::kFlag, "", "log10 duration axis (and log counts)"},
    {"bins", OptKind::kSize, "40", "histogram bins"},
};

constexpr OptionSpec kModesSpecs[] = {
    {"log", OptKind::kFlag, "", "run the KDE on a log10 axis"},
    {"bandwidth", OptKind::kDouble, "0.5", "KDE bandwidth scale"},
};

constexpr OptionSpec kRatesSpecs[] = {
    {"bins", OptKind::kSize, "100", "time-axis bins"},
};

constexpr OptionSpec kAnalyzeSpecs[] = {
    {"log", OptKind::kFlag, "", "log10 duration axis for the histogram"},
    {"bins", OptKind::kSize, "40", "histogram bins"},
    {"rate-bins", OptKind::kSize, "100", "rate time-axis bins"},
    {"monitor", OptKind::kFlag, "",
     "fold the online health monitor into the fused pass"},
};

constexpr OptionSpec kMonitorSpecs[] = {
    {"ost-count", OptKind::kSize, "48",
     "OSTs of the source machine for per-OST attribution (0 = skip)"},
    {"window", OptKind::kSize, "2048",
     "sliding-window capacity (admitted bulk events)"},
    {"stride", OptKind::kSize, "1024",
     "admitted events between detector evaluations"},
    {"drift-d", OptKind::kDouble, "0",
     "KS D threshold for the distribution-drift detector (0 = off; "
     "phase-structured workloads legitimately drift)"},
    {"incidents", OptKind::kString, "",
     "write the incident log as JSONL to this path"},
};

constexpr OptionSpec kDiagramSpecs[] = {
    {"rows", OptKind::kSize, "24", "raster rows (ranks collapse to fit)"},
    {"cols", OptKind::kSize, "72", "raster columns"},
};

constexpr OptionSpec kDiagnoseSpecs[] = {
    {"fair-share-mibs", OptKind::kDouble, "0",
     "per-task fair share (MiB/s) for the sub-fair-share detector (0 = skip)"},
    {"ost-count", OptKind::kSize, "0",
     "OSTs of the source machine for the degraded-OST detector (0 = skip)"},
};

constexpr OptionSpec kConvertSpecs[] = {
    {"format", OptKind::kString, "v2",
     "output format: tsv|v1|v2|v3 (v3 = columnar, compressed)"},
    {"tsv", OptKind::kFlag, "", "alias for --format=tsv"},
    {"v1", OptKind::kFlag, "", "alias for --format=v1"},
};

constexpr OptionSpec kSimulateSpecs[] = {
    {"scenario", OptKind::kString, "",
     "scenario JSON file: machine + workload + ensemble + fault plan"},
    {"machine", OptKind::kString, "franklin",
     "machine preset: franklin|franklin-patched|jaguar"},
    {"tasks", OptKind::kSize, "256", "IOR tasks"},
    {"block-mib", OptKind::kDouble, "64", "IOR block per task per segment"},
    {"segments", OptKind::kSize, "2", "IOR barrier-separated segments"},
    {"runs", OptKind::kSize, "4", "ensemble size (scenario files set their own)"},
    {"seed", OptKind::kSize, "", "override the machine seed"},
    {"save-dir", OptKind::kString, "", "write each run's trace as DIR/runN.*"},
    {"format", OptKind::kString, "tsv",
     "trace format for --save-dir files: tsv|v2|v3"},
    {"monitor", OptKind::kFlag, "",
     "attach the online health monitor to every run's event stream"},
};

constexpr OptionSpec kCampaignSpecs[] = {
    {"out", OptKind::kString, "campaign-out",
     "artifact directory: runs.jsonl, worker stores, campaign.jsonl, "
     "report.json"},
    {"workers", OptKind::kSize, "1", "worker processes to shard runs across"},
    {"run-jobs", OptKind::kSize, "1", "ensemble threads inside each worker"},
    {"run-timeout", OptKind::kDouble, "0",
     "seconds a worker may hold one run before it is killed and the run "
     "retried (0 = off)"},
    {"plan-only", OptKind::kFlag, "",
     "expand and validate the manifest, write runs.jsonl, don't execute"},
    {"worker-exe", OptKind::kString, "",
     "worker executable (default: this binary via /proc/self/exe)"},
    {"inject-crash-run", OptKind::kSize, "",
     "failure injection: the first worker handling this run crashes "
     "mid-append (retry-path CI hook)"},
    {"inject-hang-run", OptKind::kSize, "",
     "failure injection: the first worker handling this run hangs "
     "(timeout-path CI hook)"},
};

constexpr OptionSpec kCampaignWorkerSpecs[] = {
    {"plans", OptKind::kString, "", "the campaign's runs.jsonl"},
    {"store", OptKind::kString, "", "this worker's append-only store file"},
    {"run-jobs", OptKind::kSize, "1", "ensemble threads per run"},
};

}  // namespace

const std::vector<Command>& commands() {
  static const std::vector<Command> table{
      {"report", "<trace>", "IPM job banner (per-call profile, imbalance)",
       {}, true, cmd_report},
      {"summary", "<trace>", "quantile table per op",
       {{"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs},
        {"output", kOutputSpecs}},
       true, cmd_summary},
      {"analyze", "<trace>",
       "fused one-pass bundle: summary + phases + histogram + rates",
       {{"analyze", kAnalyzeSpecs},
        {"monitor", kMonitorSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs},
        {"output", kOutputSpecs}},
       true, cmd_analyze},
      {"monitor", "<trace>",
       "online health monitoring: incidents + deterministic JSONL log",
       {{"monitor", kMonitorSpecs},
        {"parallelism", kJobsSpecs},
        {"output", kOutputSpecs}},
       true, cmd_monitor},
      {"histogram", "<trace>", "duration histogram",
       {{"histogram", kHistogramSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       true, cmd_histogram},
      {"modes", "<trace>", "KDE mode detection + harmonic signature",
       {{"modes", kModesSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       true, cmd_modes},
      {"rates", "<trace>", "aggregate rate chart",
       {{"rates", kRatesSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       true, cmd_rates},
      {"diagram", "<trace>", "per-rank trace raster",
       {{"diagram", kDiagramSpecs}}, true, cmd_diagram},
      {"diagnose", "<trace>", "automatic bottleneck findings",
       {{"diagnose", kDiagnoseSpecs}, {"output", kOutputSpecs}},
       true, cmd_diagnose},
      {"patterns", "<trace>", "access-pattern detection + fs hints",
       {}, true, cmd_patterns},
      {"phases", "<trace>", "per-phase duration table",
       {{"filter", kFilterSpecs}, {"parallelism", kJobsSpecs}},
       true, cmd_phases},
      {"compare", "<traceA> <traceB>", "A vs B medians + KS distance",
       {{"filter", kFilterSpecs}}, true, cmd_compare},
      {"convert", "<trace> <out>",
       "rewrite as --format=tsv|v1|v2|v3 (default v2; same format = "
       "checked copy)",
       {{"convert", kConvertSpecs}}, true, cmd_convert},
      {"simulate", "",
       "generate an ensemble from flags or a --scenario file",
       {{"simulate", kSimulateSpecs},
        {"monitor", kMonitorSpecs},
        {"parallelism", kJobsSpecs}},
       false, cmd_simulate},
      {"campaign", "<manifest>",
       "sweep scenarios across worker processes into a merged store + "
       "fleet report",
       {{"campaign", kCampaignSpecs}}, false, cmd_campaign},
      {"campaign-worker", "",
       "(internal) campaign worker process; speaks the dispatcher "
       "protocol on stdin/stdout",
       {{"campaign-worker", kCampaignWorkerSpecs}}, false,
       cmd_campaign_worker},
  };
  return table;
}

const Command* find_command(const std::string& name) {
  for (const Command& c : commands()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

std::string usage_for(const std::string& command) {
  const Command* cmd = find_command(command);
  if (cmd == nullptr) return usage_text();
  std::ostringstream os;
  os << "usage: eiotrace " << cmd->name;
  if (cmd->operands[0] != '\0') os << " " << cmd->operands;
  os << " [flags]\n  " << cmd->summary << "\n";
  for (const OptionGroup& g : cmd->groups) {
    os << g.title << " flags:\n";
    for (const OptionSpec& s : g.options) {
      std::string left = std::string("--") + s.name;
      switch (s.kind) {
        case OptKind::kFlag: break;
        case OptKind::kString: left += "=S"; break;
        case OptKind::kDouble: left += "=X"; break;
        case OptKind::kSize: left += "=N"; break;
      }
      os << "  " << left;
      if (left.size() >= 20) os << ' ';
      for (std::size_t pad = left.size(); pad < 20; ++pad) os << ' ';
      os << s.help;
      if (s.fallback[0] != '\0') os << " (default " << s.fallback << ")";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace eio::cli

namespace eio::cli {

std::string usage_text() {
  std::ostringstream os;
  os << "usage: eiotrace <command> [operands] [flags]\n"
     << "commands:\n";
  for (const Command& c : commands()) {
    std::string left = c.name;
    if (c.operands[0] != '\0') left += std::string(" ") + c.operands;
    os << "  " << left;
    for (std::size_t pad = left.size(); pad < 26; ++pad) os << ' ';
    os << c.summary << "\n";
  }
  os << "  version                   build provenance (git SHA, compiler, "
        "flags)\n"
     << "  help [command]            this text, or one command's full flag "
        "table\n"
     << "simulate reads either flags (an IOR ensemble) or a declarative\n"
     << "scenario JSON file (--scenario FILE: machine, workload, ensemble\n"
     << "size, fault plan; see examples/scenarios/).\n"
     << "campaign expands a manifest (scenario files, sweep specs, or a\n"
     << "directory of either) into a run list, shards it across --workers\n"
     << "processes, and merges per-worker stores into campaign.jsonl +\n"
     << "report.json (byte-identical for any --workers value).\n"
     << "self-observability (any command): --chrome-trace OUT.json "
        "--metrics OUT.json|.tsv\n"
     << "             --obs-summary --obs   (instrument this invocation "
        "itself)\n"
     << "common filter flags: --op=write|read --phase=P --min-bytes=N "
        "--max-bytes=N\n"
     << "                     --t-lo=S --t-hi=S (wall-clock window, "
        "seconds)\n"
     << "machine-readable output: summary/analyze/diagnose/monitor take "
        "--json\n"
     << "parallelism: summary/analyze/histogram/modes/rates/phases/simulate "
        "take --jobs=N\n"
     << "             (default: hardware concurrency; indexed v2/v3 traces "
        "scan\n"
     << "             chunk-parallel, other formats stream serially)\n";
  return os.str();
}

std::string usage_text(const std::string& command) { return usage_for(command); }

}  // namespace eio::cli
