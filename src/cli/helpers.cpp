#include "cli/helpers.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/units.h"
#include "core/ascii_chart.h"

namespace eio::cli {

namespace {

std::optional<posix::OpType> parse_op(const std::string& name,
                                      std::ostream& err) {
  if (name.empty() || name == "any") return std::nullopt;
  if (name == "write") return posix::OpType::kWrite;
  if (name == "read") return posix::OpType::kRead;
  if (name == "open") return posix::OpType::kOpen;
  if (name == "close") return posix::OpType::kClose;
  if (name == "seek") return posix::OpType::kSeek;
  if (name == "fsync") return posix::OpType::kFsync;
  err << "eiotrace: unknown op '" << name << "'\n";
  throw std::invalid_argument("bad op");
}

}  // namespace

analysis::EventFilter filter_from(const Parsed& args, std::ostream& err) {
  analysis::EventFilter f;
  f.op = parse_op(args.get("op", ""), err);
  if (args.has("phase")) {
    f.phase = static_cast<std::int32_t>(args.get_double("phase", 0));
  }
  f.min_bytes = static_cast<Bytes>(args.get_double("min-bytes", 0));
  if (args.has("max-bytes")) {
    f.max_bytes = static_cast<Bytes>(args.get_double("max-bytes", 0));
  }
  if (args.has("t-lo")) f.t_lo = args.get_double("t-lo", 0.0);
  if (args.has("t-hi")) f.t_hi = args.get_double("t-hi", 0.0);
  return f;
}

std::optional<ipm::ParallelTraceScanner> scanner_for(
    const ipm::TraceSource& source, const Parsed& args) {
  const auto* file = dynamic_cast<const ipm::FileTraceSource*>(&source);
  if (!file || !file->index()) return std::nullopt;
  return ipm::ParallelTraceScanner(file->path(), file->format(),
                                   *file->index(),
                                   {.jobs = args.get_size("jobs", 0)});
}

void print_summary_header(std::ostream& out) {
  out << "  op       count   median(s)     mean(s)      p95(s)      max(s)\n";
}

void print_summary_row(std::ostream& out, posix::OpType op,
                       const stats::StreamingSummary& s) {
  if (s.empty()) return;
  char line[160];
  std::snprintf(line, sizeof line, "  %-6s %7zu %11.4f %11.4f %11.4f %11.4f\n",
                posix::op_name(op), s.count(), s.median(), s.moments().mean,
                s.quantile(0.95), s.max());
  out << line;
}

void print_phase_table(
    std::ostream& out,
    const std::map<std::int32_t, stats::StreamingSummary>& by_phase) {
  out << "  phase     events   median(s)      p95(s)      max(s)\n";
  for (const auto& [phase, s] : by_phase) {
    char line[120];
    std::snprintf(line, sizeof line, "  %6d %9zu %11.4f %11.4f %11.4f\n",
                  phase, s.count(), s.median(), s.quantile(0.95), s.max());
    out << line;
  }
}

void print_histogram_chart(std::ostream& out, const stats::Histogram& h,
                           bool log) {
  out << analysis::render_histogram(
      h, {.width = 72, .height = 12, .log_y = log,
          .x_label = log ? "seconds (log)" : "seconds", .y_label = "count"});
}

void print_rate_chart(std::ostream& out, const analysis::TimeSeries& series) {
  analysis::Series line{"rate", {}, {}};
  for (std::size_t i = 0; i < series.values.size(); ++i) {
    line.x.push_back(series.time_at(i));
    line.y.push_back(series.values[i] / static_cast<double>(MiB));
  }
  out << analysis::render_lines(
      std::vector<analysis::Series>{line},
      {.width = 72, .height = 12, .x_label = "seconds",
       .y_label = "aggregate MiB/s"});
}

monitor::HealthOptions monitor_options_from(const Parsed& args) {
  monitor::HealthOptions opt;
  opt.ost_count =
      static_cast<std::uint32_t>(args.get_size("ost-count", 48));
  opt.window = args.get_size("window", 2048);
  opt.stride = args.get_size("stride", 1024);
  opt.drift_d = args.get_double("drift-d", 0.0);
  return opt;
}

int write_incident_log(const Parsed& args,
                       const std::vector<monitor::Incident>& incidents,
                       const std::vector<std::uint64_t>& runs,
                       std::ostream& out, std::ostream& err) {
  if (!args.has("incidents")) return 0;
  std::string path = args.get("incidents", "");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    err << "eiotrace: cannot write " << path << "\n";
    return 1;
  }
  if (runs.empty()) {
    monitor::write_incidents_jsonl(f, incidents);
  } else {
    for (std::size_t i = 0; i < incidents.size(); ++i) {
      monitor::write_incidents_jsonl(f, {incidents[i]}, runs[i]);
    }
  }
  out << "wrote " << path << " (" << incidents.size() << " incidents)\n";
  return 0;
}

const char* format_label(ipm::TraceFormat format) {
  switch (format) {
    case ipm::TraceFormat::kTsv: return "tsv";
    case ipm::TraceFormat::kBinaryV1: return "v1";
    case ipm::TraceFormat::kBinaryV2: return "v2";
    case ipm::TraceFormat::kBinaryV3: return "v3";
  }
  return "?";
}

}  // namespace eio::cli
