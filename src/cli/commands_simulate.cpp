// `simulate` generates runs via the parallel ensemble runner instead
// of loading a trace from disk. Per-run statistics come from a
// streaming SummarySink attached to each run's monitor, so without
// --save-dir no trace is ever materialized (capture stays in profile
// mode).
#include <cstdio>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cli/commands.h"
#include "cli/helpers.h"
#include "common/units.h"
#include "core/ks.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "ipm/sink.h"
#include "monitor/health.h"
#include "workloads/ensemble.h"
#include "workloads/scenario.h"

namespace eio::cli {

namespace {

/// Workload flags that conflict with --scenario (the file is the
/// single source of truth for the experiment it names).
constexpr const char* kScenarioConflicts[] = {"machine", "tasks", "block-mib",
                                              "segments"};

}  // namespace

int cmd_simulate(CommandContext& ctx) {
  const Parsed& args = ctx.args;
  std::ostream& out = ctx.os();
  std::ostream& err = ctx.es();
  workloads::ScenarioBuilder scenario;
  if (args.has("scenario")) {
    for (const char* flag : kScenarioConflicts) {
      if (args.has(flag)) {
        err << "eiotrace: --" << flag << " conflicts with --scenario (the "
            << "file names the experiment)\n";
        return 1;
      }
    }
    try {
      scenario = workloads::load_scenario(args.get("scenario", ""));
    } catch (const std::exception& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 1;
    }
  } else {
    try {
      scenario.machine(args.get("machine", "franklin"));
    } catch (const std::invalid_argument& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 1;
    }
    workloads::IorConfig cfg;
    cfg.tasks = static_cast<std::uint32_t>(args.get_size("tasks", 256));
    cfg.block_size = static_cast<Bytes>(args.get_double("block-mib", 64.0) *
                                        static_cast<double>(MiB));
    cfg.segments = static_cast<std::uint32_t>(args.get_size("segments", 2));
    scenario.ior(cfg);
    scenario.runs(4);
  }
  if (args.has("seed")) scenario.seed(args.get_size("seed", 0));
  std::size_t runs = args.get_size("runs", scenario.run_count());
  bool save = args.has("save-dir");
  std::string save_fmt = args.get("format", "tsv");
  if (save_fmt != "tsv" && save_fmt != "v2" && save_fmt != "v3") {
    err << "eiotrace: unknown --format '" << save_fmt << "' (tsv|v2|v3)\n";
    return 1;
  }

  workloads::JobSpec job = scenario.job();
  // Traces are only retained when they are being written out.
  job.capture = save ? ipm::Mode::kBoth : ipm::Mode::kProfile;
  analysis::EventFilter write_filter{.op = posix::OpType::kWrite,
                                     .min_bytes = MiB};
  const bool monitored = args.has("monitor");
  monitor::HealthOptions mopt = monitor_options_from(args);
  if (!args.has("ost-count")) {
    mopt.ost_count = scenario.machine_config().ost_count;
  }
  mopt.stripe_size = scenario.machine_config().stripe_size;
  std::vector<std::shared_ptr<analysis::SummarySink>> sinks(runs);
  std::vector<std::shared_ptr<monitor::HealthSink>> monitors(runs);
  job.sink_factory = [&sinks, &monitors, write_filter, monitored,
                      mopt](std::size_t run_index)
      -> std::shared_ptr<ipm::EventSink> {
    auto sink = std::make_shared<analysis::SummarySink>(write_filter);
    sinks[run_index] = sink;
    if (!monitored) return sink;
    auto health = std::make_shared<monitor::HealthSink>(mopt);
    monitors[run_index] = health;
    return std::make_shared<ipm::FanoutSink>(
        std::vector<std::shared_ptr<ipm::EventSink>>{sink, health});
  };

  const char* kind_label = "IOR";
  std::ostringstream shape;
  switch (scenario.kind()) {
    case workloads::WorkloadKind::kIor: {
      const workloads::IorConfig& c = scenario.ior_config();
      shape << c.tasks << " tasks, " << to_mib(c.block_size) << " MiB blocks, "
            << c.segments << " segments";
      break;
    }
    case workloads::WorkloadKind::kMadbench: {
      kind_label = "MADbench";
      const workloads::MadbenchConfig& c = scenario.madbench_config();
      shape << c.tasks << " tasks, " << c.matrices << " matrices";
      break;
    }
    case workloads::WorkloadKind::kGcrm: {
      kind_label = "GCRM";
      const workloads::GcrmConfig& c = scenario.gcrm_config();
      shape << c.tasks << " tasks, "
            << (c.collective_buffering ? c.io_tasks : c.tasks) << " writers";
      break;
    }
  }

  workloads::ParallelEnsembleRunner runner({.jobs = args.get_size("jobs", 0)});
  out << "simulating " << runs << " " << kind_label << " runs (" << shape.str()
      << ") on " << scenario.machine_config().name << " with "
      << runner.jobs() << " worker(s)\n";
  if (scenario.fault_plan().enabled()) {
    out << "fault plan: "
        << fault::plan_to_json(scenario.fault_plan()) << "\n";
  }
  auto results = runner.run_ensemble(job, runs);

  out << "  run          job(s)    events    median(s)      p95(s)\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const stats::StreamingSummary& s = sinks[i]->summary();
    std::uint64_t events =
        save ? results[i].trace.size() : results[i].profile.total();
    char line[160];
    std::snprintf(line, sizeof line, "  %-8zu %10.1f %9llu %12.4f %11.4f\n", i,
                  results[i].job_time, static_cast<unsigned long long>(events),
                  s.empty() ? 0.0 : s.median(),
                  s.empty() ? 0.0 : s.quantile(0.95));
    out << line;
  }

  if (scenario.fault_plan().enabled()) {
    out << "fault injections:\n"
        << "  run   ost-windows    stalls   retried ops   straggler-stalls"
           "   injected(s)\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const fault::Counts& c = results[i].fault_counts;
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %-5zu %11llu %9llu %13llu %18llu %13.3f\n", i,
                    static_cast<unsigned long long>(c.ost_degradations),
                    static_cast<unsigned long long>(c.stalls),
                    static_cast<unsigned long long>(c.ops_retried),
                    static_cast<unsigned long long>(c.straggler_stalls),
                    c.stall_seconds + c.retry_seconds + c.straggler_seconds);
      out << line;
    }
  }

  if (monitored) {
    out << "health monitor:\n"
        << "  run    windows    opened   cleared   open-at-end\n";
    std::vector<monitor::Incident> incidents;
    std::vector<std::uint64_t> incident_runs;
    for (std::size_t i = 0; i < results.size(); ++i) {
      monitor::HealthKernel& k = monitors[i]->kernel();
      k.finish();
      const monitor::Counts& c = k.counts();
      char line[160];
      std::snprintf(line, sizeof line, "  %-5zu %9llu %9llu %9llu %13llu\n", i,
                    static_cast<unsigned long long>(c.windows_evaluated),
                    static_cast<unsigned long long>(c.incidents_opened),
                    static_cast<unsigned long long>(c.incidents_cleared),
                    static_cast<unsigned long long>(c.open_at_finish()));
      out << line;
      for (const monitor::Incident& inc : k.incidents()) {
        incidents.push_back(inc);
        incident_runs.push_back(i);
      }
    }
    if (!incidents.empty()) monitor::print_incident_table(out, incidents);
    int rc = write_incident_log(args, incidents, incident_runs, out, err);
    if (rc != 0) return rc;
  }

  out << "pairwise KS distances (write durations):\n";
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (std::size_t j = i + 1; j < sinks.size(); ++j) {
      stats::KsResult ks = stats::ks_two_sample(
          sinks[i]->summary().reservoir().samples(),
          sinks[j]->summary().reservoir().samples());
      char line[120];
      std::snprintf(line, sizeof line, "  %zu vs %zu: D = %.4f (p = %.3f)\n",
                    i, j, ks.statistic, ks.p_value);
      out << line;
    }
  }

  if (save) {
    std::string dir = args.get("save-dir", ".");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string path = dir + "/run" + std::to_string(i);
      if (save_fmt == "v2") {
        path += ".v2";
        results[i].trace.save_binary_v2(path);
      } else if (save_fmt == "v3") {
        path += ".v3";
        results[i].trace.save_binary_v3(path);
      } else {
        path += ".tsv";
        results[i].trace.save(path);
      }
      out << "wrote " << path << "\n";
    }
  }
  return 0;
}

}  // namespace eio::cli
