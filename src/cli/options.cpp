#include "cli/options.h"

namespace eio::cli {

const OptionSpec* find_spec(std::span<const OptionGroup> groups,
                            std::string_view name) {
  for (const OptionGroup& g : groups) {
    for (const OptionSpec& s : g.options) {
      if (name == s.name) return &s;
    }
  }
  return nullptr;
}

bool valid_value(OptKind kind, const std::string& value) {
  if (value.empty()) return false;
  char* end = nullptr;
  switch (kind) {
    case OptKind::kFlag:
    case OptKind::kString:
      return true;
    case OptKind::kDouble:
      std::strtod(value.c_str(), &end);
      return end != nullptr && *end == '\0';
    case OptKind::kSize:
      if (value[0] == '-') return false;
      std::strtoull(value.c_str(), &end, 10);
      return end != nullptr && *end == '\0';
  }
  return false;
}

std::optional<int> parse_args(const std::string& command,
                              std::span<const OptionGroup> groups,
                              const std::vector<std::string>& raw,
                              std::size_t skip, Parsed& out, std::ostream& err,
                              const std::string& usage) {
  for (std::size_t i = skip; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (a.rfind("--", 0) != 0) {
      out.positional_.push_back(a);
      continue;
    }
    auto eq = a.find('=');
    std::string name = a.substr(2, eq == std::string::npos ? eq : eq - 2);
    const OptionSpec* spec = find_spec(groups, name);
    if (spec == nullptr) {
      err << "eiotrace: unknown flag '--" << name << "' for '" << command
          << "'\n" << usage;
      return 1;
    }
    std::string value;
    if (spec->kind == OptKind::kFlag) {
      if (eq != std::string::npos) {
        err << "eiotrace: --" << name << " takes no value\n" << usage;
        return 1;
      }
      value = "true";
    } else if (eq != std::string::npos) {
      value = a.substr(eq + 1);
    } else if (i + 1 < raw.size()) {
      value = raw[++i];
    } else {
      err << "eiotrace: --" << name << " needs a value\n" << usage;
      return 1;
    }
    if (!valid_value(spec->kind, value)) {
      err << "eiotrace: bad value '" << value << "' for --" << name
          << (spec->kind == OptKind::kSize ? " (expects a non-negative integer)"
                                           : " (expects a number)")
          << "\n" << usage;
      return 1;
    }
    out.values_[std::move(name)] = std::move(value);
  }
  return std::nullopt;
}

}  // namespace eio::cli
