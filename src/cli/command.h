// The command registry: eiotrace's subcommands as a data table.
//
// A Command is {name, operands, summary, option groups, run(ctx)}; the
// registry drives dispatch, flag parsing, and every line of generated
// usage text from the same rows, so `eiotrace help` can never disagree
// with what dispatch accepts. Handlers receive a CommandContext — the
// parsed args, the opened trace source (for trace commands), and the
// output streams — instead of re-parsing argv, which is what lets
// campaign workers and tests invoke subcommand logic as library calls.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/options.h"

namespace eio::ipm {
class TraceSource;
}

namespace eio::cli {

/// Everything a command handler needs: parsed flags + positionals, the
/// trace source (commands with needs_trace; nullptr otherwise), and
/// the invocation's streams.
struct CommandContext {
  Parsed args;
  const ipm::TraceSource* source = nullptr;
  std::ostream* out = nullptr;
  std::ostream* err = nullptr;

  [[nodiscard]] std::ostream& os() const { return *out; }
  [[nodiscard]] std::ostream& es() const { return *err; }
  /// The shared --jobs knob (0 = EIO_JOBS env, else hardware).
  [[nodiscard]] std::size_t jobs() const { return args.get_size("jobs", 0); }
  /// The shared --json output-contract flag.
  [[nodiscard]] bool json() const { return args.has("json"); }
};

struct Command {
  const char* name;
  const char* operands;  ///< positional operands shown in usage
  const char* summary;
  std::vector<OptionGroup> groups;
  /// True: dispatch opens positional[0] as a FileTraceSource and hands
  /// it to run via ctx.source. False: the command owns its operands
  /// (simulate, campaign, campaign-worker).
  bool needs_trace = false;
  int (*run)(CommandContext& ctx) = nullptr;
};

/// The registry, in the order the usage text lists commands.
[[nodiscard]] const std::vector<Command>& commands();

/// Registry lookup; nullptr for unknown names.
[[nodiscard]] const Command* find_command(const std::string& name);

/// One command's generated usage (operands, summary, full flag table);
/// falls back to the global usage for unknown names.
[[nodiscard]] std::string usage_for(const std::string& command);

}  // namespace eio::cli
