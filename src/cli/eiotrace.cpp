// eiotrace's entry point: obs-flag extraction, registry-driven
// dispatch, and the version banner. Everything else — option tables,
// usage generation, command handlers — lives behind the command
// registry (cli/command.h); dispatch here is a straight table walk.
#include "cli/eiotrace.h"

#include <optional>
#include <ostream>
#include <string_view>

#include "cli/command.h"
#include "ipm/trace_source.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/registry.h"

namespace eio::cli {

namespace {

// ---------------------------------------------------------------------------
// Self-observability wiring.

/// Obs flags are accepted anywhere on the command line, in both
/// --flag=value and --flag value forms, and stripped before command
/// parsing so every command composes with them.
struct ObsRequest {
  std::string chrome_trace;  ///< --chrome-trace PATH: span trace JSON
  std::string metrics;       ///< --metrics PATH: metrics JSON (or .tsv)
  bool summary = false;      ///< --obs-summary: end-of-run table
  bool enable = false;       ///< --obs: record without exporting

  [[nodiscard]] bool any() const {
    return enable || summary || !chrome_trace.empty() || !metrics.empty();
  }
};

ObsRequest extract_obs_flags(std::vector<std::string>& args) {
  ObsRequest req;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  auto value_of = [&args](std::size_t& i,
                          std::string_view flag) -> std::optional<std::string> {
    const std::string& a = args[i];
    if (a == flag) {
      if (i + 1 < args.size()) return args[++i];
      return std::string();
    }
    if (a.size() > flag.size() + 1 && a.compare(0, flag.size(), flag) == 0 &&
        a[flag.size()] == '=') {
      return a.substr(flag.size() + 1);
    }
    return std::nullopt;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = value_of(i, "--chrome-trace")) {
      req.chrome_trace = *v;
    } else if (auto v = value_of(i, "--metrics")) {
      req.metrics = *v;
    } else if (args[i] == "--obs-summary") {
      req.summary = true;
    } else if (args[i] == "--obs") {
      req.enable = true;
    } else {
      kept.push_back(args[i]);
    }
  }
  args = std::move(kept);
  return req;
}

/// Export/print whatever the run recorded. Returns non-zero only when
/// a requested output file cannot be written.
int finish_obs(const ObsRequest& req, std::ostream& out, std::ostream& err) {
  if (!req.any()) return 0;
  int rc = 0;
  obs::Snapshot snap = obs::Registry::instance().snapshot();
  try {
    if (!req.metrics.empty()) obs::write_metrics_file(req.metrics, snap);
    if (!req.chrome_trace.empty()) {
      obs::write_chrome_trace_file(req.chrome_trace);
    }
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    rc = 2;
  }
  if (req.summary) obs::print_summary(out, snap);
  return rc;
}

int cmd_version(std::ostream& out) {
  const obs::BuildInfo& b = obs::build_info();
  out << "eiotrace (ensembleio) " << b.version << "\n"
      << "  git_sha:       " << b.git_sha << "\n"
      << "  compiler:      " << b.compiler << "\n"
      << "  flags:         " << b.flags << "\n"
      << "  build_type:    " << b.build_type << "\n"
      << "  observability: "
      << (b.obs_compiled_in ? "compiled in" : "compiled out") << "\n";
  return 0;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    if (args.size() > 1 && find_command(args[1]) != nullptr) {
      out << usage_for(args[1]);
      return 0;
    }
    out << usage_text();
    return args.empty() ? 1 : 0;
  }
  if (args[0] == "version" || args[0] == "--version" ||
      args[0] == "--build-info") {
    return cmd_version(out);
  }
  const Command* cmd = find_command(args[0]);
  if (cmd == nullptr) {
    err << "eiotrace: unknown command '" << args[0] << "'\n" << usage_text();
    return 1;
  }
  CommandContext ctx;
  ctx.out = &out;
  ctx.err = &err;
  if (auto rc = parse_args(cmd->name, cmd->groups, args, 1, ctx.args, err,
                           usage_for(cmd->name))) {
    return *rc;
  }
  if (!cmd->needs_trace) {  // the command owns its operands
    try {
      return cmd->run(ctx);
    } catch (const std::exception& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 2;
    }
  }
  if (ctx.args.positional().empty()) {
    err << "eiotrace: missing trace file\n" << usage_for(cmd->name);
    return 1;
  }
  try {
    // The trace file is opened as a streaming source; each command
    // pulls the passes it needs.
    ipm::FileTraceSource source(ctx.args.positional()[0]);
    ctx.source = &source;
    return cmd->run(ctx);
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int run_eiotrace(const std::vector<std::string>& raw_args, std::ostream& out,
                 std::ostream& err) {
  std::vector<std::string> args = raw_args;
  ObsRequest obs_req = extract_obs_flags(args);
  if (obs_req.any()) {
    if (!obs::kCompiledIn) {
      err << "eiotrace: warning: observability was compiled out "
             "(-DEIO_OBS=OFF); reports will be empty\n";
    }
    // Reset so each invocation's report covers exactly this invocation
    // (matters for in-process drivers like the test harness).
    obs::Registry::instance().reset();
    obs::set_enabled(true);
  }
  int rc = dispatch(args, out, err);
  int obs_rc = finish_obs(obs_req, out, err);
  if (obs_req.any()) obs::set_enabled(false);
  return rc != 0 ? rc : obs_rc;
}

}  // namespace eio::cli
