#include "cli/eiotrace.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <string_view>

#include "common/units.h"
#include "core/ascii_chart.h"
#include "core/diagnose.h"
#include "core/distribution.h"
#include "core/histogram.h"
#include "core/ks.h"
#include "core/modes.h"
#include "core/parallel_analysis.h"
#include "core/patterns.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "core/trace_diagram.h"
#include "ipm/report.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"
#include "ipm/trace_stream.h"
#include "ipm/trace_v3.h"
#include "ipm/sink.h"
#include "lustre/machine.h"
#include "monitor/health.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "workloads/ensemble.h"
#include "workloads/scenario.h"

namespace eio::cli {

namespace {

// ---------------------------------------------------------------------------
// Declarative option tables. Every subcommand lists its options as
// data; the same tables drive parsing (uniform unknown-flag/bad-value
// errors, exit code 1) and the generated usage text, so the two cannot
// disagree.

enum class OptKind : std::uint8_t {
  kFlag,    ///< boolean, present or absent
  kString,  ///< free-form value
  kDouble,  ///< numeric value (validated at parse time)
  kSize,    ///< non-negative integer (validated at parse time)
};

struct OptionSpec {
  const char* name;      ///< without the leading "--"
  OptKind kind;
  const char* fallback;  ///< default shown in help ("" = none)
  const char* help;
};

struct OptionGroup {
  const char* title;
  std::span<const OptionSpec> options;
};

constexpr OptionSpec kFilterSpecs[] = {
    {"op", OptKind::kString, "any",
     "event filter: write|read|open|close|seek|fsync"},
    {"phase", OptKind::kDouble, "", "keep only this phase label"},
    {"min-bytes", OptKind::kDouble, "0", "minimum transfer size (bytes)"},
    {"max-bytes", OptKind::kDouble, "", "maximum transfer size (bytes)"},
    {"t-lo", OptKind::kDouble, "", "window start (wall-clock seconds)"},
    {"t-hi", OptKind::kDouble, "", "window end (wall-clock seconds)"},
};

constexpr OptionSpec kJobsSpecs[] = {
    {"jobs", OptKind::kSize, "0",
     "worker threads (0 = EIO_JOBS env, else hardware concurrency)"},
};

constexpr OptionSpec kHistogramSpecs[] = {
    {"log", OptKind::kFlag, "", "log10 duration axis (and log counts)"},
    {"bins", OptKind::kSize, "40", "histogram bins"},
};

constexpr OptionSpec kModesSpecs[] = {
    {"log", OptKind::kFlag, "", "run the KDE on a log10 axis"},
    {"bandwidth", OptKind::kDouble, "0.5", "KDE bandwidth scale"},
};

constexpr OptionSpec kRatesSpecs[] = {
    {"bins", OptKind::kSize, "100", "time-axis bins"},
};

constexpr OptionSpec kAnalyzeSpecs[] = {
    {"log", OptKind::kFlag, "", "log10 duration axis for the histogram"},
    {"bins", OptKind::kSize, "40", "histogram bins"},
    {"rate-bins", OptKind::kSize, "100", "rate time-axis bins"},
    {"monitor", OptKind::kFlag, "",
     "fold the online health monitor into the fused pass"},
};

constexpr OptionSpec kMonitorSpecs[] = {
    {"ost-count", OptKind::kSize, "48",
     "OSTs of the source machine for per-OST attribution (0 = skip)"},
    {"window", OptKind::kSize, "2048",
     "sliding-window capacity (admitted bulk events)"},
    {"stride", OptKind::kSize, "1024",
     "admitted events between detector evaluations"},
    {"drift-d", OptKind::kDouble, "0",
     "KS D threshold for the distribution-drift detector (0 = off; "
     "phase-structured workloads legitimately drift)"},
    {"incidents", OptKind::kString, "",
     "write the incident log as JSONL to this path"},
};

constexpr OptionSpec kDiagramSpecs[] = {
    {"rows", OptKind::kSize, "24", "raster rows (ranks collapse to fit)"},
    {"cols", OptKind::kSize, "72", "raster columns"},
};

constexpr OptionSpec kDiagnoseSpecs[] = {
    {"fair-share-mibs", OptKind::kDouble, "0",
     "per-task fair share (MiB/s) for the sub-fair-share detector (0 = skip)"},
    {"ost-count", OptKind::kSize, "0",
     "OSTs of the source machine for the degraded-OST detector (0 = skip)"},
};

constexpr OptionSpec kConvertSpecs[] = {
    {"format", OptKind::kString, "v2",
     "output format: tsv|v1|v2|v3 (v3 = columnar, compressed)"},
    {"tsv", OptKind::kFlag, "", "alias for --format=tsv"},
    {"v1", OptKind::kFlag, "", "alias for --format=v1"},
};

constexpr OptionSpec kSimulateSpecs[] = {
    {"scenario", OptKind::kString, "",
     "scenario JSON file: machine + workload + ensemble + fault plan"},
    {"machine", OptKind::kString, "franklin",
     "machine preset: franklin|franklin-patched|jaguar"},
    {"tasks", OptKind::kSize, "256", "IOR tasks"},
    {"block-mib", OptKind::kDouble, "64", "IOR block per task per segment"},
    {"segments", OptKind::kSize, "2", "IOR barrier-separated segments"},
    {"runs", OptKind::kSize, "4", "ensemble size (scenario files set their own)"},
    {"seed", OptKind::kSize, "", "override the machine seed"},
    {"save-dir", OptKind::kString, "", "write each run's trace as DIR/runN.*"},
    {"format", OptKind::kString, "tsv",
     "trace format for --save-dir files: tsv|v2|v3"},
    {"monitor", OptKind::kFlag, "",
     "attach the online health monitor to every run's event stream"},
};

/// Workload flags that conflict with --scenario (the file is the
/// single source of truth for the experiment it names).
constexpr const char* kScenarioConflicts[] = {"machine", "tasks", "block-mib",
                                              "segments"};

// ---------------------------------------------------------------------------
// Parsing against the tables.

/// Parsed options + positionals of one invocation.
class Parsed {
 public:
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

[[nodiscard]] const OptionSpec* find_spec(
    std::span<const OptionGroup> groups, std::string_view name) {
  for (const OptionGroup& g : groups) {
    for (const OptionSpec& s : g.options) {
      if (name == s.name) return &s;
    }
  }
  return nullptr;
}

[[nodiscard]] bool valid_value(OptKind kind, const std::string& value) {
  if (value.empty()) return false;
  char* end = nullptr;
  switch (kind) {
    case OptKind::kFlag:
    case OptKind::kString:
      return true;
    case OptKind::kDouble:
      std::strtod(value.c_str(), &end);
      return end != nullptr && *end == '\0';
    case OptKind::kSize:
      if (value[0] == '-') return false;
      std::strtoull(value.c_str(), &end, 10);
      return end != nullptr && *end == '\0';
  }
  return false;
}

std::string usage_for(const std::string& command);

/// Parse `raw[skip..]` against the command's option groups. Both
/// --name=value and --name value forms are accepted. Unknown flags and
/// malformed values print the command's usage and yield exit code 1.
[[nodiscard]] std::optional<int> parse_args(
    const std::string& command, std::span<const OptionGroup> groups,
    const std::vector<std::string>& raw, std::size_t skip, Parsed& out,
    std::ostream& err) {
  for (std::size_t i = skip; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (a.rfind("--", 0) != 0) {
      out.positional_.push_back(a);
      continue;
    }
    auto eq = a.find('=');
    std::string name = a.substr(2, eq == std::string::npos ? eq : eq - 2);
    const OptionSpec* spec = find_spec(groups, name);
    if (spec == nullptr) {
      err << "eiotrace: unknown flag '--" << name << "' for '" << command
          << "'\n" << usage_for(command);
      return 1;
    }
    std::string value;
    if (spec->kind == OptKind::kFlag) {
      if (eq != std::string::npos) {
        err << "eiotrace: --" << name << " takes no value\n"
            << usage_for(command);
        return 1;
      }
      value = "true";
    } else if (eq != std::string::npos) {
      value = a.substr(eq + 1);
    } else if (i + 1 < raw.size()) {
      value = raw[++i];
    } else {
      err << "eiotrace: --" << name << " needs a value\n" << usage_for(command);
      return 1;
    }
    if (!valid_value(spec->kind, value)) {
      err << "eiotrace: bad value '" << value << "' for --" << name
          << (spec->kind == OptKind::kSize ? " (expects a non-negative integer)"
                                           : " (expects a number)")
          << "\n" << usage_for(command);
      return 1;
    }
    out.values_[std::move(name)] = std::move(value);
  }
  return std::nullopt;
}

std::optional<posix::OpType> parse_op(const std::string& name, std::ostream& err) {
  if (name.empty() || name == "any") return std::nullopt;
  if (name == "write") return posix::OpType::kWrite;
  if (name == "read") return posix::OpType::kRead;
  if (name == "open") return posix::OpType::kOpen;
  if (name == "close") return posix::OpType::kClose;
  if (name == "seek") return posix::OpType::kSeek;
  if (name == "fsync") return posix::OpType::kFsync;
  err << "eiotrace: unknown op '" << name << "'\n";
  throw std::invalid_argument("bad op");
}

analysis::EventFilter filter_from(const Parsed& args, std::ostream& err) {
  analysis::EventFilter f;
  f.op = parse_op(args.get("op", ""), err);
  if (args.has("phase")) {
    f.phase = static_cast<std::int32_t>(args.get_double("phase", 0));
  }
  f.min_bytes = static_cast<Bytes>(args.get_double("min-bytes", 0));
  if (args.has("max-bytes")) {
    f.max_bytes = static_cast<Bytes>(args.get_double("max-bytes", 0));
  }
  if (args.has("t-lo")) f.t_lo = args.get_double("t-lo", 0.0);
  if (args.has("t-hi")) f.t_hi = args.get_double("t-hi", 0.0);
  return f;
}

/// The chunk-parallel engine for this invocation, when the source is
/// an indexed (v2/v3) file: borrows the already-read footer index, so
/// construction is free. TSV/v1 sources return nullopt and commands
/// fall back to serial batched streaming.
std::optional<ipm::ParallelTraceScanner> scanner_for(
    const ipm::TraceSource& source, const Parsed& args) {
  const auto* file = dynamic_cast<const ipm::FileTraceSource*>(&source);
  if (!file || !file->index()) return std::nullopt;
  return ipm::ParallelTraceScanner(file->path(), file->format(),
                                   *file->index(),
                                   {.jobs = args.get_size("jobs", 0)});
}

// Every subcommand consumes a TraceSource: the trace file is streamed
// per analysis pass, never materialized, so peak memory is independent
// of the event count (except where noted: diagnose/patterns need
// random access and materialize internally).
//
// Each analysis subcommand builds a kernel (or KernelSet) factory and
// hands it to analysis::run_kernels: exactly ONE trace scan per
// invocation — chunk-parallel on indexed (v2/v3) files, one serial
// columnar pass otherwise — no matter how many statistics it fuses.

// Shared table/chart renderers, so the standalone subcommands and the
// fused `analyze` bundle print identical sections.

void print_summary_header(std::ostream& out) {
  out << "  op       count   median(s)     mean(s)      p95(s)      max(s)\n";
}

void print_summary_row(std::ostream& out, posix::OpType op,
                       const stats::StreamingSummary& s) {
  if (s.empty()) return;
  char line[160];
  std::snprintf(line, sizeof line, "  %-6s %7zu %11.4f %11.4f %11.4f %11.4f\n",
                posix::op_name(op), s.count(), s.median(), s.moments().mean,
                s.quantile(0.95), s.max());
  out << line;
}

void print_phase_table(
    std::ostream& out,
    const std::map<std::int32_t, stats::StreamingSummary>& by_phase) {
  out << "  phase     events   median(s)      p95(s)      max(s)\n";
  for (const auto& [phase, s] : by_phase) {
    char line[120];
    std::snprintf(line, sizeof line, "  %6d %9zu %11.4f %11.4f %11.4f\n",
                  phase, s.count(), s.median(), s.quantile(0.95), s.max());
    out << line;
  }
}

void print_histogram_chart(std::ostream& out, const stats::Histogram& h,
                           bool log) {
  out << analysis::render_histogram(
      h, {.width = 72, .height = 12, .log_y = log,
          .x_label = log ? "seconds (log)" : "seconds", .y_label = "count"});
}

void print_rate_chart(std::ostream& out, const analysis::TimeSeries& series) {
  analysis::Series line{"rate", {}, {}};
  for (std::size_t i = 0; i < series.values.size(); ++i) {
    line.x.push_back(series.time_at(i));
    line.y.push_back(series.values[i] / static_cast<double>(MiB));
  }
  out << analysis::render_lines(
      std::vector<analysis::Series>{line},
      {.width = 72, .height = 12, .x_label = "seconds",
       .y_label = "aggregate MiB/s"});
}

int cmd_report(const ipm::TraceSource& source, const Parsed&, std::ostream& out,
               std::ostream&) {
  ipm::print_report(out, ipm::summarize(source));
  return 0;
}

int cmd_summary(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream& err) {
  analysis::EventFilter base = filter_from(args, err);
  analysis::EventFilter wf = base, rf = base;
  wf.op = posix::OpType::kWrite;
  rf.op = posix::OpType::kRead;
  auto scanner = scanner_for(source, args);
  // One fused scan feeds both per-op summaries; the hint union still
  // skips chunks containing neither op. Per-chunk substream seeds keep
  // the result identical to the former scan-per-op output (a chunk
  // without, say, writes folds an empty write partial, and empty
  // partials merge as no-ops).
  const ipm::ChunkHint hint =
      ipm::ChunkHint::union_of(analysis::hint_for(wf), analysis::hint_for(rf));
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        stats::SummaryOptions opts = analysis::chunk_summary_options({}, chunk);
        return analysis::KernelSet(analysis::SummarySink(wf, opts),
                                   analysis::SummarySink(rf, opts));
      });
  print_summary_header(out);
  print_summary_row(out, posix::OpType::kWrite, merged.get<0>().summary());
  print_summary_row(out, posix::OpType::kRead, merged.get<1>().summary());
  return 0;
}

int cmd_histogram(const ipm::TraceSource& source, const Parsed& args,
                  std::ostream& out, std::ostream& err) {
  analysis::EventFilter filter = filter_from(args, err);
  bool log = args.has("log");
  auto bins = args.get_size("bins", 40);
  stats::BinScale scale = log ? stats::BinScale::kLog10 : stats::BinScale::kLinear;
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  // ONE scan: StreamingHistogram folds range discovery and filling
  // together (bit-identical to the historical extrema+fill double scan
  // while the matched count fits its exact buffer).
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t) {
        return analysis::HistogramKernel(filter, {.scale = scale, .bins = bins});
      });
  std::optional<stats::Histogram> h = merged.histogram().materialize();
  if (!h) {
    err << "eiotrace: no events match the filter\n";
    return 2;
  }
  print_histogram_chart(out, *h, log);
  return 0;
}

int cmd_modes(const ipm::TraceSource& source, const Parsed& args,
              std::ostream& out, std::ostream& err) {
  analysis::EventFilter filter = filter_from(args, err);
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        return analysis::SummarySink(filter,
                                     analysis::chunk_summary_options({}, chunk));
      });
  const stats::StreamingSummary& s = merged.summary();
  if (s.empty()) {
    err << "eiotrace: no events match the filter\n";
    return 2;
  }
  // KDE runs over the reservoir — every duration while the stream fits
  // (so results match the materialized path exactly), a uniform sample
  // beyond that.
  auto modes = stats::find_modes(
      s.reservoir().samples(),
      {.log_axis = args.has("log"),
       .bandwidth_scale = args.get_double("bandwidth", 0.5)});
  out << "modes (" << s.count() << " events):\n";
  for (const auto& m : modes) {
    char line[120];
    std::snprintf(line, sizeof line, "  at %10.4f s   mass %5.1f%%\n",
                  m.location, m.mass * 100.0);
    out << line;
  }
  auto matched = stats::harmonic_signature(modes);
  if (matched.size() > 1) {
    out << "harmonic signature:";
    for (int h : matched) out << " T/" << h;
    out << "  -> intra-node stream serialization likely\n";
  }
  return 0;
}

int cmd_rates(const ipm::TraceSource& source, const Parsed& args,
              std::ostream& out, std::ostream& err) {
  auto bins = args.get_size("bins", 100);
  analysis::EventFilter filter = filter_from(args, err);
  auto scanner = scanner_for(source, args);
  // Indexed traces answer the span from the chunk index (free); only
  // non-indexed formats pay a span pass before the single fold scan.
  const double span = scanner ? scanner->time_span() : source.time_span();
  const ipm::ChunkHint hint = analysis::hint_for(filter);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t) {
        return analysis::RateKernel(filter, span, bins);
      });
  print_rate_chart(out, merged.series());
  return 0;
}

int cmd_diagram(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream&) {
  analysis::TraceDiagram diagram(
      source, {.max_rows = args.get_size("rows", 24),
               .columns = args.get_size("cols", 72)});
  out << diagram.render_text();
  return 0;
}

int cmd_diagnose(const ipm::TraceSource& source, const Parsed& args,
                 std::ostream& out, std::ostream&) {
  analysis::DiagnoserOptions opt;
  opt.fair_share_rate =
      args.get_double("fair-share-mibs", 0.0) * static_cast<double>(MiB);
  opt.ost_count =
      static_cast<std::uint32_t>(args.get_size("ost-count", 0));
  // The diagnoser cross-references events (stragglers vs. the pack,
  // per-file contention), so it materializes — the documented
  // O(events) exception to the streaming contract.
  ipm::Trace trace = source.materialize();
  auto findings = analysis::diagnose(trace, opt);
  if (findings.empty()) {
    out << "no findings\n";
    return 0;
  }
  for (const auto& f : findings) {
    out << "[" << analysis::finding_name(f.code) << " sev ";
    char sev[16];
    std::snprintf(sev, sizeof sev, "%.2f", f.severity);
    out << sev << "] " << f.message << "\n";
  }
  return 0;
}

[[nodiscard]] monitor::HealthOptions monitor_options_from(const Parsed& args) {
  monitor::HealthOptions opt;
  opt.ost_count =
      static_cast<std::uint32_t>(args.get_size("ost-count", 48));
  opt.window = args.get_size("window", 2048);
  opt.stride = args.get_size("stride", 1024);
  opt.drift_d = args.get_double("drift-d", 0.0);
  return opt;
}

/// Write the incident log named by --incidents (0 = ok, 1 = I/O error,
/// no-op when the flag is absent). `runs` is a parallel run-id vector
/// for ensembles; empty means "all run 0".
int write_incident_log(const Parsed& args,
                       const std::vector<monitor::Incident>& incidents,
                       const std::vector<std::uint64_t>& runs,
                       std::ostream& out, std::ostream& err) {
  if (!args.has("incidents")) return 0;
  std::string path = args.get("incidents", "");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    err << "eiotrace: cannot write " << path << "\n";
    return 1;
  }
  if (runs.empty()) {
    monitor::write_incidents_jsonl(f, incidents);
  } else {
    for (std::size_t i = 0; i < incidents.size(); ++i) {
      monitor::write_incidents_jsonl(f, {incidents[i]}, runs[i]);
    }
  }
  out << "wrote " << path << " (" << incidents.size() << " incidents)\n";
  return 0;
}

int cmd_monitor(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream& err) {
  monitor::HealthOptions opt = monitor_options_from(args);
  auto scanner = scanner_for(source, args);
  // Deliberately the default (admit-everything) chunk hint: fault
  // markers (OpType::kFault) must reach the detectors, so chunks can
  // never be pruned by op here.
  auto merged = analysis::run_kernels(
      source, scanner, ipm::ChunkHint{},
      [&](std::size_t chunk) { return monitor::HealthKernel(opt, chunk); });
  merged.finish();
  monitor::print_incident_table(out, merged.incidents());
  monitor::print_counts(out, merged.counts());
  return write_incident_log(args, merged.incidents(), {}, out, err);
}

int cmd_phases(const ipm::TraceSource& source, const Parsed& args,
               std::ostream& out, std::ostream& err) {
  analysis::EventFilter base = filter_from(args, err);
  auto scanner = scanner_for(source, args);
  const ipm::ChunkHint hint = analysis::hint_for(base);
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        return analysis::PhaseSummarySink(
            base, analysis::chunk_summary_options({}, chunk));
      });
  const auto& by_phase = merged.by_phase();
  if (by_phase.empty()) {
    err << "eiotrace: no events match the filter\n";
    return 2;
  }
  print_phase_table(out, by_phase);
  return 0;
}

int cmd_analyze(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream& err) {
  analysis::EventFilter base = filter_from(args, err);
  analysis::EventFilter wf = base, rf = base;
  wf.op = posix::OpType::kWrite;
  rf.op = posix::OpType::kRead;
  bool log = args.has("log");
  auto bins = args.get_size("bins", 40);
  auto rate_bins = args.get_size("rate-bins", 100);
  stats::BinScale scale =
      log ? stats::BinScale::kLog10 : stats::BinScale::kLinear;
  monitor::HealthOptions mopt = monitor_options_from(args);
  mopt.enabled = args.has("monitor");
  auto scanner = scanner_for(source, args);
  const double span = scanner ? scanner->time_span() : source.time_span();
  // The whole bundle — per-op summaries, per-phase table, duration
  // histogram, rate series, and (when --monitor) the health monitor —
  // as ONE KernelSet over ONE scan whose column mask and chunk hint
  // are the unions of its members'. A monitored pass keeps the default
  // hint: fault-marker chunks must not be pruned by op.
  const ipm::ChunkHint hint =
      mopt.enabled ? ipm::ChunkHint{}
                   : ipm::ChunkHint::union_of(
                         ipm::ChunkHint::union_of(analysis::hint_for(wf),
                                                  analysis::hint_for(rf)),
                         analysis::hint_for(base));
  auto merged =
      analysis::run_kernels(source, scanner, hint, [&](std::size_t chunk) {
        stats::SummaryOptions opts = analysis::chunk_summary_options({}, chunk);
        return analysis::KernelSet(
            analysis::SummarySink(wf, opts), analysis::SummarySink(rf, opts),
            analysis::PhaseSummarySink(base, opts),
            analysis::HistogramKernel(base, {.scale = scale, .bins = bins}),
            analysis::RateKernel(base, span, rate_bins),
            monitor::HealthKernel(mopt, chunk));
      });
  std::optional<stats::Histogram> h = merged.get<3>().histogram().materialize();
  if (!h) {
    err << "eiotrace: no events match the filter\n";
    return 2;
  }
  out << "== summary ==\n";
  print_summary_header(out);
  print_summary_row(out, posix::OpType::kWrite, merged.get<0>().summary());
  print_summary_row(out, posix::OpType::kRead, merged.get<1>().summary());
  out << "\n== phases ==\n";
  print_phase_table(out, merged.get<2>().by_phase());
  out << "\n== histogram ==\n";
  print_histogram_chart(out, *h, log);
  out << "\n== rates ==\n";
  print_rate_chart(out, merged.get<4>().series());
  if (mopt.enabled) {
    auto& health = merged.get<5>();
    health.finish();
    out << "\n== monitor ==\n";
    monitor::print_incident_table(out, health.incidents());
    monitor::print_counts(out, health.counts());
    return write_incident_log(args, health.incidents(), {}, out, err);
  }
  return 0;
}

int cmd_compare(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "eiotrace: compare needs two trace files\n";
    return 1;
  }
  ipm::FileTraceSource other(args.positional()[1]);
  analysis::EventFilter base = filter_from(args, err);
  out << "  op      A-median    B-median     B/A        KS-D     p-value\n";
  for (posix::OpType op : {posix::OpType::kWrite, posix::OpType::kRead}) {
    analysis::EventFilter f = base;
    f.op = op;
    auto a = analysis::durations(source, f);
    auto b = analysis::durations(other, f);
    if (a.empty() || b.empty()) continue;
    stats::KsResult ks = stats::ks_two_sample(a, b);
    stats::EmpiricalDistribution da(std::move(a));
    stats::EmpiricalDistribution db(std::move(b));
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-6s %9.4f %11.4f %9.3f %11.4f %11.4f\n",
                  posix::op_name(op), da.median(), db.median(),
                  da.median() > 0 ? db.median() / da.median() : 0.0,
                  ks.statistic, ks.p_value);
    out << line;
  }
  return 0;
}

[[nodiscard]] const char* format_label(ipm::TraceFormat format) {
  switch (format) {
    case ipm::TraceFormat::kTsv: return "tsv";
    case ipm::TraceFormat::kBinaryV1: return "v1";
    case ipm::TraceFormat::kBinaryV2: return "v2";
    case ipm::TraceFormat::kBinaryV3: return "v3";
  }
  return "?";
}

int cmd_convert(const ipm::TraceSource& source, const Parsed& args,
                std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "eiotrace: convert needs an output path\n";
    return 1;
  }
  const std::string& target = args.positional()[1];
  std::string fmt = args.get("format", "");
  if (!fmt.empty() && (args.has("tsv") || args.has("v1"))) {
    err << "eiotrace: --format conflicts with --tsv/--v1\n";
    return 1;
  }
  if (fmt.empty()) {
    fmt = args.has("tsv") ? "tsv" : args.has("v1") ? "v1" : "v2";
  }
  if (fmt != "tsv" && fmt != "v1" && fmt != "v2" && fmt != "v3") {
    err << "eiotrace: unknown --format '" << fmt << "' (tsv|v1|v2|v3)\n";
    return 1;
  }

  // Converting a file to the format it is already in is a checked
  // no-op: decode every event once to prove the file is intact, then
  // copy the bytes verbatim — never a silent re-encode.
  const auto* file = dynamic_cast<const ipm::FileTraceSource*>(&source);
  if (file != nullptr && fmt == format_label(file->format())) {
    std::uint64_t checked = 0;
    source.for_each([&checked](const ipm::TraceEvent&) { ++checked; });
    std::ifstream in(file->path(), std::ios::binary);
    std::ofstream copy(target, std::ios::binary);
    if (!in.good() || !copy.good()) {
      err << "eiotrace: cannot open for copying: " << target << "\n";
      return 2;
    }
    copy << in.rdbuf();
    if (!copy.good()) {
      err << "eiotrace: write failed: " << target << "\n";
      return 2;
    }
    out << "input is already " << fmt << "; verified " << checked
        << " events and copied byte-for-byte to " << target << "\n";
    return 0;
  }

  std::ofstream outfile(target, std::ios::binary);
  if (!outfile.good()) {
    err << "eiotrace: cannot open for writing: " << target << "\n";
    return 2;
  }
  std::uint64_t written = 0;
  if (fmt == "tsv") {
    ipm::write_tsv_header(outfile, source.meta().experiment,
                          source.meta().ranks, source.event_count());
    source.for_each([&](const ipm::TraceEvent& e) {
      ipm::write_tsv_event(outfile, e);
      ++written;
    });
  } else if (fmt == "v1") {
    ipm::write_binary_v1_header(outfile, source.meta().experiment,
                                source.meta().ranks, source.event_count());
    source.for_each([&](const ipm::TraceEvent& e) {
      ipm::write_binary_v1_event(outfile, e);
      ++written;
    });
  } else if (fmt == "v3") {
    // Columnar v3 — a single streaming pass, no up-front event count.
    ipm::TraceWriterV3 writer(outfile, source.meta().experiment,
                              source.meta().ranks);
    source.for_each([&writer](const ipm::TraceEvent& e) { writer.add(e); });
    writer.finish();
    written = writer.events_written();
  } else {
    // Default: chunked v2 with the footer index — a single streaming
    // pass, no up-front event count needed.
    ipm::TraceWriterV2 writer(outfile, source.meta().experiment,
                              source.meta().ranks);
    source.for_each([&writer](const ipm::TraceEvent& e) { writer.add(e); });
    writer.finish();
    written = writer.events_written();
  }
  if (!outfile.good()) {
    err << "eiotrace: write failed: " << target << "\n";
    return 2;
  }
  out << "wrote " << written << " events to " << target << "\n";
  return 0;
}

int cmd_patterns(const ipm::TraceSource& source, const Parsed&, std::ostream& out,
                 std::ostream&) {
  // Pattern detection orders each (rank, file) stream by offset, so it
  // materializes — documented O(events), like diagnose.
  ipm::Trace trace = source.materialize();
  auto patterns = analysis::detect_patterns(trace);
  out << patterns.size() << " streams\n";
  // Aggregate per (file, op, pattern) so 10k-rank traces stay readable.
  std::map<std::string, std::size_t> counts;
  for (const auto& p : patterns) {
    std::ostringstream key;
    key << "file " << p.file << " " << posix::op_name(p.op) << " "
        << analysis::pattern_name(p.pattern)
        << (p.stripe_aligned ? "" : " unaligned");
    ++counts[key.str()];
  }
  for (const auto& [key, n] : counts) {
    out << "  " << key << ": " << n << " streams\n";
  }
  for (const auto& h : analysis::derive_hints(patterns)) {
    out << "hint: file " << h.file << " (" << posix::op_name(h.op)
        << "): " << h.rationale << "\n";
  }
  return 0;
}

// `simulate` is special-cased in run_eiotrace: it generates runs via
// the parallel ensemble runner instead of loading a trace from disk.
// Per-run statistics come from a streaming SummarySink attached to
// each run's monitor, so without --save-dir no trace is ever
// materialized (capture stays in profile mode).
int cmd_simulate(const Parsed& args, std::ostream& out, std::ostream& err) {
  workloads::ScenarioBuilder scenario;
  if (args.has("scenario")) {
    for (const char* flag : kScenarioConflicts) {
      if (args.has(flag)) {
        err << "eiotrace: --" << flag << " conflicts with --scenario (the "
            << "file names the experiment)\n";
        return 1;
      }
    }
    try {
      scenario = workloads::load_scenario(args.get("scenario", ""));
    } catch (const std::exception& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 1;
    }
  } else {
    try {
      scenario.machine(args.get("machine", "franklin"));
    } catch (const std::invalid_argument& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 1;
    }
    workloads::IorConfig cfg;
    cfg.tasks = static_cast<std::uint32_t>(args.get_size("tasks", 256));
    cfg.block_size = static_cast<Bytes>(args.get_double("block-mib", 64.0) *
                                        static_cast<double>(MiB));
    cfg.segments = static_cast<std::uint32_t>(args.get_size("segments", 2));
    scenario.ior(cfg);
    scenario.runs(4);
  }
  if (args.has("seed")) scenario.seed(args.get_size("seed", 0));
  std::size_t runs = args.get_size("runs", scenario.run_count());
  bool save = args.has("save-dir");
  std::string save_fmt = args.get("format", "tsv");
  if (save_fmt != "tsv" && save_fmt != "v2" && save_fmt != "v3") {
    err << "eiotrace: unknown --format '" << save_fmt << "' (tsv|v2|v3)\n";
    return 1;
  }

  workloads::JobSpec job = scenario.job();
  // Traces are only retained when they are being written out.
  job.capture = save ? ipm::Mode::kBoth : ipm::Mode::kProfile;
  analysis::EventFilter write_filter{.op = posix::OpType::kWrite,
                                     .min_bytes = MiB};
  const bool monitored = args.has("monitor");
  monitor::HealthOptions mopt = monitor_options_from(args);
  if (!args.has("ost-count")) {
    mopt.ost_count = scenario.machine_config().ost_count;
  }
  mopt.stripe_size = scenario.machine_config().stripe_size;
  std::vector<std::shared_ptr<analysis::SummarySink>> sinks(runs);
  std::vector<std::shared_ptr<monitor::HealthSink>> monitors(runs);
  job.sink_factory = [&sinks, &monitors, write_filter, monitored,
                      mopt](std::size_t run_index)
      -> std::shared_ptr<ipm::EventSink> {
    auto sink = std::make_shared<analysis::SummarySink>(write_filter);
    sinks[run_index] = sink;
    if (!monitored) return sink;
    auto health = std::make_shared<monitor::HealthSink>(mopt);
    monitors[run_index] = health;
    return std::make_shared<ipm::FanoutSink>(
        std::vector<std::shared_ptr<ipm::EventSink>>{sink, health});
  };

  const char* kind_label = "IOR";
  std::ostringstream shape;
  switch (scenario.kind()) {
    case workloads::WorkloadKind::kIor: {
      const workloads::IorConfig& c = scenario.ior_config();
      shape << c.tasks << " tasks, " << to_mib(c.block_size) << " MiB blocks, "
            << c.segments << " segments";
      break;
    }
    case workloads::WorkloadKind::kMadbench: {
      kind_label = "MADbench";
      const workloads::MadbenchConfig& c = scenario.madbench_config();
      shape << c.tasks << " tasks, " << c.matrices << " matrices";
      break;
    }
    case workloads::WorkloadKind::kGcrm: {
      kind_label = "GCRM";
      const workloads::GcrmConfig& c = scenario.gcrm_config();
      shape << c.tasks << " tasks, "
            << (c.collective_buffering ? c.io_tasks : c.tasks) << " writers";
      break;
    }
  }

  workloads::ParallelEnsembleRunner runner({.jobs = args.get_size("jobs", 0)});
  out << "simulating " << runs << " " << kind_label << " runs (" << shape.str()
      << ") on " << scenario.machine_config().name << " with "
      << runner.jobs() << " worker(s)\n";
  if (scenario.fault_plan().enabled()) {
    out << "fault plan: "
        << fault::plan_to_json(scenario.fault_plan()) << "\n";
  }
  auto results = runner.run_ensemble(job, runs);

  out << "  run          job(s)    events    median(s)      p95(s)\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const stats::StreamingSummary& s = sinks[i]->summary();
    std::uint64_t events =
        save ? results[i].trace.size() : results[i].profile.total();
    char line[160];
    std::snprintf(line, sizeof line, "  %-8zu %10.1f %9llu %12.4f %11.4f\n", i,
                  results[i].job_time, static_cast<unsigned long long>(events),
                  s.empty() ? 0.0 : s.median(),
                  s.empty() ? 0.0 : s.quantile(0.95));
    out << line;
  }

  if (scenario.fault_plan().enabled()) {
    out << "fault injections:\n"
        << "  run   ost-windows    stalls   retried ops   straggler-stalls"
           "   injected(s)\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const fault::Counts& c = results[i].fault_counts;
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %-5zu %11llu %9llu %13llu %18llu %13.3f\n", i,
                    static_cast<unsigned long long>(c.ost_degradations),
                    static_cast<unsigned long long>(c.stalls),
                    static_cast<unsigned long long>(c.ops_retried),
                    static_cast<unsigned long long>(c.straggler_stalls),
                    c.stall_seconds + c.retry_seconds + c.straggler_seconds);
      out << line;
    }
  }

  if (monitored) {
    out << "health monitor:\n"
        << "  run    windows    opened   cleared   open-at-end\n";
    std::vector<monitor::Incident> incidents;
    std::vector<std::uint64_t> incident_runs;
    for (std::size_t i = 0; i < results.size(); ++i) {
      monitor::HealthKernel& k = monitors[i]->kernel();
      k.finish();
      const monitor::Counts& c = k.counts();
      char line[160];
      std::snprintf(line, sizeof line, "  %-5zu %9llu %9llu %9llu %13llu\n", i,
                    static_cast<unsigned long long>(c.windows_evaluated),
                    static_cast<unsigned long long>(c.incidents_opened),
                    static_cast<unsigned long long>(c.incidents_cleared),
                    static_cast<unsigned long long>(c.open_at_finish()));
      out << line;
      for (const monitor::Incident& inc : k.incidents()) {
        incidents.push_back(inc);
        incident_runs.push_back(i);
      }
    }
    if (!incidents.empty()) monitor::print_incident_table(out, incidents);
    int rc = write_incident_log(args, incidents, incident_runs, out, err);
    if (rc != 0) return rc;
  }

  out << "pairwise KS distances (write durations):\n";
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (std::size_t j = i + 1; j < sinks.size(); ++j) {
      stats::KsResult ks = stats::ks_two_sample(
          sinks[i]->summary().reservoir().samples(),
          sinks[j]->summary().reservoir().samples());
      char line[120];
      std::snprintf(line, sizeof line, "  %zu vs %zu: D = %.4f (p = %.3f)\n",
                    i, j, ks.statistic, ks.p_value);
      out << line;
    }
  }

  if (save) {
    std::string dir = args.get("save-dir", ".");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string path = dir + "/run" + std::to_string(i);
      if (save_fmt == "v2") {
        path += ".v2";
        results[i].trace.save_binary_v2(path);
      } else if (save_fmt == "v3") {
        path += ".v3";
        results[i].trace.save_binary_v3(path);
      } else {
        path += ".tsv";
        results[i].trace.save(path);
      }
      out << "wrote " << path << "\n";
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// The command registry: name + operands + summary + option tables +
// handler, in the order the usage text lists them.

using TraceCommand = int (*)(const ipm::TraceSource&, const Parsed&,
                             std::ostream&, std::ostream&);

struct CommandDef {
  const char* name;
  const char* operands;  ///< positional operands shown in usage
  const char* summary;
  std::vector<OptionGroup> groups;
  TraceCommand handler;  ///< nullptr: simulate (no trace operand)
};

const std::vector<CommandDef>& commands() {
  static const std::vector<CommandDef> table{
      {"report", "<trace>", "IPM job banner (per-call profile, imbalance)",
       {}, cmd_report},
      {"summary", "<trace>", "quantile table per op",
       {{"filter", kFilterSpecs}, {"parallelism", kJobsSpecs}}, cmd_summary},
      {"analyze", "<trace>",
       "fused one-pass bundle: summary + phases + histogram + rates",
       {{"analyze", kAnalyzeSpecs},
        {"monitor", kMonitorSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       cmd_analyze},
      {"monitor", "<trace>",
       "online health monitoring: incidents + deterministic JSONL log",
       {{"monitor", kMonitorSpecs}, {"parallelism", kJobsSpecs}},
       cmd_monitor},
      {"histogram", "<trace>", "duration histogram",
       {{"histogram", kHistogramSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       cmd_histogram},
      {"modes", "<trace>", "KDE mode detection + harmonic signature",
       {{"modes", kModesSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       cmd_modes},
      {"rates", "<trace>", "aggregate rate chart",
       {{"rates", kRatesSpecs},
        {"filter", kFilterSpecs},
        {"parallelism", kJobsSpecs}},
       cmd_rates},
      {"diagram", "<trace>", "per-rank trace raster",
       {{"diagram", kDiagramSpecs}}, cmd_diagram},
      {"diagnose", "<trace>", "automatic bottleneck findings",
       {{"diagnose", kDiagnoseSpecs}}, cmd_diagnose},
      {"patterns", "<trace>", "access-pattern detection + fs hints",
       {}, cmd_patterns},
      {"phases", "<trace>", "per-phase duration table",
       {{"filter", kFilterSpecs}, {"parallelism", kJobsSpecs}}, cmd_phases},
      {"compare", "<traceA> <traceB>", "A vs B medians + KS distance",
       {{"filter", kFilterSpecs}}, cmd_compare},
      {"convert", "<trace> <out>",
       "rewrite as --format=tsv|v1|v2|v3 (default v2; same format = "
       "checked copy)",
       {{"convert", kConvertSpecs}}, cmd_convert},
      {"simulate", "",
       "generate an ensemble from flags or a --scenario file",
       {{"simulate", kSimulateSpecs},
        {"monitor", kMonitorSpecs},
        {"parallelism", kJobsSpecs}},
       nullptr},
  };
  return table;
}

[[nodiscard]] const CommandDef* find_command(const std::string& name) {
  for (const CommandDef& c : commands()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

std::string usage_for(const std::string& command) {
  const CommandDef* cmd = find_command(command);
  if (cmd == nullptr) return usage_text();
  std::ostringstream os;
  os << "usage: eiotrace " << cmd->name;
  if (cmd->operands[0] != '\0') os << " " << cmd->operands;
  os << " [flags]\n  " << cmd->summary << "\n";
  for (const OptionGroup& g : cmd->groups) {
    os << g.title << " flags:\n";
    for (const OptionSpec& s : g.options) {
      std::string left = std::string("--") + s.name;
      switch (s.kind) {
        case OptKind::kFlag: break;
        case OptKind::kString: left += "=S"; break;
        case OptKind::kDouble: left += "=X"; break;
        case OptKind::kSize: left += "=N"; break;
      }
      os << "  " << left;
      for (std::size_t pad = left.size(); pad < 20; ++pad) os << ' ';
      os << s.help;
      if (s.fallback[0] != '\0') os << " (default " << s.fallback << ")";
      os << "\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Self-observability wiring.

/// Obs flags are accepted anywhere on the command line, in both
/// --flag=value and --flag value forms, and stripped before command
/// parsing so every command composes with them.
struct ObsRequest {
  std::string chrome_trace;  ///< --chrome-trace PATH: span trace JSON
  std::string metrics;       ///< --metrics PATH: metrics JSON (or .tsv)
  bool summary = false;      ///< --obs-summary: end-of-run table
  bool enable = false;       ///< --obs: record without exporting

  [[nodiscard]] bool any() const {
    return enable || summary || !chrome_trace.empty() || !metrics.empty();
  }
};

ObsRequest extract_obs_flags(std::vector<std::string>& args) {
  ObsRequest req;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  auto value_of = [&args](std::size_t& i,
                          std::string_view flag) -> std::optional<std::string> {
    const std::string& a = args[i];
    if (a == flag) {
      if (i + 1 < args.size()) return args[++i];
      return std::string();
    }
    if (a.size() > flag.size() + 1 && a.compare(0, flag.size(), flag) == 0 &&
        a[flag.size()] == '=') {
      return a.substr(flag.size() + 1);
    }
    return std::nullopt;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = value_of(i, "--chrome-trace")) {
      req.chrome_trace = *v;
    } else if (auto v = value_of(i, "--metrics")) {
      req.metrics = *v;
    } else if (args[i] == "--obs-summary") {
      req.summary = true;
    } else if (args[i] == "--obs") {
      req.enable = true;
    } else {
      kept.push_back(args[i]);
    }
  }
  args = std::move(kept);
  return req;
}

/// Export/print whatever the run recorded. Returns non-zero only when
/// a requested output file cannot be written.
int finish_obs(const ObsRequest& req, std::ostream& out, std::ostream& err) {
  if (!req.any()) return 0;
  int rc = 0;
  obs::Snapshot snap = obs::Registry::instance().snapshot();
  try {
    if (!req.metrics.empty()) obs::write_metrics_file(req.metrics, snap);
    if (!req.chrome_trace.empty()) {
      obs::write_chrome_trace_file(req.chrome_trace);
    }
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    rc = 2;
  }
  if (req.summary) obs::print_summary(out, snap);
  return rc;
}

int cmd_version(std::ostream& out) {
  const obs::BuildInfo& b = obs::build_info();
  out << "eiotrace (ensembleio) " << b.version << "\n"
      << "  git_sha:       " << b.git_sha << "\n"
      << "  compiler:      " << b.compiler << "\n"
      << "  flags:         " << b.flags << "\n"
      << "  build_type:    " << b.build_type << "\n"
      << "  observability: "
      << (b.obs_compiled_in ? "compiled in" : "compiled out") << "\n";
  return 0;
}

}  // namespace

std::string usage_text() {
  std::ostringstream os;
  os << "usage: eiotrace <command> [operands] [flags]\n"
     << "commands:\n";
  for (const CommandDef& c : commands()) {
    std::string left = c.name;
    if (c.operands[0] != '\0') left += std::string(" ") + c.operands;
    os << "  " << left;
    for (std::size_t pad = left.size(); pad < 26; ++pad) os << ' ';
    os << c.summary << "\n";
  }
  os << "  version                   build provenance (git SHA, compiler, "
        "flags)\n"
     << "  help [command]            this text, or one command's full flag "
        "table\n"
     << "simulate reads either flags (an IOR ensemble) or a declarative\n"
     << "scenario JSON file (--scenario FILE: machine, workload, ensemble\n"
     << "size, fault plan; see examples/scenarios/).\n"
     << "self-observability (any command): --chrome-trace OUT.json "
        "--metrics OUT.json|.tsv\n"
     << "             --obs-summary --obs   (instrument this invocation "
        "itself)\n"
     << "common filter flags: --op=write|read --phase=P --min-bytes=N "
        "--max-bytes=N\n"
     << "                     --t-lo=S --t-hi=S (wall-clock window, "
        "seconds)\n"
     << "parallelism: summary/analyze/histogram/modes/rates/phases/simulate "
        "take --jobs=N\n"
     << "             (default: hardware concurrency; indexed v2/v3 traces "
        "scan\n"
     << "             chunk-parallel, other formats stream serially)\n";
  return os.str();
}

std::string usage_text(const std::string& command) { return usage_for(command); }

namespace {

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    if (args.size() > 1 && find_command(args[1]) != nullptr) {
      out << usage_for(args[1]);
      return 0;
    }
    out << usage_text();
    return args.empty() ? 1 : 0;
  }
  if (args[0] == "version" || args[0] == "--version" ||
      args[0] == "--build-info") {
    return cmd_version(out);
  }
  const CommandDef* cmd = find_command(args[0]);
  if (cmd == nullptr) {
    err << "eiotrace: unknown command '" << args[0] << "'\n" << usage_text();
    return 1;
  }
  Parsed parsed;
  if (auto rc = parse_args(cmd->name, cmd->groups, args, 1, parsed, err)) {
    return *rc;
  }
  if (cmd->handler == nullptr) {  // simulate: no trace operand
    try {
      return cmd_simulate(parsed, out, err);
    } catch (const std::exception& e) {
      err << "eiotrace: " << e.what() << "\n";
      return 2;
    }
  }
  if (parsed.positional().empty()) {
    err << "eiotrace: missing trace file\n" << usage_for(cmd->name);
    return 1;
  }
  try {
    // The trace file is opened as a streaming source; each command
    // pulls the passes it needs.
    ipm::FileTraceSource source(parsed.positional()[0]);
    return cmd->handler(source, parsed, out, err);
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int run_eiotrace(const std::vector<std::string>& raw_args, std::ostream& out,
                 std::ostream& err) {
  std::vector<std::string> args = raw_args;
  ObsRequest obs_req = extract_obs_flags(args);
  if (obs_req.any()) {
    if (!obs::kCompiledIn) {
      err << "eiotrace: warning: observability was compiled out "
             "(-DEIO_OBS=OFF); reports will be empty\n";
    }
    // Reset so each invocation's report covers exactly this invocation
    // (matters for in-process drivers like the test harness).
    obs::Registry::instance().reset();
    obs::set_enabled(true);
  }
  int rc = dispatch(args, out, err);
  int obs_rc = finish_obs(obs_req, out, err);
  if (obs_req.any()) obs::set_enabled(false);
  return rc != 0 ? rc : obs_rc;
}

}  // namespace eio::cli
