// eiotrace — offline analysis of saved IPM-I/O traces.
//
// The command-line companion to the library: point it at a trace file
// saved with ipm::Trace::save() (or by the Monitor in any simulated or
// real-wrapper deployment) and get the report, histograms, modes,
// aggregate rates, trace diagram, access patterns, or a diagnosis —
// the full Section III toolbox without writing C++.
//
// Implemented as a library entry point so tests can drive it directly;
// tools/eiotrace.cpp is the thin main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eio::cli {

/// Execute one eiotrace invocation. `args` excludes the program name.
/// Output goes to `out`, errors/usage to `err`. Returns the process
/// exit code (0 success, 1 bad usage, 2 runtime failure).
int run_eiotrace(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

/// The usage text (for tests and --help).
[[nodiscard]] std::string usage_text();

/// Per-subcommand usage: the command's operands, summary, and option
/// table (names, defaults, help), generated from the same declarative
/// tables the parser runs on. Unknown commands get the global usage.
[[nodiscard]] std::string usage_text(const std::string& command);

}  // namespace eio::cli
