// Handler declarations for the registry table (cli/command.cpp).
// Implementations live in commands_trace.cpp (trace analysis),
// commands_simulate.cpp (ensemble generation), and
// commands_campaign.cpp (the campaign service + worker mode).
#pragma once

#include "cli/command.h"

namespace eio::cli {

int cmd_report(CommandContext& ctx);
int cmd_summary(CommandContext& ctx);
int cmd_analyze(CommandContext& ctx);
int cmd_monitor(CommandContext& ctx);
int cmd_histogram(CommandContext& ctx);
int cmd_modes(CommandContext& ctx);
int cmd_rates(CommandContext& ctx);
int cmd_diagram(CommandContext& ctx);
int cmd_diagnose(CommandContext& ctx);
int cmd_patterns(CommandContext& ctx);
int cmd_phases(CommandContext& ctx);
int cmd_compare(CommandContext& ctx);
int cmd_convert(CommandContext& ctx);
int cmd_simulate(CommandContext& ctx);
int cmd_campaign(CommandContext& ctx);
int cmd_campaign_worker(CommandContext& ctx);

}  // namespace eio::cli
