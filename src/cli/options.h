// Declarative option tables and the parser that runs against them.
//
// Every subcommand lists its options as data (OptionSpec/OptionGroup);
// the same tables drive parsing — uniform unknown-flag/bad-value
// errors, exit code 1 — and the generated usage text, so the two
// cannot disagree. This is the public half of the command API: the
// registry (cli/command.h) composes groups per command, and embedders
// (campaign workers, tests) can parse argv slices with the exact CLI
// semantics.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace eio::cli {

enum class OptKind : std::uint8_t {
  kFlag,    ///< boolean, present or absent
  kString,  ///< free-form value
  kDouble,  ///< numeric value (validated at parse time)
  kSize,    ///< non-negative integer (validated at parse time)
};

struct OptionSpec {
  const char* name;      ///< without the leading "--"
  OptKind kind;
  const char* fallback;  ///< default shown in help ("" = none)
  const char* help;
};

struct OptionGroup {
  const char* title;
  std::span<const OptionSpec> options;
};

/// Parsed options + positionals of one invocation.
class Parsed {
 public:
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

[[nodiscard]] const OptionSpec* find_spec(std::span<const OptionGroup> groups,
                                          std::string_view name);

[[nodiscard]] bool valid_value(OptKind kind, const std::string& value);

/// Parse `raw[skip..]` against the command's option groups. Both
/// --name=value and --name value forms are accepted. Unknown flags and
/// malformed values print `usage` to `err` and yield exit code 1
/// (wrapped in the optional); nullopt means success.
[[nodiscard]] std::optional<int> parse_args(const std::string& command,
                                            std::span<const OptionGroup> groups,
                                            const std::vector<std::string>& raw,
                                            std::size_t skip, Parsed& out,
                                            std::ostream& err,
                                            const std::string& usage);

}  // namespace eio::cli
