// POSIX-like I/O surface over the simulated file system.
//
// Each MPI rank has its own descriptor table (as separate processes
// would); calls are asynchronous because they advance simulated time.
// Completion callbacks deliver the usual POSIX results (byte counts,
// new offsets, -1 on error). Registered IoObservers see every completed
// call with its duration — the interception point the tracer uses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "fault/injector.h"
#include "lustre/filesystem.h"
#include "posix/hooks.h"
#include "sim/engine.h"
#include "sim/run_context.h"

namespace eio::posix {

/// Flags for open(); combined with |.
enum OpenFlags : std::uint32_t {
  kRdOnly = 0,
  kWrOnly = 1u << 0,
  kRdWr = 1u << 1,
  kCreate = 1u << 2,
};

/// Seek origin.
enum class Whence : std::uint8_t { kSet, kCur, kEnd };

/// The simulated POSIX layer.
class PosixIo {
 public:
  // Completion callbacks are inline (no heap) and move-only: the MPI
  // runtime and workload drivers capture a handful of words, and a
  // std::function here heap-allocated on every simulated call.
  using SizeCallback = sim::InlineFunction<void(std::int64_t), 40>;  ///< bytes or -1
  using FdCallback = sim::InlineFunction<void(Fd), 40>;              ///< fd or -1
  using StatusCallback = sim::InlineFunction<void(int), 40>;         ///< 0 or -1

  /// `tasks_per_node` maps ranks onto client nodes (rank / tasks_per_node).
  /// `run` must be the same run context the filesystem was built on.
  /// `injector` (optional, not owned, same run) injects transient op
  /// failures: a faulted data op pays its retry timeouts + backoff
  /// before being issued, so the traced call duration includes them.
  PosixIo(sim::RunContext& run, lustre::Filesystem& fs,
          std::uint32_t tasks_per_node, fault::Injector* injector = nullptr);

  PosixIo(const PosixIo&) = delete;
  PosixIo& operator=(const PosixIo&) = delete;

  /// Pre-declare striping/sharing options for a path (the moral
  /// equivalent of `lfs setstripe`). Must be called before the file is
  /// first created.
  void setstripe(const std::string& path, const lustre::FileOptions& options);

  void open(RankId rank, const std::string& path, std::uint32_t flags, FdCallback done);
  void close(RankId rank, Fd fd, StatusCallback done);
  /// Returns the resulting absolute offset (or -1).
  void lseek(RankId rank, Fd fd, std::int64_t offset, Whence whence, SizeCallback done);
  void read(RankId rank, Fd fd, Bytes count, SizeCallback done);
  void write(RankId rank, Fd fd, Bytes count, SizeCallback done);
  void pread(RankId rank, Fd fd, Bytes count, Bytes offset, SizeCallback done);
  void pwrite(RankId rank, Fd fd, Bytes count, Bytes offset, SizeCallback done);
  void fsync(RankId rank, Fd fd, StatusCallback done);

  /// Register a call observer (not owned). Observers fire on completion.
  void add_observer(IoObserver* observer);
  void remove_observer(IoObserver* observer);

  /// Surface an injected fault to the observers as an OpType::kFault
  /// record (file = component, offset = fault kind, duration = the
  /// injected delay). This is how fault markers enter the IPM pipeline
  /// and every downstream trace format and scan.
  void notify_fault(const fault::Marker& marker);

  /// Node hosting a rank.
  [[nodiscard]] NodeId node_of(RankId rank) const noexcept {
    return rank / tasks_per_node_;
  }

  [[nodiscard]] lustre::Filesystem& filesystem() noexcept { return fs_; }

  /// Number of fds currently open across all ranks.
  [[nodiscard]] std::size_t open_fd_count() const noexcept { return fds_.size(); }

 private:
  struct OpenFile {
    FileId file = kInvalidFile;
    Bytes position = 0;
    std::uint32_t flags = 0;
  };

  [[nodiscard]] static std::uint64_t key(RankId rank, Fd fd) noexcept {
    return (static_cast<std::uint64_t>(rank) << 32) |
           static_cast<std::uint32_t>(fd);
  }
  OpenFile* find(RankId rank, Fd fd);
  void notify(const CallRecord& record);
  void data_op(RankId rank, Fd fd, Bytes count, Bytes offset, bool advance,
               bool is_write, SizeCallback done);

  sim::Engine& engine_;
  lustre::Filesystem& fs_;
  fault::Injector* injector_;  ///< optional, not owned, same run
  std::uint32_t tasks_per_node_;
  std::unordered_map<std::uint64_t, OpenFile> fds_;
  std::unordered_map<RankId, Fd> next_fd_;
  std::unordered_map<std::string, lustre::FileOptions> stripe_options_;
  std::vector<IoObserver*> observers_;
};

}  // namespace eio::posix
