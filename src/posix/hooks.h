// Interception hooks for the POSIX-like I/O layer.
//
// IPM-I/O on the real machines intercepts libc calls with the GNU
// linker's `-wrap` mechanism. Here the same role is played by an
// observer registry on the simulated POSIX layer: every completed call
// is reported with its arguments and wall-clock duration, which is
// exactly the record IPM-I/O's trace entries carry.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/units.h"

namespace eio::posix {

/// The POSIX calls the tracer distinguishes.
enum class OpType : std::uint8_t {
  kOpen,
  kClose,
  kSeek,
  kRead,
  kWrite,
  kFsync,
  kFault,  ///< injected-fault marker emitted by fault::Injector, not a call
};

/// Printable name of an op ("write", "read", ...).
[[nodiscard]] const char* op_name(OpType op) noexcept;

/// One completed POSIX call, as seen by an interposed tracer.
struct CallRecord {
  RankId rank = 0;
  OpType op = OpType::kRead;
  Fd fd = -1;
  FileId file = kInvalidFile;  ///< resolved via the open-fd lookup table
  Bytes offset = 0;            ///< file offset the call acted at
  Bytes bytes = 0;             ///< bytes transferred (0 for non-data calls)
  Seconds start = 0.0;         ///< call entry timestamp
  Seconds duration = 0.0;      ///< wall time inside the call
};

/// Observer interface; implemented by eio::ipm::Monitor.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void on_call(const CallRecord& record) = 0;
};

}  // namespace eio::posix
