#include "posix/vfs.h"

#include <algorithm>

#include "common/check.h"

namespace eio::posix {

const char* op_name(OpType op) noexcept {
  switch (op) {
    case OpType::kOpen: return "open";
    case OpType::kClose: return "close";
    case OpType::kSeek: return "seek";
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kFsync: return "fsync";
    case OpType::kFault: return "fault";
  }
  return "?";
}

PosixIo::PosixIo(sim::RunContext& run, lustre::Filesystem& fs,
                 std::uint32_t tasks_per_node, fault::Injector* injector)
    : engine_(run.engine()),
      fs_(fs),
      injector_(injector),
      tasks_per_node_(tasks_per_node) {
  EIO_CHECK(tasks_per_node_ >= 1);
}

void PosixIo::setstripe(const std::string& path, const lustre::FileOptions& options) {
  EIO_CHECK_MSG(fs_.lookup(path) == kInvalidFile,
                "setstripe after creation: " << path);
  stripe_options_[path] = options;
}

void PosixIo::add_observer(IoObserver* observer) {
  EIO_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void PosixIo::remove_observer(IoObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void PosixIo::notify(const CallRecord& record) {
  for (IoObserver* o : observers_) o->on_call(record);
}

void PosixIo::notify_fault(const fault::Marker& marker) {
  notify({marker.rank, OpType::kFault, -1, marker.component,
          static_cast<Bytes>(marker.kind), 0, marker.time, marker.detail});
}

PosixIo::OpenFile* PosixIo::find(RankId rank, Fd fd) {
  auto it = fds_.find(key(rank, fd));
  return it == fds_.end() ? nullptr : &it->second;
}

void PosixIo::open(RankId rank, const std::string& path, std::uint32_t flags,
                   FdCallback done) {
  Seconds start = engine_.now();
  FileId file = fs_.lookup(path);
  if (file == kInvalidFile) {
    if (!(flags & kCreate)) {
      engine_.schedule_in(fs_.syscall_latency(), [this, rank, start,
                                                  done = std::move(done)]() mutable {
        notify({rank, OpType::kOpen, -1, kInvalidFile, 0, 0, start,
                engine_.now() - start});
        done(-1);
      });
      return;
    }
    auto oit = stripe_options_.find(path);
    lustre::FileOptions options =
        oit != stripe_options_.end() ? oit->second : lustre::FileOptions{};
    file = fs_.create(path, options);
  }

  Fd fd = next_fd_.emplace(rank, 3).first->second;
  next_fd_[rank] = fd + 1;
  fds_[key(rank, fd)] = OpenFile{file, 0, flags};

  engine_.schedule_in(fs_.syscall_latency(),
                      [this, rank, fd, file, start, done = std::move(done)]() mutable {
                        notify({rank, OpType::kOpen, fd, file, 0, 0, start,
                                engine_.now() - start});
                        done(fd);
                      });
}

void PosixIo::close(RankId rank, Fd fd, StatusCallback done) {
  Seconds start = engine_.now();
  OpenFile* of = find(rank, fd);
  if (of == nullptr) {
    engine_.schedule_in(fs_.syscall_latency(), [done = std::move(done)]() mutable { done(-1); });
    return;
  }
  FileId file = of->file;
  fds_.erase(key(rank, fd));
  // close() flushes this node's outstanding write-back data; this is
  // where deferred/aggregated work becomes visible in run time.
  fs_.flush(node_of(rank), [this, rank, fd, file, start, done = std::move(done)]() mutable {
    notify({rank, OpType::kClose, fd, file, 0, 0, start, engine_.now() - start});
    done(0);
  });
}

void PosixIo::lseek(RankId rank, Fd fd, std::int64_t offset, Whence whence,
                    SizeCallback done) {
  Seconds start = engine_.now();
  OpenFile* of = find(rank, fd);
  if (of == nullptr) {
    engine_.schedule_in(fs_.syscall_latency(), [done = std::move(done)]() mutable { done(-1); });
    return;
  }
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(of->position); break;
    case Whence::kEnd: base = static_cast<std::int64_t>(fs_.size(of->file)); break;
  }
  std::int64_t target = base + offset;
  if (target < 0) {
    engine_.schedule_in(fs_.syscall_latency(), [done = std::move(done)]() mutable { done(-1); });
    return;
  }
  of->position = static_cast<Bytes>(target);
  FileId file = of->file;
  engine_.schedule_in(
      fs_.syscall_latency(),
      [this, rank, fd, file, target, start, done = std::move(done)]() mutable {
        notify({rank, OpType::kSeek, fd, file, static_cast<Bytes>(target), 0, start,
                engine_.now() - start});
        done(target);
      });
}

void PosixIo::data_op(RankId rank, Fd fd, Bytes count, Bytes offset, bool advance,
                      bool is_write, SizeCallback done) {
  Seconds start = engine_.now();
  OpenFile* of = find(rank, fd);
  if (of == nullptr) {
    engine_.schedule_in(fs_.syscall_latency(), [done = std::move(done)]() mutable { done(-1); });
    return;
  }
  FileId file = of->file;
  Bytes actual = count;
  if (!is_write) {
    Bytes size = fs_.size(file);
    actual = offset >= size ? 0 : std::min(count, size - offset);
  }
  if (advance) of->position = offset + actual;

  auto finish = [this, rank, fd, file, offset, actual, start, is_write,
                 done = std::move(done)]() mutable {
    notify({rank, is_write ? OpType::kWrite : OpType::kRead, fd, file, offset,
            actual, start, engine_.now() - start});
    done(static_cast<std::int64_t>(actual));
  };
  NodeId node = node_of(rank);
  auto issue = [this, node, rank, file, offset, actual, is_write,
                finish = std::move(finish)]() mutable {
    // Straggler clause: a slow host's call stretches by (slowdown-1) x
    // the op's service time, charged inside the call — the traced
    // duration, the rank's drift, and the barrier order statistic all
    // see the same lag.
    Seconds issued = engine_.now();
    auto complete = [this, rank, issued, finish = std::move(finish)]() mutable {
      Seconds lag = injector_ != nullptr
                        ? injector_->straggler_lag(rank, engine_.now() - issued)
                        : 0.0;
      if (lag > 0.0) {
        engine_.schedule_in(lag, std::move(finish));
      } else {
        finish();
      }
    };
    if (is_write) {
      fs_.write(node, rank, file, offset, actual, std::move(complete));
    } else {
      fs_.read(node, rank, file, offset, actual, std::move(complete));
    }
  };
  // Transient-failure clause of the fault plan: the client retries
  // failed attempts with timeout + exponential backoff before the one
  // that sticks. `start` predates the retries, so the traced duration
  // stretches by exactly the injected delay.
  Seconds retry = injector_ != nullptr ? injector_->retry_delay(rank) : 0.0;
  if (retry > 0.0) {
    engine_.schedule_in(retry, std::move(issue));
  } else {
    issue();
  }
}

void PosixIo::read(RankId rank, Fd fd, Bytes count, SizeCallback done) {
  OpenFile* of = find(rank, fd);
  Bytes offset = of != nullptr ? of->position : 0;
  data_op(rank, fd, count, offset, /*advance=*/true, /*is_write=*/false,
          std::move(done));
}

void PosixIo::write(RankId rank, Fd fd, Bytes count, SizeCallback done) {
  OpenFile* of = find(rank, fd);
  Bytes offset = of != nullptr ? of->position : 0;
  data_op(rank, fd, count, offset, /*advance=*/true, /*is_write=*/true,
          std::move(done));
}

void PosixIo::pread(RankId rank, Fd fd, Bytes count, Bytes offset, SizeCallback done) {
  data_op(rank, fd, count, offset, /*advance=*/false, /*is_write=*/false,
          std::move(done));
}

void PosixIo::pwrite(RankId rank, Fd fd, Bytes count, Bytes offset,
                     SizeCallback done) {
  data_op(rank, fd, count, offset, /*advance=*/false, /*is_write=*/true,
          std::move(done));
}

void PosixIo::fsync(RankId rank, Fd fd, StatusCallback done) {
  Seconds start = engine_.now();
  OpenFile* of = find(rank, fd);
  if (of == nullptr) {
    engine_.schedule_in(fs_.syscall_latency(), [done = std::move(done)]() mutable { done(-1); });
    return;
  }
  FileId file = of->file;
  fs_.flush(node_of(rank), [this, rank, fd, file, start, done = std::move(done)]() mutable {
    notify({rank, OpType::kFsync, fd, file, 0, 0, start, engine_.now() - start});
    done(0);
  });
}

}  // namespace eio::posix
