// The consolidated fleet report: the campaign's records rolled up.
//
// LASSi-style fleet analytics over the store: per-scenario (manifest
// source) groups with run counts, job-time and rate statistics, event
// totals, fault-injection totals, and health rollups (incident counts
// by kind, degraded-OST and straggler-rank opens). The report is
// derived solely from the merged records — no timestamps, paths, or
// environment — so it inherits the store's byte-determinism across
// worker counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace eio::campaign {

/// Rollup of one manifest source's records.
struct SourceRollup {
  std::uint64_t records = 0;       ///< campaign runs (store lines)
  std::uint64_t ensemble_runs = 0; ///< simulated runs ("runs" summed)
  std::uint64_t events = 0;
  double job_time_mean_sum = 0.0;  ///< sum of per-record job_time means
  double job_time_min = 0.0;
  double job_time_max = 0.0;
  double rate_mean_sum = 0.0;      ///< sum of per-record rate means
  std::uint64_t fault_injections = 0;
  std::uint64_t incidents_opened = 0;
  std::uint64_t degraded_ost = 0;
  std::uint64_t straggler_rank = 0;
  std::uint64_t drift = 0;
  std::uint64_t injected = 0;
  /// Incident totals by kind name, fleet-queryable.
  std::map<std::string, std::uint64_t> incidents_by_kind;

  [[nodiscard]] double job_time_mean() const {
    return records > 0 ? job_time_mean_sum / static_cast<double>(records) : 0.0;
  }
  [[nodiscard]] double rate_mean() const {
    return records > 0 ? rate_mean_sum / static_cast<double>(records) : 0.0;
  }
};

struct FleetReport {
  std::uint64_t records = 0;
  std::uint64_t ensemble_runs = 0;
  std::uint64_t events = 0;
  std::uint64_t incidents_opened = 0;
  /// Sources in sorted-name order (deterministic iteration).
  std::map<std::string, SourceRollup> sources;
};

/// Fold merged records (run index -> record line) into the report.
/// Records that fail to parse are counted but otherwise skipped —
/// the store merge already filtered torn lines, so this only guards
/// against schema drift.
[[nodiscard]] FleetReport build_report(
    const std::map<std::uint64_t, std::string>& records);

/// The report as one deterministic JSON document (fixed key order,
/// %.9g floats), newline-terminated.
void write_report_json(std::ostream& out, const FleetReport& report);

/// Human-readable fleet table.
void print_report(std::ostream& out, const FleetReport& report);

}  // namespace eio::campaign
