// The campaign dispatcher: shard runs across worker processes.
//
// The parent forks/execs N workers (see campaign/worker.h for the
// stdin/stdout line protocol) and work-steals over one shared run
// queue: every idle worker takes the lowest unassigned run index, so
// a slow run never blocks the queue behind it and the shard shape
// adapts to per-run cost automatically. Supervision:
//
//   * per-run timeout: a worker that holds a run past --run-timeout
//     is SIGKILLed, reaped, and replaced by a fresh spawn;
//   * crash = EOF on the worker's stdout pipe: reaped and replaced;
//   * retry-once: a run that died with its worker is re-dispatched to
//     another worker exactly once; a second death marks it failed;
//   * every spawn gets a NEW store file (named by a monotonically
//     increasing spawn id, never by worker slot), so a retried run
//     can never land in the file a crashing predecessor tore.
//
// Determinism: the dispatcher only decides WHERE runs execute; the
// records are pure functions of the plans, and the store merge is
// order-independent — so scheduling, timeouts, and retries are all
// invisible in the consolidated output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace eio::campaign {

/// Sentinel for "no run" in the injection knobs.
inline constexpr std::uint64_t kNoRun = ~0ULL;

struct DispatchOptions {
  std::size_t workers = 1;
  /// Seconds a worker may hold one run before it is killed and the
  /// run retried; 0 disables the timeout.
  double run_timeout = 0.0;
  /// Worker executable; empty resolves /proc/self/exe, so any binary
  /// embedding the CLI library dispatches to itself.
  std::string worker_exe;
  /// Arguments after the executable name, e.g. {"campaign-worker",
  /// "--plans", ..., "--run-jobs", "1"}. The dispatcher appends
  /// "--store <store_dir>/worker-<spawn>.jsonl" per spawn.
  std::vector<std::string> worker_args;
  std::string store_dir;
  /// Failure injection (CI/test hooks): the first dispatch of this run
  /// is sent as "crash-run"/"hang-run" instead of "run", exercising
  /// the crash-retry / timeout-retry paths on production code.
  std::uint64_t inject_crash_run = kNoRun;
  std::uint64_t inject_hang_run = kNoRun;
};

struct DispatchResult {
  /// Store files of every spawn, in spawn order (input to the merge).
  std::vector<std::string> store_files;
  std::size_t spawns = 0;       ///< total worker processes started
  std::size_t respawns = 0;     ///< spawns beyond the initial fleet
  std::size_t timeouts = 0;     ///< runs killed by the per-run deadline
  std::size_t crashes = 0;      ///< workers that died mid-run
  std::vector<std::uint64_t> failed_runs;  ///< failed after the retry
  std::vector<std::uint64_t> error_runs;   ///< worker replied "fail"

  [[nodiscard]] bool ok() const {
    return failed_runs.empty() && error_runs.empty();
  }
};

/// Execute runs [0, run_count) per the options. `log` receives
/// progress lines (worker lifecycle, retries); record content never
/// passes through the dispatcher. Throws std::runtime_error when the
/// worker fleet cannot be started at all.
[[nodiscard]] DispatchResult dispatch_runs(std::uint64_t run_count,
                                           const DispatchOptions& options,
                                           std::ostream& log);

/// This process's executable path (readlink /proc/self/exe).
[[nodiscard]] std::string self_exe_path();

}  // namespace eio::campaign
