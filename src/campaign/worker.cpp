#include "campaign/worker.h"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

#include "campaign/runner.h"
#include "workloads/sweep.h"

namespace eio::campaign {

namespace {

/// Parse "<directive> <N>" into the run index; nullopt on junk.
std::optional<std::uint64_t> index_of(const std::string& line,
                                      std::size_t prefix_len) {
  if (line.size() <= prefix_len) return std::nullopt;
  const char* s = line.c_str() + prefix_len;
  char* end = nullptr;
  std::uint64_t n = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return std::nullopt;
  return n;
}

}  // namespace

int run_worker(const WorkerOptions& options, std::istream& in,
               std::ostream& out, std::ostream& err) {
  std::map<std::uint64_t, workloads::RunPlan> plans;
  {
    std::ifstream f(options.plans_path, std::ios::binary);
    if (!f) {
      err << "eiotrace: campaign-worker: cannot open " << options.plans_path
          << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(f, line)) {
      if (line.empty()) continue;
      try {
        workloads::RunPlan plan = workloads::plan_from_jsonl(line);
        std::uint64_t idx = plan.index;
        plans.emplace(idx, std::move(plan));
      } catch (const std::exception& e) {
        err << "eiotrace: campaign-worker: bad plan line: " << e.what() << "\n";
        return 1;
      }
    }
  }
  std::ofstream store(options.store_path, std::ios::binary | std::ios::app);
  if (!store) {
    err << "eiotrace: campaign-worker: cannot open store "
        << options.store_path << "\n";
    return 1;
  }

  RunnerOptions run_options{.jobs = options.run_jobs};
  std::string line;
  while (std::getline(in, line)) {
    if (line == "exit") return 0;
    if (line.rfind("run ", 0) == 0) {
      auto idx = index_of(line, 4);
      auto it = idx ? plans.find(*idx) : plans.end();
      if (it == plans.end()) {
        out << "fail " << (idx ? *idx : 0) << " unknown run\n" << std::flush;
        continue;
      }
      try {
        std::string record = run_record(it->second, run_options);
        // Durability order: append + flush the record, THEN ack. A
        // worker that dies between the two leaves a complete line the
        // merge accepts, and the retry's duplicate resolves cleanly.
        store << record << '\n' << std::flush;
        out << "ok " << *idx << '\n' << std::flush;
      } catch (const std::exception& e) {
        std::string msg = e.what();
        for (char& c : msg) {
          if (c == '\n') c = ' ';
        }
        out << "fail " << *idx << ' ' << msg << '\n' << std::flush;
      }
      continue;
    }
    if (line.rfind("crash-run ", 0) == 0) {
      // Failure injection: compute the record, flush HALF of it with
      // no newline, and die hard — the worst-case torn append the
      // store merge must discard.
      auto idx = index_of(line, 10);
      auto it = idx ? plans.find(*idx) : plans.end();
      if (it != plans.end()) {
        std::string record = run_record(it->second, run_options);
        store << record.substr(0, record.size() / 2) << std::flush;
      }
      _exit(9);
    }
    if (line.rfind("hang-run ", 0) == 0) {
      // Failure injection: go silent with the run outstanding so the
      // dispatcher's per-run timeout fires.
      while (true) pause();
    }
    out << "fail 0 unknown directive\n" << std::flush;
  }
  return 0;  // EOF: dispatcher went away
}

}  // namespace eio::campaign
