#include "campaign/campaign.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <vector>

#include "campaign/report.h"
#include "campaign/store.h"
#include "workloads/sweep.h"

namespace eio::campaign {

namespace fs = std::filesystem;

int run_campaign(const CampaignOptions& options, std::ostream& out,
                 std::ostream& err) {
  std::vector<workloads::RunPlan> plans;
  try {
    plans = workloads::expand_manifest(options.manifest);
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    return 1;
  }
  std::error_code ec;
  fs::create_directories(options.out_dir, ec);
  std::string plans_path = options.out_dir + "/runs.jsonl";
  {
    std::ofstream f(plans_path, std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "eiotrace: cannot write " << plans_path << "\n";
      return 1;
    }
    for (const workloads::RunPlan& plan : plans) {
      f << workloads::plan_to_jsonl(plan) << '\n';
    }
  }
  out << "campaign: " << plans.size() << " runs from " << options.manifest
      << " -> " << plans_path << "\n";
  if (options.plan_only) return 0;

  DispatchOptions dispatch;
  dispatch.workers = options.workers;
  dispatch.run_timeout = options.run_timeout;
  dispatch.worker_exe = options.worker_exe;
  dispatch.store_dir = options.out_dir;
  dispatch.worker_args = {"campaign-worker", "--plans", plans_path,
                          "--run-jobs", std::to_string(options.run_jobs)};
  dispatch.inject_crash_run = options.inject_crash_run;
  dispatch.inject_hang_run = options.inject_hang_run;

  DispatchResult dispatched;
  try {
    dispatched = dispatch_runs(plans.size(), dispatch, out);
  } catch (const std::exception& e) {
    err << "eiotrace: " << e.what() << "\n";
    return 1;
  }
  out << "campaign: " << dispatched.spawns << " worker spawn(s), "
      << dispatched.crashes << " crash(es), " << dispatched.timeouts
      << " timeout(s), " << dispatched.respawns << " respawn(s)\n";

  MergeStats merge_stats;
  std::map<std::uint64_t, std::string> records =
      merge_store_files(dispatched.store_files, &merge_stats);
  std::string store_path = options.out_dir + "/campaign.jsonl";
  {
    std::ofstream f(store_path, std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "eiotrace: cannot write " << store_path << "\n";
      return 1;
    }
    write_merged(f, records);
  }
  out << "campaign: merged " << records.size() << " records ("
      << merge_stats.discarded << " discarded, " << merge_stats.duplicates
      << " duplicates) -> " << store_path << "\n";

  FleetReport report = build_report(records);
  std::string report_path = options.out_dir + "/report.json";
  {
    std::ofstream f(report_path, std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "eiotrace: cannot write " << report_path << "\n";
      return 1;
    }
    write_report_json(f, report);
  }
  print_report(out, report);
  out << "campaign: report -> " << report_path << "\n";

  int rc = 0;
  for (std::uint64_t run : dispatched.failed_runs) {
    err << "eiotrace: run " << run << " failed after retry\n";
    rc = 2;
  }
  for (std::uint64_t run : dispatched.error_runs) {
    err << "eiotrace: run " << run << " reported an error\n";
    rc = 2;
  }
  if (records.size() != plans.size()) {
    err << "eiotrace: store holds " << records.size() << " of "
        << plans.size() << " records\n";
    rc = 2;
  }
  return rc;
}

}  // namespace eio::campaign
