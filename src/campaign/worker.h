// The campaign worker: one process executing dispatched runs.
//
// A worker is the eiotrace binary (or any binary embedding the CLI
// library) exec'd in `campaign-worker` mode. It loads the campaign's
// expanded run list, opens its private store file, and then speaks a
// line protocol on stdin/stdout with the parent dispatcher:
//
//   parent -> worker (stdin)          worker -> parent (stdout)
//   ------------------------          -------------------------
//   run <N>\n                         ok <N>\n   or   fail <N> <msg>\n
//   crash-run <N>\n                   (none: half-writes the record,
//                                      then _exit(9) — test hook)
//   hang-run <N>\n                    (none: sleeps forever — test hook)
//   exit\n                            (clean return)
//
// The store append happens BEFORE the "ok" reply, so a run the parent
// saw acknowledged is always durable in some store file. The crash and
// hang directives are deliberate failure injections for the retry
// path; they live in the worker (not a test double) so CI exercises
// the exact production code path.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace eio::campaign {

struct WorkerOptions {
  std::string plans_path;  ///< the campaign's runs.jsonl
  std::string store_path;  ///< this worker's private append target
  std::size_t run_jobs = 1;  ///< ensemble threads per run
};

/// Run the worker loop until "exit" or EOF on `in`. Returns 0 on a
/// clean shutdown, 1 on setup errors (bad plans file, unopenable
/// store). Protocol replies are flushed per line.
int run_worker(const WorkerOptions& options, std::istream& in,
               std::ostream& out, std::ostream& err);

}  // namespace eio::campaign
