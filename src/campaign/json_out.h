// The machine-readable output vocabulary: JSON emitters shared by the
// CLI's --json mode and the campaign store's records.
//
// Every emitter writes one JSON value through a json::Writer, with a
// fixed key order and %.9g floats (see common/json_writer.h), so the
// bytes a `eiotrace summary --json` consumer parses and the bytes a
// campaign record embeds are the same schema from the same code — the
// two cannot drift apart, and the campaign determinism contract
// (byte-identical stores for any --workers value) inherits the
// emitters' determinism for free.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/json_writer.h"
#include "core/rate_series.h"
#include "core/histogram.h"
#include "core/streaming.h"
#include "fault/plan.h"
#include "monitor/health.h"

namespace eio::campaign {

/// Version stamped as "schema_version" into every --json document and
/// campaign record.
inline constexpr int kOutputSchemaVersion = 1;

/// A StreamingSummary as {count,min,max,mean,median,p95,p99}. Empty
/// summaries emit count 0 and nulls for the undefined statistics.
void write_summary(json::Writer& w, const stats::StreamingSummary& s);

/// Per-phase summaries as an array of {phase,count,median,p95,max},
/// in ascending phase order.
void write_phase_summaries(
    json::Writer& w,
    const std::map<std::int32_t, stats::StreamingSummary>& by_phase);

/// A histogram as {scale,lo,hi,total,underflow,overflow,counts:[...]}.
void write_histogram(json::Writer& w, const stats::Histogram& h);

/// A rate series as {t0,dt,values:[...]} (values in bytes/s).
void write_rates(json::Writer& w, const analysis::TimeSeries& series);

/// One incident object; the key order mirrors the monitor's JSONL
/// incident-log lines (run,kind,subject,onset_event,clear_event,
/// onset_time,clear_time,severity,statistic,threshold,evidence).
void write_incident(json::Writer& w, const monitor::Incident& inc,
                    std::uint64_t run);

/// Incidents as an array, paired with a parallel run-id vector (empty
/// = all run 0).
void write_incidents(json::Writer& w,
                     const std::vector<monitor::Incident>& incidents,
                     const std::vector<std::uint64_t>& runs);

/// Monitoring counters, all eight plus the derived open_at_finish.
void write_monitor_counts(json::Writer& w, const monitor::Counts& c);

/// Fault-injection counters.
void write_fault_counts(json::Writer& w, const fault::Counts& c);

}  // namespace eio::campaign
