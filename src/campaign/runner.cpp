#include "campaign/runner.h"

#include <memory>
#include <sstream>
#include <vector>

#include "campaign/json_out.h"
#include "common/units.h"
#include "core/samples.h"
#include "monitor/health.h"
#include "workloads/ensemble.h"
#include "workloads/scenario.h"

namespace eio::campaign {

std::string run_record(const workloads::RunPlan& plan,
                       const RunnerOptions& options) {
  workloads::ScenarioBuilder scenario =
      workloads::scenario_from_json(plan.scenario);
  workloads::JobSpec job = scenario.job();
  // Profile capture only: a campaign keeps statistics, never traces.
  job.capture = ipm::Mode::kProfile;

  // Per-run attachments: the bulk-write summary (the paper's headline
  // distribution) and the online health monitor, exactly the
  // `simulate --monitor` wiring.
  analysis::EventFilter write_filter{.op = posix::OpType::kWrite,
                                     .min_bytes = MiB};
  monitor::HealthOptions mopt;
  mopt.ost_count = scenario.machine_config().ost_count;
  mopt.stripe_size = scenario.machine_config().stripe_size;
  std::size_t runs = scenario.run_count();
  std::vector<std::shared_ptr<analysis::SummarySink>> sinks(runs);
  std::vector<std::shared_ptr<monitor::HealthSink>> monitors(runs);
  job.sink_factory = [&sinks, &monitors, write_filter,
                      mopt](std::size_t run_index)
      -> std::shared_ptr<ipm::EventSink> {
    auto sink = std::make_shared<analysis::SummarySink>(write_filter);
    auto health = std::make_shared<monitor::HealthSink>(mopt);
    sinks[run_index] = sink;
    monitors[run_index] = health;
    return std::make_shared<ipm::FanoutSink>(
        std::vector<std::shared_ptr<ipm::EventSink>>{sink, health});
  };

  workloads::ParallelEnsembleRunner runner({.jobs = options.jobs});
  std::vector<workloads::RunResult> results = runner.run_ensemble(job, runs);

  // Roll the ensemble up: job-time and rate distributions across runs,
  // write durations merged across runs (in run order, the merge
  // contract), fault and health counters summed, incidents collected
  // with their run ids.
  stats::StreamingSummary job_times;
  stats::StreamingSummary rates;
  stats::StreamingSummary writes;
  std::uint64_t events = 0;
  fault::Counts faults;
  monitor::Counts health_counts;
  std::vector<monitor::Incident> incidents;
  std::vector<std::uint64_t> incident_runs;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const workloads::RunResult& r = results[i];
    job_times.add(r.job_time);
    rates.add(r.reported_rate());
    writes.merge(sinks[i]->summary());
    events += r.profile.total();
    const fault::Counts& fc = r.fault_counts;
    faults.ost_degradations += fc.ost_degradations;
    faults.ost_restorations += fc.ost_restorations;
    faults.stalls += fc.stalls;
    faults.stall_seconds += fc.stall_seconds;
    faults.failed_attempts += fc.failed_attempts;
    faults.ops_retried += fc.ops_retried;
    faults.retry_seconds += fc.retry_seconds;
    faults.straggler_stalls += fc.straggler_stalls;
    faults.straggler_seconds += fc.straggler_seconds;
    monitor::HealthKernel& k = monitors[i]->kernel();
    k.finish();
    const monitor::Counts& mc = k.counts();
    health_counts.windows_evaluated += mc.windows_evaluated;
    health_counts.phases_evaluated += mc.phases_evaluated;
    health_counts.incidents_opened += mc.incidents_opened;
    health_counts.incidents_cleared += mc.incidents_cleared;
    health_counts.degraded_ost += mc.degraded_ost;
    health_counts.straggler_rank += mc.straggler_rank;
    health_counts.drift += mc.drift;
    health_counts.injected += mc.injected;
    for (const monitor::Incident& inc : k.incidents()) {
      incidents.push_back(inc);
      incident_runs.push_back(i);
    }
  }

  std::ostringstream out;
  json::Writer w(out);
  w.begin_object()
      .kv("run", plan.index)
      .kv("schema_version", kOutputSchemaVersion)
      .kv("source", plan.source)
      .kv("label", plan.label)
      .kv("scenario", scenario.scenario_name())
      .kv("machine", scenario.machine_config().name)
      .kv("runs", runs)
      .kv("events", events);
  w.key("job_time");
  write_summary(w, job_times);
  w.key("rate");
  write_summary(w, rates);
  w.key("write");
  write_summary(w, writes);
  w.key("faults");
  write_fault_counts(w, faults);
  w.key("health");
  w.begin_object().key("counts");
  write_monitor_counts(w, health_counts);
  w.key("incidents");
  write_incidents(w, incidents, incident_runs);
  w.end_object();
  w.end_object();
  return out.str();
}

}  // namespace eio::campaign
