#include "campaign/dispatch.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace eio::campaign {

namespace {

using Clock = std::chrono::steady_clock;

/// One worker process as the parent sees it.
struct Worker {
  pid_t pid = -1;
  int to_child = -1;    ///< parent writes directives here
  int from_child = -1;  ///< parent reads replies here
  std::string buffer;   ///< partial reply line
  std::uint64_t current = kNoRun;  ///< outstanding run, kNoRun = idle
  Clock::time_point deadline{};    ///< valid while current != kNoRun
  [[nodiscard]] bool alive() const { return pid > 0; }
  [[nodiscard]] bool idle() const { return alive() && current == kNoRun; }
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Per-run lifecycle in the dispatcher's ledger.
enum class RunState : std::uint8_t {
  kPending,   ///< not yet dispatched (or queued for retry)
  kAssigned,  ///< outstanding on some worker
  kDone,      ///< "ok" received
  kError,     ///< "fail" received (deterministic scenario error)
  kFailed,    ///< worker died twice with this run outstanding
};

class Dispatcher {
 public:
  Dispatcher(std::uint64_t run_count, const DispatchOptions& options,
             std::ostream& log)
      : run_count_(run_count), options_(options), log_(log),
        state_(run_count, RunState::kPending), attempts_(run_count, 0) {
    exe_ = options_.worker_exe.empty() ? self_exe_path() : options_.worker_exe;
  }

  DispatchResult run() {
    std::size_t fleet = options_.workers == 0 ? 1 : options_.workers;
    if (run_count_ < fleet) fleet = run_count_ == 0 ? 1 : run_count_;
    workers_.resize(fleet);
    for (Worker& w : workers_) spawn(w);
    while (resolved_ < run_count_) {
      assign_idle();
      wait_for_events();
    }
    shutdown();
    return std::move(result_);
  }

 private:
  void spawn(Worker& w) {
    std::string store_path = options_.store_dir + "/worker-" +
                             std::to_string(result_.spawns) + ".jsonl";
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      throw std::runtime_error("campaign: pipe() failed");
    }
    std::vector<std::string> args;
    args.push_back(exe_);
    for (const std::string& a : options_.worker_args) args.push_back(a);
    args.push_back("--store");
    args.push_back(store_path);
    pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("campaign: fork() failed");
    if (pid == 0) {
      // Child: wire the protocol pipes to stdin/stdout and exec. Any
      // inherited dispatcher fds die on exec or at _exit below.
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(exe_.c_str(), argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    // Non-blocking reads: drain() loops until EAGAIN so an "ok"
    // followed immediately by a crash EOF is seen in one pass.
    ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
    w.pid = pid;
    w.to_child = to_child[1];
    w.from_child = from_child[0];
    w.buffer.clear();
    w.current = kNoRun;
    result_.store_files.push_back(std::move(store_path));
    if (result_.spawns >= workers_.size()) ++result_.respawns;
    ++result_.spawns;
  }

  /// Next unassigned run: retries first (lowest index), then the queue
  /// head. kNoRun when everything is assigned or resolved.
  [[nodiscard]] std::uint64_t next_pending() {
    if (!retry_queue_.empty()) {
      std::uint64_t run = retry_queue_.front();
      retry_queue_.pop_front();
      return run;
    }
    if (next_run_ < run_count_) return next_run_++;
    return kNoRun;
  }

  void assign_idle() {
    for (Worker& w : workers_) {
      if (!w.idle()) continue;
      std::uint64_t run = next_pending();
      if (run == kNoRun) return;
      const char* verb = "run";
      if (run == options_.inject_crash_run && !crash_injected_) {
        crash_injected_ = true;
        verb = "crash-run";
      } else if (run == options_.inject_hang_run && !hang_injected_) {
        hang_injected_ = true;
        verb = "hang-run";
      }
      std::string directive =
          std::string(verb) + " " + std::to_string(run) + "\n";
      ssize_t n = ::write(w.to_child, directive.data(), directive.size());
      if (n != static_cast<ssize_t>(directive.size())) {
        // Worker already gone; its EOF is (or will be) readable — put
        // the run back and let the reaper handle the corpse.
        retry_queue_.push_front(run);
        continue;
      }
      state_[run] = RunState::kAssigned;
      ++attempts_[run];
      w.current = run;
      if (options_.run_timeout > 0.0) {
        w.deadline = Clock::now() + std::chrono::microseconds(static_cast<long>(
                                        options_.run_timeout * 1e6));
      }
    }
  }

  void wait_for_events() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive()) continue;
      fds.push_back(pollfd{workers_[i].from_child, POLLIN, 0});
      slots.push_back(i);
    }
    if (fds.empty()) {
      throw std::runtime_error("campaign: no live workers with work pending");
    }
    int timeout_ms = -1;
    if (options_.run_timeout > 0.0) {
      Clock::time_point soonest = Clock::time_point::max();
      for (const Worker& w : workers_) {
        if (w.alive() && w.current != kNoRun && w.deadline < soonest) {
          soonest = w.deadline;
        }
      }
      if (soonest != Clock::time_point::max()) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        soonest - Clock::now())
                        .count();
        timeout_ms = left < 1 ? 1 : static_cast<int>(left);
      }
    }
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error("campaign: poll() failed");
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        drain(workers_[slots[k]]);
      }
    }
    enforce_deadlines();
  }

  /// Read whatever the worker wrote; EOF means it died.
  void drain(Worker& w) {
    char buf[4096];
    while (true) {
      ssize_t n = ::read(w.from_child, buf, sizeof buf);
      if (n > 0) {
        w.buffer.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = w.buffer.find('\n')) != std::string::npos) {
          handle_reply(w, w.buffer.substr(0, nl));
          w.buffer.erase(0, nl + 1);
        }
        continue;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EINTR) return;
      }
      // n == 0 (EOF) or a hard read error: the worker is gone.
      ++result_.crashes;
      reap(w, "died");
      return;
    }
  }

  void handle_reply(Worker& w, const std::string& line) {
    std::uint64_t run = w.current;
    if (line.rfind("ok ", 0) == 0) {
      if (run != kNoRun && state_[run] == RunState::kAssigned) {
        state_[run] = RunState::kDone;
        ++resolved_;
      }
      w.current = kNoRun;
      return;
    }
    if (line.rfind("fail ", 0) == 0) {
      // A deterministic error from run_record (bad scenario, etc.):
      // retrying would fail identically, so record and move on.
      if (run != kNoRun && state_[run] == RunState::kAssigned) {
        state_[run] = RunState::kError;
        result_.error_runs.push_back(run);
        ++resolved_;
        log_ << "campaign: run " << run << " failed: "
             << line.substr(std::string("fail ").size()) << "\n";
      }
      w.current = kNoRun;
      return;
    }
    log_ << "campaign: ignoring unexpected worker reply '" << line << "'\n";
  }

  /// Bury a dead/hung worker, requeue or fail its outstanding run, and
  /// keep the fleet sized to the remaining work.
  void reap(Worker& w, const char* why) {
    std::uint64_t run = w.current;
    if (w.alive()) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
    }
    close_fd(w.to_child);
    close_fd(w.from_child);
    w.pid = -1;
    w.buffer.clear();
    w.current = kNoRun;
    if (run != kNoRun && state_[run] == RunState::kAssigned) {
      if (attempts_[run] <= 1) {
        log_ << "campaign: worker " << why << " with run " << run
             << " outstanding; retrying once\n";
        state_[run] = RunState::kPending;
        retry_queue_.push_back(run);
      } else {
        log_ << "campaign: run " << run << " lost its worker twice ("
             << why << "); marking failed\n";
        state_[run] = RunState::kFailed;
        result_.failed_runs.push_back(run);
        ++resolved_;
      }
    }
    // Respawn only when there is unassigned work for the new process.
    if (!retry_queue_.empty() || next_run_ < run_count_) spawn(w);
  }

  void enforce_deadlines() {
    if (options_.run_timeout <= 0.0) return;
    Clock::time_point now = Clock::now();
    for (Worker& w : workers_) {
      if (w.alive() && w.current != kNoRun && now >= w.deadline) {
        ++result_.timeouts;
        reap(w, "timed out");
      }
    }
  }

  void shutdown() {
    for (Worker& w : workers_) {
      if (!w.alive()) continue;
      static constexpr char kExit[] = "exit\n";
      // A worker that died since its last reply makes this write fail;
      // the waitpid below still reaps it.
      (void)!::write(w.to_child, kExit, sizeof kExit - 1);
      close_fd(w.to_child);
    }
    for (Worker& w : workers_) {
      if (!w.alive()) continue;
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      close_fd(w.from_child);
      w.pid = -1;
    }
  }

  std::uint64_t run_count_;
  const DispatchOptions& options_;
  std::ostream& log_;
  std::string exe_;
  std::vector<Worker> workers_;
  std::vector<RunState> state_;
  std::vector<std::uint8_t> attempts_;
  std::deque<std::uint64_t> retry_queue_;
  std::uint64_t next_run_ = 0;
  std::uint64_t resolved_ = 0;
  bool crash_injected_ = false;
  bool hang_injected_ = false;
  DispatchResult result_;
};

}  // namespace

std::string self_exe_path() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) throw std::runtime_error("campaign: cannot resolve /proc/self/exe");
  return std::string(buf, static_cast<std::size_t>(n));
}

DispatchResult dispatch_runs(std::uint64_t run_count,
                             const DispatchOptions& options,
                             std::ostream& log) {
  if (run_count == 0) return {};
  // A worker can die between poll rounds; writes into its pipe must
  // surface as EPIPE, not kill the dispatcher. Restore on exit so a
  // library caller's disposition survives.
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  struct sigaction saved {};
  ::sigaction(SIGPIPE, &ignore, &saved);
  try {
    DispatchResult result = Dispatcher(run_count, options, log).run();
    ::sigaction(SIGPIPE, &saved, nullptr);
    return result;
  } catch (...) {
    ::sigaction(SIGPIPE, &saved, nullptr);
    throw;
  }
}

}  // namespace eio::campaign
