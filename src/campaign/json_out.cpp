#include "campaign/json_out.h"

namespace eio::campaign {

void write_summary(json::Writer& w, const stats::StreamingSummary& s) {
  w.begin_object().kv("count", s.count());
  if (s.empty()) {
    w.key("min").null();
    w.key("max").null();
    w.key("mean").null();
    w.key("median").null();
    w.key("p95").null();
    w.key("p99").null();
  } else {
    w.kv("min", s.min())
        .kv("max", s.max())
        .kv("mean", s.moments().mean)
        .kv("median", s.median())
        .kv("p95", s.quantile(0.95))
        .kv("p99", s.quantile(0.99));
  }
  w.end_object();
}

void write_phase_summaries(
    json::Writer& w,
    const std::map<std::int32_t, stats::StreamingSummary>& by_phase) {
  w.begin_array();
  for (const auto& [phase, s] : by_phase) {
    w.begin_object()
        .kv("phase", static_cast<std::int64_t>(phase))
        .kv("count", s.count())
        .kv("median", s.median())
        .kv("p95", s.quantile(0.95))
        .kv("max", s.max())
        .end_object();
  }
  w.end_array();
}

void write_histogram(json::Writer& w, const stats::Histogram& h) {
  w.begin_object()
      .kv("scale", h.scale() == stats::BinScale::kLog10 ? "log10" : "linear")
      .kv("lo", h.lo())
      .kv("hi", h.hi())
      .kv("total", h.total())
      .kv("underflow", h.underflow())
      .kv("overflow", h.overflow())
      .key("counts")
      .begin_array();
  for (std::size_t b = 0; b < h.bin_count(); ++b) w.value(h.count(b));
  w.end_array().end_object();
}

void write_rates(json::Writer& w, const analysis::TimeSeries& series) {
  w.begin_object().kv("t0", series.t0).kv("dt", series.dt).key("values").begin_array();
  for (double v : series.values) w.value(v);
  w.end_array().end_object();
}

void write_incident(json::Writer& w, const monitor::Incident& inc,
                    std::uint64_t run) {
  w.begin_object()
      .kv("run", run)
      .kv("kind", monitor::incident_name(inc.kind))
      .kv("subject", inc.subject)
      .kv("onset_event", inc.onset_event)
      .kv("clear_event", inc.clear_event)
      .kv("onset_time", inc.onset_time)
      .kv("clear_time", inc.clear_time)
      .kv("severity", inc.severity)
      .kv("statistic", inc.statistic)
      .kv("threshold", inc.threshold)
      .kv("evidence", inc.evidence)
      .end_object();
}

void write_incidents(json::Writer& w,
                     const std::vector<monitor::Incident>& incidents,
                     const std::vector<std::uint64_t>& runs) {
  w.begin_array();
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    write_incident(w, incidents[i], runs.empty() ? 0 : runs[i]);
  }
  w.end_array();
}

void write_monitor_counts(json::Writer& w, const monitor::Counts& c) {
  w.begin_object()
      .kv("windows_evaluated", c.windows_evaluated)
      .kv("phases_evaluated", c.phases_evaluated)
      .kv("incidents_opened", c.incidents_opened)
      .kv("incidents_cleared", c.incidents_cleared)
      .kv("open_at_finish", c.open_at_finish())
      .kv("degraded_ost", c.degraded_ost)
      .kv("straggler_rank", c.straggler_rank)
      .kv("drift", c.drift)
      .kv("injected", c.injected)
      .end_object();
}

void write_fault_counts(json::Writer& w, const fault::Counts& c) {
  w.begin_object()
      .kv("ost_degradations", c.ost_degradations)
      .kv("ost_restorations", c.ost_restorations)
      .kv("stalls", c.stalls)
      .kv("stall_seconds", c.stall_seconds)
      .kv("failed_attempts", c.failed_attempts)
      .kv("ops_retried", c.ops_retried)
      .kv("retry_seconds", c.retry_seconds)
      .kv("straggler_stalls", c.straggler_stalls)
      .kv("straggler_seconds", c.straggler_seconds)
      .kv("total_injections", c.total_injections())
      .end_object();
}

}  // namespace eio::campaign
