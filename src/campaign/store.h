// The append-only campaign store and its merge rule.
//
// Each worker process appends finished records to its own file — one
// JSON object per line, keyed by "run" — so no two processes ever
// write the same file and a crash can at worst truncate the crashed
// worker's final line. The merge that produces the consolidated
// campaign.jsonl applies three rules:
//
//   1. only complete lines count: a line must be newline-terminated
//      and parse as a JSON object with a "run" key, so a partial
//      record flushed by a dying worker is discarded, never repaired;
//   2. duplicates resolve deterministically: if two files carry the
//      same run (a worker completed a run, then hung before replying,
//      and the run was retried), the lexicographically smallest record
//      line wins — records are pure functions of the plan, so
//      duplicates are expected to be byte-identical and the rule only
//      exists to make the impossible case deterministic too;
//   3. output is ordered by run index, one line per run.
//
// Together: the consolidated store depends only on the set of
// completed records, not on worker count, scheduling, crashes, or
// retries — the campaign determinism contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace eio::campaign {

/// What the merge saw, for the campaign's summary line.
struct MergeStats {
  std::size_t complete_lines = 0;  ///< parsed, newline-terminated records
  std::size_t discarded = 0;       ///< partial or unparseable lines
  std::size_t duplicates = 0;      ///< same-run records beyond the first
};

/// Merge worker store files per the rules above: run index -> record
/// line (no trailing newline). Missing files are skipped (a respawned
/// worker may have died before its first append).
[[nodiscard]] std::map<std::uint64_t, std::string> merge_store_files(
    const std::vector<std::string>& paths, MergeStats* stats = nullptr);

/// Write the consolidated store: records in run-index order, one line
/// each, newline-terminated.
void write_merged(std::ostream& out,
                  const std::map<std::uint64_t, std::string>& records);

}  // namespace eio::campaign
