// Execute one campaign run plan and render its record.
//
// The record is the campaign's unit of truth: one JSON line, fixed key
// order, %.9g floats, derived from nothing but the plan's scenario
// document (seeds included) — no timestamps, worker ids, or host
// state. That makes a record a pure function of its plan, which is
// the whole determinism story: any worker computing run N produces
// the same bytes, so retries, re-shards, and different --workers
// values merge into byte-identical stores.
#pragma once

#include <iosfwd>
#include <string>

#include "workloads/sweep.h"

namespace eio::campaign {

struct RunnerOptions {
  /// Ensemble threads inside this run. Campaign workers default to 1 —
  /// parallelism comes from worker processes — but the per-run results
  /// are byte-identical for any value (the ensemble runner contract),
  /// so this is a throughput knob, not a correctness one.
  std::size_t jobs = 1;
};

/// Simulate the plan's scenario (all of its runs) and return the
/// record line (no trailing newline). Throws on invalid scenarios.
[[nodiscard]] std::string run_record(const workloads::RunPlan& plan,
                                     const RunnerOptions& options = {});

}  // namespace eio::campaign
