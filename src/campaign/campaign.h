// Campaign orchestration: manifest -> run list -> sharded execution ->
// merged store -> fleet report.
//
// `run_campaign` is the whole `eiotrace campaign` subcommand as a
// library call. It writes four artifacts into --out:
//
//   runs.jsonl       the expanded, validated run list (one plan/line);
//   worker-N.jsonl   one append-only store file per worker spawn;
//   campaign.jsonl   the consolidated store (merge of the above, in
//                    run-index order — byte-identical for any
//                    --workers value);
//   report.json      the fleet report derived from campaign.jsonl.
//
// Determinism contract: runs.jsonl, campaign.jsonl, and report.json
// depend only on the manifest content. Worker count, scheduling,
// timeouts, crashes, and retries affect only the worker-N.jsonl set.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "campaign/dispatch.h"

namespace eio::campaign {

struct CampaignOptions {
  std::string manifest;   ///< scenario/sweep file or directory
  std::string out_dir;    ///< artifact directory (created if missing)
  std::size_t workers = 1;
  std::size_t run_jobs = 1;   ///< ensemble threads inside each worker
  double run_timeout = 0.0;   ///< seconds per run; 0 = no timeout
  bool plan_only = false;     ///< expand + write runs.jsonl, don't execute
  std::string worker_exe;     ///< override the worker binary (tests)
  std::uint64_t inject_crash_run = kNoRun;  ///< failure-injection hooks
  std::uint64_t inject_hang_run = kNoRun;
};

/// Execute the campaign. Returns 0 on success (all runs recorded), 1
/// on manifest/setup errors, 2 when runs failed or records are
/// missing. Progress and the fleet table go to `out`, errors to `err`.
int run_campaign(const CampaignOptions& options, std::ostream& out,
                 std::ostream& err);

}  // namespace eio::campaign
