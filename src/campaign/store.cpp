#include "campaign/store.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/json.h"

namespace eio::campaign {

namespace {

/// Parse one store line into its run index; nullopt when the line is
/// not a complete record (merge rule 1).
std::optional<std::uint64_t> run_of(const std::string& line) {
  if (line.empty()) return std::nullopt;
  try {
    json::Value v = json::parse(line);
    if (!v.is_object() || !v.has("run")) return std::nullopt;
    double run = v.at("run").as_number();
    if (run < 0) return std::nullopt;
    return static_cast<std::uint64_t>(run);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::map<std::uint64_t, std::string> merge_store_files(
    const std::vector<std::string>& paths, MergeStats* stats) {
  MergeStats local;
  std::map<std::uint64_t, std::string> records;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // respawned worker that never appended
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        // Unterminated tail: a record a dying worker half-flushed.
        ++local.discarded;
        break;
      }
      std::string line = text.substr(start, nl - start);
      start = nl + 1;
      std::optional<std::uint64_t> run = run_of(line);
      if (!run) {
        ++local.discarded;
        continue;
      }
      ++local.complete_lines;
      // try_emplace guarantees `line` is untouched when the key exists,
      // so the duplicate comparison below reads the real record.
      auto [it, inserted] = records.try_emplace(*run, std::move(line));
      if (!inserted) {
        ++local.duplicates;
        if (line < it->second) it->second = std::move(line);
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return records;
}

void write_merged(std::ostream& out,
                  const std::map<std::uint64_t, std::string>& records) {
  for (const auto& [run, line] : records) {
    out << line << '\n';
  }
}

}  // namespace eio::campaign
