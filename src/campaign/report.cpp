#include "campaign/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "campaign/json_out.h"
#include "common/json.h"
#include "common/units.h"

namespace eio::campaign {

FleetReport build_report(const std::map<std::uint64_t, std::string>& records) {
  FleetReport report;
  for (const auto& [run, line] : records) {
    json::Value rec;
    try {
      rec = json::parse(line);
    } catch (const std::exception&) {
      continue;
    }
    if (!rec.is_object()) continue;
    ++report.records;
    SourceRollup& src = report.sources[rec.string_or("source", "?")];
    auto runs = static_cast<std::uint64_t>(rec.number_or("runs", 0));
    auto events = static_cast<std::uint64_t>(rec.number_or("events", 0));
    ++src.records;
    src.ensemble_runs += runs;
    src.events += events;
    report.ensemble_runs += runs;
    report.events += events;
    if (rec.has("job_time") && rec.at("job_time").is_object()) {
      const json::Value& jt = rec.at("job_time");
      src.job_time_mean_sum += jt.number_or("mean", 0.0);
      double lo = jt.number_or("min", 0.0);
      double hi = jt.number_or("max", 0.0);
      if (src.records == 1) {
        src.job_time_min = lo;
        src.job_time_max = hi;
      } else {
        src.job_time_min = std::min(src.job_time_min, lo);
        src.job_time_max = std::max(src.job_time_max, hi);
      }
    }
    if (rec.has("rate") && rec.at("rate").is_object()) {
      src.rate_mean_sum += rec.at("rate").number_or("mean", 0.0);
    }
    if (rec.has("faults") && rec.at("faults").is_object()) {
      src.fault_injections += static_cast<std::uint64_t>(
          rec.at("faults").number_or("total_injections", 0));
    }
    if (rec.has("health") && rec.at("health").is_object()) {
      const json::Value& health = rec.at("health");
      if (health.has("counts") && health.at("counts").is_object()) {
        const json::Value& c = health.at("counts");
        auto opened =
            static_cast<std::uint64_t>(c.number_or("incidents_opened", 0));
        src.incidents_opened += opened;
        report.incidents_opened += opened;
        src.degraded_ost +=
            static_cast<std::uint64_t>(c.number_or("degraded_ost", 0));
        src.straggler_rank +=
            static_cast<std::uint64_t>(c.number_or("straggler_rank", 0));
        src.drift += static_cast<std::uint64_t>(c.number_or("drift", 0));
        src.injected += static_cast<std::uint64_t>(c.number_or("injected", 0));
      }
      if (health.has("incidents") && health.at("incidents").is_array()) {
        for (const json::Value& inc : health.at("incidents").as_array()) {
          if (inc.is_object()) {
            ++src.incidents_by_kind[inc.string_or("kind", "?")];
          }
        }
      }
    }
  }
  return report;
}

void write_report_json(std::ostream& out, const FleetReport& report) {
  json::Writer w(out);
  w.begin_object()
      .kv("schema_version", kOutputSchemaVersion)
      .kv("report", "campaign-fleet")
      .kv("records", report.records)
      .kv("ensemble_runs", report.ensemble_runs)
      .kv("events", report.events)
      .kv("incidents_opened", report.incidents_opened)
      .key("sources")
      .begin_object();
  for (const auto& [name, src] : report.sources) {
    w.key(name)
        .begin_object()
        .kv("records", src.records)
        .kv("ensemble_runs", src.ensemble_runs)
        .kv("events", src.events)
        .kv("job_time_mean", src.job_time_mean())
        .kv("job_time_min", src.job_time_min)
        .kv("job_time_max", src.job_time_max)
        .kv("rate_mean", src.rate_mean())
        .kv("fault_injections", src.fault_injections)
        .kv("incidents_opened", src.incidents_opened)
        .kv("degraded_ost", src.degraded_ost)
        .kv("straggler_rank", src.straggler_rank)
        .kv("drift", src.drift)
        .kv("injected", src.injected)
        .key("incidents_by_kind")
        .begin_object();
    for (const auto& [kind, n] : src.incidents_by_kind) w.kv(kind, n);
    w.end_object().end_object();
  }
  w.end_object().end_object();
  out << '\n';
}

void print_report(std::ostream& out, const FleetReport& report) {
  out << "fleet: " << report.records << " campaign runs, "
      << report.ensemble_runs << " simulated runs, " << report.events
      << " events, " << report.incidents_opened << " incidents\n";
  out << "  source                      runs  job-mean(s)   rate(MiB/s)"
         "  incidents  degr-ost  straggler\n";
  for (const auto& [name, src] : report.sources) {
    char line[200];
    std::snprintf(line, sizeof line,
                  "  %-26s %5llu %12.3f %13.1f %10llu %9llu %10llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(src.records),
                  src.job_time_mean(),
                  src.rate_mean() / static_cast<double>(MiB),
                  static_cast<unsigned long long>(src.incidents_opened),
                  static_cast<unsigned long long>(src.degraded_ost),
                  static_cast<unsigned long long>(src.straggler_rank));
    out << line;
  }
}

}  // namespace eio::campaign
