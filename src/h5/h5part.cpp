#include "h5/h5part.h"

#include <algorithm>

#include "common/check.h"

namespace eio::h5 {

namespace {
/// Metadata region placement: far above any data the simulator will
/// address, so metadata reads always land on previously written bytes.
constexpr Bytes kMetaBase = Bytes{1} << 42;  // 4 TiB
}  // namespace

H5PartWriter::H5PartWriter(std::uint32_t ranks, H5Config config,
                           Bytes record_bytes)
    : ranks_(ranks),
      config_(config),
      record_bytes_(record_bytes),
      meta_cursor_(kMetaBase) {
  EIO_CHECK(ranks_ >= 1);
  EIO_CHECK(record_bytes_ >= 1);
  EIO_CHECK(config_.btree_fanout >= 1);
  EIO_CHECK(config_.meta_block >= 1);
  if (config_.alignment > 0) {
    slot_bytes_ = (record_bytes_ + config_.alignment - 1) / config_.alignment *
                  config_.alignment;
    write_bytes_ = slot_bytes_;  // H5Pset_alignment pads the transfer
  } else {
    slot_bytes_ = record_bytes_;
    write_bytes_ = record_bytes_;
  }
}

void H5PartWriter::meta_ops(std::vector<mpi::Program>& programs,
                            mpi::FileSlot slot, std::uint64_t writes,
                            std::uint64_t reads) {
  if (config_.defer_metadata) {
    // Metadata-cache writeback: account now, flush at close.
    deferred_meta_ += writes * config_.meta_block;
    stats_.meta_bytes += writes * config_.meta_block;
    return;
  }
  mpi::Program& p0 = programs[0];
  for (std::uint64_t w = 0; w < writes; ++w) {
    p0.seek(slot, meta_cursor_);
    p0.write(slot, config_.meta_block);
    meta_cursor_ += config_.meta_block;
    ++stats_.meta_writes;
    stats_.meta_bytes += config_.meta_block;
  }
  for (std::uint64_t r = 0; r < reads; ++r) {
    // Re-read a recently written metadata block (index lookups).
    p0.seek(slot, meta_cursor_ - config_.meta_block);
    p0.read(slot, config_.meta_block);
    ++stats_.meta_reads;
  }
}

void H5PartWriter::emit_open(std::vector<mpi::Program>& programs,
                             mpi::FileSlot slot, const std::string& path) {
  EIO_CHECK_MSG(!opened_, "file already opened");
  EIO_CHECK_MSG(programs.size() == ranks_, "one program per rank");
  opened_ = true;
  for (auto& p : programs) p.open(slot, path);
  // Superblock + root group header.
  meta_ops(programs, slot, /*writes=*/2, /*reads=*/1);
}

void H5PartWriter::emit_set_step(std::vector<mpi::Program>& programs,
                                 mpi::FileSlot slot) {
  EIO_CHECK(opened_);
  // Step group: group object header, link message, two attribute
  // updates; one lookup read.
  meta_ops(programs, slot, /*writes=*/4, /*reads=*/1);
}

void H5PartWriter::emit_write_field(std::vector<mpi::Program>& programs,
                                    mpi::FileSlot slot,
                                    std::uint32_t records_per_rank,
                                    std::uint32_t io_ranks) {
  EIO_CHECK(opened_);
  EIO_CHECK(records_per_rank >= 1);
  EIO_CHECK_MSG(io_ranks == 0 || ranks_ % io_ranks == 0,
                "io_ranks must divide ranks");

  const Bytes field_base = data_cursor_;
  const std::uint64_t chunks =
      static_cast<std::uint64_t>(ranks_) * records_per_rank;
  stats_.chunks += chunks;

  // Chunk placement: record r of rank k sits at (r * ranks + k) slots
  // into the dataset (the H5Part record-major layout).
  auto chunk_offset = [&](std::uint32_t record, RankId rank) {
    return field_base +
           (static_cast<Bytes>(record) * ranks_ + rank) * slot_bytes_;
  };

  const std::uint32_t group = io_ranks == 0 ? 1 : ranks_ / io_ranks;
  for (RankId rank = 0; rank < ranks_; ++rank) {
    if (rank % group != 0) continue;  // not an I/O rank
    mpi::Program& p = programs[rank];
    for (std::uint32_t r = 0; r < records_per_rank; ++r) {
      for (std::uint32_t m = 0; m < group; ++m) {
        if (config_.per_write_overhead > 0.0) {
          p.compute(config_.per_write_overhead);
        }
        p.seek(slot, chunk_offset(r, rank + m));
        p.write(slot, write_bytes_);
        stats_.data_bytes += write_bytes_;
      }
    }
  }
  data_cursor_ = field_base + chunks * slot_bytes_;

  // Dataset metadata: object header, dataspace/datatype messages, and
  // the chunk-index B-tree — one node write per `btree_fanout` chunk
  // insertions, plus occasional index-traversal reads. The index is
  // flushed when the collective write completes, which is why rank 0's
  // serialized metadata follows the data phase (the Figure 6(g) gaps).
  std::uint64_t btree_nodes = (chunks + config_.btree_fanout - 1) /
                              config_.btree_fanout;
  meta_ops(programs, slot, /*writes=*/btree_nodes + 3,
           /*reads=*/std::max<std::uint64_t>(1, btree_nodes / 4));
}

void H5PartWriter::emit_close(std::vector<mpi::Program>& programs,
                              mpi::FileSlot slot) {
  EIO_CHECK(opened_);
  if (config_.defer_metadata && deferred_meta_ > 0) {
    // Flush the metadata cache as large contiguous writes.
    mpi::Program& p0 = programs[0];
    Bytes remaining = deferred_meta_;
    while (remaining > 0) {
      Bytes block = std::min(remaining, config_.defer_block);
      p0.seek(slot, meta_cursor_);
      p0.write(slot, block);
      meta_cursor_ += block;
      remaining -= block;
      ++stats_.meta_writes;
    }
    deferred_meta_ = 0;
  }
  for (auto& p : programs) p.close(slot);
  opened_ = false;
}

}  // namespace eio::h5
