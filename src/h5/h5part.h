// H5Part-style hierarchical-format middleware.
//
// GCRM's I/O library is "H5Part, a simple data scheme and veneer API
// built on top of the HDF5 library", and every red event in Figure 6
// is HDF5 metadata: superblock updates, object headers, chunk-index
// B-tree nodes, step-group bookkeeping — small serialized writes (and
// reads) issued by rank 0. This module models that file format
// *structurally*: metadata volume follows from the dataset geometry
// (ranks x records -> chunks -> B-tree nodes), not from tuning knobs.
//
// Like the real library, it supports the two remedies the paper lands
// on: object alignment (H5Pset_alignment — pad record slots to the
// stripe) and metadata aggregation (write the accumulated metadata
// once at file close).
//
// The writer emits mpi::Program ops; it is a program *generator*, the
// same role the real veneer plays above MPI/POSIX.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "mpi/program.h"

namespace eio::h5 {

/// Format/property-list configuration (the H5P* knobs that matter).
struct H5Config {
  Bytes meta_block = 2 * KiB;      ///< typical metadata transfer size
  std::uint32_t btree_fanout = 64; ///< chunk-index entries per node
  /// H5Pset_alignment: round every dataset slot up to this boundary
  /// (0 = no alignment, the HDF5 default).
  Bytes alignment = 0;
  /// Metadata-cache writeback: accumulate all metadata in memory and
  /// write it as large blocks at file close.
  bool defer_metadata = false;
  Bytes defer_block = 1 * MiB;     ///< deferred-flush write size
  /// Library CPU time per record write (hyperslab selection etc.).
  Seconds per_write_overhead = 0.0;
};

/// Statistics about what a writer emitted (for tests and reports).
struct H5Stats {
  std::uint64_t meta_writes = 0;
  std::uint64_t meta_reads = 0;
  Bytes meta_bytes = 0;
  Bytes data_bytes = 0;
  std::uint64_t chunks = 0;
};

/// Emits the program ops of an H5Part-style stepped, field-per-dataset
/// file written by `ranks` ranks. Usage per job:
///
///   H5PartWriter h5(ranks, config, record_bytes);
///   h5.emit_open(programs, slot, "gcrm.h5");
///   for each step:  h5.emit_set_step(programs);
///     for each field: h5.emit_write_field(programs, slot, records);
///   h5.emit_close(programs, slot);
class H5PartWriter {
 public:
  H5PartWriter(std::uint32_t ranks, H5Config config, Bytes record_bytes);

  /// File open: every rank opens; rank 0 writes the superblock.
  void emit_open(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                 const std::string& path);

  /// Begin a step group (rank-0 group-header metadata).
  void emit_set_step(std::vector<mpi::Program>& programs, mpi::FileSlot slot);

  /// Write one field: every rank writes `records_per_rank` records at
  /// the dataset's chunk positions; rank 0 emits the dataset header
  /// and the chunk-index B-tree traffic. When `io_ranks` > 0, only
  /// every (ranks/io_ranks)-th rank writes, covering its group's
  /// records (collective buffering; callers add the gather).
  void emit_write_field(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                        std::uint32_t records_per_rank,
                        std::uint32_t io_ranks = 0);

  /// Close: flush deferred metadata (if configured), then close fds.
  void emit_close(std::vector<mpi::Program>& programs, mpi::FileSlot slot);

  /// Effective record slot (record bytes, or aligned up).
  [[nodiscard]] Bytes slot_bytes() const noexcept { return slot_bytes_; }
  /// Bytes each record write transfers (padded when aligned).
  [[nodiscard]] Bytes write_bytes() const noexcept { return write_bytes_; }
  /// Current end-of-data cursor.
  [[nodiscard]] Bytes data_cursor() const noexcept { return data_cursor_; }
  [[nodiscard]] const H5Stats& stats() const noexcept { return stats_; }

 private:
  /// Rank-0 metadata ops: `writes` small writes and `reads` small
  /// reads through the serialized path (or deferred accounting).
  void meta_ops(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                std::uint64_t writes, std::uint64_t reads);

  std::uint32_t ranks_;
  H5Config config_;
  Bytes record_bytes_;
  Bytes slot_bytes_;
  Bytes write_bytes_;
  Bytes data_cursor_ = 0;       ///< next dataset placement
  Bytes meta_cursor_;           ///< metadata region placement
  Bytes deferred_meta_ = 0;     ///< accumulated when defer_metadata
  bool opened_ = false;
  H5Stats stats_;
};

}  // namespace eio::h5
