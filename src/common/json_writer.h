// Deterministic JSON emission.
//
// The machine-readable output contract (CLI --json, the campaign
// store's JSONL records, the fleet report) pins three properties so
// consumers — and the byte-for-byte campaign determinism tests — can
// rely on the exact bytes:
//
//   1. fixed key order: keys appear in the order the writer emits
//      them, never sorted behind the caller's back;
//   2. floats as %.9g: enough digits to round-trip the statistics the
//      repo reports, few enough to stay stable across printing paths;
//   3. integers as decimal integers (no exponent, no trailing ".0").
//
// json::Writer is a small streaming emitter with automatic comma
// placement; json::write() re-serializes a parsed json::Value (object
// keys come out in json::Object's sorted order, which is itself
// deterministic) so scenario documents survive a parse → patch →
// serialize round trip with reproducible bytes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace eio::json {

/// Escape and quote a string for JSON output (control characters take
/// the \uXXXX form; input is treated as raw bytes, passed through
/// above 0x1F except for '"' and '\\').
inline void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// The contract's float form: %.9g, with non-finite values (which JSON
/// cannot represent) written as null.
inline void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out << buf;
}

/// Streaming JSON writer: compact output, keys in call order, commas
/// managed by a begin/end stack. Misuse (value where a key is needed,
/// unbalanced end_*) is a programming error and trips EIO-style
/// asserts only in debug; the writer itself stays branch-light.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  Writer& begin_object() {
    separate();
    out_ << '{';
    stack_.push_back(true);
    return *this;
  }
  Writer& end_object() {
    out_ << '}';
    stack_.pop_back();
    return *this;
  }
  Writer& begin_array() {
    separate();
    out_ << '[';
    stack_.push_back(true);
    return *this;
  }
  Writer& end_array() {
    out_ << ']';
    stack_.pop_back();
    return *this;
  }

  /// Emit an object key; the next value call is its value.
  Writer& key(std::string_view k) {
    separate();
    write_escaped(out_, k);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }

  Writer& value(double v) {
    separate();
    write_double(out_, v);
    return *this;
  }
  Writer& value(std::uint64_t v) {
    separate();
    out_ << v;
    return *this;
  }
  Writer& value(std::int64_t v) {
    separate();
    out_ << v;
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
    return *this;
  }
  Writer& value(std::string_view v) {
    separate();
    write_escaped(out_, v);
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& null() {
    separate();
    out_ << "null";
    return *this;
  }

  // Key + value in one call — the dominant idiom.
  template <typename T>
  Writer& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  /// Emit the comma that precedes every element after the first, but
  /// not after a key (the key already announced the element).
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back()) {
      stack_.back() = false;
    } else {
      out_ << ',';
    }
  }

  std::ostream& out_;
  std::vector<bool> stack_;  ///< one "is first element" flag per level
  bool pending_value_ = false;
};

/// Serialize a parsed Value compactly and deterministically: object
/// keys in json::Object's (sorted) iteration order, integral doubles
/// as integers so scenario parameters (tasks, seeds, run counts)
/// round-trip as the integers they are, all other numbers as %.9g.
inline void write(std::ostream& out, const Value& v) {
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    double d = v.as_number();
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
      out << static_cast<long long>(d);
    } else {
      write_double(out, d);
    }
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    out << '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out << ',';
      first = false;
      write(out, e);
    }
    out << ']';
  } else {
    out << '{';
    bool first = true;
    for (const auto& [key, val] : v.as_object()) {
      if (!first) out << ',';
      first = false;
      write_escaped(out, key);
      out << ':';
      write(out, val);
    }
    out << '}';
  }
}

/// write() to a string.
[[nodiscard]] inline std::string dump(const Value& v) {
  std::ostringstream os;
  write(os, v);
  return os.str();
}

}  // namespace eio::json
