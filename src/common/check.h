// Lightweight invariant checking.
//
// EIO_CHECK is always on (simulation correctness depends on these
// invariants and their cost is negligible next to event processing);
// EIO_DCHECK compiles out in release builds for hot-path assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eio::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "EIO_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace eio::detail

#define EIO_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::eio::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define EIO_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream eio_os_;                                      \
      eio_os_ << msg;                                                  \
      ::eio::detail::check_failed(#expr, __FILE__, __LINE__, eio_os_.str()); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define EIO_DCHECK(expr) ((void)0)
#else
#define EIO_DCHECK(expr) EIO_CHECK(expr)
#endif
