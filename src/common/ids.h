// Integer identifier types for the simulated machine.
//
// These are plain integer aliases rather than wrapper classes: they are
// used as array indices on hot paths and never mix in practice (ranks
// index programs, nodes index NICs/caches, OSTs index servers).
#pragma once

#include <cstdint>

namespace eio {

/// MPI rank (task) index, 0-based.
using RankId = std::uint32_t;

/// Compute-node index, 0-based.
using NodeId = std::uint32_t;

/// Object Storage Target index, 0-based.
using OstId = std::uint32_t;

/// Simulated file identity.
using FileId = std::uint64_t;

/// POSIX-like file descriptor (negative values signal errors).
using Fd = std::int32_t;

inline constexpr RankId kInvalidRank = ~RankId{0};
inline constexpr FileId kInvalidFile = ~FileId{0};

}  // namespace eio
