// Units and strong-ish aliases used throughout ensembleio.
//
// Simulation time is a double count of seconds; data volumes are 64-bit
// byte counts. Helper literals keep workload definitions readable
// (`512 * MiB`, `ms(5)`).
#pragma once

#include <cstdint>

namespace eio {

/// Simulation time in seconds since the start of the run.
using Seconds = double;

/// Data volume in bytes.
using Bytes = std::uint64_t;

/// Data rate in bytes per second.
using Rate = double;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/// Milliseconds expressed as Seconds.
[[nodiscard]] constexpr Seconds ms(double v) noexcept { return v * 1e-3; }
/// Microseconds expressed as Seconds.
[[nodiscard]] constexpr Seconds us(double v) noexcept { return v * 1e-6; }

/// Convert bytes to mebibytes as a double (for reporting).
[[nodiscard]] constexpr double to_mib(Bytes b) noexcept {
  return static_cast<double>(b) / static_cast<double>(MiB);
}

/// Convert bytes to gibibytes as a double (for reporting).
[[nodiscard]] constexpr double to_gib(Bytes b) noexcept {
  return static_cast<double>(b) / static_cast<double>(GiB);
}

/// A rate expressed in MiB/s (for reporting).
[[nodiscard]] constexpr double to_mib_per_s(Rate r) noexcept {
  return r / static_cast<double>(MiB);
}

}  // namespace eio
