// A minimal JSON reader for scenario files.
//
// The repo writes JSON in several places (metrics, BENCH_*.json,
// Chrome traces) but until the declarative scenario format it never
// had to read any. This is a small recursive-descent parser covering
// the whole of RFC 8259: objects, arrays, strings (including \uXXXX
// escapes and surrogate pairs, decoded to UTF-8), numbers, booleans,
// null.
// Errors throw std::runtime_error with a line/column prefix so a typo
// in a scenario file points at itself.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace eio::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps member iteration deterministic (sorted by key).
using Object = std::map<std::string, Value>;

/// One parsed JSON value. A tagged union over the seven JSON kinds
/// (numbers are always double — scenario integers fit exactly).
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT
  Value(Array a) : v_(std::move(a)) {}        // NOLINT
  Value(Object o) : v_(std::move(o)) {}       // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] double as_number() const { return get<double>("number"); }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const Array& as_array() const { return get<Array>("array"); }
  [[nodiscard]] const Object& as_object() const { return get<Object>("object"); }

  /// Object member access; throws when absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) {
      throw std::runtime_error("json: missing key '" + key + "'");
    }
    return it->second;
  }

  /// True when this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

  // Typed member lookups with defaults — the scenario-reading idiom.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const {
    return has(key) ? at(key).as_number() : fallback;
  }
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const {
    return has(key) ? at(key).as_bool() : fallback;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const {
    return has(key) ? at(key).as_string() : fallback;
  }

 private:
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    const T* p = std::get_if<T>(&v_);
    if (p == nullptr) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
    return *p;
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json parse error at line " + std::to_string(line) +
                             ", column " + std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') return Value(std::move(o));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return Value(std::move(a));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = take();
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& s, unsigned code) {
    if (code <= 0x7F) {
      s += static_cast<char>(code);
    } else if (code <= 0x7FF) {
      s += static_cast<char>(0xC0 | (code >> 6));
      s += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code <= 0xFFFF) {
      s += static_cast<char>(0xE0 | (code >> 12));
      s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (code >> 18));
      s += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      char c = take();
      if (c == '"') return s;
      if (c == '\\') {
        char e = take();
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            unsigned code = parse_hex4();
            // A high surrogate must be followed by \uDC00..\uDFFF; the
            // pair combines into one supplementary-plane code point.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (take() != '\\' || take() != 'u') {
                --pos_;
                fail("unpaired high surrogate in \\u escape");
              }
              unsigned low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                fail("bad low surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              fail("unpaired low surrogate in \\u escape");
            }
            append_utf8(s, code);
            break;
          }
          default: --pos_; fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      } else {
        s += c;
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a value");
    }
    std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      double d = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return Value(d);
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse one JSON document from `text`. Throws std::runtime_error with
/// line/column context on malformed input.
[[nodiscard]] inline Value parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace eio::json
