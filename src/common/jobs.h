// Worker-count resolution shared by every --jobs knob (ensemble
// runner, parallel trace scanner, CLI, benches).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <thread>

namespace eio {

/// Resolve a jobs knob: nonzero values pass through; 0 means the
/// EIO_JOBS environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] inline std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("EIO_JOBS")) {
    char* end = nullptr;
    unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace eio
