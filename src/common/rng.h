// Deterministic random-number utilities.
//
// Every stochastic element of the simulator (scheduler policy draws,
// service-time noise, straggler injection) draws from a substream
// derived from (master seed, entity kind, entity index) so that runs
// are exactly reproducible and independent of event interleaving.
#pragma once

#include <cstdint>
#include <random>

namespace eio::rng {

/// splitmix64 step — used to mix seeds into well-distributed substream
/// seeds. Public so tests can check substream independence properties.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derive a substream seed from a master seed and up to two entity tags.
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t master,
                                                     std::uint64_t tag_a,
                                                     std::uint64_t tag_b = 0) noexcept {
  std::uint64_t s = splitmix64(master ^ splitmix64(tag_a));
  return splitmix64(s ^ splitmix64(tag_b + 0x632BE59BD9B4E019ULL));
}

/// A small, fast PRNG (xoshiro-style via std::mt19937_64 would be fine;
/// we wrap mt19937_64 for quality and use substream seeding for
/// independence).
class Stream {
 public:
  Stream() : gen_(0xA5A5A5A5ULL) {}
  explicit Stream(std::uint64_t seed) : gen_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return uni_(gen_); }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) for n >= 1.
  [[nodiscard]] std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
  }

  /// Standard normal draw.
  [[nodiscard]] double normal() { return norm_(gen_); }

  /// Lognormal draw with parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Lognormal multiplicative noise with unit median: exp(sigma * Z).
  [[nodiscard]] double noise(double sigma) { return std::exp(sigma * normal()); }

  /// Pareto draw with minimum xm and shape alpha (heavy-tail stragglers).
  [[nodiscard]] double pareto(double xm, double alpha) {
    double u = 1.0 - uniform();  // in (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Exponential draw with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Access to the raw engine for std distributions in tests.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
  std::normal_distribution<double> norm_{0.0, 1.0};
};

/// Factory for per-entity substreams sharing one master seed.
class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t master) : master_(master) {}

  /// Substream for entity (kind, index). Deterministic in its inputs.
  [[nodiscard]] Stream make(std::uint64_t kind, std::uint64_t index) const {
    return Stream(substream_seed(master_, kind, index));
  }

  [[nodiscard]] std::uint64_t master() const noexcept { return master_; }

 private:
  std::uint64_t master_;
};

/// Entity-kind tags used when deriving substreams.
enum class StreamKind : std::uint64_t {
  kNodeScheduler = 1,
  kFlowNoise = 2,
  kStraggler = 3,
  kReadahead = 4,
  kWorkload = 5,
  kMetadata = 6,
  kBackground = 7,
  kFault = 8,      ///< per-op fault draws (jitter, transient failures)
  kFaultPlan = 9,  ///< plan-level draws (straggler-rank selection)
};

[[nodiscard]] inline Stream make_stream(const StreamFactory& f, StreamKind kind,
                                        std::uint64_t index) {
  return f.make(static_cast<std::uint64_t>(kind), index);
}

}  // namespace eio::rng
