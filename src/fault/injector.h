// Deterministic fault injection for one run.
//
// An Injector is the per-run executor of a fault::Plan. It is built
// from the run's sim::RunContext, so every random draw comes from
// run-scoped substreams (rng::StreamKind::kFault for per-op draws,
// kFaultPlan for plan-level choices like straggler selection) and the
// injected pathology is byte-identical for any --jobs value — the same
// determinism contract every other component honours.
//
// The stack hooks into it at three levels:
//  * lustre::Filesystem asks data_op_stall() before servicing a bulk
//    op (jitter/stall clause) and calls arm_storage() at construction
//    to schedule slow-OST capacity windows on the fluid network;
//  * posix::PosixIo asks retry_delay() before issuing a data op
//    (transient-failure clause: the traced call duration stretches by
//    the timeout+backoff of the client-side retries) and
//    straggler_lag() as the storage op completes (straggler clause:
//    the call stretches by (slowdown-1) x the op's service time, so
//    every data op of the rank effectively runs slowdown x slower and
//    the traced duration, the rank's drift, and the barrier's order
//    statistic all see the same lag);
//  * mpi::Runtime fixes the rank universe via bind_ranks() at load().
//
// Every injection bumps obs counters and emits a Marker through the
// optional marker hook; workloads::RunInstance forwards markers into
// the IPM pipeline as OpType::kFault events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "fault/plan.h"
#include "sim/fluid.h"
#include "sim/run_context.h"

namespace eio::fault {

/// Per-run fault executor. Thread-compatible like every run-scoped
/// component: one Injector belongs to exactly one run.
class Injector {
 public:
  using MarkerHook = std::function<void(const Marker&)>;

  Injector(Plan plan, sim::RunContext& run);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule the plan's slow-OST windows against the storage network.
  /// `base_ost_bandwidth` is the healthy per-OST capacity restored when
  /// a window closes. Called once by the owning run after the
  /// filesystem exists; windows out of range of the network are
  /// ignored.
  void arm_storage(sim::FluidNetwork& network, Rate base_ost_bandwidth);

  /// Fix the rank universe (and draw the straggler set). Called by
  /// mpi::Runtime::load().
  void bind_ranks(std::uint32_t rank_count);

  /// Jitter clause: extra stall before the storage system services a
  /// bulk data op of `rank`. 0 when the clause is off (no draw made).
  [[nodiscard]] Seconds data_op_stall(RankId rank, bool is_write);

  /// Transient-failure clause: total client-side delay (timeouts +
  /// exponential backoff) the op of `rank` suffers before the attempt
  /// that succeeds. 0 when the clause is off (no draw made).
  [[nodiscard]] Seconds retry_delay(RankId rank);

  /// Straggler clause: the hold applied as this rank's data op
  /// completes — (slowdown-1) x the op's `elapsed` time, charged
  /// before the rank proceeds (to its next op or a barrier). 0 for
  /// non-stragglers.
  [[nodiscard]] Seconds straggler_lag(RankId rank, Seconds elapsed);

  [[nodiscard]] bool is_straggler(RankId rank) const;

  /// Sink for markers (the trace bridge). At most one hook.
  void set_marker_hook(MarkerHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Counts& counts() const noexcept { return counts_; }
  [[nodiscard]] const std::vector<RankId>& stragglers() const noexcept {
    return stragglers_;
  }
  /// Markers recorded so far (capped; counts are exact regardless).
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return markers_;
  }

 private:
  void note(Kind kind, std::uint64_t component, RankId rank, Seconds detail);

  Plan plan_;
  sim::Engine& engine_;
  rng::Stream op_rng_;    ///< jitter + transient draws, in op order
  rng::Stream plan_rng_;  ///< plan-level draws (straggler selection)
  std::vector<RankId> stragglers_;
  Counts counts_;
  std::vector<Marker> markers_;
  MarkerHook hook_;
};

}  // namespace eio::fault
