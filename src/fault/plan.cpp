#include "fault/plan.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace eio::fault {

namespace {

void reject_unknown_keys(const json::Object& o,
                         std::initializer_list<const char*> known,
                         const char* where) {
  for (const auto& [key, value] : o) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(std::string("fault plan: unknown key '") + key +
                               "' in " + where);
    }
  }
}

[[nodiscard]] double checked_probability(const json::Value& v, const char* where) {
  double p = v.number_or("probability", 0.0);
  if (p < 0.0 || p > 1.0) {
    throw std::runtime_error(std::string("fault plan: ") + where +
                             ".probability must be in [0, 1]");
  }
  return p;
}

void write_number(std::ostream& os, double v) {
  // Round-trip integers without a trailing ".0"-less mismatch surprise.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  }
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kOstDegraded: return "ost-degraded";
    case Kind::kOstRestored: return "ost-restored";
    case Kind::kStall: return "stall";
    case Kind::kRetry: return "retry";
    case Kind::kStragglerStall: return "straggler-stall";
  }
  return "?";
}

Plan plan_from_json(const json::Value& v) {
  Plan plan;
  const json::Object& root = v.as_object();
  reject_unknown_keys(root, {"slow_osts", "jitter", "transient", "stragglers"},
                      "faults");

  if (v.has("slow_osts")) {
    for (const json::Value& e : v.at("slow_osts").as_array()) {
      reject_unknown_keys(e.as_object(), {"ost", "factor", "from", "until"},
                          "faults.slow_osts[]");
      SlowOst s;
      s.ost = static_cast<OstId>(e.number_or("ost", 0.0));
      s.factor = e.number_or("factor", 0.25);
      s.from = e.number_or("from", 0.0);
      s.until = e.number_or("until", kForever);
      if (s.factor <= 0.0) {
        throw std::runtime_error("fault plan: slow_osts[].factor must be > 0");
      }
      if (s.until <= s.from) {
        throw std::runtime_error(
            "fault plan: slow_osts[] window must have until > from");
      }
      plan.slow_osts.push_back(s);
    }
  }

  if (v.has("jitter")) {
    const json::Value& j = v.at("jitter");
    reject_unknown_keys(j.as_object(),
                        {"probability", "mean_stall", "reads", "writes"},
                        "faults.jitter");
    plan.jitter.probability = checked_probability(j, "jitter");
    plan.jitter.mean_stall = j.number_or("mean_stall", plan.jitter.mean_stall);
    plan.jitter.reads = j.bool_or("reads", true);
    plan.jitter.writes = j.bool_or("writes", true);
  }

  if (v.has("transient")) {
    const json::Value& t = v.at("transient");
    reject_unknown_keys(t.as_object(),
                        {"probability", "max_retries", "timeout", "backoff"},
                        "faults.transient");
    plan.transient.probability = checked_probability(t, "transient");
    plan.transient.max_retries = static_cast<std::uint32_t>(
        t.number_or("max_retries", plan.transient.max_retries));
    plan.transient.timeout = t.number_or("timeout", plan.transient.timeout);
    plan.transient.backoff = t.number_or("backoff", plan.transient.backoff);
  }

  if (v.has("stragglers")) {
    const json::Value& s = v.at("stragglers");
    reject_unknown_keys(s.as_object(), {"count", "ranks", "slowdown"},
                        "faults.stragglers");
    plan.stragglers.count =
        static_cast<std::uint32_t>(s.number_or("count", 0.0));
    if (s.has("ranks")) {
      for (const json::Value& r : s.at("ranks").as_array()) {
        plan.stragglers.ranks.push_back(static_cast<RankId>(r.as_number()));
      }
    }
    plan.stragglers.slowdown = s.number_or("slowdown", plan.stragglers.slowdown);
    if (plan.stragglers.slowdown < 1.0) {
      throw std::runtime_error("fault plan: stragglers.slowdown must be >= 1");
    }
  }

  return plan;
}

std::string plan_to_json(const Plan& plan, const std::string& indent) {
  std::ostringstream os;
  const std::string in1 = indent + "  ";
  const std::string in2 = indent + "    ";
  os << "{";
  bool first = true;
  auto clause = [&](const char* name) {
    os << (first ? "\n" : ",\n") << in1 << '"' << name << "\": ";
    first = false;
  };

  if (!plan.slow_osts.empty()) {
    clause("slow_osts");
    os << "[";
    for (std::size_t i = 0; i < plan.slow_osts.size(); ++i) {
      const SlowOst& s = plan.slow_osts[i];
      os << (i == 0 ? "\n" : ",\n") << in2 << "{\"ost\": " << s.ost
         << ", \"factor\": ";
      write_number(os, s.factor);
      os << ", \"from\": ";
      write_number(os, s.from);
      if (s.until < kForever) {
        os << ", \"until\": ";
        write_number(os, s.until);
      }
      os << "}";
    }
    os << "\n" << in1 << "]";
  }
  if (plan.jitter.probability > 0.0) {
    clause("jitter");
    os << "{\"probability\": ";
    write_number(os, plan.jitter.probability);
    os << ", \"mean_stall\": ";
    write_number(os, plan.jitter.mean_stall);
    os << ", \"reads\": " << (plan.jitter.reads ? "true" : "false")
       << ", \"writes\": " << (plan.jitter.writes ? "true" : "false") << "}";
  }
  if (plan.transient.probability > 0.0) {
    clause("transient");
    os << "{\"probability\": ";
    write_number(os, plan.transient.probability);
    os << ", \"max_retries\": " << plan.transient.max_retries
       << ", \"timeout\": ";
    write_number(os, plan.transient.timeout);
    os << ", \"backoff\": ";
    write_number(os, plan.transient.backoff);
    os << "}";
  }
  if (plan.stragglers.count > 0 || !plan.stragglers.ranks.empty()) {
    clause("stragglers");
    os << "{";
    if (!plan.stragglers.ranks.empty()) {
      os << "\"ranks\": [";
      for (std::size_t i = 0; i < plan.stragglers.ranks.size(); ++i) {
        os << (i == 0 ? "" : ", ") << plan.stragglers.ranks[i];
      }
      os << "], ";
    } else {
      os << "\"count\": " << plan.stragglers.count << ", ";
    }
    os << "\"slowdown\": ";
    write_number(os, plan.stragglers.slowdown);
    os << "}";
  }
  if (first) return "{}";
  os << "\n" << indent << "}";
  return os.str();
}

}  // namespace eio::fault
