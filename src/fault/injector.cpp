#include "fault/injector.h"

#include <algorithm>

#include "common/check.h"
#include "obs/registry.h"

namespace eio::fault {

namespace {

/// Markers kept per run; a pathological plan (jitter probability 1 on
/// a huge job) must not balloon memory. Counts stay exact.
constexpr std::size_t kMaxMarkers = 1 << 16;

}  // namespace

Injector::Injector(Plan plan, sim::RunContext& run)
    : plan_(std::move(plan)),
      engine_(run.engine()),
      op_rng_(run.stream(rng::StreamKind::kFault, 0)),
      plan_rng_(run.stream(rng::StreamKind::kFaultPlan, 0)) {}

void Injector::note(Kind kind, std::uint64_t component, RankId rank,
                    Seconds detail) {
  Marker m{engine_.now(), kind, component, rank, detail};
  if (markers_.size() < kMaxMarkers) markers_.push_back(m);
  if (hook_) hook_(m);
}

void Injector::arm_storage(sim::FluidNetwork& network, Rate base_ost_bandwidth) {
  for (const SlowOst& s : plan_.slow_osts) {
    if (s.ost >= network.ost_count()) continue;
    Rate degraded = base_ost_bandwidth * s.factor;
    engine_.schedule_at(std::max(s.from, engine_.now()),
                        [this, &network, s, degraded] {
                          network.set_ost_capacity(s.ost, degraded);
                          ++counts_.ost_degradations;
                          OBS_COUNTER_ADD("fault.ost_degradations", 1);
                          note(Kind::kOstDegraded, s.ost, kInvalidRank, s.factor);
                        });
    if (s.until < kForever) {
      engine_.schedule_at(s.until, [this, &network, s, base_ost_bandwidth] {
        network.set_ost_capacity(s.ost, base_ost_bandwidth);
        ++counts_.ost_restorations;
        OBS_COUNTER_ADD("fault.ost_restorations", 1);
        note(Kind::kOstRestored, s.ost, kInvalidRank, 0.0);
      });
    }
  }
}

void Injector::bind_ranks(std::uint32_t rank_count) {
  stragglers_.clear();
  if (!plan_.stragglers.ranks.empty()) {
    for (RankId r : plan_.stragglers.ranks) {
      if (r < rank_count) stragglers_.push_back(r);
    }
  } else if (plan_.stragglers.count > 0) {
    // Draw `count` distinct ranks from the plan stream (deterministic
    // in the run seed; independent of event interleaving).
    std::uint32_t want = std::min(plan_.stragglers.count, rank_count);
    while (stragglers_.size() < want) {
      auto r = static_cast<RankId>(plan_rng_.index(rank_count));
      if (std::find(stragglers_.begin(), stragglers_.end(), r) ==
          stragglers_.end()) {
        stragglers_.push_back(r);
      }
    }
  }
  std::sort(stragglers_.begin(), stragglers_.end());
}

bool Injector::is_straggler(RankId rank) const {
  return std::binary_search(stragglers_.begin(), stragglers_.end(), rank);
}

Seconds Injector::data_op_stall(RankId rank, bool is_write) {
  const OpJitter& j = plan_.jitter;
  if (j.probability <= 0.0) return 0.0;
  if (is_write ? !j.writes : !j.reads) return 0.0;
  if (!op_rng_.chance(j.probability)) return 0.0;
  Seconds stall = op_rng_.exponential(j.mean_stall);
  ++counts_.stalls;
  counts_.stall_seconds += stall;
  OBS_COUNTER_ADD("fault.stalls", 1);
  note(Kind::kStall, 0, rank, stall);
  return stall;
}

Seconds Injector::retry_delay(RankId rank) {
  const TransientFaults& t = plan_.transient;
  if (t.probability <= 0.0) return 0.0;
  std::uint32_t failures = 0;
  while (failures < t.max_retries && op_rng_.chance(t.probability)) {
    ++failures;
  }
  if (failures == 0) return 0.0;
  Seconds delay = 0.0;
  Seconds backoff = t.backoff;
  for (std::uint32_t i = 0; i < failures; ++i) {
    delay += t.timeout + backoff;
    backoff *= 2.0;
  }
  counts_.failed_attempts += failures;
  ++counts_.ops_retried;
  counts_.retry_seconds += delay;
  OBS_COUNTER_ADD("fault.failed_attempts", failures);
  OBS_COUNTER_ADD("fault.ops_retried", 1);
  note(Kind::kRetry, failures, rank, delay);
  return delay;
}

Seconds Injector::straggler_lag(RankId rank, Seconds elapsed) {
  if (stragglers_.empty() || !is_straggler(rank)) return 0.0;
  Seconds lag = (plan_.stragglers.slowdown - 1.0) * elapsed;
  if (lag <= 0.0) return 0.0;
  ++counts_.straggler_stalls;
  counts_.straggler_seconds += lag;
  OBS_COUNTER_ADD("fault.straggler_stalls", 1);
  note(Kind::kStragglerStall, 0, rank, lag);
  return lag;
}

}  // namespace eio::fault
