// Declarative fault plans.
//
// A fault::Plan names the pathologies a run should suffer, in the
// vocabulary of the paper's case studies: a degraded OST whose
// throughput is scaled down over a time window (failing disk, RAID
// rebuild), per-op latency jitter and stalls on the storage servers,
// transient op failures that the client retries with timeout+backoff,
// and straggler ranks whose host does everything slower. Plans are
// pure data — deterministic behaviour comes from fault::Injector,
// which seeds every draw from the run's sim::RunContext — and they
// serialize to/from the scenario JSON schema (schema_version'd, see
// DESIGN.md §5f) so a pathology is a checked-in, versioned document.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/json.h"
#include "common/units.h"

namespace eio::fault {

/// "Until the end of the run" sentinel for fault windows.
inline constexpr Seconds kForever = 1e18;

/// Scale one OST's service bandwidth by `factor` over [from, until).
struct SlowOst {
  OstId ost = 0;
  double factor = 0.25;    ///< capacity multiplier while degraded
  Seconds from = 0.0;      ///< window start (simulated seconds)
  Seconds until = kForever;
};

/// Per-data-op latency jitter: with `probability`, an op stalls for an
/// exponential extra delay before the storage system services it
/// (server hiccup, RPC resend, lock contention).
struct OpJitter {
  double probability = 0.0;
  Seconds mean_stall = 0.02;  ///< mean of the exponential stall
  bool reads = true;          ///< jitter applies to reads
  bool writes = true;         ///< jitter applies to writes
};

/// Transient op failures, retried client-side: each attempt fails with
/// `probability`; a failed attempt costs `timeout` (detection) plus an
/// exponential-backoff wait that doubles per retry. After `max_retries`
/// failures the next attempt always succeeds (the fault is transient),
/// so workloads never see a hard error — just stretched calls.
struct TransientFaults {
  double probability = 0.0;
  std::uint32_t max_retries = 4;
  Seconds timeout = 0.05;
  Seconds backoff = 0.01;  ///< first retry wait; doubles per retry
};

/// Straggler ranks: the chosen ranks' hosts run slow, stretching every
/// data op by `slowdown`x (charged as a stall before the rank's next
/// op, so the lag is visible in the trace and the barrier order
/// statistic alike). Explicit `ranks` win; otherwise `count` ranks are
/// drawn deterministically from the run's plan stream.
struct Stragglers {
  std::uint32_t count = 0;
  std::vector<RankId> ranks;
  double slowdown = 4.0;
};

/// The full fault plan of one scenario.
struct Plan {
  std::vector<SlowOst> slow_osts;
  OpJitter jitter;
  TransientFaults transient;
  Stragglers stragglers;

  /// True when any clause can perturb a run. An empty plan draws no
  /// random numbers and injects nothing — runs are byte-identical to
  /// runs without a fault subsystem at all.
  [[nodiscard]] bool enabled() const noexcept {
    return !slow_osts.empty() || jitter.probability > 0.0 ||
           transient.probability > 0.0 || stragglers.count > 0 ||
           !stragglers.ranks.empty();
  }
};

/// Parse the "faults" object of a scenario document. Unknown keys are
/// rejected (a typo'd clause must not silently produce a healthy run).
[[nodiscard]] Plan plan_from_json(const json::Value& v);

/// Serialize a plan as a JSON object (the inverse of plan_from_json).
[[nodiscard]] std::string plan_to_json(const Plan& plan,
                                       const std::string& indent = "");

/// The kinds of injected events a run reports.
enum class Kind : std::uint8_t {
  kOstDegraded = 0,    ///< slow-OST window opened
  kOstRestored = 1,    ///< slow-OST window closed
  kStall = 2,          ///< jitter stall before a data op
  kRetry = 3,          ///< transient failure(s) + client retries
  kStragglerStall = 4, ///< straggler rank charged its slowdown lag
};

[[nodiscard]] const char* kind_name(Kind kind) noexcept;

/// One injected fault, as surfaced to observability: markers become
/// OpType::kFault trace events (file = component, offset = kind,
/// duration = detail seconds) so they flow through every trace format
/// and scan unchanged.
struct Marker {
  Seconds time = 0.0;           ///< when the fault bit
  Kind kind = Kind::kStall;
  std::uint64_t component = 0;  ///< OST id / retry count, by kind
  RankId rank = 0;              ///< affected rank (0 for OST windows)
  Seconds detail = 0.0;         ///< injected delay in seconds
};

/// Aggregate injection counters (per run; deterministic).
struct Counts {
  std::uint64_t ost_degradations = 0;
  std::uint64_t ost_restorations = 0;
  std::uint64_t stalls = 0;
  Seconds stall_seconds = 0.0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t ops_retried = 0;
  Seconds retry_seconds = 0.0;
  std::uint64_t straggler_stalls = 0;
  Seconds straggler_seconds = 0.0;

  [[nodiscard]] std::uint64_t total_injections() const noexcept {
    return ost_degradations + stalls + ops_retried + straggler_stalls;
  }
};

}  // namespace eio::fault
