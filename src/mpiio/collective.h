// MPI-IO-style two-phase collective buffering.
//
// MADbench performs its matrix I/O "using an MPI-IO call
// (MPI_File_write and MPI_File_read)", and the GCRM fix the paper
// lands on is "a 'collective buffering' scheme (similar to that of
// MPI-IO)". This module is that middleware: given the per-rank extents
// of one collective write (or read), it plans the ROMIO-style two
// phases —
//
//   phase 1: shuffle each rank's data to its aggregator over the
//            interconnect (modeled with the runtime's group gather);
//   phase 2: aggregators write their contiguous, stripe-aligned *file
//            domains* in cb_buffer_size chunks;
//
// — and emits the corresponding ops into each rank's Program. The
// planner is exposed separately so tests (and curious users) can
// inspect the file-domain partition.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "mpi/program.h"

namespace eio::mpiio {

/// One rank's contribution to a collective operation.
struct Extent {
  Bytes offset = 0;
  Bytes bytes = 0;
};

/// Hints, in the spirit of ROMIO's cb_* info keys.
struct CollectiveConfig {
  std::uint32_t cb_nodes = 48;       ///< aggregator count (clamped to ranks)
  Bytes cb_buffer_size = 16 * MiB;   ///< per-chunk transfer size
  Bytes alignment = 1 * MiB;         ///< file-domain boundary alignment
  /// Permit holes between extents: aggregators then move whole file
  /// domains (data sieving on reads, read-modify-write on writes).
  /// When false, sparse collectives are rejected.
  bool data_sieving = true;
};

/// Plans and emits two-phase collective transfers for a fixed job size.
class TwoPhaseIo {
 public:
  TwoPhaseIo(std::uint32_t ranks, CollectiveConfig config);

  /// A contiguous file region owned by one aggregator.
  struct Domain {
    Bytes lo = 0;
    Bytes hi = 0;  ///< exclusive
    RankId aggregator = 0;
    [[nodiscard]] Bytes size() const noexcept { return hi - lo; }
  };

  /// Effective aggregator count after clamping.
  [[nodiscard]] std::uint32_t aggregators() const noexcept { return cb_nodes_; }
  /// Rank distance between consecutive aggregators.
  [[nodiscard]] std::uint32_t aggregator_stride() const noexcept { return stride_; }
  [[nodiscard]] bool is_aggregator(RankId rank) const noexcept {
    return rank % stride_ == 0 && rank / stride_ < cb_nodes_;
  }

  /// Split [lo, hi) into per-aggregator domains with alignment-rounded
  /// interior boundaries. Domains cover the range exactly and are
  /// non-overlapping; some may be empty when the range is small.
  [[nodiscard]] std::vector<Domain> partition(Bytes lo, Bytes hi) const;

  /// Append one collective write to every rank's program:
  /// `extents[r]` is rank r's contribution (0 bytes to sit out).
  /// The call is collective: every rank synchronizes on it.
  void emit_write_all(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                      std::span<const Extent> extents) const;

  /// The read mirror image: aggregators read their domains, then the
  /// data scatters back (modeled with the same exchange cost).
  void emit_read_all(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                     std::span<const Extent> extents) const;

 private:
  void emit(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
            std::span<const Extent> extents, bool is_write) const;

  std::uint32_t ranks_;
  std::uint32_t cb_nodes_;
  std::uint32_t stride_;
  CollectiveConfig config_;
};

}  // namespace eio::mpiio
