#include "mpiio/collective.h"

#include <algorithm>

#include "common/check.h"

namespace eio::mpiio {

TwoPhaseIo::TwoPhaseIo(std::uint32_t ranks, CollectiveConfig config)
    : ranks_(ranks), config_(config) {
  EIO_CHECK(ranks_ >= 1);
  EIO_CHECK(config_.cb_buffer_size >= 1);
  EIO_CHECK(config_.alignment >= 1);
  cb_nodes_ = std::clamp<std::uint32_t>(config_.cb_nodes, 1, ranks_);
  stride_ = ranks_ / cb_nodes_;
  EIO_CHECK(stride_ >= 1);
}

std::vector<TwoPhaseIo::Domain> TwoPhaseIo::partition(Bytes lo, Bytes hi) const {
  EIO_CHECK_MSG(hi >= lo, "inverted range");
  std::vector<Domain> domains;
  domains.reserve(cb_nodes_);
  Bytes span = hi - lo;
  Bytes cursor = lo;
  for (std::uint32_t i = 0; i < cb_nodes_; ++i) {
    Domain d;
    d.aggregator = static_cast<RankId>(i * stride_);
    d.lo = cursor;
    if (i + 1 == cb_nodes_) {
      d.hi = hi;
    } else {
      // Even split, interior boundary rounded up to the alignment so
      // every aggregator writes stripe-aligned chunks.
      Bytes target = lo + span * (i + 1) / cb_nodes_;
      Bytes aligned =
          (target + config_.alignment - 1) / config_.alignment * config_.alignment;
      d.hi = std::clamp(aligned, d.lo, hi);
    }
    cursor = d.hi;
    domains.push_back(d);
  }
  EIO_CHECK(domains.back().hi == hi);
  return domains;
}

void TwoPhaseIo::emit_write_all(std::vector<mpi::Program>& programs,
                                mpi::FileSlot slot,
                                std::span<const Extent> extents) const {
  emit(programs, slot, extents, /*is_write=*/true);
}

void TwoPhaseIo::emit_read_all(std::vector<mpi::Program>& programs,
                               mpi::FileSlot slot,
                               std::span<const Extent> extents) const {
  emit(programs, slot, extents, /*is_write=*/false);
}

void TwoPhaseIo::emit(std::vector<mpi::Program>& programs, mpi::FileSlot slot,
                      std::span<const Extent> extents, bool is_write) const {
  EIO_CHECK_MSG(programs.size() == ranks_, "one program per rank required");
  EIO_CHECK_MSG(extents.size() == ranks_, "one extent per rank required");

  // Global byte range of this collective.
  Bytes lo = ~Bytes{0}, hi = 0;
  Bytes payload = 0;
  for (const Extent& e : extents) {
    if (e.bytes == 0) continue;
    lo = std::min(lo, e.offset);
    hi = std::max(hi, e.offset + e.bytes);
    payload += e.bytes;
  }
  if (payload == 0) {
    for (auto& p : programs) p.barrier();
    return;
  }
  // Two-phase I/O transfers whole file domains. With holes between
  // extents the aggregators move the covering range anyway (data
  // sieving / read-modify-write), unless the hint forbids it.
  if (!config_.data_sieving) {
    EIO_CHECK_MSG(payload == hi - lo,
                  "collective extents must tile the range densely (payload "
                      << payload << " vs range " << hi - lo
                      << ") when data sieving is disabled");
  }

  auto domains = partition(lo, hi);

  // Phase 1: shuffle. Every rank ships its contribution toward its
  // aggregator; the group gather is the cost model for the exchange
  // (group = aggregator stride, root = the aggregator rank).
  Bytes typical = payload / ranks_;
  for (auto& p : programs) p.gather(stride_, typical);

  // Phase 2: aggregators move their domains in cb_buffer_size chunks.
  for (const Domain& d : domains) {
    if (d.size() == 0) continue;
    mpi::Program& p = programs[d.aggregator];
    Bytes cursor = d.lo;
    while (cursor < d.hi) {
      Bytes chunk = std::min<Bytes>(config_.cb_buffer_size, d.hi - cursor);
      p.seek(slot, cursor);
      if (is_write) {
        p.write(slot, chunk);
      } else {
        p.read(slot, chunk);
      }
      cursor += chunk;
    }
  }

  // For reads, the scattered return traffic costs another exchange.
  if (!is_write) {
    for (auto& p : programs) p.gather(stride_, typical);
  }

  // The collective completes together.
  for (auto& p : programs) p.barrier();
}

}  // namespace eio::mpiio
