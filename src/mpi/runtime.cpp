#include "mpi/runtime.h"

#include <cmath>

namespace eio::mpi {

namespace {

[[nodiscard]] double log2_ceil(std::uint32_t n) noexcept {
  return n <= 1 ? 1.0 : std::ceil(std::log2(static_cast<double>(n)));
}

}  // namespace

Runtime::Runtime(sim::RunContext& run, posix::PosixIo& io, CollectiveCosts costs,
                 fault::Injector* injector)
    : engine_(run.engine()), io_(io), costs_(costs), injector_(injector) {}

void Runtime::load(std::vector<Program> programs) {
  EIO_CHECK(!programs.empty());
  ranks_.clear();
  ranks_.resize(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    ranks_[i].program = std::move(programs[i]);
  }
  gathers_.assign(ranks_.size(), GatherState{});
  barrier_ = BarrierState{};
  done_count_ = 0;
  started_ = false;
  // The rank universe is now known: fix the straggler set.
  if (injector_ != nullptr) injector_->bind_ranks(rank_count());
}

void Runtime::start() {
  EIO_CHECK_MSG(!started_, "job already started");
  EIO_CHECK_MSG(!ranks_.empty(), "no programs loaded");
  started_ = true;
  for (RankId r = 0; r < ranks_.size(); ++r) {
    engine_.schedule_in(0.0, [this, r] { step(r); });
  }
}

Seconds Runtime::run_to_completion() {
  start();
  engine_.run();
  EIO_CHECK_MSG(all_done(), "engine drained before all ranks finished — deadlock?");
  return job_finish_time();
}

Seconds Runtime::finish_time(RankId rank) const {
  EIO_CHECK(rank < ranks_.size());
  EIO_CHECK_MSG(ranks_[rank].done, "rank " << rank << " not finished");
  return ranks_[rank].finish;
}

Seconds Runtime::job_finish_time() const {
  Seconds latest = 0.0;
  for (const RankState& r : ranks_) {
    EIO_CHECK(r.done);
    latest = std::max(latest, r.finish);
  }
  return latest;
}

Fd& Runtime::slot(RankId rank, FileSlot s) {
  auto& slots = ranks_[rank].slots;
  if (slots.size() <= s) slots.resize(s + 1, -1);
  return slots[s];
}

void Runtime::advance(RankId rank) {
  ++ranks_[rank].pc;
  step(rank);
}

void Runtime::step(RankId rank) {
  RankState& state = ranks_[rank];
  if (state.pc >= state.program.size()) {
    if (!state.done) {
      state.done = true;
      state.finish = engine_.now();
      ++done_count_;
    }
    return;
  }
  run_op(rank, state.program.ops()[state.pc]);
}

void Runtime::run_op(RankId rank, const Op& operation) {
  std::visit(
      [&](const auto& o) {
        using T = std::decay_t<decltype(o)>;
        if constexpr (std::is_same_v<T, op::Open>) {
          std::uint32_t flags = posix::kRdWr | (o.create ? posix::kCreate : 0u);
          io_.open(rank, o.path, flags, [this, rank, s = o.slot](Fd fd) {
            EIO_CHECK_MSG(fd >= 0, "open failed for rank " << rank);
            slot(rank, s) = fd;
            advance(rank);
          });
        } else if constexpr (std::is_same_v<T, op::Close>) {
          io_.close(rank, slot(rank, o.slot), [this, rank](int rc) {
            EIO_CHECK(rc == 0);
            advance(rank);
          });
        } else if constexpr (std::is_same_v<T, op::Seek>) {
          io_.lseek(rank, slot(rank, o.slot),
                    static_cast<std::int64_t>(o.offset), posix::Whence::kSet,
                    [this, rank](std::int64_t pos) {
                      EIO_CHECK(pos >= 0);
                      advance(rank);
                    });
        } else if constexpr (std::is_same_v<T, op::Read>) {
          issue_data_op(rank, slot(rank, o.slot), o.bytes, /*is_write=*/false);
        } else if constexpr (std::is_same_v<T, op::Write>) {
          issue_data_op(rank, slot(rank, o.slot), o.bytes, /*is_write=*/true);
        } else if constexpr (std::is_same_v<T, op::Fsync>) {
          io_.fsync(rank, slot(rank, o.slot), [this, rank](int rc) {
            EIO_CHECK(rc == 0);
            advance(rank);
          });
        } else if constexpr (std::is_same_v<T, op::Barrier>) {
          arrive_barrier(rank);
        } else if constexpr (std::is_same_v<T, op::Compute>) {
          engine_.schedule_in(o.duration, [this, rank] { advance(rank); });
        } else if constexpr (std::is_same_v<T, op::Phase>) {
          if (phase_hook_) phase_hook_(rank, o.phase);
          advance(rank);
        } else if constexpr (std::is_same_v<T, op::Gather>) {
          arrive_gather(rank, o);
        }
      },
      operation);
}

void Runtime::issue_data_op(RankId rank, Fd fd, Bytes bytes, bool is_write) {
  auto on_done = [this, rank](std::int64_t n) {
    EIO_CHECK(n >= 0);
    advance(rank);
  };
  if (is_write) {
    io_.write(rank, fd, bytes, on_done);
  } else {
    io_.read(rank, fd, bytes, on_done);
  }
}

void Runtime::arrive_barrier(RankId rank) {
  (void)rank;
  ++barrier_.arrived;
  if (barrier_.arrived < ranks_.size()) return;
  // Everyone is here: release the whole job after the tree latency.
  barrier_.arrived = 0;
  ++barrier_.generation;
  Seconds release =
      costs_.barrier_hop_latency * log2_ceil(static_cast<std::uint32_t>(ranks_.size()));
  for (RankId r = 0; r < ranks_.size(); ++r) {
    engine_.schedule_in(release, [this, r] { advance(r); });
  }
}

void Runtime::arrive_gather(RankId rank, const op::Gather& g) {
  EIO_CHECK(g.group_size >= 1);
  std::uint32_t group = rank / g.group_size;
  std::uint32_t first = group * g.group_size;
  std::uint32_t members = std::min<std::uint32_t>(
      g.group_size, static_cast<std::uint32_t>(ranks_.size()) - first);
  GatherState& gs = gathers_[group];
  ++gs.arrived;
  if (gs.arrived < members) return;
  gs.arrived = 0;
  ++gs.generation;

  // Root absorbs (members-1) payloads through its NIC; leaves are free
  // once their data is handed off at the end of the exchange.
  Seconds tree = costs_.gather_hop_latency * log2_ceil(members);
  Seconds leaf_done = tree + static_cast<double>(g.bytes_per_rank) /
                                 costs_.gather_bandwidth;
  Seconds root_done =
      tree + static_cast<double>(g.bytes_per_rank) *
                 static_cast<double>(members > 0 ? members - 1 : 0) /
                 costs_.gather_bandwidth;
  for (std::uint32_t r = first; r < first + members; ++r) {
    Seconds wake = (r == first) ? root_done : leaf_done;
    engine_.schedule_in(wake, [this, r] { advance(r); });
  }
}

}  // namespace eio::mpi
