// The simulated MPI job runtime.
//
// Drives one Program per rank against the POSIX layer, implementing
// global barriers (the synchronization that makes the Nth order
// statistic govern phase run time) and the gather collective used for
// collective buffering. Barrier and gather costs follow a simple
// log-tree latency + bandwidth model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "fault/injector.h"
#include "mpi/program.h"
#include "posix/vfs.h"
#include "sim/engine.h"
#include "sim/run_context.h"

namespace eio::mpi {

/// Cost model for the interconnect side of collectives.
struct CollectiveCosts {
  Seconds barrier_hop_latency = us(4.0);  ///< per tree level
  Seconds gather_hop_latency = us(8.0);   ///< per tree level
  Rate gather_bandwidth = 1.6 * 1024.0 * static_cast<double>(MiB);  ///< root ingest
};

/// Executes a job of N rank programs to completion.
class Runtime {
 public:
  /// Called when a Phase op executes (the tracer hooks this).
  using PhaseHook = std::function<void(RankId, std::int32_t)>;

  /// `run` must be the same run context the POSIX layer was built on.
  /// `injector` (optional, not owned, same run) supplies the straggler
  /// clause: chosen ranks pay their previous data op's slowdown lag
  /// before issuing the next one, so they drift late within phases and
  /// the barrier order statistic governs phase time, as in the paper.
  Runtime(sim::RunContext& run, posix::PosixIo& io, CollectiveCosts costs = {},
          fault::Injector* injector = nullptr);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Install the job: one program per rank. Resets all progress.
  void load(std::vector<Program> programs);

  /// Hook invoked on Phase ops.
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  /// Start every rank at the current simulation time. Programs run
  /// until completion as the engine drains.
  void start();

  /// Convenience: start() then engine.run(); returns job wall time.
  Seconds run_to_completion();

  [[nodiscard]] std::uint32_t rank_count() const noexcept {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  [[nodiscard]] bool all_done() const noexcept { return done_count_ == ranks_.size(); }
  /// Completion time of a given rank (valid once done).
  [[nodiscard]] Seconds finish_time(RankId rank) const;
  /// Completion time of the slowest rank (the job run time).
  [[nodiscard]] Seconds job_finish_time() const;

 private:
  struct RankState {
    Program program;
    std::size_t pc = 0;
    std::vector<Fd> slots;
    bool done = false;
    Seconds finish = 0.0;
  };

  struct BarrierState {
    std::uint32_t arrived = 0;
    std::uint64_t generation = 0;
  };

  struct GatherState {
    std::uint32_t arrived = 0;
    std::uint64_t generation = 0;
  };

  void step(RankId rank);
  void advance(RankId rank);
  void run_op(RankId rank, const Op& op);
  /// Issue a data op, timing it for straggler bookkeeping.
  void issue_data_op(RankId rank, Fd fd, Bytes bytes, bool is_write);
  [[nodiscard]] Fd& slot(RankId rank, FileSlot s);
  void arrive_barrier(RankId rank);
  void arrive_gather(RankId rank, const op::Gather& g);

  sim::Engine& engine_;
  posix::PosixIo& io_;
  CollectiveCosts costs_;
  fault::Injector* injector_;  ///< optional, not owned, same run
  PhaseHook phase_hook_;
  std::vector<RankState> ranks_;
  BarrierState barrier_;
  std::vector<GatherState> gathers_;  ///< per group, reused across ops
  std::uint32_t done_count_ = 0;
  bool started_ = false;
};

}  // namespace eio::mpi
