// Per-rank I/O programs.
//
// A workload is expressed as one `Program` per rank: a straight-line
// sequence of POSIX calls, barriers, timed compute, phase markers, and
// group-gather collectives. This mirrors how the paper's applications
// behave once computation is stripped away (MADbench is run with
// "all computation and communication effectively turned off").
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace eio::mpi {

/// Rank-local index of an open file handle (programs may hold several).
using FileSlot = std::uint32_t;

namespace op {

/// open(path, flags); the resulting fd is stored in `slot`.
struct Open {
  FileSlot slot = 0;
  std::string path;
  bool create = true;
};

/// close(slot) — flushes the node's outstanding write-back data.
struct Close {
  FileSlot slot = 0;
};

/// lseek(slot, offset, SEEK_SET).
struct Seek {
  FileSlot slot = 0;
  Bytes offset = 0;
};

/// read(slot, bytes) at the current position.
struct Read {
  FileSlot slot = 0;
  Bytes bytes = 0;
};

/// write(slot, bytes) at the current position.
struct Write {
  FileSlot slot = 0;
  Bytes bytes = 0;
};

/// fsync(slot).
struct Fsync {
  FileSlot slot = 0;
};

/// MPI_Barrier over all ranks in the job.
struct Barrier {};

/// Spin for a fixed amount of simulated time.
struct Compute {
  Seconds duration = 0.0;
};

/// Tag subsequent trace events with a phase label (IPM region).
struct Phase {
  std::int32_t phase = 0;
};

/// Collective-buffering stage one: ranks in consecutive groups of
/// `group_size` ship `bytes_per_rank` to the group root over the
/// interconnect. Every participant blocks until its group completes.
struct Gather {
  std::uint32_t group_size = 1;
  Bytes bytes_per_rank = 0;
};

}  // namespace op

/// One program step.
using Op = std::variant<op::Open, op::Close, op::Seek, op::Read, op::Write,
                        op::Fsync, op::Barrier, op::Compute, op::Phase, op::Gather>;

/// A rank's full instruction sequence.
class Program {
 public:
  Program& open(FileSlot slot, std::string path, bool create = true) {
    ops_.emplace_back(op::Open{slot, std::move(path), create});
    return *this;
  }
  Program& close(FileSlot slot) {
    ops_.emplace_back(op::Close{slot});
    return *this;
  }
  Program& seek(FileSlot slot, Bytes offset) {
    ops_.emplace_back(op::Seek{slot, offset});
    return *this;
  }
  Program& read(FileSlot slot, Bytes bytes) {
    ops_.emplace_back(op::Read{slot, bytes});
    return *this;
  }
  Program& write(FileSlot slot, Bytes bytes) {
    ops_.emplace_back(op::Write{slot, bytes});
    return *this;
  }
  Program& fsync(FileSlot slot) {
    ops_.emplace_back(op::Fsync{slot});
    return *this;
  }
  Program& barrier() {
    ops_.emplace_back(op::Barrier{});
    return *this;
  }
  Program& compute(Seconds duration) {
    ops_.emplace_back(op::Compute{duration});
    return *this;
  }
  Program& phase(std::int32_t phase) {
    ops_.emplace_back(op::Phase{phase});
    return *this;
  }
  Program& gather(std::uint32_t group_size, Bytes bytes_per_rank) {
    ops_.emplace_back(op::Gather{group_size, bytes_per_rank});
    return *this;
  }

  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace eio::mpi
