#include "core/diagnose.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/distribution.h"
#include "core/modes.h"
#include "core/samples.h"

namespace eio::analysis {

namespace {

using posix::OpType;

void detect_harmonics(const ipm::Trace& trace, const DiagnoserOptions& opt,
                      std::vector<Finding>& findings) {
  // Harmonic modes show up in the durations of equal-size writes.
  auto writes = durations(trace, {.op = OpType::kWrite,
                                  .min_bytes = opt.stripe_size});
  if (writes.size() < opt.min_events) return;
  auto modes = stats::find_modes(writes, {.log_axis = false});
  if (modes.size() < 2) return;
  auto matched = stats::harmonic_signature(modes, opt.harmonic_tolerance);
  bool has_half = std::find(matched.begin(), matched.end(), 2) != matched.end();
  bool has_quarter = std::find(matched.begin(), matched.end(), 4) != matched.end();
  if (!has_half && !has_quarter) return;
  Finding f;
  f.code = FindingCode::kHarmonicModes;
  f.severity = has_half && has_quarter ? 0.9 : 0.6;
  f.metric = static_cast<double>(modes.size());
  std::ostringstream os;
  os << "write-time modes at harmonic positions (";
  for (std::size_t i = 0; i < matched.size(); ++i) {
    os << (i ? ", " : "") << "T/" << matched[i];
  }
  os << " of the slow mode): tasks on a node are taking turns at the "
        "client's I/O streams — intra-node serialization, not random noise";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_read_deterioration(const ipm::Trace& trace,
                               const DiagnoserOptions& opt,
                               std::vector<Finding>& findings) {
  auto by_phase = durations_by_phase(trace, {.op = OpType::kRead,
                                             .min_bytes = opt.stripe_size});
  // Keep phases with enough reads to trust a median.
  std::vector<std::pair<std::int32_t, double>> medians;
  for (auto& [phase, ds] : by_phase) {
    if (ds.size() < 8) continue;
    medians.emplace_back(phase, stats::EmpiricalDistribution(std::move(ds)).median());
  }
  if (medians.size() < 3) return;
  std::sort(medians.begin(), medians.end());
  // Find the longest run of consecutively-worsening phases and the
  // median growth across it. (The run matters, not the global first
  // vs last phase: a pathology confined to phases 4-8 must not be
  // masked by clean later phases.)
  std::size_t run = 1, best_run = 1;
  std::size_t run_start = 0;
  double worst_ratio = 1.0;
  for (std::size_t i = 1; i < medians.size(); ++i) {
    if (medians[i].second > medians[i - 1].second * 1.1) {
      if (run == 1) run_start = i - 1;
      ++run;
      if (run >= best_run && medians[run_start].second > 0.0) {
        best_run = run;
        worst_ratio = std::max(worst_ratio,
                               medians[i].second / medians[run_start].second);
      }
    } else {
      run = 1;
    }
  }
  if (best_run < 3 || worst_ratio < 2.0) return;
  Finding f;
  f.code = FindingCode::kReadDeterioration;
  f.severity = std::min(1.0, 0.4 + 0.1 * static_cast<double>(best_run) +
                                 0.05 * std::log2(worst_ratio));
  f.metric = worst_ratio;
  std::ostringstream os;
  os << "read performance deteriorates monotonically across " << best_run
     << " consecutive phases (last/first median = " << worst_ratio
     << "x): a stateful middleware mechanism (e.g. strided read-ahead "
        "detection) is compounding — inspect file-system client behaviour";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_heavy_read_tail(const ipm::Trace& trace, const DiagnoserOptions& opt,
                            std::vector<Finding>& findings) {
  auto reads = durations(trace, {.op = OpType::kRead,
                                 .min_bytes = opt.stripe_size});
  if (reads.size() < opt.min_events) return;
  stats::EmpiricalDistribution dist(std::move(reads));
  double median = dist.median();
  double p99 = dist.quantile(0.99);
  if (median <= 0.0 || p99 / median < opt.tail_ratio) return;
  Finding f;
  f.code = FindingCode::kHeavyReadTail;
  f.severity = std::min(1.0, 0.3 + 0.1 * std::log2(p99 / median));
  f.metric = p99 / median;
  std::ostringstream os;
  os << "read-time distribution has a heavy right tail (p99/median = "
     << p99 / median << "x, p99 = " << p99
     << " s): a few catastrophic reads dominate synchronous phases";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_metadata_serialization(const ipm::Trace& trace,
                                   const DiagnoserOptions& opt,
                                   std::vector<Finding>& findings) {
  // Small data calls, grouped by rank.
  EventFilter small{.min_bytes = 1, .max_bytes = opt.stripe_size / 16};
  std::map<RankId, double> time_by_rank;
  std::size_t count = 0;
  for (const auto& e : trace.events()) {
    if (!small.matches(e)) continue;
    time_by_rank[e.rank] += e.duration;
    ++count;
  }
  if (count < opt.min_events || time_by_rank.empty()) return;
  auto hottest = std::max_element(
      time_by_rank.begin(), time_by_rank.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  double span = trace.span();
  if (span <= 0.0) return;
  double share = hottest->second / span;
  if (share < opt.metadata_share) return;
  Finding f;
  f.code = FindingCode::kMetadataSerialization;
  f.severity = std::min(1.0, share);
  f.metric = share;
  std::ostringstream os;
  os << "rank " << hottest->first << " spends " << static_cast<int>(share * 100)
     << "% of the run in serialized small (<"
     << opt.stripe_size / 16 / 1024
     << " KiB) transfers: aggregate metadata into large deferred writes";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_sub_fair_share(const ipm::Trace& trace, const DiagnoserOptions& opt,
                           std::vector<Finding>& findings) {
  if (opt.fair_share_rate <= 0.0) return;
  EventFilter bulk{.op = OpType::kWrite, .min_bytes = opt.stripe_size / 4};
  auto events = select(trace, bulk);
  if (events.size() < opt.min_events) return;
  std::size_t below = 0, unaligned = 0;
  for (const auto& e : events) {
    double rate = e.duration > 0.0 ? static_cast<double>(e.bytes) / e.duration : 0.0;
    if (rate < 0.6 * opt.fair_share_rate) ++below;
    if (e.offset % opt.stripe_size != 0 ||
        (e.offset + e.bytes) % opt.stripe_size != 0) {
      ++unaligned;
    }
  }
  double below_frac = static_cast<double>(below) / static_cast<double>(events.size());
  double unaligned_frac =
      static_cast<double>(unaligned) / static_cast<double>(events.size());
  if (below_frac < 0.4 || unaligned_frac < 0.5) return;
  Finding f;
  f.code = FindingCode::kSubFairShare;
  f.severity = std::min(1.0, below_frac * unaligned_frac + 0.2);
  f.metric = below_frac;
  std::ostringstream os;
  os << static_cast<int>(below_frac * 100)
     << "% of bulk writes run below 60% of the per-task fair share while "
     << static_cast<int>(unaligned_frac * 100)
     << "% of them are not stripe-aligned: pad and align transfers to "
     << opt.stripe_size / (1024 * 1024) << " MiB boundaries";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_splitting_opportunity(const ipm::Trace& trace,
                                  const DiagnoserOptions& opt,
                                  std::vector<Finding>& findings) {
  // One (or very few) large write per rank per phase leaves the phase
  // time pinned to the Nth order statistic of a wide distribution.
  auto by_rank = durations_by_rank(trace, {.op = OpType::kWrite,
                                           .min_bytes = 64 * opt.stripe_size});
  if (by_rank.size() < opt.min_events) return;
  double avg_calls = 0.0;
  std::vector<double> all;
  for (const auto& [rank, ds] : by_rank) {
    avg_calls += static_cast<double>(ds.size());
    all.insert(all.end(), ds.begin(), ds.end());
  }
  avg_calls /= static_cast<double>(by_rank.size());
  if (avg_calls > 4.0) return;  // already splitting
  stats::Moments m = stats::compute_moments(all);
  if (m.cv() < 0.25) return;  // narrow already; nothing to gain
  Finding f;
  f.code = FindingCode::kSplittingOpportunity;
  f.severity = std::min(1.0, 0.3 + m.cv() / 2.0);
  f.metric = m.cv();
  std::ostringstream os;
  os << "tasks issue ~" << avg_calls
     << " very large write(s) each with a wide duration spread (cv = "
     << m.cv()
     << "): splitting each transfer into k calls (or collective "
        "buffering) narrows per-task totals by the law of large numbers";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_degraded_ost(const ipm::Trace& trace, const DiagnoserOptions& opt,
                         std::vector<Finding>& findings) {
  // Degraded-component signature (§IV of the paper): a second, much
  // slower duration mode whose events all touch files living on one
  // OST. Attribution uses the creation-order round-robin convention
  // `(file - 1) % ost_count`, exact for single-stripe file-per-process
  // layouts — the only layouts where a per-file OST class exists.
  if (opt.ost_count == 0) return;
  EventFilter bulk{.min_bytes = opt.stripe_size / 4};
  auto events = select(trace, bulk);
  if (events.size() < opt.min_events) return;

  // Group durations by OST class. The degraded-target signature is a
  // *collective* shift of one class's median, not a handful of tail
  // events — service noise puts individual slow transfers everywhere,
  // but only a degraded OST moves a whole class.
  std::map<std::uint32_t, std::vector<double>> by_class;
  std::map<std::uint32_t, std::map<FileId, bool>> files_by_class;
  for (const auto& e : events) {
    if (e.file == kInvalidFile) continue;
    auto ost = static_cast<std::uint32_t>((e.file - 1) % opt.ost_count);
    by_class[ost].push_back(e.duration);
    files_by_class[ost][e.file] = true;
  }

  // Per-class medians for classes with enough events to trust one.
  // The baseline is the median of class medians — robust against the
  // degraded class itself and against workload-wide shifts.
  std::vector<std::pair<std::uint32_t, double>> class_medians;
  std::map<std::uint32_t, std::size_t> class_sizes;
  for (auto& [ost, ds] : by_class) {
    if (ds.size() < 6) continue;
    class_sizes[ost] = ds.size();
    class_medians.emplace_back(
        ost, stats::EmpiricalDistribution(std::move(ds)).median());
  }
  // Fewer than three populated classes (e.g. every event on one shared
  // file) leaves no baseline to compare against: stay quiet.
  if (class_medians.size() < 3) return;
  std::vector<double> meds;
  meds.reserve(class_medians.size());
  for (const auto& [ost, m] : class_medians) meds.push_back(m);
  double baseline = stats::EmpiricalDistribution(std::move(meds)).median();
  if (baseline <= 0.0) return;

  const std::pair<std::uint32_t, double>* top = nullptr;
  double second_ratio = 0.0;
  for (const auto& cm : class_medians) {
    double r = cm.second / baseline;
    if (top == nullptr || r > top->second / baseline) {
      if (top != nullptr) second_ratio = std::max(second_ratio, top->second / baseline);
      top = &cm;
    } else {
      second_ratio = std::max(second_ratio, r);
    }
  }
  double top_ratio = top->second / baseline;
  // Fire only when one class is collectively slow — far beyond the
  // baseline AND clearly separated from the runner-up (a uniformly
  // noisy fleet has many mildly-shifted classes, no lone outlier).
  if (top_ratio < opt.degraded_ratio) return;
  if (top_ratio < 1.5 * std::max(1.0, second_ratio)) return;
  Finding f;
  f.code = FindingCode::kDegradedOst;
  f.severity = std::min(1.0, 0.25 * top_ratio);
  f.metric = static_cast<double>(top->first);
  std::ostringstream os;
  os << "bulk transfers on files striped to OST " << top->first << " run "
     << top_ratio << "x the fleet median (" << class_sizes[top->first]
     << " events over " << files_by_class[top->first].size()
     << " files; next-slowest OST class sits at " << second_ratio
     << "x): one storage target is degraded — check OST " << top->first
     << " for a failing disk or RAID rebuild";
  f.message = os.str();
  findings.push_back(std::move(f));
}

void detect_straggler_rank(const ipm::Trace& trace, const DiagnoserOptions& opt,
                           std::vector<Finding>& findings) {
  // Straggler signature: within barrier-bounded phases the slowest
  // rank's completion sits far beyond the second order statistic, and
  // it is the *same* rank phase after phase — a slow host, not the
  // random extreme of a wide per-task distribution.
  EventFilter bulk{.min_bytes = opt.stripe_size / 4};
  struct PhaseAgg {
    double start = 0.0;
    bool any = false;
    std::map<RankId, double> end_by_rank;
  };
  std::map<std::int32_t, PhaseAgg> phases;
  std::size_t count = 0;
  for (const auto& e : trace.events()) {
    if (!bulk.matches(e)) continue;
    PhaseAgg& agg = phases[e.phase];
    if (!agg.any || e.start < agg.start) agg.start = e.start;
    agg.any = true;
    double& end = agg.end_by_rank[e.rank];
    end = std::max(end, e.end());
    ++count;
  }
  if (count < opt.min_events) return;

  std::size_t considered = 0, firing = 0;
  std::map<RankId, std::size_t> votes;
  double worst_gap = 1.0;
  for (const auto& [phase, agg] : phases) {
    if (agg.end_by_rank.size() < 4) continue;
    ++considered;
    RankId slowest = kInvalidRank;
    double t1 = 0.0, t2 = 0.0;  // top-two completion offsets
    for (const auto& [rank, end] : agg.end_by_rank) {
      double t = end - agg.start;
      if (t > t1) {
        t2 = t1;
        t1 = t;
        slowest = rank;
      } else if (t > t2) {
        t2 = t;
      }
    }
    if (t2 <= 0.0) continue;
    if (t1 / t2 < opt.straggler_gap) continue;
    ++firing;
    ++votes[slowest];
    worst_gap = std::max(worst_gap, t1 / t2);
  }
  if (considered < 3 || firing < 2) return;
  if (firing * 2 < considered) return;
  auto leader = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  double consistency =
      static_cast<double>(leader->second) / static_cast<double>(firing);
  if (consistency < 2.0 / 3.0) return;
  Finding f;
  f.code = FindingCode::kStragglerRank;
  f.severity = std::min(1.0, consistency * (0.4 + 0.1 * worst_gap));
  f.metric = static_cast<double>(leader->first);
  std::ostringstream os;
  os << "rank " << leader->first << " finishes last in " << leader->second
     << " of " << firing << " stretched phases (worst gap " << worst_gap
     << "x the second-slowest rank): a consistently slow host, not random "
        "variation — check that node's health or reschedule the rank";
  f.message = os.str();
  findings.push_back(std::move(f));
}

}  // namespace

const char* finding_name(FindingCode code) noexcept {
  switch (code) {
    case FindingCode::kHarmonicModes: return "harmonic-modes";
    case FindingCode::kReadDeterioration: return "read-deterioration";
    case FindingCode::kHeavyReadTail: return "heavy-read-tail";
    case FindingCode::kMetadataSerialization: return "metadata-serialization";
    case FindingCode::kSubFairShare: return "sub-fair-share";
    case FindingCode::kSplittingOpportunity: return "splitting-opportunity";
    case FindingCode::kDegradedOst: return "degraded-ost";
    case FindingCode::kStragglerRank: return "straggler-rank";
  }
  return "?";
}

std::vector<Finding> diagnose(const ipm::Trace& trace,
                              const DiagnoserOptions& options) {
  std::vector<Finding> findings;
  detect_harmonics(trace, options, findings);
  detect_read_deterioration(trace, options, findings);
  detect_heavy_read_tail(trace, options, findings);
  detect_metadata_serialization(trace, options, findings);
  detect_sub_fair_share(trace, options, findings);
  detect_splitting_opportunity(trace, options, findings);
  detect_degraded_ost(trace, options, findings);
  detect_straggler_rank(trace, options, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.severity > b.severity; });
  return findings;
}

}  // namespace eio::analysis
