#include "core/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace eio::analysis {

namespace {

constexpr const char kGlyphs[] = "*ox+%@&";

struct Axis {
  double lo = 0.0;
  double hi = 1.0;
  bool log = false;

  [[nodiscard]] double position(double v, std::size_t extent) const {
    double a = log ? std::log10(std::max(v, 1e-300)) : v;
    double l = log ? std::log10(std::max(lo, 1e-300)) : lo;
    double h = log ? std::log10(std::max(hi, 1e-300)) : hi;
    if (h <= l) h = l + 1.0;
    double frac = (a - l) / (h - l);
    return frac * static_cast<double>(extent - 1);
  }
};

[[nodiscard]] std::string format_number(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-3)) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::fixed << std::setprecision(std::abs(v) < 10 ? 2 : 1) << v;
  }
  return os.str();
}

void frame(std::ostringstream& os, const std::vector<std::string>& grid,
           const Axis& x, const Axis& y, const ChartOptions& options) {
  if (!options.title.empty()) os << options.title << '\n';
  std::string ytop = format_number(y.hi);
  std::string ybot = format_number(y.lo);
  std::size_t label_w = std::max(ytop.size(), ybot.size());
  for (std::size_t r = 0; r < grid.size(); ++r) {
    std::string label;
    if (r == 0) {
      label = ytop;
    } else if (r + 1 == grid.size()) {
      label = ybot;
    }
    os << std::setw(static_cast<int>(label_w)) << label << " |" << grid[r]
       << "|\n";
  }
  os << std::string(label_w, ' ') << " +" << std::string(options.width, '-')
     << "+\n";
  std::string xlo = format_number(x.lo);
  std::string xhi = format_number(x.hi);
  os << std::string(label_w + 2, ' ') << xlo;
  std::size_t pad = options.width > xlo.size() + xhi.size()
                        ? options.width - xlo.size() - xhi.size()
                        : 1;
  os << std::string(pad, ' ') << xhi;
  if (!options.x_label.empty()) os << "  [" << options.x_label << ']';
  os << '\n';
  if (!options.y_label.empty()) {
    os << std::string(label_w + 2, ' ') << "y: " << options.y_label << '\n';
  }
}

}  // namespace

std::string render_lines(std::span<const Series> series,
                         const ChartOptions& options) {
  EIO_CHECK(!series.empty());
  EIO_CHECK(options.width >= 8 && options.height >= 4);
  Axis x{std::numeric_limits<double>::infinity(),
         -std::numeric_limits<double>::infinity(), options.log_x};
  Axis y{std::numeric_limits<double>::infinity(),
         -std::numeric_limits<double>::infinity(), options.log_y};
  bool any = false;
  for (const Series& s : series) {
    EIO_CHECK(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options.log_x && s.x[i] <= 0.0) continue;
      if (options.log_y && s.y[i] <= 0.0) continue;
      x.lo = std::min(x.lo, s.x[i]);
      x.hi = std::max(x.hi, s.x[i]);
      y.lo = std::min(y.lo, s.y[i]);
      y.hi = std::max(y.hi, s.y[i]);
      any = true;
    }
  }
  if (!any) return "(no drawable points)\n";
  if (!options.log_y && y.lo > 0.0) y.lo = 0.0;

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options.log_x && s.x[i] <= 0.0) continue;
      if (options.log_y && s.y[i] <= 0.0) continue;
      auto cx = static_cast<std::size_t>(std::clamp(
          x.position(s.x[i], options.width), 0.0,
          static_cast<double>(options.width - 1)));
      auto cy = static_cast<std::size_t>(std::clamp(
          y.position(s.y[i], options.height), 0.0,
          static_cast<double>(options.height - 1)));
      grid[options.height - 1 - cy][cx] = glyph;
    }
  }

  std::ostringstream os;
  frame(os, grid, x, y, options);
  if (series.size() > 1) {
    os << "  legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
      os << "  '" << kGlyphs[si % (sizeof(kGlyphs) - 1)] << "'=" << series[si].name;
    }
    os << '\n';
  }
  return os.str();
}

std::string render_histogram(const stats::Histogram& histogram,
                             const ChartOptions& options) {
  EIO_CHECK(options.width >= 8 && options.height >= 4);
  double max_count = 0.0;
  for (auto c : histogram.counts()) {
    max_count = std::max(max_count, static_cast<double>(c));
  }
  if (max_count == 0.0) return "(empty histogram)\n";

  Axis y{options.log_y ? 0.8 : 0.0, max_count, options.log_y};
  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  std::size_t bins = histogram.bin_count();
  for (std::size_t col = 0; col < options.width; ++col) {
    // Map columns onto bins (several bins may share a column).
    auto b0 = bins * col / options.width;
    auto b1 = std::max(bins * (col + 1) / options.width, b0 + 1);
    double count = 0.0;
    for (std::size_t b = b0; b < b1 && b < bins; ++b) {
      count = std::max(count, static_cast<double>(histogram.count(b)));
    }
    if (count <= 0.0) continue;
    auto top = static_cast<std::size_t>(std::clamp(
        y.position(count, options.height), 0.0,
        static_cast<double>(options.height - 1)));
    for (std::size_t r = 0; r <= top; ++r) {
      grid[options.height - 1 - r][col] = '#';
    }
  }
  Axis x{histogram.lo(), histogram.hi(), histogram.scale() == stats::BinScale::kLog10};
  std::ostringstream os;
  frame(os, grid, x, y, options);
  return os.str();
}

std::string render_histograms(std::span<const stats::Histogram* const> histograms,
                              std::span<const std::string> names,
                              const ChartOptions& options) {
  EIO_CHECK(!histograms.empty());
  EIO_CHECK(histograms.size() == names.size());
  std::vector<Series> series;
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const stats::Histogram& h = *histograms[i];
    Series s;
    s.name = names[i];
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      s.x.push_back(h.bin_center(b));
      s.y.push_back(static_cast<double>(h.count(b)));
    }
    series.push_back(std::move(s));
  }
  ChartOptions opts = options;
  opts.log_x = histograms[0]->scale() == stats::BinScale::kLog10;
  return render_lines(series, opts);
}

std::string format_rate(double bytes_per_second) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes_per_second >= static_cast<double>(GiB)) {
    os << bytes_per_second / static_cast<double>(GiB) << " GiB/s";
  } else if (bytes_per_second >= static_cast<double>(MiB)) {
    os << bytes_per_second / static_cast<double>(MiB) << " MiB/s";
  } else {
    os << bytes_per_second / static_cast<double>(KiB) << " KiB/s";
  }
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(seconds < 0.1 ? 3 : 1);
  if (seconds >= 1.0 || seconds == 0.0) {
    os << seconds << " s";
  } else if (seconds >= 1e-3) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds * 1e6 << " us";
  }
  return os.str();
}

}  // namespace eio::analysis
