// Application I/O access-pattern detection from traces.
//
// The paper's closing direction: "the IPM-I/O framework will be
// expanded to detect an application's I/O patterns; thus providing key
// information to the underlying file system that can be leveraged for
// improving I/O behavior."  This module classifies each (rank, file,
// direction) access stream from the trace into sequential / strided /
// random, recovers the dominant stride, and emits file-system hints
// (prefetch distance, alignment advice) that a smarter middleware
// could apply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "ipm/trace.h"

namespace eio::analysis {

/// Classification of one access stream.
enum class AccessPattern : std::uint8_t {
  kSequential,  ///< each access starts where the previous ended
  kStrided,     ///< constant positive gap between access starts
  kRandom,      ///< no dominant stride
};

[[nodiscard]] const char* pattern_name(AccessPattern pattern) noexcept;

/// One detected stream.
struct StreamPattern {
  RankId rank = 0;
  FileId file = kInvalidFile;
  posix::OpType op = posix::OpType::kRead;  ///< kRead or kWrite
  AccessPattern pattern = AccessPattern::kRandom;
  std::size_t accesses = 0;
  Bytes typical_size = 0;       ///< median access size
  std::int64_t stride = 0;      ///< dominant start-to-start stride
  double confidence = 0.0;      ///< fraction of gaps matching the stride
  bool stripe_aligned = true;   ///< all accesses stripe-aligned?
};

/// Hints a pattern-aware file system could consume.
struct FsHint {
  FileId file = kInvalidFile;
  posix::OpType op = posix::OpType::kRead;
  /// Suggested read-ahead distance (bytes beyond the current access)
  /// for sequential/strided read streams; 0 = disable read-ahead.
  Bytes prefetch_bytes = 0;
  /// True when transfers should be padded/aligned to the stripe size.
  bool advise_alignment = false;
  std::string rationale;
};

/// Detection tunables.
struct PatternOptions {
  std::size_t min_accesses = 4;      ///< streams shorter than this are skipped
  double stride_confidence = 0.6;    ///< gap agreement needed for kStrided
  Bytes stripe_size = 1 * MiB;
};

/// Classify every (rank, file, op) stream with enough accesses.
[[nodiscard]] std::vector<StreamPattern> detect_patterns(
    const ipm::Trace& trace, const PatternOptions& options = {});

/// Derive per-(file, op) hints from detected streams: prefetch sizing
/// for coherent read streams, alignment advice for unaligned writes,
/// and read-ahead disabling for random reads.
[[nodiscard]] std::vector<FsHint> derive_hints(
    const std::vector<StreamPattern>& patterns, const PatternOptions& options = {});

}  // namespace eio::analysis
