// Two-sample Kolmogorov–Smirnov comparison.
//
// The paper's reproducibility claim — "the statistical representations
// are almost identical" across runs and even across file systems
// (Figure 1c, scratch vs scratch2) — needs a quantitative footing.
// The two-sample KS statistic (sup-norm distance between empirical
// CDFs) with its asymptotic significance level provides it.
#pragma once

#include <span>

namespace eio::stats {

/// Result of a two-sample KS comparison.
struct KsResult {
  double statistic = 0.0;  ///< sup_x |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic two-sided significance
};

/// Compare two samples. Both must be non-empty.
[[nodiscard]] KsResult ks_two_sample(std::span<const double> a,
                                     std::span<const double> b);

/// Kolmogorov distribution survival function Q(λ) = 2 Σ (-1)^{j-1}
/// exp(-2 j² λ²) — exposed for tests.
[[nodiscard]] double kolmogorov_q(double lambda);

}  // namespace eio::stats
