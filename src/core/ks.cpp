#include "core/ks.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace eio::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  EIO_CHECK(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  double d = 0.0;
  std::size_t i = 0, j = 0;
  auto na = static_cast<double>(sa.size());
  auto nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    double fa = static_cast<double>(i) / na;
    double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }

  double ne = na * nb / (na + nb);
  double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return {d, kolmogorov_q(lambda)};
}

}  // namespace eio::stats
