// Aggregate instantaneous data-rate time series.
//
// Figures 1(b), 4(b/e) and 6(b/e/h/k) plot the job-wide data rate over
// wall-clock time. Each traced transfer is assumed to move bytes at a
// uniform rate across its [start, end) interval; binning those
// contributions gives the aggregate series. The same machinery yields
// the per-phase completion-fraction curves of Figure 5(a).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/samples.h"
#include "ipm/trace.h"

namespace eio::analysis {

/// A uniformly-binned time series.
struct TimeSeries {
  double t0 = 0.0;
  double dt = 1.0;
  std::vector<double> values;

  [[nodiscard]] double time_at(std::size_t i) const noexcept {
    return t0 + dt * (static_cast<double>(i) + 0.5);
  }
  [[nodiscard]] double max_value() const;
  /// Sum of values * dt (for rates: total bytes).
  [[nodiscard]] double integral() const;
};

/// One-pass rate-series accumulator: fix the span up front, then fold
/// events in any order. Each transfer contributes its uniform rate to
/// every bin its [start, end) interval overlaps. Memory is O(bins).
/// Both aggregate_rate overloads are wrappers over this kernel.
class RateSeriesBuilder {
 public:
  /// `span` is the wall-clock extent binned into [0, span); non-
  /// positive spans clamp to 1 (an empty trace's 1-second axis).
  RateSeriesBuilder(double span, std::size_t bins);

  /// Fold one transfer from its raw fields — the columnar entry point
  /// (callers hand in decoded column values without building a
  /// TraceEvent). Ignores zero-byte transfers; zero/negative durations
  /// clamp to 1 ns, matching the event overload exactly. Inline: one
  /// call per matching event in the rate scans.
  void add(double start, double duration, Bytes bytes) {
    if (bytes == 0) return;
    std::size_t bins = series_.values.size();
    double end = start + duration;
    if (end <= start) end = start + 1e-9;
    double rate = static_cast<double>(bytes) / (end - start);
    auto first = static_cast<std::size_t>(
        std::clamp(start / series_.dt, 0.0, static_cast<double>(bins - 1)));
    auto last = static_cast<std::size_t>(
        std::clamp(end / series_.dt, 0.0, static_cast<double>(bins - 1)));
    for (std::size_t b = first; b <= last; ++b) {
      double bin_lo = series_.dt * static_cast<double>(b);
      double bin_hi = bin_lo + series_.dt;
      double overlap = std::min(end, bin_hi) - std::max(start, bin_lo);
      if (overlap > 0.0) series_.values[b] += rate * overlap / series_.dt;
    }
  }

  /// Fold one event (ignores zero-byte transfers).
  void add(const ipm::TraceEvent& event) {
    add(event.start, event.duration, event.bytes);
  }

  /// Fold every event of a chunk (the batch-dispatch hot path).
  void add_batch(std::span<const ipm::TraceEvent> events);

  /// Fold another builder over the same span/binning (elementwise add
  /// — rates are linear, so partials merge exactly up to FP rounding).
  void merge(const RateSeriesBuilder& other);

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }

 private:
  TimeSeries series_;
};

/// Aggregate data rate (bytes/s) of matching events over the job.
/// `bins` partitions [0, trace.span()].
[[nodiscard]] TimeSeries aggregate_rate(const ipm::Trace& trace,
                                        const EventFilter& filter,
                                        std::size_t bins);

/// Streaming form: one pass for the span (over all events, matching
/// the batch semantics), one pass to fold matching events. O(bins)
/// memory.
[[nodiscard]] TimeSeries aggregate_rate(const ipm::TraceSource& source,
                                        const EventFilter& filter,
                                        std::size_t bins);

/// Fraction of matching I/O operations complete versus time, measured
/// from the first matching event's start (the Figure 5a curves; one
/// call per phase via filter.phase).
struct ProgressCurve {
  std::vector<double> t;         ///< seconds since phase start
  std::vector<double> fraction;  ///< ops complete by then (0..1)
};
[[nodiscard]] ProgressCurve completion_curve(const ipm::Trace& trace,
                                             const EventFilter& filter);

}  // namespace eio::analysis
