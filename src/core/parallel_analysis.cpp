#include "core/parallel_analysis.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/rng.h"

namespace eio::analysis {

stats::StreamingSummary scan_summary(const ipm::ParallelTraceScanner& scanner,
                                     const EventFilter& filter,
                                     const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  SummarySink merged = scanner.scan(
      [&](std::size_t chunk) {
        stats::SummaryOptions per_chunk = options;
        per_chunk.reservoir_seed =
            rng::substream_seed(options.reservoir_seed, chunk);
        return SummarySink(filter, per_chunk);
      },
      [](SummarySink& sink, std::span<const ipm::TraceEvent> events) {
        sink.on_batch(events);
      },
      [](SummarySink& into, SummarySink&& from) { into.merge(from); }, &hint);
  return merged.summary();
}

std::map<std::int32_t, stats::StreamingSummary> scan_phase_summaries(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  PhaseSummarySink merged = scanner.scan(
      [&](std::size_t chunk) {
        stats::SummaryOptions per_chunk = options;
        per_chunk.reservoir_seed =
            rng::substream_seed(options.reservoir_seed, chunk);
        return PhaseSummarySink(filter, per_chunk);
      },
      [](PhaseSummarySink& sink, std::span<const ipm::TraceEvent> events) {
        sink.on_batch(events);
      },
      [](PhaseSummarySink& into, PhaseSummarySink&& from) {
        into.merge(from);
      },
      &hint);
  return merged.by_phase();
}

std::optional<stats::Histogram> scan_histogram(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    stats::BinScale scale, std::size_t bins) {
  const ipm::ChunkHint hint = hint_for(filter);
  // Pass 1: matched-duration extrema, to reproduce the serial padded
  // range bit for bit (min/max merge exactly).
  struct Extent {
    std::uint64_t n = 0;
    double lo = 0.0;
    double hi = 0.0;
  };
  Extent extent = scanner.scan(
      [](std::size_t) { return Extent{}; },
      [&](Extent& x, std::span<const ipm::TraceEvent> events) {
        for (const ipm::TraceEvent& e : events) {
          if (!filter.matches(e)) continue;
          if (x.n == 0) {
            x.lo = x.hi = e.duration;
          } else {
            x.lo = std::min(x.lo, e.duration);
            x.hi = std::max(x.hi, e.duration);
          }
          ++x.n;
        }
      },
      [](Extent& a, Extent&& b) {
        if (b.n == 0) return;
        if (a.n == 0) {
          a = b;
        } else {
          a.lo = std::min(a.lo, b.lo);
          a.hi = std::max(a.hi, b.hi);
          a.n += b.n;
        }
      },
      &hint);
  if (extent.n == 0) return std::nullopt;

  // Pass 2: fill fixed bins; bin counts merge exactly.
  stats::Histogram::Range range =
      stats::Histogram::padded_range(extent.lo, extent.hi, scale);
  return scanner.scan(
      [&](std::size_t) {
        return stats::Histogram(scale, range.lo, range.hi, bins);
      },
      [&](stats::Histogram& h, std::span<const ipm::TraceEvent> events) {
        for (const ipm::TraceEvent& e : events) {
          if (filter.matches(e)) h.add(e.duration);
        }
      },
      [](stats::Histogram& a, stats::Histogram&& b) { a.merge(b); }, &hint);
}

TimeSeries scan_rate(const ipm::ParallelTraceScanner& scanner,
                     const EventFilter& filter, std::size_t bins) {
  const double span = scanner.time_span();
  const ipm::ChunkHint hint = hint_for(filter);
  RateSeriesBuilder merged = scanner.scan(
      [&](std::size_t) { return RateSeriesBuilder(span, bins); },
      [&](RateSeriesBuilder& builder,
          std::span<const ipm::TraceEvent> events) {
        for (const ipm::TraceEvent& e : events) {
          if (filter.matches(e)) builder.add(e);
        }
      },
      [](RateSeriesBuilder& a, RateSeriesBuilder&& b) { a.merge(b); }, &hint);
  return merged.series();
}

}  // namespace eio::analysis
