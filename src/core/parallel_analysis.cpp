#include "core/parallel_analysis.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "ipm/columns.h"

namespace eio::analysis {

// Every scan here folds through the columnar path: v3 traces decode
// only the masked columns (zero-copy when mapped), v2 traces shred
// their rows into the same spans. Index order equals event order, so
// each fold performs the identical FP sequence as the former
// row-oriented scans — results stay byte-identical across formats,
// paths, and --jobs values.

stats::StreamingSummary scan_summary(const ipm::ParallelTraceScanner& scanner,
                                     const EventFilter& filter,
                                     const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  const ipm::ColumnMask mask = filter.required_columns() | ipm::kColDuration;
  SummarySink merged = scanner.scan_columns(
      [&](std::size_t chunk) {
        stats::SummaryOptions per_chunk = options;
        per_chunk.reservoir_seed =
            rng::substream_seed(options.reservoir_seed, chunk);
        return SummarySink(filter, per_chunk);
      },
      [](SummarySink& sink, const ipm::ColumnBatch& batch) {
        sink.on_columns(batch);
      },
      [](SummarySink& into, SummarySink&& from) { into.merge(from); }, &hint,
      mask);
  return merged.summary();
}

std::map<std::int32_t, stats::StreamingSummary> scan_phase_summaries(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  const ipm::ColumnMask mask =
      filter.required_columns() | ipm::kColPhase | ipm::kColDuration;
  PhaseSummarySink merged = scanner.scan_columns(
      [&](std::size_t chunk) {
        stats::SummaryOptions per_chunk = options;
        per_chunk.reservoir_seed =
            rng::substream_seed(options.reservoir_seed, chunk);
        return PhaseSummarySink(filter, per_chunk);
      },
      [](PhaseSummarySink& sink, const ipm::ColumnBatch& batch) {
        sink.on_columns(batch);
      },
      [](PhaseSummarySink& into, PhaseSummarySink&& from) {
        into.merge(from);
      },
      &hint, mask);
  return merged.by_phase();
}

std::optional<stats::Histogram> scan_histogram(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    stats::BinScale scale, std::size_t bins) {
  const ipm::ChunkHint hint = hint_for(filter);
  const ipm::ColumnMask mask = filter.required_columns() | ipm::kColDuration;
  // Pass 1: matched-duration extrema, to reproduce the serial padded
  // range bit for bit (min/max merge exactly).
  struct Extent {
    std::uint64_t n = 0;
    double lo = 0.0;
    double hi = 0.0;
  };
  Extent extent = scanner.scan_columns(
      [](std::size_t) { return Extent{}; },
      [&](Extent& x, const ipm::ColumnBatch& batch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (!filter.matches_at(batch, i)) continue;
          double d = batch.duration[i];
          if (x.n == 0) {
            x.lo = x.hi = d;
          } else {
            x.lo = std::min(x.lo, d);
            x.hi = std::max(x.hi, d);
          }
          ++x.n;
        }
      },
      [](Extent& a, Extent&& b) {
        if (b.n == 0) return;
        if (a.n == 0) {
          a = b;
        } else {
          a.lo = std::min(a.lo, b.lo);
          a.hi = std::max(a.hi, b.hi);
          a.n += b.n;
        }
      },
      &hint, mask);
  if (extent.n == 0) return std::nullopt;

  // Pass 2: fill fixed bins; bin counts merge exactly.
  stats::Histogram::Range range =
      stats::Histogram::padded_range(extent.lo, extent.hi, scale);
  return scanner.scan_columns(
      [&](std::size_t) {
        return stats::Histogram(scale, range.lo, range.hi, bins);
      },
      [&](stats::Histogram& h, const ipm::ColumnBatch& batch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (filter.matches_at(batch, i)) h.add(batch.duration[i]);
        }
      },
      [](stats::Histogram& a, stats::Histogram&& b) { a.merge(b); }, &hint,
      mask);
}

TimeSeries scan_rate(const ipm::ParallelTraceScanner& scanner,
                     const EventFilter& filter, std::size_t bins) {
  const double span = scanner.time_span();
  const ipm::ChunkHint hint = hint_for(filter);
  const ipm::ColumnMask mask = filter.required_columns() | ipm::kColStart |
                               ipm::kColDuration | ipm::kColBytes;
  RateSeriesBuilder merged = scanner.scan_columns(
      [&](std::size_t) { return RateSeriesBuilder(span, bins); },
      [&](RateSeriesBuilder& builder, const ipm::ColumnBatch& batch) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (filter.matches_at(batch, i)) {
            builder.add(batch.start[i], batch.duration[i], batch.bytes[i]);
          }
        }
      },
      [](RateSeriesBuilder& a, RateSeriesBuilder&& b) { a.merge(b); }, &hint,
      mask);
  return merged.series();
}

}  // namespace eio::analysis
