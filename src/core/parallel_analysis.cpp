#include "core/parallel_analysis.h"

#include <utility>

#include "ipm/columns.h"

namespace eio::analysis {

// Every scan here folds through the kernel-set columnar path: v3
// traces decode only the masked columns (zero-copy when mapped), v2
// traces shred their rows into the same spans. Index order equals
// event order, so each fold performs the identical FP sequence as the
// former row-oriented scans — results stay byte-identical across
// formats, paths, and --jobs values.

stats::StreamingSummary scan_summary(const ipm::ParallelTraceScanner& scanner,
                                     const EventFilter& filter,
                                     const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  SummarySink merged = scanner.scan_kernels(
      [&](std::size_t chunk) {
        return SummarySink(filter, chunk_summary_options(options, chunk));
      },
      &hint);
  return merged.summary();
}

std::map<std::int32_t, stats::StreamingSummary> scan_phase_summaries(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    const stats::SummaryOptions& options) {
  const ipm::ChunkHint hint = hint_for(filter);
  PhaseSummarySink merged = scanner.scan_kernels(
      [&](std::size_t chunk) {
        return PhaseSummarySink(filter, chunk_summary_options(options, chunk));
      },
      &hint);
  return merged.by_phase();
}

std::optional<stats::Histogram> scan_histogram(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    stats::BinScale scale, std::size_t bins) {
  const ipm::ChunkHint hint = hint_for(filter);
  HistogramKernel merged = scanner.scan_kernels(
      [&](std::size_t) {
        return HistogramKernel(filter, {.scale = scale, .bins = bins});
      },
      &hint);
  return merged.histogram().materialize();
}

TimeSeries scan_rate(const ipm::ParallelTraceScanner& scanner,
                     const EventFilter& filter, std::size_t bins) {
  const double span = scanner.time_span();
  const ipm::ChunkHint hint = hint_for(filter);
  RateKernel merged = scanner.scan_kernels(
      [&](std::size_t) { return RateKernel(filter, span, bins); }, &hint);
  return merged.series();
}

}  // namespace eio::analysis
