// Empirical distributions: moments, quantiles, CDF.
//
// "A key insight is that although the I/O rate an individual task
// observes may vary significantly from run to run, the statistical
// moments and modes of the performance distribution are reproducible."
// This class carries the moments/quantiles half of that program; modes
// live in modes.h.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"

namespace eio::stats {

/// Central and standardized moments of a sample.
struct Moments {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double skewness = 0.0;  ///< standardized third moment (0 for symmetric)
  double kurtosis_excess = 0.0;  ///< standardized fourth moment - 3
  /// Coefficient of variation σ/µ — the paper's "narrowing" metric.
  [[nodiscard]] double cv() const noexcept { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Compute moments of a sample in one pass.
[[nodiscard]] Moments compute_moments(std::span<const double> samples);

/// A sorted copy of a sample supporting quantile/CDF queries.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const Moments& moments() const noexcept { return moments_; }
  [[nodiscard]] double mean() const noexcept { return moments_.mean; }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev; }

  /// Interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Empirical CDF: fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// Plug-in estimate of E[max of n iid draws] from this distribution:
  /// E ≈ Σ_i x_(i) * (F(x_(i))^n - F(x_(i-1))^n) over the sorted sample.
  [[nodiscard]] double expected_max_of(std::size_t n) const;

 private:
  std::vector<double> sorted_;
  Moments moments_;
};

}  // namespace eio::stats
