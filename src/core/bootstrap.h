// Bootstrap confidence intervals for ensemble statistics.
//
// Supports the reproducibility analysis: when we claim a moment or a
// mode location is stable, the bootstrap interval says how stable the
// estimate itself is given the sample size.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/distribution.h"

namespace eio::stats {

/// A two-sided percentile interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< statistic on the original sample
  [[nodiscard]] bool contains(double v) const noexcept { return v >= lo && v <= hi; }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Percentile bootstrap of an arbitrary statistic.
///
/// `statistic` is evaluated on resampled copies of `samples`;
/// `confidence` is the two-sided level (e.g. 0.95).
[[nodiscard]] inline Interval bootstrap_interval(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples = 1000, double confidence = 0.95,
    std::uint64_t seed = 0xB007) {
  EIO_CHECK(!samples.empty());
  EIO_CHECK(resamples >= 10);
  EIO_CHECK(confidence > 0.0 && confidence < 1.0);
  rng::Stream stream(seed);
  std::vector<double> scratch(samples.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& v : scratch) v = samples[stream.index(samples.size())];
    stats.push_back(statistic(scratch));
  }
  EmpiricalDistribution dist(std::move(stats));
  double alpha = (1.0 - confidence) / 2.0;
  return {dist.quantile(alpha), dist.quantile(1.0 - alpha), statistic(samples)};
}

}  // namespace eio::stats
