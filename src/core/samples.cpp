#include "core/samples.h"

#include "common/check.h"
#include "common/units.h"

namespace eio::analysis {

bool EventFilter::matches(const ipm::TraceEvent& e) const {
  using posix::OpType;
  if (data_calls_only && e.op != OpType::kRead && e.op != OpType::kWrite) {
    return false;
  }
  if (op && e.op != *op) return false;
  if (phase && e.phase != *phase) return false;
  if (rank && e.rank != *rank) return false;
  if (e.bytes < min_bytes) return false;
  if (max_bytes && e.bytes > *max_bytes) return false;
  if (t_lo && e.end() < *t_lo) return false;
  if (t_hi && e.start > *t_hi) return false;
  return true;
}

std::vector<ipm::TraceEvent> select(const ipm::Trace& trace,
                                    const EventFilter& filter) {
  std::vector<ipm::TraceEvent> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out.push_back(e);
  }
  return out;
}

std::vector<double> durations(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out.push_back(e.duration);
  }
  return out;
}

std::vector<double> seconds_per_mib(const ipm::Trace& trace,
                                    const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e) || e.bytes == 0) continue;
    out.push_back(e.duration / to_mib(e.bytes));
  }
  return out;
}

std::vector<double> rates_mib(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e) || e.bytes == 0 || e.duration <= 0.0) continue;
    out.push_back(to_mib(e.bytes) / e.duration);
  }
  return out;
}

std::map<std::int32_t, std::vector<double>> durations_by_phase(
    const ipm::Trace& trace, const EventFilter& filter) {
  std::map<std::int32_t, std::vector<double>> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out[e.phase].push_back(e.duration);
  }
  return out;
}

std::map<RankId, std::vector<double>> durations_by_rank(const ipm::Trace& trace,
                                                        const EventFilter& filter) {
  std::map<RankId, std::vector<double>> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out[e.rank].push_back(e.duration);
  }
  return out;
}

ipm::ChunkHint hint_for(const EventFilter& filter) {
  ipm::ChunkHint hint;
  hint.op = filter.op;
  hint.phase = filter.phase;
  hint.rank = filter.rank;
  hint.t_lo = filter.t_lo;
  hint.t_hi = filter.t_hi;
  return hint;
}

void for_each_matching(const ipm::TraceSource& source,
                       const EventFilter& filter,
                       const std::function<void(const ipm::TraceEvent&)>& fn) {
  source.for_each_hinted(hint_for(filter), [&](const ipm::TraceEvent& e) {
    if (filter.matches(e)) fn(e);
  });
}

std::vector<double> durations(const ipm::TraceSource& source,
                              const EventFilter& filter) {
  std::vector<double> out;
  for_each_matching(source, filter,
                    [&out](const ipm::TraceEvent& e) { out.push_back(e.duration); });
  return out;
}

void PhaseSummarySink::on_event(const ipm::TraceEvent& event) {
  if (!filter_.matches(event)) return;
  auto it = by_phase_.try_emplace(event.phase, options_).first;
  it->second.add(event.duration);
}

void PhaseSummarySink::on_batch(std::span<const ipm::TraceEvent> events) {
  for (const ipm::TraceEvent& e : events) on_event(e);
}

void PhaseSummarySink::merge(const PhaseSummarySink& other) {
  for (const auto& [phase, summary] : other.by_phase_) {
    auto it = by_phase_.try_emplace(phase, options_).first;
    it->second.merge(summary);
  }
}

std::vector<double> per_rank_ordered(const ipm::Trace& trace,
                                     const EventFilter& filter, std::size_t k) {
  auto by_rank = durations_by_rank(trace, filter);
  std::vector<double> out;
  out.reserve(by_rank.size() * k);
  for (const auto& [rank, ds] : by_rank) {
    EIO_CHECK_MSG(ds.size() == k, "rank " << rank << " has " << ds.size()
                                          << " events, expected " << k);
    out.insert(out.end(), ds.begin(), ds.end());
  }
  return out;
}

}  // namespace eio::analysis
