#include "core/samples.h"

#include "common/check.h"
#include "common/units.h"

namespace eio::analysis {

ipm::ColumnMask EventFilter::required_columns() const noexcept {
  ipm::ColumnMask mask = 0;
  if (data_calls_only || op) mask |= ipm::kColOp;
  if (phase) mask |= ipm::kColPhase;
  if (rank) mask |= ipm::kColRank;
  if (min_bytes > 0 || max_bytes) mask |= ipm::kColBytes;
  // The window predicate compares e.end() = start + duration on the
  // left edge, so t_lo pulls in both time columns.
  if (t_lo) mask |= ipm::kColStart | ipm::kColDuration;
  if (t_hi) mask |= ipm::kColStart;
  return mask;
}

std::vector<ipm::TraceEvent> select(const ipm::Trace& trace,
                                    const EventFilter& filter) {
  std::vector<ipm::TraceEvent> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out.push_back(e);
  }
  return out;
}

std::vector<double> durations(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out.push_back(e.duration);
  }
  return out;
}

std::vector<double> seconds_per_mib(const ipm::Trace& trace,
                                    const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e) || e.bytes == 0) continue;
    out.push_back(e.duration / to_mib(e.bytes));
  }
  return out;
}

std::vector<double> rates_mib(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> out;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e) || e.bytes == 0 || e.duration <= 0.0) continue;
    out.push_back(to_mib(e.bytes) / e.duration);
  }
  return out;
}

std::map<std::int32_t, std::vector<double>> durations_by_phase(
    const ipm::Trace& trace, const EventFilter& filter) {
  std::map<std::int32_t, std::vector<double>> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out[e.phase].push_back(e.duration);
  }
  return out;
}

std::map<RankId, std::vector<double>> durations_by_rank(const ipm::Trace& trace,
                                                        const EventFilter& filter) {
  std::map<RankId, std::vector<double>> out;
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) out[e.rank].push_back(e.duration);
  }
  return out;
}

ipm::ChunkHint hint_for(const EventFilter& filter) {
  ipm::ChunkHint hint;
  hint.op = filter.op;
  hint.phase = filter.phase;
  hint.rank = filter.rank;
  hint.t_lo = filter.t_lo;
  hint.t_hi = filter.t_hi;
  if (!filter.op && filter.data_calls_only) {
    // No single-op pin, but the filter still rejects everything except
    // reads and writes — chunks containing neither can be skipped.
    hint.op_mask = (1u << static_cast<unsigned>(posix::OpType::kRead)) |
                   (1u << static_cast<unsigned>(posix::OpType::kWrite));
  }
  return hint;
}

void for_each_matching(const ipm::TraceSource& source,
                       const EventFilter& filter,
                       const std::function<void(const ipm::TraceEvent&)>& fn) {
  source.for_each_hinted(hint_for(filter), [&](const ipm::TraceEvent& e) {
    if (filter.matches(e)) fn(e);
  });
}

std::vector<double> durations(const ipm::TraceSource& source,
                              const EventFilter& filter) {
  std::vector<double> out;
  for_each_matching(source, filter,
                    [&out](const ipm::TraceEvent& e) { out.push_back(e.duration); });
  return out;
}

void PhaseSummarySink::add(const ipm::TraceEvent& event) {
  if (!filter_.matches(event)) return;
  auto it = by_phase_.try_emplace(event.phase, options_).first;
  it->second.add(event.duration);
}

void PhaseSummarySink::flush_run(std::int32_t phase) {
  auto it = by_phase_.try_emplace(phase, options_).first;
  it->second.add_batch(scratch_);
  scratch_.clear();
}

void PhaseSummarySink::add_batch(const ipm::ColumnBatch& batch) {
  // Traces are phase-runs by construction (each rank's events arrive
  // phase by phase), so buffering per run turns the per-event map
  // lookup + interleaved add into one lookup + one dense fold per run.
  scratch_.clear();
  std::int32_t run_phase = 0;
  filter_.for_each_match(batch, [&](std::size_t i) {
    std::int32_t phase = batch.phase[i];
    if (!scratch_.empty() && phase != run_phase) flush_run(run_phase);
    run_phase = phase;
    scratch_.push_back(batch.duration[i]);
  });
  if (!scratch_.empty()) flush_run(run_phase);
}

void PhaseSummarySink::on_event(const ipm::TraceEvent& event) { add(event); }

void PhaseSummarySink::on_batch(std::span<const ipm::TraceEvent> events) {
  for (const ipm::TraceEvent& e : events) add(e);
}

void PhaseSummarySink::on_columns(const ipm::ColumnBatch& batch) {
  add_batch(batch);
}

void PhaseSummarySink::merge(const PhaseSummarySink& other) {
  for (const auto& [phase, summary] : other.by_phase_) {
    auto it = by_phase_.try_emplace(phase, options_).first;
    it->second.merge(summary);
  }
}

std::vector<double> per_rank_ordered(const ipm::Trace& trace,
                                     const EventFilter& filter, std::size_t k) {
  auto by_rank = durations_by_rank(trace, filter);
  std::vector<double> out;
  out.reserve(by_rank.size() * k);
  for (const auto& [rank, ds] : by_rank) {
    EIO_CHECK_MSG(ds.size() == k, "rank " << rank << " has " << ds.size()
                                          << " events, expected " << k);
    out.insert(out.end(), ds.begin(), ds.end());
  }
  return out;
}

}  // namespace eio::analysis
