#include "core/trace_diagram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace eio::analysis {

TraceDiagram::TraceDiagram(std::uint32_t ranks, double span, Options options) {
  EIO_CHECK(options.max_rows >= 1 && options.columns >= 1);
  ranks = std::max<std::uint32_t>(ranks, 1);
  rows_ = std::min<std::size_t>(options.max_rows, ranks);
  cols_ = options.columns;
  span_ = std::max(span, 1e-9);
  dt_ = span_ / static_cast<double>(cols_);

  write_.assign(rows_ * cols_, 0.0);
  read_.assign(rows_ * cols_, 0.0);
  meta_.assign(rows_ * cols_, 0.0);

  // ranks_per_row tasks share a row; cell "busy fraction" normalizes by
  // (ranks_per_row * dt) so a fully-busy row saturates at 1.
  ranks_per_row_ = static_cast<double>(ranks) / static_cast<double>(rows_);
}

TraceDiagram::TraceDiagram(const ipm::Trace& trace, Options options)
    : TraceDiagram(trace.ranks(), trace.span(), options) {
  for (const auto& e : trace.events()) add(e);
}

TraceDiagram::TraceDiagram(const ipm::TraceSource& source, Options options)
    : TraceDiagram(source.meta().ranks,
                   [&source] {
                     double span = 0.0;
                     source.for_each([&span](const ipm::TraceEvent& e) {
                       span = std::max(span, e.end());
                     });
                     return span;
                   }(),
                   options) {
  source.for_each([this](const ipm::TraceEvent& e) { add(e); });
}

void TraceDiagram::add(const ipm::TraceEvent& e) {
  std::vector<double>* plane = nullptr;
  using posix::OpType;
  switch (e.op) {
    case OpType::kWrite: plane = &write_; break;
    case OpType::kRead: plane = &read_; break;
    case OpType::kOpen:
    case OpType::kClose:
    case OpType::kSeek:
    case OpType::kFsync:
    case OpType::kFault: plane = &meta_; break;
  }
  if (plane == nullptr) return;
  auto row = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(e.rank) / ranks_per_row_,
                       static_cast<double>(rows_ - 1)));
  double start = e.start;
  double end = std::max(e.end(), start + 1e-12);
  auto first = static_cast<std::size_t>(
      std::clamp(start / dt_, 0.0, static_cast<double>(cols_ - 1)));
  auto last = static_cast<std::size_t>(
      std::clamp(end / dt_, 0.0, static_cast<double>(cols_ - 1)));
  for (std::size_t c = first; c <= last; ++c) {
    double lo = dt_ * static_cast<double>(c);
    double hi = lo + dt_;
    double overlap = std::min(end, hi) - std::max(start, lo);
    if (overlap > 0.0) {
      cell(*plane, row, c) += overlap / (dt_ * ranks_per_row_);
    }
  }
}

double TraceDiagram::write_fraction(std::size_t row, std::size_t col) const {
  EIO_CHECK(row < rows_ && col < cols_);
  return plane_at(write_, row, col);
}

double TraceDiagram::read_fraction(std::size_t row, std::size_t col) const {
  EIO_CHECK(row < rows_ && col < cols_);
  return plane_at(read_, row, col);
}

double TraceDiagram::idle_fraction() const {
  std::size_t idle = 0;
  for (std::size_t i = 0; i < write_.size(); ++i) {
    if (write_[i] + read_[i] + meta_[i] < 0.02) ++idle;
  }
  return static_cast<double>(idle) / static_cast<double>(write_.size());
}

std::vector<std::string> TraceDiagram::render() const {
  std::vector<std::string> lines;
  lines.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::string line(cols_, ' ');
    for (std::size_t c = 0; c < cols_; ++c) {
      double w = plane_at(write_, r, c);
      double rd = plane_at(read_, r, c);
      double m = plane_at(meta_, r, c);
      char ch = ' ';
      if (w >= 0.02 && rd >= 0.02) {
        ch = '+';
      } else if (w >= 0.02) {
        ch = '#';
      } else if (rd >= 0.02) {
        ch = 'o';
      } else if (m >= 0.02) {
        ch = '.';
      }
      line[c] = ch;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string TraceDiagram::render_text() const {
  std::ostringstream os;
  for (const std::string& line : render()) os << '|' << line << "|\n";
  os << '+' << std::string(cols_, '-') << "+\n";
  os << " 0s" << std::string(cols_ > 16 ? cols_ - 14 : 0, ' ');
  os.precision(4);
  os << span_ << "s  ('#'=write 'o'=read '+'=both '.'=meta)\n";
  return os.str();
}

}  // namespace eio::analysis
