#include "core/modes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/distribution.h"

namespace eio::stats {

namespace {

/// Transform samples for the chosen axis.
std::vector<double> transformed(std::span<const double> samples, bool log_axis) {
  std::vector<double> t;
  t.reserve(samples.size());
  for (double s : samples) {
    t.push_back(log_axis ? std::log10(std::max(s, 1e-300)) : s);
  }
  return t;
}

double back_transform(double v, bool log_axis) {
  return log_axis ? std::pow(10.0, v) : v;
}

}  // namespace

KdeResult kernel_density(std::span<const double> samples,
                         const ModeFinderOptions& options) {
  EIO_CHECK_MSG(!samples.empty(), "KDE of empty sample");
  std::vector<double> t = transformed(samples, options.log_axis);
  Moments m = compute_moments(t);

  // Silverman's rule of thumb; fall back to a small width for
  // degenerate (constant) samples.
  auto n = static_cast<double>(t.size());
  double sigma = m.stddev;
  double h = sigma > 0.0
                 ? 1.06 * sigma * std::pow(n, -0.2) * options.bandwidth_scale
                 : 1e-3;

  double lo = *std::min_element(t.begin(), t.end()) - 3.0 * h;
  double hi = *std::max_element(t.begin(), t.end()) + 3.0 * h;
  if (hi <= lo) hi = lo + 1e-6;

  KdeResult result;
  result.bandwidth = h;
  result.grid.resize(options.grid_points);
  result.density.assign(options.grid_points, 0.0);
  double step = (hi - lo) / static_cast<double>(options.grid_points - 1);
  double norm = 1.0 / (n * h * std::sqrt(2.0 * 3.14159265358979323846));

  // Sort for windowed evaluation: only samples within 5h contribute.
  std::sort(t.begin(), t.end());
  for (std::size_t g = 0; g < options.grid_points; ++g) {
    double x = lo + step * static_cast<double>(g);
    auto first = std::lower_bound(t.begin(), t.end(), x - 5.0 * h);
    auto last = std::upper_bound(t.begin(), t.end(), x + 5.0 * h);
    double acc = 0.0;
    for (auto it = first; it != last; ++it) {
      double z = (x - *it) / h;
      acc += std::exp(-0.5 * z * z);
    }
    result.grid[g] = back_transform(x, options.log_axis);
    result.density[g] = acc * norm;
  }
  return result;
}

std::vector<Mode> find_modes(std::span<const double> samples,
                             const ModeFinderOptions& options) {
  KdeResult kde = kernel_density(samples, options);
  const auto& d = kde.density;
  const std::size_t n = d.size();

  struct Peak {
    std::size_t index;
    double height;
    double prominence;
  };
  std::vector<Peak> peaks;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (d[i] > d[i - 1] && d[i] >= d[i + 1]) {
      peaks.push_back({i, d[i], 0.0});
    }
  }
  if (peaks.empty()) {
    // Monotone density: the max is at an edge.
    std::size_t arg = static_cast<std::size_t>(
        std::max_element(d.begin(), d.end()) - d.begin());
    peaks.push_back({arg, d[arg], d[arg]});
  }

  // Prominence: height above the higher of the two saddle minima
  // between this peak and the nearest higher terrain on each side.
  for (Peak& p : peaks) {
    double left_min = p.height, right_min = p.height;
    for (std::size_t i = p.index; i-- > 0;) {
      if (d[i] > p.height) break;
      left_min = std::min(left_min, d[i]);
      if (i == 0) break;
    }
    for (std::size_t i = p.index + 1; i < n; ++i) {
      if (d[i] > p.height) break;
      right_min = std::min(right_min, d[i]);
    }
    p.prominence = p.height - std::max(left_min, right_min);
    // The global maximum has no higher terrain: full height.
    if (p.height >= *std::max_element(d.begin(), d.end())) {
      p.prominence = p.height;
    }
  }

  double tallest = 0.0;
  for (const Peak& p : peaks) tallest = std::max(tallest, p.height);
  std::vector<Peak> kept;
  for (const Peak& p : peaks) {
    if (p.prominence >= options.min_prominence * tallest) kept.push_back(p);
  }
  if (kept.empty() && !peaks.empty()) {
    kept.push_back(*std::max_element(
        peaks.begin(), peaks.end(),
        [](const Peak& a, const Peak& b) { return a.height < b.height; }));
  }

  // Assign mass: each sample goes to the nearest kept peak (in
  // transformed space, but nearest-in-grid is equivalent).
  std::vector<Mode> modes;
  modes.reserve(kept.size());
  for (const Peak& p : kept) {
    modes.push_back({kde.grid[p.index], p.height, p.prominence, 0.0});
  }
  for (double s : samples) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < modes.size(); ++i) {
      double a = options.log_axis ? std::log10(std::max(s, 1e-300))
                                  : s;
      double b = options.log_axis ? std::log10(std::max(modes[i].location, 1e-300))
                                  : modes[i].location;
      double dist = std::abs(a - b);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    modes[best].mass += 1.0;
  }
  for (Mode& m : modes) m.mass /= static_cast<double>(samples.size());

  // Drop negligible-mass modes, then sort strongest first.
  std::erase_if(modes, [&](const Mode& m) { return m.mass < options.min_mass; });
  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.density > b.density; });
  return modes;
}

std::vector<int> harmonic_signature(const std::vector<Mode>& modes,
                                    double tolerance) {
  std::vector<int> matched;
  if (modes.empty()) return matched;
  // Reference T: the slowest (largest-location) prominent mode.
  double t_ref = 0.0;
  for (const Mode& m : modes) t_ref = std::max(t_ref, m.location);
  if (t_ref <= 0.0) return matched;
  for (int harmonic : {1, 2, 3, 4, 8}) {
    double target = t_ref / static_cast<double>(harmonic);
    for (const Mode& m : modes) {
      if (std::abs(m.location - target) <= tolerance * target) {
        matched.push_back(harmonic);
        break;
      }
    }
  }
  return matched;
}

}  // namespace eio::stats
