// Mode (peak) detection in event-time distributions.
//
// "Observe that each histogram has three prominent peaks corresponding
// to three distinct modes of behavior" — identifying those peaks, and
// relating them to the fair-share rate R, is how the paper turns a
// histogram into a diagnosis (e.g. the R, R/2, R/4 harmonics of
// intra-node serialization in Figure 1c). Here we estimate a density
// with a Gaussian KDE (optionally on a log axis for heavy-tailed data)
// and extract local maxima with a prominence filter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eio::stats {

/// One detected mode of a distribution.
struct Mode {
  double location = 0.0;    ///< sample-space position of the peak
  double density = 0.0;     ///< KDE density at the peak
  double prominence = 0.0;  ///< height above the higher flanking saddle
  double mass = 0.0;        ///< fraction of samples nearest this mode
};

/// Parameters for mode finding.
struct ModeFinderOptions {
  bool log_axis = false;        ///< run the KDE in log10 space
  std::size_t grid_points = 256;
  double bandwidth_scale = 1.0;  ///< multiplier on Silverman's rule
  double min_prominence = 0.05;  ///< relative to the tallest peak
  double min_mass = 0.02;        ///< discard modes owning < this mass
};

/// Gaussian KDE evaluated on a uniform grid.
struct KdeResult {
  std::vector<double> grid;     ///< sample-space positions
  std::vector<double> density;  ///< estimated density at each position
  double bandwidth = 0.0;       ///< bandwidth used (transformed space)
};

/// Estimate the density of `samples` (Silverman bandwidth × scale).
[[nodiscard]] KdeResult kernel_density(std::span<const double> samples,
                                       const ModeFinderOptions& options = {});

/// Detect modes of `samples`, strongest (by density) first.
[[nodiscard]] std::vector<Mode> find_modes(std::span<const double> samples,
                                           const ModeFinderOptions& options = {});

/// Check whether mode locations look like service-rate harmonics: i.e.
/// there exist detected modes near T, T/2 and/or T/4 for the slowest
/// prominent mode T (within `tolerance` relative error). Returns the
/// harmonic indices matched (1 = T, 2 = T/2, 4 = T/4, ...).
[[nodiscard]] std::vector<int> harmonic_signature(const std::vector<Mode>& modes,
                                                  double tolerance = 0.25);

}  // namespace eio::stats
