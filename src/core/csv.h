// Minimal CSV export for figure data.
//
// Every bench prints its figures as ASCII and can also emit the raw
// series as CSV so the paper's plots can be regenerated with any
// plotting tool.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace eio::analysis {

/// A set of equally-long named columns written as RFC-4180-ish CSV.
class CsvWriter {
 public:
  /// Add a column; all columns must end up the same length.
  CsvWriter& column(std::string name, std::vector<double> values) {
    names_.push_back(std::move(name));
    columns_.push_back(std::move(values));
    return *this;
  }

  /// Serialize to a stream.
  void write(std::ostream& out) const {
    EIO_CHECK(!columns_.empty());
    std::size_t rows = columns_[0].size();
    for (const auto& c : columns_) {
      EIO_CHECK_MSG(c.size() == rows, "ragged CSV columns");
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out << (i ? "," : "") << names_[i];
    }
    out << '\n';
    out.precision(10);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        out << (c ? "," : "") << columns_[c][r];
      }
      out << '\n';
    }
  }

  /// Serialize to a file path.
  void save(const std::string& path) const {
    std::ofstream out(path);
    EIO_CHECK_MSG(out.good(), "cannot open " << path);
    write(out);
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace eio::analysis
