// Normality measurement for the Gaussianization claim.
//
// Figure 2's caption: "the distributions become progressively narrower
// and more Gaussian." Skewness→0 is one facet; the probability-plot
// correlation coefficient (PPCC — the correlation between sample
// quantiles and the corresponding normal quantiles) measures overall
// agreement with a Gaussian shape: 1.0 is perfectly normal, and the
// statistic is the basis of the Filliben normality test.
#pragma once

#include <span>

namespace eio::stats {

/// Inverse CDF of the standard normal (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Exposed for tests.
[[nodiscard]] double normal_quantile(double p);

/// Probability-plot correlation coefficient against the normal
/// distribution, using Filliben's median plotting positions.
/// Returns a value in (0, 1]; >= ~0.99 is indistinguishable from
/// Gaussian at typical sample sizes. Requires >= 3 samples and
/// non-zero variance.
[[nodiscard]] double normal_ppcc(std::span<const double> samples);

}  // namespace eio::stats
