#include "core/order_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace eio::stats {

double max_order_pdf(double t, std::size_t n,
                     const std::function<double(double)>& pdf,
                     const std::function<double(double)>& cdf) {
  EIO_CHECK(n >= 1);
  double f = pdf(t);
  double big_f = cdf(t);
  return static_cast<double>(n) *
         std::pow(big_f, static_cast<double>(n - 1)) * f;
}

double max_order_cdf(double t, std::size_t n,
                     const std::function<double(double)>& cdf) {
  EIO_CHECK(n >= 1);
  return std::pow(cdf(t), static_cast<double>(n));
}

double max_order_quantile(const EmpiricalDistribution& base, std::size_t n,
                          double q) {
  EIO_CHECK(n >= 1);
  EIO_CHECK(q > 0.0 && q < 1.0);
  return base.quantile(std::pow(q, 1.0 / static_cast<double>(n)));
}

MaxOrderCurve max_order_curve(const EmpiricalDistribution& base, std::size_t n,
                              std::size_t grid_points) {
  EIO_CHECK(!base.empty());
  EIO_CHECK(grid_points >= 2);
  MaxOrderCurve curve;
  double lo = base.min();
  double hi = base.max();
  if (hi <= lo) hi = lo + 1e-9;
  double step = (hi - lo) / static_cast<double>(grid_points - 1);
  curve.t.resize(grid_points);
  curve.density.resize(grid_points);
  // Density via the derivative of F^N: numerical differencing of the
  // empirical CDF raised to the Nth power (smooth in the tail where it
  // matters).
  double half = step * 0.5;
  for (std::size_t i = 0; i < grid_points; ++i) {
    double t = lo + step * static_cast<double>(i);
    double up = std::pow(base.cdf(t + half), static_cast<double>(n));
    double dn = std::pow(base.cdf(t - half), static_cast<double>(n));
    curve.t[i] = t;
    curve.density[i] = (up - dn) / step;
  }
  return curve;
}

double expected_max_monte_carlo(const EmpiricalDistribution& base, std::size_t n,
                                std::size_t trials, std::uint64_t seed) {
  EIO_CHECK(!base.empty());
  EIO_CHECK(n >= 1 && trials >= 1);
  rng::Stream stream(seed);
  const auto& sorted = base.sorted();
  double acc = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double best = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      best = std::max(best, sorted[stream.index(sorted.size())]);
    }
    acc += best;
  }
  return acc / static_cast<double>(trials);
}

}  // namespace eio::stats
