#include "core/distribution.h"

#include <algorithm>
#include <cmath>

#include "core/streaming.h"

namespace eio::stats {

Moments compute_moments(std::span<const double> samples) {
  // Thin wrapper over the incremental kernel, so batch and streaming
  // paths share one numerical implementation.
  StreamingMoments acc;
  for (double s : samples) acc.add(s);
  return acc.moments();
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  moments_ = compute_moments(sorted_);
}

double EmpiricalDistribution::min() const {
  EIO_CHECK(!sorted_.empty());
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  EIO_CHECK(!sorted_.empty());
  return sorted_.back();
}

double EmpiricalDistribution::quantile(double q) const {
  EIO_CHECK(!sorted_.empty());
  EIO_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  if (sorted_.size() == 1) return sorted_[0];
  double pos = q * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalDistribution::cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::expected_max_of(std::size_t n) const {
  EIO_CHECK(!sorted_.empty());
  EIO_CHECK(n >= 1);
  double expectation = 0.0;
  double prev_pow = 0.0;
  auto total = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    double cdf_here = static_cast<double>(i + 1) / total;
    double pow_here = std::pow(cdf_here, static_cast<double>(n));
    expectation += sorted_[i] * (pow_here - prev_pow);
    prev_pow = pow_here;
  }
  return expectation;
}

}  // namespace eio::stats
