#include "core/rate_series.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eio::analysis {

double TimeSeries::max_value() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

double TimeSeries::integral() const {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc * dt;
}

RateSeriesBuilder::RateSeriesBuilder(double span, std::size_t bins) {
  EIO_CHECK(bins >= 1);
  if (span <= 0.0) span = 1.0;
  series_.t0 = 0.0;
  series_.dt = span / static_cast<double>(bins);
  series_.values.assign(bins, 0.0);
}

void RateSeriesBuilder::add_batch(std::span<const ipm::TraceEvent> events) {
  for (const ipm::TraceEvent& e : events) add(e);
}

void RateSeriesBuilder::merge(const RateSeriesBuilder& other) {
  EIO_CHECK_MSG(other.series_.t0 == series_.t0 &&
                    other.series_.dt == series_.dt &&
                    other.series_.values.size() == series_.values.size(),
                "rate-series binning mismatch in merge");
  for (std::size_t i = 0; i < series_.values.size(); ++i) {
    series_.values[i] += other.series_.values[i];
  }
}

TimeSeries aggregate_rate(const ipm::Trace& trace, const EventFilter& filter,
                          std::size_t bins) {
  RateSeriesBuilder builder(trace.span(), bins);
  for (const auto& e : trace.events()) {
    if (filter.matches(e)) builder.add(e);
  }
  return builder.series();
}

TimeSeries aggregate_rate(const ipm::TraceSource& source,
                          const EventFilter& filter, std::size_t bins) {
  // Span comes from *all* events (batch semantics use trace.span());
  // indexed sources answer time_span() from chunk metadata, so only
  // the folding pass below touches events.
  RateSeriesBuilder builder(source.time_span(), bins);
  const ipm::ChunkHint hint = hint_for(filter);
  const ipm::ColumnMask mask = filter.required_columns() | ipm::kColStart |
                               ipm::kColDuration | ipm::kColBytes;
  source.for_each_columns_hinted(hint, mask, [&](const ipm::ColumnBatch& b) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (filter.matches_at(b, i)) builder.add(b.start[i], b.duration[i],
                                               b.bytes[i]);
    }
  });
  return builder.series();
}

ProgressCurve completion_curve(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> starts, ends;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e)) continue;
    starts.push_back(e.start);
    ends.push_back(e.end());
  }
  ProgressCurve curve;
  if (ends.empty()) return curve;
  double origin = *std::min_element(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  auto n = static_cast<double>(ends.size());
  curve.t.reserve(ends.size() + 1);
  curve.fraction.reserve(ends.size() + 1);
  curve.t.push_back(0.0);
  curve.fraction.push_back(0.0);
  for (std::size_t i = 0; i < ends.size(); ++i) {
    curve.t.push_back(ends[i] - origin);
    curve.fraction.push_back(static_cast<double>(i + 1) / n);
  }
  return curve;
}

}  // namespace eio::analysis
