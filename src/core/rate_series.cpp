#include "core/rate_series.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eio::analysis {

double TimeSeries::max_value() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

double TimeSeries::integral() const {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc * dt;
}

TimeSeries aggregate_rate(const ipm::Trace& trace, const EventFilter& filter,
                          std::size_t bins) {
  EIO_CHECK(bins >= 1);
  TimeSeries series;
  double span = trace.span();
  if (span <= 0.0) span = 1.0;
  series.t0 = 0.0;
  series.dt = span / static_cast<double>(bins);
  series.values.assign(bins, 0.0);

  for (const auto& e : trace.events()) {
    if (!filter.matches(e) || e.bytes == 0) continue;
    double start = e.start;
    double end = e.end();
    if (end <= start) end = start + 1e-9;
    double rate = static_cast<double>(e.bytes) / (end - start);
    auto first = static_cast<std::size_t>(
        std::clamp(start / series.dt, 0.0, static_cast<double>(bins - 1)));
    auto last = static_cast<std::size_t>(
        std::clamp(end / series.dt, 0.0, static_cast<double>(bins - 1)));
    for (std::size_t b = first; b <= last; ++b) {
      double bin_lo = series.dt * static_cast<double>(b);
      double bin_hi = bin_lo + series.dt;
      double overlap = std::min(end, bin_hi) - std::max(start, bin_lo);
      if (overlap > 0.0) series.values[b] += rate * overlap / series.dt;
    }
  }
  return series;
}

ProgressCurve completion_curve(const ipm::Trace& trace, const EventFilter& filter) {
  std::vector<double> starts, ends;
  for (const auto& e : trace.events()) {
    if (!filter.matches(e)) continue;
    starts.push_back(e.start);
    ends.push_back(e.end());
  }
  ProgressCurve curve;
  if (ends.empty()) return curve;
  double origin = *std::min_element(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  auto n = static_cast<double>(ends.size());
  curve.t.reserve(ends.size() + 1);
  curve.fraction.reserve(ends.size() + 1);
  curve.t.push_back(0.0);
  curve.fraction.push_back(0.0);
  for (std::size_t i = 0; i < ends.size(); ++i) {
    curve.t.push_back(ends[i] - origin);
    curve.fraction.push_back(static_cast<double>(i + 1) / n);
  }
  return curve;
}

}  // namespace eio::analysis
