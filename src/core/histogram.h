// Histograms over I/O event measurements.
//
// The paper's central artifact is the histogram of per-event I/O times
// (Figures 1c, 2, 4c/f, 5b, 6c/f/i/l), drawn with either linear bins
// (IOR) or log-spaced bins rendered log-log (MADbench, GCRM). Both
// binnings share this class; a normalized view provides the empirical
// probability density used for the order-statistics analysis.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace eio::stats {

/// Binning scheme.
enum class BinScale : std::uint8_t { kLinear, kLog10 };

/// A fixed-bin histogram of double-valued samples.
class Histogram {
 public:
  /// Construct with explicit range [lo, hi) and bin count. For
  /// kLog10, lo must be > 0.
  Histogram(BinScale scale, double lo, double hi, std::size_t bins);

  /// Convenience: build from samples with an automatic range (padded
  /// slightly so extrema fall inside).
  [[nodiscard]] static Histogram from_samples(std::span<const double> samples,
                                              BinScale scale, std::size_t bins);

  /// An automatic [lo, hi) range for the given sample extrema, padded
  /// slightly so they fall inside. Factored out of from_samples so a
  /// streaming two-pass binning (extrema pass, then fill pass) builds
  /// bit-identical bins.
  struct Range {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] static Range padded_range(double sample_min, double sample_max,
                                          BinScale scale);

  /// Add one sample (out-of-range samples clamp to the edge bins and
  /// are counted in underflow()/overflow()). Inline: histogram fill is
  /// a per-event hot path in the scan kernels.
  void add(double value, std::uint64_t weight = 1) {
    if (value < lo_) {
      underflow_ += weight;
    } else if (value >= hi_) {
      overflow_ += weight;
    }
    counts_[bin_index(value)] += weight;
    total_ += weight;
  }

  /// Add many samples.
  void add_all(std::span<const double> samples);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    EIO_CHECK(bin < counts_.size());
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] BinScale scale() const noexcept { return scale_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Lower edge of a bin in sample units.
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  /// Upper edge of a bin in sample units.
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  /// Representative center (arithmetic for linear, geometric for log).
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Width of a bin in sample units.
  [[nodiscard]] double bin_width(std::size_t bin) const;

  /// Bin index a value falls into (clamped to [0, bins-1]).
  [[nodiscard]] std::size_t bin_index(double value) const {
    double t = transform(value);
    double frac = (t - tlo_) / (thi_ - tlo_);
    auto bin =
        static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    return static_cast<std::size_t>(bin);
  }

  /// Normalized density: count / (total * bin_width) — integrates to ~1.
  [[nodiscard]] std::vector<double> density() const;

  /// Counts as a vector (for rendering/CSV).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Merge a histogram with identical binning.
  void merge(const Histogram& other);

 private:
  /// Transform a value into bin coordinate space.
  [[nodiscard]] double transform(double v) const {
    return scale_ == BinScale::kLog10 ? std::log10(std::max(v, 1e-300)) : v;
  }

  BinScale scale_;
  double lo_, hi_;          // in sample units
  double tlo_, thi_;        // in transformed space
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace eio::stats
