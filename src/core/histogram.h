// Histograms over I/O event measurements.
//
// The paper's central artifact is the histogram of per-event I/O times
// (Figures 1c, 2, 4c/f, 5b, 6c/f/i/l), drawn with either linear bins
// (IOR) or log-spaced bins rendered log-log (MADbench, GCRM). Both
// binnings share this class; a normalized view provides the empirical
// probability density used for the order-statistics analysis.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"

namespace eio::stats {

/// Binning scheme.
enum class BinScale : std::uint8_t { kLinear, kLog10 };

/// A fixed-bin histogram of double-valued samples.
class Histogram {
 public:
  /// Construct with explicit range [lo, hi) and bin count. For
  /// kLog10, lo must be > 0.
  Histogram(BinScale scale, double lo, double hi, std::size_t bins);

  /// Convenience: build from samples with an automatic range (padded
  /// slightly so extrema fall inside).
  [[nodiscard]] static Histogram from_samples(std::span<const double> samples,
                                              BinScale scale, std::size_t bins);

  /// Build from pre-binned counts over [lo, hi) — the rendering path
  /// for accumulators that bin before the final range is known (see
  /// StreamingHistogram). The bin edges are exactly the uniform
  /// partition of [lo, hi) in transform space; under/overflow start at
  /// zero and total() is the sum of `counts`.
  [[nodiscard]] static Histogram from_counts(BinScale scale, double lo,
                                             double hi,
                                             std::vector<std::uint64_t> counts);

  /// An automatic [lo, hi) range for the given sample extrema, padded
  /// slightly so they fall inside. Factored out of from_samples so a
  /// streaming two-pass binning (extrema pass, then fill pass) builds
  /// bit-identical bins.
  struct Range {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] static Range padded_range(double sample_min, double sample_max,
                                          BinScale scale);

  /// Add one sample (out-of-range samples clamp to the edge bins and
  /// are counted in underflow()/overflow()). Inline: histogram fill is
  /// a per-event hot path in the scan kernels.
  void add(double value, std::uint64_t weight = 1) {
    if (value < lo_) {
      underflow_ += weight;
    } else if (value >= hi_) {
      overflow_ += weight;
    }
    counts_[bin_index(value)] += weight;
    total_ += weight;
  }

  /// Add many samples.
  void add_all(std::span<const double> samples);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    EIO_CHECK(bin < counts_.size());
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] BinScale scale() const noexcept { return scale_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Lower edge of a bin in sample units.
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  /// Upper edge of a bin in sample units.
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  /// Representative center (arithmetic for linear, geometric for log).
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Width of a bin in sample units.
  [[nodiscard]] double bin_width(std::size_t bin) const;

  /// Bin index a value falls into (clamped to [0, bins-1]).
  [[nodiscard]] std::size_t bin_index(double value) const {
    double t = transform(value);
    double frac = (t - tlo_) / (thi_ - tlo_);
    auto bin =
        static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    return static_cast<std::size_t>(bin);
  }

  /// Normalized density: count / (total * bin_width) — integrates to ~1.
  [[nodiscard]] std::vector<double> density() const;

  /// Counts as a vector (for rendering/CSV).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Merge a histogram with identical binning.
  void merge(const Histogram& other);

 private:
  /// Transform a value into bin coordinate space.
  [[nodiscard]] double transform(double v) const {
    return scale_ == BinScale::kLog10 ? std::log10(std::max(v, 1e-300)) : v;
  }

  BinScale scale_;
  double lo_, hi_;          // in sample units
  double tlo_, thi_;        // in transformed space
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// A single-pass, mergeable histogram accumulator.
///
/// Histogram needs its range before the first fill, which historically
/// forced a second trace scan (extrema pass, then fill pass). This
/// class removes that scan with a hybrid strategy:
///
///  - **Exact mode** (count <= exact_capacity): buffer the raw samples
///    and materialize via Histogram::from_samples — bit-identical to
///    the two-pass binning, including the padded range.
///  - **Lattice mode** (beyond exact_capacity): spill into a
///    power-of-two lattice in transform space (linear: t = x; log10:
///    t = log10(max(x, 1e-300))). Bins have width 2^k anchored at 0,
///    coarsened (k+1) whenever the occupied span would exceed
///    `bins`. Because the final k is a pure function of the global
///    value extent — max(representable exponent for the extent,
///    smallest k whose span fits `bins`) — any chunking or merge order
///    produces identical bins and counts.
///
/// merge() consumes the other accumulator; both sides must share
/// Options. Exact+exact merges concatenate raw samples (spilling only
/// if the union overflows), so chunked analysis of test-sized traces
/// stays bit-identical to the serial two-pass result.
class StreamingHistogram {
 public:
  struct Options {
    BinScale scale = BinScale::kLinear;
    std::size_t bins = 40;
    /// Raw samples buffered before spilling to the lattice. The
    /// default keeps eiotrace outputs bit-identical to the historical
    /// two-pass binning for traces up to 64Ki matching events.
    std::size_t exact_capacity = 65536;
  };

  StreamingHistogram() = default;
  explicit StreamingHistogram(const Options& options);

  /// Add one sample.
  void add(double x) {
    ++count_;
    if (!overflowed_) {
      raw_.push_back(x);
      if (raw_.size() > options_.exact_capacity) spill();
      return;
    }
    lattice_add(transform(x));
  }

  /// Add many samples.
  void add_batch(std::span<const double> xs);

  /// Fold another accumulator (same Options) into this one.
  void merge(StreamingHistogram&& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// True while raw samples are buffered (materialize() is then
  /// bit-identical to Histogram::from_samples over the same stream).
  [[nodiscard]] bool exact() const noexcept { return !overflowed_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Render to a fixed-bin Histogram; nullopt when no samples were
  /// added.
  [[nodiscard]] std::optional<Histogram> materialize() const;

 private:
  [[nodiscard]] double transform(double v) const {
    return options_.scale == BinScale::kLog10 ? std::log10(std::max(v, 1e-300))
                                              : v;
  }
  /// Smallest lattice exponent usable for |t|: keeps lattice indices
  /// below 2^39 so they fit int64 with headroom and adjacent bin-edge
  /// products i*2^k stay distinct doubles.
  [[nodiscard]] static int rep_exponent(double t);
  [[nodiscard]] std::int64_t lattice_index(double t) const;
  /// Count one transformed value. In-window fast path: when t lies
  /// inside the occupied lattice span, the insert is exactly
  /// "increment the cell floor(t / 2^k) falls in" — no
  /// representability check, no coarsening, no window growth. The
  /// cached bounds guarantee the index fits the current window (floor
  /// is monotone and the edge products are exact doubles), so this is
  /// the same cell lattice_insert would pick.
  void lattice_add(double t) {
    if (t >= win_lo_ && t < win_hi_) {
      // t * 2^-k is the identical double to ldexp(t, -k) (both
      // correctly round the same exact product; the scale is an exact
      // power of two), and the truncate-and-adjust below is integer
      // floor — so this cell index matches lattice_index(t) bit for
      // bit without the two libm calls.
      double y = t * win_scale_;
      auto i = static_cast<std::int64_t>(y);
      i -= static_cast<std::int64_t>(static_cast<double>(i) > y);
      ++counts_[static_cast<std::size_t>(i - base_)];
      return;
    }
    lattice_insert(t, 1);
  }
  void lattice_insert(double t, std::uint64_t weight);
  void coarsen();
  void spill();
  /// Refresh the cached transform-space extent of the occupied window
  /// (the add() fast-path guard). Must run after any mutation of
  /// k_/base_/counts_.
  void update_window();

  Options options_;
  std::vector<double> raw_;
  bool overflowed_ = false;
  std::uint64_t count_ = 0;
  // Lattice state (valid once overflowed_): counts_[j] covers
  // transformed values in [(base_+j)*2^k_, (base_+j+1)*2^k_).
  int k_ = 0;
  std::int64_t base_ = 0;
  std::vector<std::uint64_t> counts_;
  // Cached window edges [base_*2^k_, (base_+size)*2^k_) in transform
  // space; empty (0, 0) while counts_ is empty so every add takes the
  // slow path. win_scale_ caches 2^-k_ for the fast-path cell index.
  double win_lo_ = 0.0;
  double win_hi_ = 0.0;
  double win_scale_ = 1.0;
};

}  // namespace eio::stats
