// The mergeable-kernel contract behind fused single-pass analysis.
//
// Every statistic this repo computes over a trace is a fold that can
// (a) consume one event, (b) consume a decoded column batch densely,
// (c) merge with a partial fold of a disjoint stream segment, and
// (d) name the columns it reads. That quadruple is the Kernel concept;
// anything modeling it can ride ParallelTraceScanner's chunk map-reduce
// (see ParallelTraceScanner::scan_kernels).
//
// KernelSet composes kernels so ONE decode of each chunk feeds all of
// them — the fused pass that collapses eiotrace's historical
// N-scans-per-bundle (and the histogram's extrema+fill double scan)
// into a single scan whose column mask is the union of its members'.
#pragma once

#include <concepts>
#include <cstddef>
#include <tuple>
#include <utility>

#include "core/histogram.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "ipm/columns.h"

namespace eio::analysis {

/// A mergeable streaming statistic over trace events.
///
/// Semantics every model must honor:
///  * add_batch(b) is value-identical to add(row i of b) for each i in
///    index order;
///  * merge(rhs) folds a partial computed over a LATER stream segment
///    into this one, and merging chunk partials in stream order equals
///    one serial pass (exactly where the kernel is exact, in
///    distribution otherwise — see ReservoirSampler);
///  * required_columns() covers every column add_batch reads.
template <typename K>
concept Kernel = requires(K k, K rhs, const K ck, const ipm::TraceEvent& e,
                          const ipm::ColumnBatch& b) {
  k.add(e);
  k.add_batch(b);
  k.merge(std::move(rhs));
  { ck.required_columns() } -> std::convertible_to<ipm::ColumnMask>;
};

/// A fixed tuple of kernels fed by one pass. KernelSet itself models
/// Kernel, so sets compose and ride the same scan driver.
template <Kernel... Ks>
class KernelSet {
 public:
  explicit KernelSet(Ks... kernels) : kernels_(std::move(kernels)...) {}

  void add(const ipm::TraceEvent& e) {
    std::apply([&](auto&... k) { (k.add(e), ...); }, kernels_);
  }

  void add_batch(const ipm::ColumnBatch& b) {
    std::apply([&](auto&... k) { (k.add_batch(b), ...); }, kernels_);
  }

  /// Member-wise merge; `other` must come from the same factory so the
  /// tuples pair up.
  void merge(KernelSet&& other) {
    merge_impl(std::move(other), std::index_sequence_for<Ks...>{});
  }

  /// Union of the members' masks — the single decode each chunk needs.
  [[nodiscard]] ipm::ColumnMask required_columns() const {
    return std::apply(
        [](const auto&... k) {
          return (ipm::ColumnMask{0} | ... | k.required_columns());
        },
        kernels_);
  }

  template <std::size_t I>
  [[nodiscard]] auto& get() {
    return std::get<I>(kernels_);
  }
  template <std::size_t I>
  [[nodiscard]] const auto& get() const {
    return std::get<I>(kernels_);
  }

 private:
  template <std::size_t... Is>
  void merge_impl(KernelSet&& other, std::index_sequence<Is...>) {
    (std::get<Is>(kernels_).merge(std::move(std::get<Is>(other.kernels_))), ...);
  }

  std::tuple<Ks...> kernels_;
};

/// Histogram of filter-matched event durations in ONE pass (the
/// two-scan padded-range + fill pipeline folded into a
/// StreamingHistogram; see its exactness notes).
class HistogramKernel {
 public:
  HistogramKernel(EventFilter filter,
                  const stats::StreamingHistogram::Options& options)
      : filter_(std::move(filter)), hist_(options) {}

  void add(const ipm::TraceEvent& e) {
    if (filter_.matches(e)) hist_.add(e.duration);
  }

  void add_batch(const ipm::ColumnBatch& batch) {
    scratch_.clear();
    scratch_.reserve(batch.size());
    filter_.for_each_match(
        batch, [&](std::size_t i) { scratch_.push_back(batch.duration[i]); });
    hist_.add_batch(scratch_);
  }

  void merge(HistogramKernel&& other) { hist_.merge(std::move(other.hist_)); }

  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept {
    return filter_.required_columns() | ipm::kColDuration;
  }

  [[nodiscard]] const stats::StreamingHistogram& histogram() const noexcept {
    return hist_;
  }

 private:
  EventFilter filter_;
  stats::StreamingHistogram hist_;
  std::vector<double> scratch_;
};

/// Aggregate-rate time series of filter-matched transfers (the span
/// must be fixed up front — from the chunk index or a prior pass —
/// for partials to share binning and merge exactly).
class RateKernel {
 public:
  RateKernel(EventFilter filter, double span, std::size_t bins)
      : filter_(std::move(filter)), builder_(span, bins) {}

  void add(const ipm::TraceEvent& e) {
    if (filter_.matches(e)) builder_.add(e);
  }

  void add_batch(const ipm::ColumnBatch& batch) {
    filter_.for_each_match(batch, [&](std::size_t i) {
      builder_.add(batch.start[i], batch.duration[i], batch.bytes[i]);
    });
  }

  void merge(RateKernel&& other) { builder_.merge(other.builder_); }

  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept {
    return filter_.required_columns() | ipm::kColStart | ipm::kColDuration |
           ipm::kColBytes;
  }

  [[nodiscard]] const TimeSeries& series() const noexcept {
    return builder_.series();
  }

 private:
  EventFilter filter_;
  RateSeriesBuilder builder_;
};

static_assert(Kernel<SummarySink>);
static_assert(Kernel<PhaseSummarySink>);
static_assert(Kernel<HistogramKernel>);
static_assert(Kernel<RateKernel>);
static_assert(Kernel<KernelSet<SummarySink, HistogramKernel, RateKernel>>);

}  // namespace eio::analysis
