// One-pass statistical accumulators.
//
// The paper's §VI direction — "from an I/O tracing paradigm to an I/O
// profiling paradigm" — requires every distribution-level statistic to
// be computable without holding the events. These kernels maintain
// bounded state per sample stream:
//
//  * StreamingMoments: mean/variance/skewness/kurtosis via the
//    Welford/Pébay incremental central-moment updates;
//  * P2Quantile: the Jain-Chlamtac P² estimator — one quantile in
//    five markers, O(1) memory, no samples retained;
//  * ReservoirSampler: Vitter's Algorithm R — a uniform sample of
//    bounded size, *exact* (every value retained) until the capacity
//    is exceeded, so quantiles/CDFs/KS inputs computed from it are
//    identical to the materialized answer on bounded traces while
//    degrading gracefully at scale;
//  * StreamingSummary: the bundle (count/min/max + moments +
//    reservoir) every analysis sink composes.
//
// The batch entry points in distribution.h/histogram.h are thin
// wrappers over these kernels, so streaming and materialized paths
// agree by construction.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/distribution.h"
#include "core/histogram.h"

namespace eio::stats {

/// Incremental central moments M1..M4 (Welford's algorithm extended to
/// higher orders by Pébay's single-pass update formulas).
class StreamingMoments {
 public:
  /// Defined inline: this is the innermost call of every columnar and
  /// per-event fold, and keeping it visible to callers lets the whole
  /// add chain flatten into the scan loops.
  void add(double x) {
    // Pébay's one-pass updates for central moments through order four.
    double n1 = static_cast<double>(n_);
    ++n_;
    double n = static_cast<double>(n_);
    double delta = x - mean_;
    double delta_n = delta / n;
    double delta_n2 = delta_n * delta_n;
    double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
           4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
  }

  /// Fold a dense sample span (a decoded column) in index order — the
  /// identical update sequence as calling add() per element, so batch
  /// and per-event feeds agree bit for bit.
  void add_batch(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  /// Combine with another accumulator (Pébay's pairwise update) —
  /// what per-rank or per-run partial moments use to fold together.
  void merge(const StreamingMoments& other);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Finalized moments, with the same small-count and zero-variance
  /// conventions as compute_moments().
  [[nodiscard]] Moments moments() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// P² single-quantile estimator (Jain & Chlamtac 1985): five markers
/// track the target quantile with parabolic adjustment. Exact for the
/// first five observations, O(1) memory forever after.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Current estimate (exact while count() <= 5; requires count() >= 1).
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker values
  std::array<double, 5> positions_{};  ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};    ///< desired marker positions
  std::array<double, 5> rates_{};      ///< desired-position increments
};

/// Uniform bounded-size sample of a stream (Vitter's Algorithm R with
/// a deterministic substream). While seen() <= capacity the reservoir
/// holds *every* value, so downstream order statistics are exact.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t capacity = kDefaultCapacity,
                            std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr std::size_t kDefaultCapacity = 65536;

  /// Inline for the same reason as StreamingMoments::add — one draw
  /// per element past capacity is the scan hot path.
  void add(double x) {
    ++seen_;
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
      return;
    }
    std::uint64_t j = rng_.index(seen_);
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
  }

  /// Fold another reservoir (same capacity) into this one. When the
  /// other side is exact its sample IS its substream, so Algorithm R
  /// continues over it element by element — a pure concatenation while
  /// the combined seen() fits the capacity (the merged sample equals
  /// the serial one element for element when merges follow stream
  /// order), one draw per element past it. When the other side has
  /// itself overflowed, each output slot draws from one side with
  /// probability proportional to that side's remaining stream weight
  /// (the weighted Algorithm-R merge), so every stream element keeps
  /// an equal chance of surviving. Draws come from this reservoir's
  /// substream, so the result is deterministic in (seeds, merge
  /// order).
  void merge(const ReservoirSampler& other);

  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while no value has been discarded (the sample is the stream).
  [[nodiscard]] bool exact() const noexcept { return seen_ <= capacity_; }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// Sorted-copy view for quantile/CDF/KS queries.
  [[nodiscard]] EmpiricalDistribution distribution() const;

 private:
  std::size_t capacity_;
  rng::Stream rng_;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
};

/// Knobs for StreamingSummary (at namespace scope so it can be a
/// defaulted constructor argument).
struct SummaryOptions {
  std::size_t reservoir_capacity = ReservoirSampler::kDefaultCapacity;
  std::uint64_t reservoir_seed = 0x9E3779B97F4A7C15ULL;
  /// When > 0, the summary also feeds a fixed-range log10 histogram
  /// and histogram_quantile() becomes available — the merged-quantile
  /// mode for parallel scans, where reservoirs past capacity merge
  /// stochastically but histogram bins merge exactly. Error is bounded
  /// by the width of the bin holding the requested order statistic.
  std::size_t quantile_bins = 0;
  /// Fixed histogram range (seconds); samples outside clamp to the
  /// edge bins. The defaults cover 1 ns .. ~28 h per event.
  double quantile_hist_lo = 1e-9;
  double quantile_hist_hi = 1e5;
};

/// The standard per-stream bundle: count, extrema, incremental
/// moments, and a reservoir for order statistics. Memory is
/// O(reservoir capacity), independent of the stream length.
class StreamingSummary {
 public:
  StreamingSummary() : StreamingSummary(SummaryOptions{}) {}
  explicit StreamingSummary(const SummaryOptions& options)
      : reservoir_(options.reservoir_capacity, options.reservoir_seed) {
    if (options.quantile_bins > 0) {
      quantile_hist_.emplace(BinScale::kLog10, options.quantile_hist_lo,
                             options.quantile_hist_hi, options.quantile_bins);
    }
  }

  void add(double x) {
    if (moments_.count() == 0) {
      min_ = x;
      max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    moments_.add(x);
    reservoir_.add(x);
    if (quantile_hist_) quantile_hist_->add(x);
  }

  /// Fold a dense sample span (a decoded column) in index order —
  /// value-identical to add() per element (see StreamingMoments).
  void add_batch(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  /// Fold another summary into this one: counts/extrema/moments and
  /// the quantile histogram merge exactly; the reservoir merges per
  /// ReservoirSampler::merge (exact below capacity). Partials must be
  /// merged in stream order for reservoir exactness to carry over.
  void merge(const StreamingSummary& other);

  [[nodiscard]] std::size_t count() const noexcept { return moments_.count(); }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] Moments moments() const { return moments_.moments(); }
  [[nodiscard]] const ReservoirSampler& reservoir() const noexcept {
    return reservoir_;
  }
  /// Quantile from the reservoir (exact while the reservoir is exact).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// The fixed-range quantile histogram (present iff quantile_bins > 0).
  [[nodiscard]] const std::optional<Histogram>& quantile_histogram()
      const noexcept {
    return quantile_hist_;
  }
  /// Quantile from the histogram: the center of the bin holding the
  /// rank-⌈qN⌉ sample, so |estimate - exact order statistic| is at
  /// most that bin's width (bins merge exactly, so this is the
  /// merge-stable quantile past reservoir capacity). Requires
  /// quantile_bins > 0 and a non-empty stream.
  [[nodiscard]] double histogram_quantile(double q) const;

 private:
  StreamingMoments moments_;
  ReservoirSampler reservoir_;
  std::optional<Histogram> quantile_hist_;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace eio::stats
