// One-pass statistical accumulators.
//
// The paper's §VI direction — "from an I/O tracing paradigm to an I/O
// profiling paradigm" — requires every distribution-level statistic to
// be computable without holding the events. These kernels maintain
// bounded state per sample stream:
//
//  * StreamingMoments: mean/variance/skewness/kurtosis via the
//    Welford/Pébay incremental central-moment updates;
//  * P2Quantile: the Jain-Chlamtac P² estimator — one quantile in
//    five markers, O(1) memory, no samples retained;
//  * ReservoirSampler: Vitter's Algorithm X — a uniform sample of
//    bounded size, *exact* (every value retained) until the capacity
//    is exceeded, so quantiles/CDFs/KS inputs computed from it are
//    identical to the materialized answer on bounded traces while
//    degrading gracefully at scale. Past capacity it draws skip *gaps*
//    instead of one variate per element, amortizing the RNG cost to
//    O(capacity * log(n / capacity)) draws total;
//  * StreamingSummary: the bundle (count/min/max + moments +
//    reservoir) every analysis sink composes.
//
// The batch entry points in distribution.h/histogram.h are thin
// wrappers over these kernels, so streaming and materialized paths
// agree by construction.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/distribution.h"
#include "core/histogram.h"

namespace eio::stats {

/// Incremental central moments M1..M4 (Welford's algorithm extended to
/// higher orders by Pébay's single-pass update formulas).
class StreamingMoments {
 public:
  /// Defined inline: this is the innermost call of every columnar and
  /// per-event fold, and keeping it visible to callers lets the whole
  /// add chain flatten into the scan loops.
  void add(double x) {
    // Pébay's one-pass updates for central moments through order four.
    double n1 = static_cast<double>(n_);
    ++n_;
    double n = static_cast<double>(n_);
    double delta = x - mean_;
    double delta_n = delta / n;
    double delta_n2 = delta_n * delta_n;
    double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
           4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
  }

  /// Fold a dense sample span (a decoded column) in index order — the
  /// identical update sequence as calling add() per element, so batch
  /// and per-event feeds agree bit for bit.
  void add_batch(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  /// Combine with another accumulator (Pébay's pairwise update) —
  /// what per-rank or per-run partial moments use to fold together.
  void merge(const StreamingMoments& other);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Finalized moments, with the same small-count and zero-variance
  /// conventions as compute_moments().
  [[nodiscard]] Moments moments() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// P² single-quantile estimator (Jain & Chlamtac 1985): five markers
/// track the target quantile with parabolic adjustment. Exact for the
/// first five observations, O(1) memory forever after.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Current estimate (exact while count() <= 5; requires count() >= 1).
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker values
  std::array<double, 5> positions_{};  ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};    ///< desired marker positions
  std::array<double, 5> rates_{};      ///< desired-position increments
};

/// Uniform bounded-size sample of a stream (Vitter's Algorithm X with
/// a deterministic substream). While seen() <= capacity the reservoir
/// holds *every* value, so downstream order statistics are exact.
///
/// Past capacity the sampler draws a skip *gap* — the number of
/// upcoming records to discard before the next acceptance — instead of
/// one variate per record (Vitter 1985, Algorithm X): one uniform V in
/// (0, 1] selects the smallest gap s with
///   prod_{i=1..s+1} (t + i - capacity) / (t + i) <= V
/// after t records, reproducing Algorithm R's marginal acceptance
/// probability capacity/(t+1) while consuming zero randomness for the
/// skipped records. The pending gap is carried in skip_, so add(),
/// add_batch() and absorb() share one draw sequence: feeding the same
/// stream in any chunking yields bit-identical samples.
///
/// NOTE: the draw sequence differs from the pre-Algorithm-X sampler
/// (one index draw per record), so sampled quantiles past capacity
/// differ run-to-run across versions — deterministically so within a
/// version. The exact regime (seen() <= capacity) is unchanged.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t capacity = kDefaultCapacity,
                            std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr std::size_t kDefaultCapacity = 65536;

  /// Inline for the same reason as StreamingMoments::add — the scan
  /// hot path. Amortized cost past capacity: a decrement (records
  /// inside a gap consume no randomness at all).
  void add(double x) {
    if (skip_ > 0) {
      --skip_;
      ++seen_;
      return;
    }
    if (samples_.size() < capacity_) {
      ++seen_;
      samples_.push_back(x);
      // Draw the first gap the moment the exact regime ends, so the
      // serial, batched and absorb() paths leave the boundary with the
      // same pending state.
      if (samples_.size() == capacity_) next_gap();
      return;
    }
    ++seen_;
    samples_[static_cast<std::size_t>(rng_.index(capacity_))] = x;
    next_gap();
  }

  /// Fold a dense span. Identical draw sequence to add() per element;
  /// the exact-fill prefix is one bulk copy (no pending gap can exist
  /// below capacity) and whole gaps inside the span are skipped with
  /// pointer arithmetic.
  void add_batch(std::span<const double> xs) {
    std::size_t i = 0;
    if (samples_.size() < capacity_ && skip_ == 0) {
      std::size_t take = std::min(xs.size(), capacity_ - samples_.size());
      samples_.insert(samples_.end(), xs.begin(), xs.begin() + take);
      seen_ += take;
      i = take;
      if (samples_.size() == capacity_) next_gap();
    }
    while (i < xs.size() && samples_.size() < capacity_) add(xs[i++]);
    while (i < xs.size()) {
      std::uint64_t left = xs.size() - i;
      if (skip_ >= left) {
        skip_ -= left;
        seen_ += left;
        return;
      }
      i += static_cast<std::size_t>(skip_);
      seen_ += skip_;
      skip_ = 0;
      ++seen_;
      samples_[static_cast<std::size_t>(rng_.index(capacity_))] = xs[i++];
      next_gap();
    }
  }

  /// Continue this sampler over a tail of the stream, exactly: the
  /// contract is absorb(tail) == add(x) for each x of tail in order.
  /// Because the pending gap spans call boundaries, absorbing a stream
  /// piecewise in any chunking equals one serial pass.
  void absorb(std::span<const double> tail) { add_batch(tail); }

  /// Fold another reservoir (same capacity) into this one. When the
  /// other side is exact its sample IS its substream, so this sampler
  /// absorb()s it — a pure concatenation while the combined seen()
  /// fits the capacity (the merged sample equals the serial one
  /// element for element when merges follow stream order), the skip-
  /// gap continuation past it. When the other side has itself
  /// overflowed, each output slot draws from one side with probability
  /// proportional to that side's remaining stream weight (the weighted
  /// Algorithm-R merge), so every stream element keeps an equal chance
  /// of surviving; the pending gap is then re-drawn for the combined
  /// count. Draws come from this reservoir's substream, so the result
  /// is deterministic in (seeds, merge order).
  void merge(const ReservoirSampler& other);

  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while no value has been discarded (the sample is the stream).
  [[nodiscard]] bool exact() const noexcept { return seen_ <= capacity_; }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// Sorted-copy view for quantile/CDF/KS queries.
  [[nodiscard]] EmpiricalDistribution distribution() const;

 private:
  /// Draw the next skip gap (Vitter's Algorithm X search): one uniform
  /// V in (0, 1], then the smallest s whose cumulative skip
  /// probability falls below it. The search is O(s) with s ~
  /// seen/capacity in expectation; kMaxSkip caps a pathological
  /// tiny-V draw deterministically (the truncation shortens one gap
  /// out of ~2^30 — no measurable bias, and identical on every
  /// replay).
  void next_gap() {
    double v = 1.0 - rng_.uniform();  // (0, 1]: the search must terminate
    double t = static_cast<double>(seen_);
    double cap = static_cast<double>(capacity_);
    std::uint64_t s = 0;
    double quot = (t + 1.0 - cap) / (t + 1.0);
    while (quot > v && s < kMaxSkip) {
      ++s;
      quot *= (t + 1.0 + static_cast<double>(s) - cap) /
              (t + 1.0 + static_cast<double>(s));
    }
    skip_ = s;
  }

  static constexpr std::uint64_t kMaxSkip = std::uint64_t{1} << 30;

  std::size_t capacity_;
  rng::Stream rng_;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
  std::uint64_t skip_ = 0;  ///< records left in the pending gap
};

/// Knobs for StreamingSummary (at namespace scope so it can be a
/// defaulted constructor argument).
struct SummaryOptions {
  std::size_t reservoir_capacity = ReservoirSampler::kDefaultCapacity;
  std::uint64_t reservoir_seed = 0x9E3779B97F4A7C15ULL;
  /// When > 0, the summary also feeds a fixed-range log10 histogram
  /// and histogram_quantile() becomes available — the merged-quantile
  /// mode for parallel scans, where reservoirs past capacity merge
  /// stochastically but histogram bins merge exactly. Error is bounded
  /// by the width of the bin holding the requested order statistic.
  std::size_t quantile_bins = 0;
  /// Fixed histogram range (seconds); samples outside clamp to the
  /// edge bins. The defaults cover 1 ns .. ~28 h per event.
  double quantile_hist_lo = 1e-9;
  double quantile_hist_hi = 1e5;
};

/// The standard per-stream bundle: count, extrema, incremental
/// moments, and a reservoir for order statistics. Memory is
/// O(reservoir capacity), independent of the stream length.
class StreamingSummary {
 public:
  StreamingSummary() : StreamingSummary(SummaryOptions{}) {}
  explicit StreamingSummary(const SummaryOptions& options)
      : reservoir_(options.reservoir_capacity, options.reservoir_seed) {
    if (options.quantile_bins > 0) {
      quantile_hist_.emplace(BinScale::kLog10, options.quantile_hist_lo,
                             options.quantile_hist_hi, options.quantile_bins);
    }
  }

  void add(double x) {
    if (moments_.count() == 0) {
      min_ = x;
      max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    moments_.add(x);
    reservoir_.add(x);
    if (quantile_hist_) quantile_hist_->add(x);
  }

  /// Fold a dense sample span (a decoded column) in index order —
  /// value-identical to add() per element: each sub-kernel folds the
  /// same sequence, just as one dense pass per kernel instead of one
  /// interleaved pass per element, which keeps each kernel's state in
  /// registers across the span.
  void add_batch(std::span<const double> xs) {
    if (xs.empty()) return;
    double lo = xs[0], hi = xs[0];
    for (double x : xs) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (moments_.count() == 0) {
      min_ = lo;
      max_ = hi;
    } else {
      min_ = std::min(min_, lo);
      max_ = std::max(max_, hi);
    }
    moments_.add_batch(xs);
    reservoir_.add_batch(xs);
    if (quantile_hist_) quantile_hist_->add_all(xs);
  }

  /// Fold another summary into this one: counts/extrema/moments and
  /// the quantile histogram merge exactly; the reservoir merges per
  /// ReservoirSampler::merge (exact below capacity). Partials must be
  /// merged in stream order for reservoir exactness to carry over.
  void merge(const StreamingSummary& other);

  [[nodiscard]] std::size_t count() const noexcept { return moments_.count(); }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] Moments moments() const { return moments_.moments(); }
  [[nodiscard]] const ReservoirSampler& reservoir() const noexcept {
    return reservoir_;
  }
  /// Quantile from the reservoir (exact while the reservoir is exact).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// The fixed-range quantile histogram (present iff quantile_bins > 0).
  [[nodiscard]] const std::optional<Histogram>& quantile_histogram()
      const noexcept {
    return quantile_hist_;
  }
  /// Quantile from the histogram: the center of the bin holding the
  /// rank-⌈qN⌉ sample, so |estimate - exact order statistic| is at
  /// most that bin's width (bins merge exactly, so this is the
  /// merge-stable quantile past reservoir capacity). Requires
  /// quantile_bins > 0 and a non-empty stream.
  [[nodiscard]] double histogram_quantile(double q) const;

 private:
  StreamingMoments moments_;
  ReservoirSampler reservoir_;
  std::optional<Histogram> quantile_hist_;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace eio::stats
