#include "core/patterns.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace eio::analysis {

namespace {

struct StreamKey {
  RankId rank;
  FileId file;
  posix::OpType op;
  [[nodiscard]] auto operator<=>(const StreamKey&) const = default;
};

struct Access {
  Bytes offset;
  Bytes bytes;
};

}  // namespace

const char* pattern_name(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kRandom: return "random";
  }
  return "?";
}

std::vector<StreamPattern> detect_patterns(const ipm::Trace& trace,
                                           const PatternOptions& options) {
  std::map<StreamKey, std::vector<Access>> streams;
  for (const auto& e : trace.events()) {
    if (e.op != posix::OpType::kRead && e.op != posix::OpType::kWrite) continue;
    if (e.bytes == 0) continue;
    streams[{e.rank, e.file, e.op}].push_back({e.offset, e.bytes});
  }

  std::vector<StreamPattern> out;
  for (auto& [key, accesses] : streams) {
    if (accesses.size() < options.min_accesses) continue;

    StreamPattern sp;
    sp.rank = key.rank;
    sp.file = key.file;
    sp.op = key.op;
    sp.accesses = accesses.size();

    // Median access size.
    std::vector<Bytes> sizes;
    sizes.reserve(accesses.size());
    for (const Access& a : accesses) sizes.push_back(a.bytes);
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
    sp.typical_size = sizes[sizes.size() / 2];

    // Alignment of every access against the stripe.
    sp.stripe_aligned = std::all_of(accesses.begin(), accesses.end(),
                                    [&](const Access& a) {
                                      return a.offset % options.stripe_size == 0 &&
                                             (a.offset + a.bytes) %
                                                     options.stripe_size ==
                                                 0;
                                    });

    // Start-to-start gaps: find the dominant one.
    std::map<std::int64_t, std::size_t> gap_votes;
    std::size_t sequential_gaps = 0;
    for (std::size_t i = 1; i < accesses.size(); ++i) {
      auto gap = static_cast<std::int64_t>(accesses[i].offset) -
                 static_cast<std::int64_t>(accesses[i - 1].offset);
      ++gap_votes[gap];
      if (gap == static_cast<std::int64_t>(accesses[i - 1].bytes)) {
        ++sequential_gaps;
      }
    }
    auto total_gaps = static_cast<double>(accesses.size() - 1);
    auto dominant = std::max_element(
        gap_votes.begin(), gap_votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    double dominant_frac = static_cast<double>(dominant->second) / total_gaps;
    double sequential_frac = static_cast<double>(sequential_gaps) / total_gaps;

    if (sequential_frac >= options.stride_confidence) {
      sp.pattern = AccessPattern::kSequential;
      sp.stride = static_cast<std::int64_t>(sp.typical_size);
      sp.confidence = sequential_frac;
    } else if (dominant_frac >= options.stride_confidence &&
               dominant->first != 0) {
      sp.pattern = AccessPattern::kStrided;
      sp.stride = dominant->first;
      sp.confidence = dominant_frac;
    } else {
      sp.pattern = AccessPattern::kRandom;
      sp.stride = 0;
      sp.confidence = 1.0 - dominant_frac;
    }
    out.push_back(sp);
  }
  return out;
}

std::vector<FsHint> derive_hints(const std::vector<StreamPattern>& patterns,
                                 const PatternOptions& options) {
  // Aggregate per (file, op): hints are file-level advice.
  struct Agg {
    std::size_t streams = 0;
    std::size_t coherent = 0;  // sequential or strided
    std::size_t random = 0;
    std::size_t unaligned = 0;
    Bytes typical_size = 0;
    std::int64_t stride = 0;
  };
  std::map<std::pair<FileId, posix::OpType>, Agg> by_file;
  for (const StreamPattern& p : patterns) {
    Agg& a = by_file[{p.file, p.op}];
    ++a.streams;
    if (p.pattern == AccessPattern::kRandom) {
      ++a.random;
    } else {
      ++a.coherent;
      a.stride = p.stride;
    }
    if (!p.stripe_aligned) ++a.unaligned;
    a.typical_size = std::max(a.typical_size, p.typical_size);
  }

  std::vector<FsHint> hints;
  for (const auto& [key, a] : by_file) {
    auto [file, op] = key;
    std::ostringstream why;
    FsHint hint;
    hint.file = file;
    hint.op = op;
    if (op == posix::OpType::kRead) {
      if (a.coherent * 2 >= a.streams) {
        // Coherent readers: prefetch a couple of typical accesses, but
        // never beyond the stride (the Lustre bug was precisely an
        // unbounded strided window).
        Bytes window = 2 * a.typical_size;
        if (a.stride > 0) {
          window = std::min<Bytes>(window, static_cast<Bytes>(a.stride));
        }
        hint.prefetch_bytes = window;
        why << a.coherent << "/" << a.streams
            << " read streams are coherent; bounded prefetch of "
            << window / 1024 << " KiB";
      } else {
        hint.prefetch_bytes = 0;
        why << a.random << "/" << a.streams
            << " read streams are random; disable read-ahead";
      }
    }
    if (a.unaligned * 2 >= a.streams) {
      hint.advise_alignment = true;
      if (why.tellp() > 0) why << "; ";
      why << a.unaligned << "/" << a.streams
          << " streams are not aligned to the "
          << options.stripe_size / (1024 * 1024) << " MiB stripe";
    }
    if (hint.prefetch_bytes == 0 && op == posix::OpType::kWrite &&
        !hint.advise_alignment) {
      continue;  // nothing actionable for this file/op
    }
    hint.rationale = why.str();
    hints.push_back(std::move(hint));
  }
  return hints;
}

}  // namespace eio::analysis
