// Terminal rendering of the paper's chart types.
//
// Benches and examples print their figures directly to stdout; these
// helpers draw line charts (aggregate rates, CDFs) and histogram bar
// charts (linear or log-log) as fixed-width character grids, plus CSV
// export for anyone who wants real plots.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/histogram.h"

namespace eio::analysis {

/// Options shared by the chart renderers.
struct ChartOptions {
  std::size_t width = 72;   ///< plot columns (excluding axis labels)
  std::size_t height = 16;  ///< plot rows
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Render one or more line series on shared axes. Series beyond the
/// first use distinct glyphs ('*', 'o', 'x', '+', ...).
[[nodiscard]] std::string render_lines(std::span<const Series> series,
                                       const ChartOptions& options);

/// Render a histogram as a vertical bar chart (respecting the
/// histogram's own bin scale on x; log_y controls the count axis).
[[nodiscard]] std::string render_histogram(const stats::Histogram& histogram,
                                           const ChartOptions& options);

/// Render several histograms with shared binning as overlaid outlines.
[[nodiscard]] std::string render_histograms(
    std::span<const stats::Histogram* const> histograms,
    std::span<const std::string> names, const ChartOptions& options);

/// Format a byte rate with units (e.g. "11610.2 MiB/s").
[[nodiscard]] std::string format_rate(double bytes_per_second);

/// Format seconds compactly ("34.2 s", "12.5 ms").
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace eio::analysis
