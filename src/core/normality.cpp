#include "core/normality.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace eio::stats {

double normal_quantile(double p) {
  EIO_CHECK_MSG(p > 0.0 && p < 1.0, "normal quantile needs p in (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double normal_ppcc(std::span<const double> samples) {
  EIO_CHECK_MSG(samples.size() >= 3, "PPCC needs at least 3 samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto nd = static_cast<double>(n);

  // Filliben's median plotting positions.
  std::vector<double> m(n);
  m[0] = 1.0 - std::pow(0.5, 1.0 / nd);
  m[n - 1] = std::pow(0.5, 1.0 / nd);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    m[i] = (static_cast<double>(i + 1) - 0.3175) / (nd + 0.365);
  }
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = normal_quantile(m[i]);

  // Pearson correlation of (sorted sample, normal order medians).
  double sx = 0, sz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += sorted[i];
    sz += z[i];
  }
  double mx = sx / nd, mz = sz / nd;
  double sxz = 0, sxx = 0, szz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = sorted[i] - mx;
    double dz = z[i] - mz;
    sxz += dx * dz;
    sxx += dx * dx;
    szz += dz * dz;
  }
  EIO_CHECK_MSG(sxx > 0.0, "PPCC undefined for a constant sample");
  return sxz / std::sqrt(sxx * szz);
}

}  // namespace eio::stats
