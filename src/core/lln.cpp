#include "core/lln.h"

#include "common/check.h"
#include "common/rng.h"

namespace eio::stats {

std::vector<double> sum_groups(std::span<const double> per_call, std::size_t k) {
  EIO_CHECK(k >= 1);
  EIO_CHECK_MSG(per_call.size() % k == 0,
                "sample count " << per_call.size() << " not divisible by k=" << k);
  std::vector<double> totals;
  totals.reserve(per_call.size() / k);
  for (std::size_t i = 0; i < per_call.size(); i += k) {
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += per_call[i + j];
    totals.push_back(sum);
  }
  return totals;
}

SplittingMetrics analyze_splitting(std::span<const double> totals, std::size_t k,
                                   std::size_t n_tasks, double total_bytes) {
  EIO_CHECK(!totals.empty());
  SplittingMetrics m;
  m.k = k;
  EmpiricalDistribution dist(std::vector<double>(totals.begin(), totals.end()));
  m.moments = dist.moments();
  m.expected_worst = dist.expected_max_of(n_tasks);
  m.reported_rate = m.expected_worst > 0.0 ? total_bytes / m.expected_worst : 0.0;
  return m;
}

std::vector<SplittingMetrics> predict_splitting(
    const EmpiricalDistribution& base_single_call, std::span<const std::size_t> ks,
    std::size_t n_tasks, double total_bytes, std::size_t trials,
    std::uint64_t seed) {
  EIO_CHECK(!base_single_call.empty());
  rng::Stream stream(seed);
  const auto& samples = base_single_call.sorted();
  std::vector<SplittingMetrics> out;
  out.reserve(ks.size());
  for (std::size_t k : ks) {
    EIO_CHECK(k >= 1);
    std::vector<double> totals;
    totals.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      double sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        // A 1/k-sized transfer takes ~1/k of a full-call draw.
        sum += samples[stream.index(samples.size())] / static_cast<double>(k);
      }
      totals.push_back(sum);
    }
    out.push_back(analyze_splitting(totals, k, n_tasks, total_bytes));
  }
  return out;
}

}  // namespace eio::stats
