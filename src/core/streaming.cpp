#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eio::stats {

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double n = na + nb;
  double delta = other.mean_ - mean_;
  double delta2 = delta * delta;

  double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  double m3 = m3_ + other.m3_ +
              delta * delta2 * na * nb * (na - nb) / (n * n) +
              3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  double m4 = m4_ + other.m4_ +
              delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) /
                  (n * n * n) +
              6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
              4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ += delta * nb / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
}

Moments StreamingMoments::moments() const {
  Moments m;
  m.count = n_;
  if (n_ == 0) return m;
  double n = static_cast<double>(n_);
  m.mean = mean_;
  if (n_ >= 2) {
    m.variance = m2_ / (n - 1.0);
    m.stddev = std::sqrt(m.variance);
  }
  double pop_var = m2_ / n;
  if (pop_var > 0.0 && n_ >= 3) {
    double sd = std::sqrt(pop_var);
    m.skewness = (m3_ / n) / (sd * sd * sd);
    m.kurtosis_excess = (m4_ / n) / (pop_var * pop_var) - 3.0;
  }
  return m;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  EIO_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  rates_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
    }
    return;
  }
  ++count_;

  // Locate the cell and absorb extrema into the end markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rates_[i];

  // Adjust the interior markers toward their desired positions with
  // the piecewise-parabolic (P²) prediction, falling back to linear
  // when the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    double below = positions_[i] - positions_[i - 1];
    double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      double s = d >= 0.0 ? 1.0 : -1.0;
      double np = positions_[i] + s;
      double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        std::size_t j = d >= 0.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  EIO_CHECK_MSG(count_ >= 1, "P2Quantile::value() on empty stream");
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    if (count_ == 1) return sorted[0];
    double pos = q_ * static_cast<double>(count_ - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, count_ - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  EIO_CHECK_MSG(capacity >= 1, "reservoir needs capacity >= 1");
}

EmpiricalDistribution ReservoirSampler::distribution() const {
  return EmpiricalDistribution(samples_);
}

void ReservoirSampler::merge(const ReservoirSampler& other) {
  EIO_CHECK_MSG(capacity_ == other.capacity_,
                "reservoir merge needs matching capacities: "
                    << capacity_ << " vs " << other.capacity_);
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    // Adopt the other side wholesale, substream included, so merging
    // into a fresh reservoir reproduces the other exactly.
    *this = other;
    return;
  }
  if (other.exact()) {
    // The other side still holds every value it saw, in stream order —
    // so this sampler continues over it via the absorb() contract
    // (identical to per-element add()s). While the combined count fits
    // the capacity this is a pure concatenation (the merged sample is
    // the exact combined stream); past capacity the skip-gap machinery
    // takes over. Chunk-sized partials always take this path.
    absorb(other.samples_);
    return;
  }
  // Weighted draw: fill each output slot from side A with probability
  // wa/(wa+wb) where the weights start at the stream counts and shrink
  // as elements are consumed — every element of the combined stream
  // ends up in the result with equal probability capacity/(na+nb).
  // Removal is swap-pop, so the merge is O(capacity).
  std::vector<double> a = std::move(samples_);
  std::vector<double> b = other.samples_;
  std::uint64_t wa = seen_;
  std::uint64_t wb = other.seen_;
  std::vector<double> merged;
  merged.reserve(capacity_);
  while (merged.size() < capacity_ && (!a.empty() || !b.empty())) {
    bool from_a = !a.empty() && (b.empty() || rng_.index(wa + wb) < wa);
    std::vector<double>& src = from_a ? a : b;
    std::uint64_t& weight = from_a ? wa : wb;
    auto j = static_cast<std::size_t>(rng_.index(src.size()));
    merged.push_back(src[j]);
    src[j] = src.back();
    src.pop_back();
    if (weight > 1) --weight;
  }
  samples_ = std::move(merged);
  seen_ += other.seen_;
  // The pending gap was drawn for the pre-merge count; re-arm it for
  // the combined stream so subsequent add()s skip with the right
  // distribution.
  skip_ = 0;
  next_gap();
}

void StreamingSummary::merge(const StreamingSummary& other) {
  if (other.empty()) return;
  if (empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  moments_.merge(other.moments_);
  reservoir_.merge(other.reservoir_);
  if (quantile_hist_) {
    EIO_CHECK_MSG(other.quantile_hist_.has_value(),
                  "summary merge mixes quantile-histogram modes");
    quantile_hist_->merge(*other.quantile_hist_);
  }
}

double StreamingSummary::min() const {
  EIO_CHECK(!empty());
  return min_;
}

double StreamingSummary::max() const {
  EIO_CHECK(!empty());
  return max_;
}

double StreamingSummary::quantile(double q) const {
  EIO_CHECK(!empty());
  return reservoir_.distribution().quantile(q);
}

double StreamingSummary::histogram_quantile(double q) const {
  EIO_CHECK(!empty());
  EIO_CHECK_MSG(quantile_hist_.has_value(),
                "histogram quantile mode is off (quantile_bins == 0)");
  EIO_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  const Histogram& h = *quantile_hist_;
  // 1-based rank of the order statistic x_(⌈qN⌉); q = 0 maps to the
  // minimum. Out-of-range samples were clamped into the edge bins, so
  // total() == N and the cumulative walk always terminates.
  std::uint64_t n = h.total();
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    cumulative += h.count(b);
    if (cumulative >= rank) return h.bin_center(b);
  }
  return h.bin_center(h.bin_count() - 1);
}

}  // namespace eio::stats
