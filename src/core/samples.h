// Extraction of measurement samples from traces.
//
// Everything downstream (histograms, modes, order statistics, the
// diagnoser) consumes flat vectors of per-event measurements; this is
// where trace events are filtered and shaped into them.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/streaming.h"
#include "ipm/sink.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"
#include "posix/hooks.h"

namespace eio::analysis {

/// Predicate over trace events; unset fields match everything.
struct EventFilter {
  std::optional<posix::OpType> op;
  std::optional<std::int32_t> phase;
  std::optional<RankId> rank;
  Bytes min_bytes = 0;                      ///< inclusive
  std::optional<Bytes> max_bytes;           ///< inclusive
  bool data_calls_only = true;              ///< keep only read/write
  /// Wall-clock window: keep events whose [start, end] interval
  /// intersects [t_lo, t_hi]. Maps onto the chunk index's time span,
  /// so windowed scans skip whole chunks.
  std::optional<double> t_lo;
  std::optional<double> t_hi;

  [[nodiscard]] bool matches(const ipm::TraceEvent& e) const;
};

/// Matching events (copies), in trace order.
[[nodiscard]] std::vector<ipm::TraceEvent> select(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Durations of matching events.
[[nodiscard]] std::vector<double> durations(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Per-event normalized cost in seconds per MiB (the Figure 6
/// histogram axis, which makes mixed transfer sizes comparable).
[[nodiscard]] std::vector<double> seconds_per_mib(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Per-event achieved rate in MiB/s.
[[nodiscard]] std::vector<double> rates_mib(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Durations grouped by phase label (for the Figure 5a per-phase CDFs).
[[nodiscard]] std::map<std::int32_t, std::vector<double>> durations_by_phase(
    const ipm::Trace& trace, const EventFilter& filter);

/// Durations grouped by rank, each in issue order (feeds
/// stats::sum_groups for per-task totals).
[[nodiscard]] std::map<RankId, std::vector<double>> durations_by_rank(
    const ipm::Trace& trace, const EventFilter& filter);

/// Flatten durations_by_rank in rank order into one vector with `k`
/// entries per rank, checking each rank contributed exactly k.
[[nodiscard]] std::vector<double> per_rank_ordered(const ipm::Trace& trace,
                                                   const EventFilter& filter,
                                                   std::size_t k);

// ---------------------------------------------------------------------------
// Streaming counterparts: visit a TraceSource instead of materializing.

/// The chunk-index pre-filter a filter implies (op/phase/rank pins
/// become hints; indexed v2 sources skip chunks that cannot match).
[[nodiscard]] ipm::ChunkHint hint_for(const EventFilter& filter);

/// Visit every matching event of the source, in stored order.
void for_each_matching(const ipm::TraceSource& source,
                       const EventFilter& filter,
                       const std::function<void(const ipm::TraceEvent&)>& fn);

/// Durations of matching events (materializes the samples, not the
/// events — use SummarySink when bounded memory matters).
[[nodiscard]] std::vector<double> durations(const ipm::TraceSource& source,
                                            const EventFilter& filter);

/// EventSink folding filter-matched durations into a StreamingSummary
/// (count/extrema/moments/reservoir) — the bounded-memory analysis
/// attachment for monitors and ensemble runs.
class SummarySink final : public ipm::EventSink {
 public:
  explicit SummarySink(EventFilter filter)
      : SummarySink(std::move(filter), stats::SummaryOptions{}) {}
  SummarySink(EventFilter filter, const stats::SummaryOptions& options)
      : filter_(std::move(filter)), summary_(options) {}

  void on_event(const ipm::TraceEvent& event) override {
    if (filter_.matches(event)) summary_.add(event.duration);
  }

  /// Fold a whole decoded chunk per virtual call — the hot path; the
  /// per-event filter+add loop runs without any per-event indirection.
  void on_batch(std::span<const ipm::TraceEvent> events) override {
    for (const ipm::TraceEvent& e : events) {
      if (filter_.matches(e)) summary_.add(e.duration);
    }
  }

  /// Fold another sink's summary into this one (see
  /// StreamingSummary::merge for exactness guarantees).
  void merge(const SummarySink& other) { summary_.merge(other.summary_); }

  [[nodiscard]] const stats::StreamingSummary& summary() const noexcept {
    return summary_;
  }

 private:
  EventFilter filter_;
  stats::StreamingSummary summary_;
};

/// EventSink grouping filter-matched durations by phase label — the
/// streaming form of durations_by_phase (per-phase CDFs, Figure 5a).
class PhaseSummarySink final : public ipm::EventSink {
 public:
  explicit PhaseSummarySink(EventFilter filter)
      : PhaseSummarySink(std::move(filter), stats::SummaryOptions{}) {}
  PhaseSummarySink(EventFilter filter, const stats::SummaryOptions& options)
      : filter_(std::move(filter)), options_(options) {}

  void on_event(const ipm::TraceEvent& event) override;
  void on_batch(std::span<const ipm::TraceEvent> events) override;

  /// Fold another sink's per-phase summaries into this one. Phases
  /// absent here adopt the other side's summary (reservoir substream
  /// included), so the merged map is independent of how phases were
  /// split across partials.
  void merge(const PhaseSummarySink& other);

  [[nodiscard]] const std::map<std::int32_t, stats::StreamingSummary>&
  by_phase() const noexcept {
    return by_phase_;
  }

 private:
  EventFilter filter_;
  stats::SummaryOptions options_;
  std::map<std::int32_t, stats::StreamingSummary> by_phase_;
};

}  // namespace eio::analysis
