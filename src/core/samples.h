// Extraction of measurement samples from traces.
//
// Everything downstream (histograms, modes, order statistics, the
// diagnoser) consumes flat vectors of per-event measurements; this is
// where trace events are filtered and shaped into them.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/streaming.h"
#include "ipm/columns.h"
#include "ipm/sink.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"
#include "posix/hooks.h"

namespace eio::analysis {

/// Predicate over trace events; unset fields match everything.
struct EventFilter {
  std::optional<posix::OpType> op;
  std::optional<std::int32_t> phase;
  std::optional<RankId> rank;
  Bytes min_bytes = 0;                      ///< inclusive
  std::optional<Bytes> max_bytes;           ///< inclusive
  bool data_calls_only = true;              ///< keep only read/write
  /// Wall-clock window: keep events whose [start, end] interval
  /// intersects [t_lo, t_hi]. Maps onto the chunk index's time span,
  /// so windowed scans skip whole chunks.
  std::optional<double> t_lo;
  std::optional<double> t_hi;

  /// Inline: the predicate runs once per event inside every scan loop,
  /// and with the common pins (op/data_calls_only) the compiler folds
  /// the unset-field branches away at the call site.
  [[nodiscard]] bool matches(const ipm::TraceEvent& e) const {
    using posix::OpType;
    if (data_calls_only && e.op != OpType::kRead && e.op != OpType::kWrite) {
      return false;
    }
    if (op && e.op != *op) return false;
    if (phase && e.phase != *phase) return false;
    if (rank && e.rank != *rank) return false;
    if (e.bytes < min_bytes) return false;
    if (max_bytes && e.bytes > *max_bytes) return false;
    if (t_lo && e.end() < *t_lo) return false;
    if (t_hi && e.start > *t_hi) return false;
    return true;
  }

  /// The columns this filter reads. A columnar pass must decode at
  /// least these (plus whatever the analysis itself consumes) for
  /// matches_at() to be exact; everything else may stay un-decoded.
  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept;

  /// matches() over row i of a ColumnBatch — field-for-field the same
  /// predicate, reading only the required_columns() spans.
  [[nodiscard]] bool matches_at(const ipm::ColumnBatch& b,
                                std::size_t i) const {
    using posix::OpType;
    if (data_calls_only) {
      auto code = static_cast<OpType>(b.op[i]);
      if (code != OpType::kRead && code != OpType::kWrite) return false;
    }
    if (op && static_cast<OpType>(b.op[i]) != *op) return false;
    if (phase && b.phase[i] != *phase) return false;
    if (rank && b.rank[i] != *rank) return false;
    if (min_bytes > 0 && b.bytes[i] < min_bytes) return false;
    if (max_bytes && b.bytes[i] > *max_bytes) return false;
    if (t_lo && b.start[i] + b.duration[i] < *t_lo) return false;
    if (t_hi && b.start[i] > *t_hi) return false;
    return true;
  }

  /// True when only the op pin / data_calls_only default constrain the
  /// predicate — the shape every CLI subcommand produces. matches_at
  /// then reduces to one opcode compare per row.
  [[nodiscard]] bool op_only() const noexcept {
    return !phase && !rank && min_bytes == 0 && !max_bytes && !t_lo && !t_hi;
  }

  /// Visit the index of every matching row of `b`, in row order.
  /// Dispatches once per batch instead of re-testing the unset
  /// optional fields on every row: op-only filters (the CLI shape) run
  /// a single-compare loop, everything else falls back to matches_at
  /// per row. The visited set and order are exactly those of
  /// matches_at over 0..size-1, so gathers built either way agree.
  template <typename Fn>
  void for_each_match(const ipm::ColumnBatch& b, Fn&& fn) const {
    using posix::OpType;
    const std::size_t n = b.size();
    if (op_only()) {
      if (op) {
        // A pin outside read/write contradicts data_calls_only and
        // matches nothing — same as matches_at row by row.
        if (data_calls_only && *op != OpType::kRead && *op != OpType::kWrite) {
          return;
        }
        const auto code = static_cast<std::uint8_t>(*op);
        for (std::size_t i = 0; i < n; ++i) {
          if (b.op[i] == code) fn(i);
        }
        return;
      }
      if (data_calls_only) {
        const auto rd = static_cast<std::uint8_t>(OpType::kRead);
        const auto wr = static_cast<std::uint8_t>(OpType::kWrite);
        for (std::size_t i = 0; i < n; ++i) {
          if (b.op[i] == rd || b.op[i] == wr) fn(i);
        }
        return;
      }
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (matches_at(b, i)) fn(i);
    }
  }
};

/// Matching events (copies), in trace order.
[[nodiscard]] std::vector<ipm::TraceEvent> select(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Durations of matching events.
[[nodiscard]] std::vector<double> durations(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Per-event normalized cost in seconds per MiB (the Figure 6
/// histogram axis, which makes mixed transfer sizes comparable).
[[nodiscard]] std::vector<double> seconds_per_mib(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Per-event achieved rate in MiB/s.
[[nodiscard]] std::vector<double> rates_mib(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Durations grouped by phase label (for the Figure 5a per-phase CDFs).
[[nodiscard]] std::map<std::int32_t, std::vector<double>> durations_by_phase(
    const ipm::Trace& trace, const EventFilter& filter);

/// Durations grouped by rank, each in issue order (feeds
/// stats::sum_groups for per-task totals).
[[nodiscard]] std::map<RankId, std::vector<double>> durations_by_rank(
    const ipm::Trace& trace, const EventFilter& filter);

/// Flatten durations_by_rank in rank order into one vector with `k`
/// entries per rank, checking each rank contributed exactly k.
[[nodiscard]] std::vector<double> per_rank_ordered(const ipm::Trace& trace,
                                                   const EventFilter& filter,
                                                   std::size_t k);

// ---------------------------------------------------------------------------
// Streaming counterparts: visit a TraceSource instead of materializing.

/// The chunk-index pre-filter a filter implies (op/phase/rank pins
/// become hints; indexed v2 sources skip chunks that cannot match).
[[nodiscard]] ipm::ChunkHint hint_for(const EventFilter& filter);

/// Visit every matching event of the source, in stored order.
void for_each_matching(const ipm::TraceSource& source,
                       const EventFilter& filter,
                       const std::function<void(const ipm::TraceEvent&)>& fn);

/// Durations of matching events (materializes the samples, not the
/// events — use SummarySink when bounded memory matters).
[[nodiscard]] std::vector<double> durations(const ipm::TraceSource& source,
                                            const EventFilter& filter);

/// EventSink folding filter-matched durations into a StreamingSummary
/// (count/extrema/moments/reservoir) — the bounded-memory analysis
/// attachment for monitors and ensemble runs.
class SummarySink final : public ipm::EventSink {
 public:
  explicit SummarySink(EventFilter filter)
      : SummarySink(std::move(filter), stats::SummaryOptions{}) {}
  SummarySink(EventFilter filter, const stats::SummaryOptions& options)
      : filter_(std::move(filter)), summary_(options) {}

  /// Kernel entry point: fold one event.
  void add(const ipm::TraceEvent& event) {
    if (filter_.matches(event)) summary_.add(event.duration);
  }

  /// Kernel entry point: fold a decoded column batch. Gathers the
  /// matching durations densely, then feeds the summary one dense
  /// span per sub-kernel — value-identical to add() per row (same
  /// index-order sequence into every sub-kernel). The batch needs
  /// required_columns() decoded.
  void add_batch(const ipm::ColumnBatch& batch) {
    scratch_.clear();
    scratch_.reserve(batch.size());
    filter_.for_each_match(
        batch, [&](std::size_t i) { scratch_.push_back(batch.duration[i]); });
    summary_.add_batch(scratch_);
  }

  void on_event(const ipm::TraceEvent& event) override { add(event); }

  /// Fold a whole decoded chunk per virtual call — the hot path; the
  /// per-event filter+add loop runs without any per-event indirection.
  void on_batch(std::span<const ipm::TraceEvent> events) override {
    for (const ipm::TraceEvent& e : events) add(e);
  }

  /// Columnar twin of on_batch (see add_batch).
  void on_columns(const ipm::ColumnBatch& batch) { add_batch(batch); }

  /// Columns add_batch reads: the filter's plus the duration samples.
  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept {
    return filter_.required_columns() | ipm::kColDuration;
  }

  /// Fold another sink's summary into this one (see
  /// StreamingSummary::merge for exactness guarantees).
  void merge(const SummarySink& other) { summary_.merge(other.summary_); }

  [[nodiscard]] const stats::StreamingSummary& summary() const noexcept {
    return summary_;
  }

 private:
  EventFilter filter_;
  stats::StreamingSummary summary_;
  std::vector<double> scratch_;  ///< matching durations of one batch
};

/// EventSink grouping filter-matched durations by phase label — the
/// streaming form of durations_by_phase (per-phase CDFs, Figure 5a).
class PhaseSummarySink final : public ipm::EventSink {
 public:
  explicit PhaseSummarySink(EventFilter filter)
      : PhaseSummarySink(std::move(filter), stats::SummaryOptions{}) {}
  PhaseSummarySink(EventFilter filter, const stats::SummaryOptions& options)
      : filter_(std::move(filter)), options_(options) {}

  /// Kernel entry point: fold one event.
  void add(const ipm::TraceEvent& event);
  /// Kernel entry point: fold a decoded column batch. Matching
  /// durations are buffered per run of equal phase labels and flushed
  /// as dense spans — value-identical to add() per row, since each
  /// phase's summary folds the same duration sequence.
  void add_batch(const ipm::ColumnBatch& batch);

  void on_event(const ipm::TraceEvent& event) override;
  void on_batch(std::span<const ipm::TraceEvent> events) override;

  /// Columnar twin of on_batch (needs required_columns() decoded).
  void on_columns(const ipm::ColumnBatch& batch);

  /// Columns on_columns reads: the filter's, the phase labels it
  /// groups by, and the duration samples.
  [[nodiscard]] ipm::ColumnMask required_columns() const noexcept {
    return filter_.required_columns() | ipm::kColPhase | ipm::kColDuration;
  }

  /// Fold another sink's per-phase summaries into this one. Phases
  /// absent here adopt the other side's summary (reservoir substream
  /// included), so the merged map is independent of how phases were
  /// split across partials.
  void merge(const PhaseSummarySink& other);

  [[nodiscard]] const std::map<std::int32_t, stats::StreamingSummary>&
  by_phase() const noexcept {
    return by_phase_;
  }

 private:
  /// Feed the buffered run of durations to `phase`'s summary.
  void flush_run(std::int32_t phase);

  EventFilter filter_;
  stats::SummaryOptions options_;
  std::map<std::int32_t, stats::StreamingSummary> by_phase_;
  std::vector<double> scratch_;  ///< one run of same-phase durations
};

}  // namespace eio::analysis
