// Extraction of measurement samples from traces.
//
// Everything downstream (histograms, modes, order statistics, the
// diagnoser) consumes flat vectors of per-event measurements; this is
// where trace events are filtered and shaped into them.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "ipm/trace.h"
#include "posix/hooks.h"

namespace eio::analysis {

/// Predicate over trace events; unset fields match everything.
struct EventFilter {
  std::optional<posix::OpType> op;
  std::optional<std::int32_t> phase;
  std::optional<RankId> rank;
  Bytes min_bytes = 0;                      ///< inclusive
  std::optional<Bytes> max_bytes;           ///< inclusive
  bool data_calls_only = true;              ///< keep only read/write

  [[nodiscard]] bool matches(const ipm::TraceEvent& e) const;
};

/// Matching events (copies), in trace order.
[[nodiscard]] std::vector<ipm::TraceEvent> select(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Durations of matching events.
[[nodiscard]] std::vector<double> durations(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Per-event normalized cost in seconds per MiB (the Figure 6
/// histogram axis, which makes mixed transfer sizes comparable).
[[nodiscard]] std::vector<double> seconds_per_mib(const ipm::Trace& trace,
                                                  const EventFilter& filter);

/// Per-event achieved rate in MiB/s.
[[nodiscard]] std::vector<double> rates_mib(const ipm::Trace& trace,
                                            const EventFilter& filter);

/// Durations grouped by phase label (for the Figure 5a per-phase CDFs).
[[nodiscard]] std::map<std::int32_t, std::vector<double>> durations_by_phase(
    const ipm::Trace& trace, const EventFilter& filter);

/// Durations grouped by rank, each in issue order (feeds
/// stats::sum_groups for per-task totals).
[[nodiscard]] std::map<RankId, std::vector<double>> durations_by_rank(
    const ipm::Trace& trace, const EventFilter& filter);

/// Flatten durations_by_rank in rank order into one vector with `k`
/// entries per rank, checking each rank contributed exactly k.
[[nodiscard]] std::vector<double> per_rank_ordered(const ipm::Trace& trace,
                                                   const EventFilter& filter,
                                                   std::size_t k);

}  // namespace eio::analysis
