#include "core/histogram.h"

#include <algorithm>
#include <cmath>

namespace eio::stats {

Histogram::Histogram(BinScale scale, double lo, double hi, std::size_t bins)
    : scale_(scale), lo_(lo), hi_(hi), counts_(bins, 0) {
  EIO_CHECK_MSG(bins >= 1, "histogram needs at least one bin");
  EIO_CHECK_MSG(hi > lo, "empty histogram range");
  if (scale_ == BinScale::kLog10) {
    EIO_CHECK_MSG(lo > 0.0, "log-scale histogram needs positive lower bound");
    tlo_ = std::log10(lo_);
    thi_ = std::log10(hi_);
  } else {
    tlo_ = lo_;
    thi_ = hi_;
  }
}

Histogram::Range Histogram::padded_range(double sample_min, double sample_max,
                                         BinScale scale) {
  double lo = sample_min, hi = sample_max;
  if (scale == BinScale::kLog10) {
    lo = std::max(lo, 1e-12);
    hi = std::max(hi, lo * 1.0001);
    lo /= 1.05;
    hi *= 1.05;
  } else {
    double pad = std::max((hi - lo) * 0.01, 1e-12);
    lo -= pad;
    hi += pad;
  }
  return {lo, hi};
}

Histogram Histogram::from_samples(std::span<const double> samples, BinScale scale,
                                  std::size_t bins) {
  EIO_CHECK_MSG(!samples.empty(), "cannot infer range from no samples");
  double lo = samples[0], hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  Range range = padded_range(lo, hi, scale);
  Histogram h(scale, range.lo, range.hi, bins);
  h.add_all(samples);
  return h;
}

Histogram Histogram::from_counts(BinScale scale, double lo, double hi,
                                 std::vector<std::uint64_t> counts) {
  Histogram h(scale, lo, hi, counts.size());
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  h.counts_ = std::move(counts);
  h.total_ = total;
  return h;
}

void Histogram::add_all(std::span<const double> samples) {
  // Batched fill: identical bin arithmetic to add(), but the running
  // under/overflow tallies stay in registers instead of bouncing
  // through memory on every event.
  std::uint64_t under = 0, over = 0;
  for (double s : samples) {
    if (s < lo_) {
      ++under;
    } else if (s >= hi_) {
      ++over;
    }
    ++counts_[bin_index(s)];
  }
  total_ += samples.size();
  underflow_ += under;
  overflow_ += over;
}

double Histogram::bin_lower(std::size_t bin) const {
  EIO_CHECK(bin < counts_.size());
  double t = tlo_ + (thi_ - tlo_) * static_cast<double>(bin) /
                        static_cast<double>(counts_.size());
  return scale_ == BinScale::kLog10 ? std::pow(10.0, t) : t;
}

double Histogram::bin_upper(std::size_t bin) const {
  EIO_CHECK(bin < counts_.size());
  double t = tlo_ + (thi_ - tlo_) * static_cast<double>(bin + 1) /
                        static_cast<double>(counts_.size());
  return scale_ == BinScale::kLog10 ? std::pow(10.0, t) : t;
}

double Histogram::bin_center(std::size_t bin) const {
  if (scale_ == BinScale::kLog10) {
    return std::sqrt(bin_lower(bin) * bin_upper(bin));
  }
  return 0.5 * (bin_lower(bin) + bin_upper(bin));
}

double Histogram::bin_width(std::size_t bin) const {
  return bin_upper(bin) - bin_lower(bin);
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) /
           (static_cast<double>(total_) * bin_width(i));
  }
  return d;
}

void Histogram::merge(const Histogram& other) {
  EIO_CHECK_MSG(other.scale_ == scale_ && other.counts_.size() == counts_.size() &&
                    other.lo_ == lo_ && other.hi_ == hi_,
                "histogram binning mismatch in merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

StreamingHistogram::StreamingHistogram(const Options& options)
    : options_(options) {
  // bins >= 2 guarantees the coarsening loops terminate: lattice
  // indices converge to the two cells straddling zero as k grows.
  EIO_CHECK_MSG(options_.bins >= 2, "streaming histogram needs at least 2 bins");
  EIO_CHECK_MSG(options_.exact_capacity >= 1,
                "streaming histogram needs a nonzero exact capacity");
}

int StreamingHistogram::rep_exponent(double t) {
  // Floor of -120 covers every transformed value this pipeline can
  // produce (log10 of 1e-300 is -300? no: clamped at 1e-300 gives
  // t >= -300, but |index| = |t|/2^k stays < 2^39 because k >=
  // ilogb(t) - 38). Zero has no exponent; any floor works since its
  // index is 0 at every k.
  constexpr int kFloor = -120;
  if (t == 0.0) return kFloor;
  return std::max(kFloor, std::ilogb(t) - 38);
}

std::int64_t StreamingHistogram::lattice_index(double t) const {
  return static_cast<std::int64_t>(std::floor(std::ldexp(t, -k_)));
}

void StreamingHistogram::coarsen() {
  // Pair up width-2^k cells into width-2^(k+1): new index = old >> 1
  // (arithmetic shift = floor division, exact for negatives in C++20),
  // which matches floor(t / 2^(k+1)) = floor(floor(t / 2^k) / 2).
  std::int64_t last = base_ + static_cast<std::int64_t>(counts_.size()) - 1;
  std::int64_t new_base = base_ >> 1;
  std::int64_t new_last = last >> 1;
  std::vector<std::uint64_t> folded(
      static_cast<std::size_t>(new_last - new_base + 1), 0);
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    std::int64_t idx = (base_ + static_cast<std::int64_t>(j)) >> 1;
    folded[static_cast<std::size_t>(idx - new_base)] += counts_[j];
  }
  counts_ = std::move(folded);
  base_ = new_base;
  ++k_;
  update_window();
}

void StreamingHistogram::update_window() {
  if (counts_.empty()) {
    win_lo_ = 0.0;
    win_hi_ = 0.0;
    return;
  }
  // Edge products are exact doubles (|index| < 2^39, see the class
  // notes), so the guard admits exactly the in-window values.
  double w = std::ldexp(1.0, k_);
  win_lo_ = static_cast<double>(base_) * w;
  win_hi_ =
      static_cast<double>(base_ + static_cast<std::int64_t>(counts_.size())) *
      w;
  win_scale_ = std::ldexp(1.0, -k_);
}

void StreamingHistogram::lattice_insert(double t, std::uint64_t weight) {
  int needed = rep_exponent(t);
  if (counts_.empty()) {
    k_ = needed;
    base_ = lattice_index(t);
    counts_.assign(1, weight);
    update_window();
    return;
  }
  while (k_ < needed) coarsen();
  // Predict the occupied span arithmetically and coarsen BEFORE
  // touching the vector, so a far-away value never materializes a
  // huge zero window.
  for (;;) {
    std::int64_t i = lattice_index(t);
    std::int64_t lo = std::min(i, base_);
    std::int64_t hi =
        std::max(i, base_ + static_cast<std::int64_t>(counts_.size()) - 1);
    if (static_cast<std::uint64_t>(hi - lo + 1) <= options_.bins) {
      if (i < base_) {
        counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - i), 0);
        base_ = i;
      } else if (i >= base_ + static_cast<std::int64_t>(counts_.size())) {
        counts_.resize(static_cast<std::size_t>(i - base_) + 1, 0);
      }
      counts_[static_cast<std::size_t>(i - base_)] += weight;
      update_window();
      return;
    }
    coarsen();
  }
}

void StreamingHistogram::spill() {
  overflowed_ = true;
  std::vector<double> raw = std::move(raw_);
  raw_.clear();
  raw_.shrink_to_fit();
  for (double v : raw) lattice_insert(transform(v), 1);
}

void StreamingHistogram::add_batch(std::span<const double> xs) {
  if (!overflowed_ && raw_.size() + xs.size() <= options_.exact_capacity) {
    raw_.insert(raw_.end(), xs.begin(), xs.end());
    count_ += xs.size();
    return;
  }
  for (double x : xs) add(x);
}

void StreamingHistogram::merge(StreamingHistogram&& other) {
  EIO_CHECK_MSG(other.options_.scale == options_.scale &&
                    other.options_.bins == options_.bins &&
                    other.options_.exact_capacity == options_.exact_capacity,
                "streaming histogram options mismatch in merge");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = std::move(other);
    return;
  }
  count_ += other.count_;
  if (!overflowed_ && !other.overflowed_) {
    raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
    if (raw_.size() > options_.exact_capacity) spill();
    return;
  }
  if (!overflowed_) spill();
  if (!other.overflowed_) {
    // Fold the other side's raw samples straight into this lattice.
    // The lattice's resolution and counts are a pure function of the
    // value multiset (see the class notes), so this lands bit-for-bit
    // where spill-then-align would — without building and coarsening a
    // second lattice per merge (the per-chunk cost of ordered merges).
    for (double v : other.raw_) lattice_add(transform(v));
    return;
  }
  while (k_ < other.k_) coarsen();
  while (other.k_ < k_) other.coarsen();
  for (;;) {
    std::int64_t lo = std::min(base_, other.base_);
    std::int64_t hi =
        std::max(base_ + static_cast<std::int64_t>(counts_.size()),
                 other.base_ + static_cast<std::int64_t>(other.counts_.size())) -
        1;
    if (static_cast<std::uint64_t>(hi - lo + 1) <= options_.bins) break;
    coarsen();
    other.coarsen();
  }
  std::int64_t lo = std::min(base_, other.base_);
  std::int64_t hi =
      std::max(base_ + static_cast<std::int64_t>(counts_.size()),
               other.base_ + static_cast<std::int64_t>(other.counts_.size())) -
      1;
  if (lo < base_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - lo), 0);
    base_ = lo;
  }
  if (hi >= base_ + static_cast<std::int64_t>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(hi - base_) + 1, 0);
  }
  for (std::size_t j = 0; j < other.counts_.size(); ++j) {
    std::int64_t idx = other.base_ + static_cast<std::int64_t>(j);
    counts_[static_cast<std::size_t>(idx - base_)] += other.counts_[j];
  }
  update_window();
}

std::optional<Histogram> StreamingHistogram::materialize() const {
  if (count_ == 0) return std::nullopt;
  if (!overflowed_) {
    return Histogram::from_samples(raw_, options_.scale, options_.bins);
  }
  // Lattice mode: bin edges are the occupied window in transform
  // space; products (base+j)*2^k are exact doubles (|index| < 2^39).
  double w = std::ldexp(1.0, k_);
  double tlo = static_cast<double>(base_) * w;
  double thi =
      static_cast<double>(base_ + static_cast<std::int64_t>(counts_.size())) * w;
  double lo = tlo, hi = thi;
  if (options_.scale == BinScale::kLog10) {
    lo = std::max(std::pow(10.0, tlo), 1e-300);
    hi = std::max(std::pow(10.0, thi), lo * 1.0001);
  }
  return Histogram::from_counts(options_.scale, lo, hi, counts_);
}

}  // namespace eio::stats
