#include "core/histogram.h"

#include <algorithm>
#include <cmath>

namespace eio::stats {

Histogram::Histogram(BinScale scale, double lo, double hi, std::size_t bins)
    : scale_(scale), lo_(lo), hi_(hi), counts_(bins, 0) {
  EIO_CHECK_MSG(bins >= 1, "histogram needs at least one bin");
  EIO_CHECK_MSG(hi > lo, "empty histogram range");
  if (scale_ == BinScale::kLog10) {
    EIO_CHECK_MSG(lo > 0.0, "log-scale histogram needs positive lower bound");
    tlo_ = std::log10(lo_);
    thi_ = std::log10(hi_);
  } else {
    tlo_ = lo_;
    thi_ = hi_;
  }
}

Histogram::Range Histogram::padded_range(double sample_min, double sample_max,
                                         BinScale scale) {
  double lo = sample_min, hi = sample_max;
  if (scale == BinScale::kLog10) {
    lo = std::max(lo, 1e-12);
    hi = std::max(hi, lo * 1.0001);
    lo /= 1.05;
    hi *= 1.05;
  } else {
    double pad = std::max((hi - lo) * 0.01, 1e-12);
    lo -= pad;
    hi += pad;
  }
  return {lo, hi};
}

Histogram Histogram::from_samples(std::span<const double> samples, BinScale scale,
                                  std::size_t bins) {
  EIO_CHECK_MSG(!samples.empty(), "cannot infer range from no samples");
  double lo = samples[0], hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  Range range = padded_range(lo, hi, scale);
  Histogram h(scale, range.lo, range.hi, bins);
  h.add_all(samples);
  return h;
}

void Histogram::add_all(std::span<const double> samples) {
  for (double s : samples) add(s);
}

double Histogram::bin_lower(std::size_t bin) const {
  EIO_CHECK(bin < counts_.size());
  double t = tlo_ + (thi_ - tlo_) * static_cast<double>(bin) /
                        static_cast<double>(counts_.size());
  return scale_ == BinScale::kLog10 ? std::pow(10.0, t) : t;
}

double Histogram::bin_upper(std::size_t bin) const {
  EIO_CHECK(bin < counts_.size());
  double t = tlo_ + (thi_ - tlo_) * static_cast<double>(bin + 1) /
                        static_cast<double>(counts_.size());
  return scale_ == BinScale::kLog10 ? std::pow(10.0, t) : t;
}

double Histogram::bin_center(std::size_t bin) const {
  if (scale_ == BinScale::kLog10) {
    return std::sqrt(bin_lower(bin) * bin_upper(bin));
  }
  return 0.5 * (bin_lower(bin) + bin_upper(bin));
}

double Histogram::bin_width(std::size_t bin) const {
  return bin_upper(bin) - bin_lower(bin);
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) /
           (static_cast<double>(total_) * bin_width(i));
  }
  return d;
}

void Histogram::merge(const Histogram& other) {
  EIO_CHECK_MSG(other.scale_ == scale_ && other.counts_.size() == counts_.size() &&
                    other.lo_ == lo_ && other.hi_ == hi_,
                "histogram binning mismatch in merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

}  // namespace eio::stats
