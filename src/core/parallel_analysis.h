// Chunk-parallel analysis kernels over indexed v2 traces.
//
// Each helper runs one ParallelTraceScanner map-reduce: a bounded
// partial (summary sink, histogram, rate builder) per chunk, folded by
// worker threads and merged in chunk order. Results are deterministic
// in the scanner contract's sense — identical for every --jobs value —
// and match the serial streaming path exactly wherever the underlying
// kernel merges exactly (counts, extrema, histogram bins, rate bins,
// reservoirs below capacity). Moments match to FP-merge rounding;
// quantiles past reservoir capacity are served by the merged-exact
// histogram mode (see StreamingSummary::histogram_quantile).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/rate_series.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "ipm/parallel_scan.h"

namespace eio::analysis {

/// Filter-matched duration summary (count/extrema/moments/reservoir)
/// across all admitted chunks. Chunk c's reservoir draws from
/// substream_seed(options.reservoir_seed, c), so the sample is a
/// function of the trace and options alone.
[[nodiscard]] stats::StreamingSummary scan_summary(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    const stats::SummaryOptions& options = {});

/// Per-phase duration summaries (the streaming durations_by_phase).
[[nodiscard]] std::map<std::int32_t, stats::StreamingSummary>
scan_phase_summaries(const ipm::ParallelTraceScanner& scanner,
                     const EventFilter& filter,
                     const stats::SummaryOptions& options = {});

/// Histogram of matched durations with the same automatic padded range
/// the serial two-pass binning produces (extrema scan, then fill
/// scan). nullopt when nothing matches.
[[nodiscard]] std::optional<stats::Histogram> scan_histogram(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    stats::BinScale scale, std::size_t bins);

/// Aggregate data rate of matched events; the span comes from the
/// chunk index (no extra event pass), matching aggregate_rate's batch
/// semantics.
[[nodiscard]] TimeSeries scan_rate(const ipm::ParallelTraceScanner& scanner,
                                   const EventFilter& filter,
                                   std::size_t bins);

}  // namespace eio::analysis
