// Chunk-parallel analysis kernels over indexed (v2/v3) traces.
//
// Each helper runs one ParallelTraceScanner kernel-set map-reduce: a
// bounded kernel (summary sink, streaming histogram, rate builder — or
// a KernelSet fusing several) per chunk, folded by worker threads and
// merged in chunk order. Results are deterministic in the scanner
// contract's sense — identical for every --jobs value — and match the
// serial streaming path exactly wherever the underlying kernel merges
// exactly (counts, extrema, histogram bins, rate bins, reservoirs
// below capacity). Moments match to FP-merge rounding; quantiles past
// reservoir capacity are served by the merged-exact histogram mode
// (see StreamingSummary::histogram_quantile).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/rng.h"
#include "core/kernel.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "ipm/parallel_scan.h"

namespace eio::analysis {

/// Summary options for one chunk of a parallel scan: chunk c's
/// reservoir draws from substream_seed(base seed, c), so the sample is
/// a function of the trace and options alone — never of worker
/// scheduling. Serial (non-indexed) passes use chunk 0.
[[nodiscard]] inline stats::SummaryOptions chunk_summary_options(
    const stats::SummaryOptions& base, std::size_t chunk) {
  stats::SummaryOptions per_chunk = base;
  per_chunk.reservoir_seed = rng::substream_seed(base.reservoir_seed, chunk);
  return per_chunk;
}

/// Run a kernel factory over a trace in ONE pass: chunk-parallel via
/// the scanner when the trace is indexed, a single serial columnar
/// pass (as the factory's chunk-0 kernel) otherwise. Either way every
/// kernel of the set sees the decode exactly once.
template <typename MakeKernel>
[[nodiscard]] auto run_kernels(
    const ipm::TraceSource& source,
    const std::optional<ipm::ParallelTraceScanner>& scanner,
    const ipm::ChunkHint& hint, const MakeKernel& make) {
  if (scanner) return scanner->scan_kernels(make, &hint);
  auto kernel = make(std::size_t{0});
  source.for_each_columns_hinted(
      hint, kernel.required_columns(),
      [&kernel](const ipm::ColumnBatch& batch) { kernel.add_batch(batch); });
  return kernel;
}

/// Filter-matched duration summary (count/extrema/moments/reservoir)
/// across all admitted chunks.
[[nodiscard]] stats::StreamingSummary scan_summary(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    const stats::SummaryOptions& options = {});

/// Per-phase duration summaries (the streaming durations_by_phase).
[[nodiscard]] std::map<std::int32_t, stats::StreamingSummary>
scan_phase_summaries(const ipm::ParallelTraceScanner& scanner,
                     const EventFilter& filter,
                     const stats::SummaryOptions& options = {});

/// Histogram of matched durations in ONE scan (StreamingHistogram:
/// identical to the historical two-pass padded-range + fill binning
/// while the matched count fits the exact buffer, a deterministic
/// power-of-two lattice beyond it). nullopt when nothing matches.
[[nodiscard]] std::optional<stats::Histogram> scan_histogram(
    const ipm::ParallelTraceScanner& scanner, const EventFilter& filter,
    stats::BinScale scale, std::size_t bins);

/// Aggregate data rate of matched events; the span comes from the
/// chunk index (no extra event pass), matching aggregate_rate's batch
/// semantics.
[[nodiscard]] TimeSeries scan_rate(const ipm::ParallelTraceScanner& scanner,
                                   const EventFilter& filter,
                                   std::size_t bins);

}  // namespace eio::analysis
