// Law-of-Large-Numbers (transfer-splitting) analysis.
//
// Section III-A of the paper: splitting one 512 MB transfer into k
// write() calls makes each task's total time t_k a sum of k draws, so
// the distribution of t_k narrows (σ/µ shrinks ~1/√k for independent
// draws), becomes more Gaussian (skew → 0), and its worst case — the
// Nth order statistic that sets the phase run time — moves in toward
// the mean, improving the reported data rate by up to 16%.
//
// These helpers quantify that effect for measured per-call samples and
// predict it for hypothetical k via resampled convolution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/distribution.h"

namespace eio::stats {

/// Narrowing metrics of a per-task total-time distribution.
struct SplittingMetrics {
  std::size_t k = 1;          ///< calls per task
  Moments moments;            ///< of the per-task totals
  double expected_worst = 0;  ///< E[max over n_tasks] (plug-in estimate)
  double reported_rate = 0;   ///< total_bytes / expected_worst
};

/// Group consecutive per-call durations into per-task totals: samples
/// are ordered per task (k entries each); returns the n_tasks sums.
[[nodiscard]] std::vector<double> sum_groups(std::span<const double> per_call,
                                             std::size_t k);

/// Metrics for measured per-task totals.
[[nodiscard]] SplittingMetrics analyze_splitting(std::span<const double> totals,
                                                 std::size_t k,
                                                 std::size_t n_tasks,
                                                 double total_bytes);

/// Predict t_k distributions for each k in `ks` by convolving the base
/// per-call distribution with itself (Monte-Carlo resampling), scaling
/// call durations by 1/k (k smaller transfers). Returns per-k metrics.
[[nodiscard]] std::vector<SplittingMetrics> predict_splitting(
    const EmpiricalDistribution& base_single_call, std::span<const std::size_t> ks,
    std::size_t n_tasks, double total_bytes, std::size_t trials,
    std::uint64_t seed);

}  // namespace eio::stats
