// Automatic bottleneck diagnosis from ensemble statistics.
//
// The paper closes by proposing that IPM-I/O "will be expanded to
// detect an application's I/O patterns". This module implements that
// extension: each detector encodes one of the paper's diagnostic
// arguments as a rule over the trace's ensemble statistics, and
// returns a structured finding when it fires.
//
//  * kHarmonicModes      — Figure 1c: completion-time modes at T, T/2,
//                          T/4 ⇒ intra-node stream serialization;
//  * kReadDeterioration  — Figure 5a: per-phase read times strictly
//                          worsening across phases ⇒ middleware
//                          (read-ahead) pathology;
//  * kHeavyReadTail      — Figure 4c: a read tail orders of magnitude
//                          past the median mode;
//  * kMetadataSerialization — Figure 6g: small ops concentrated on one
//                          rank occupying a large share of run time
//                          ⇒ aggregate/defer metadata;
//  * kSubFairShare       — Figure 6c/f: per-task rate mass far below
//                          fair share with unaligned offsets present
//                          ⇒ align transfers to the stripe size;
//  * kSplittingOpportunity — Figure 2: one large transfer per barrier
//                          phase ⇒ split calls / collective buffering
//                          (LLN narrowing);
//  * kDegradedOst        — §IV degraded-component signature: a slow
//                          duration mode concentrated on the files of
//                          one OST ⇒ failing disk / RAID rebuild on
//                          that OST (needs DiagnoserOptions::ost_count);
//  * kStragglerRank      — order-statistics signature: the same rank
//                          finishes phases far behind the second-
//                          slowest ⇒ a slow host, not random noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "ipm/trace.h"

namespace eio::analysis {

/// Detector identities.
enum class FindingCode : std::uint8_t {
  kHarmonicModes,
  kReadDeterioration,
  kHeavyReadTail,
  kMetadataSerialization,
  kSubFairShare,
  kSplittingOpportunity,
  kDegradedOst,
  kStragglerRank,
};

[[nodiscard]] const char* finding_name(FindingCode code) noexcept;

/// One diagnostic result.
struct Finding {
  FindingCode code{};
  double severity = 0.0;  ///< 0..1, how strongly the rule fired
  std::string message;    ///< human-readable diagnosis + suggested fix
  double metric = 0.0;    ///< detector-specific headline number
};

/// Tunables for the detectors.
struct DiagnoserOptions {
  Rate fair_share_rate = 0.0;  ///< per-task fair-share bytes/s (0 = skip
                               ///< the sub-fair-share detector)
  Bytes stripe_size = 1 * MiB;
  double harmonic_tolerance = 0.25;
  double tail_ratio = 8.0;        ///< p99/median beyond this = heavy tail
  double metadata_share = 0.25;   ///< rank-0 small-op time share threshold
  std::size_t min_events = 32;    ///< below this, detectors stay silent
  /// OSTs on the machine the trace came from (0 = skip the degraded-OST
  /// detector). File ids are attributed to OSTs by the creation-order
  /// round-robin `(file - 1) % ost_count` — exact for the single-stripe
  /// file-per-process layouts where per-OST attribution is meaningful.
  std::uint32_t ost_count = 0;
  double degraded_ratio = 2.5;   ///< slow-cluster split vs median duration
  double straggler_gap = 1.5;    ///< slowest/2nd-slowest phase-time ratio
};

/// Run every detector over the trace; findings sorted by severity.
[[nodiscard]] std::vector<Finding> diagnose(const ipm::Trace& trace,
                                            const DiagnoserOptions& options = {});

}  // namespace eio::analysis
