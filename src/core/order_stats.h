// Order statistics of I/O event ensembles.
//
// Equation (1) of the paper: the distribution of the largest of N
// observations is f_N(t) = N F(t)^{N-1} f(t). In a synchronous phase
// the job waits for the slowest task, so f_N — not f — governs run
// time, and "as N increases, F(t)^{N-1} quickly converges to a step
// function picking out a point in the right-hand tail". These helpers
// evaluate f_N/F_N against analytic or empirical base distributions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/distribution.h"

namespace eio::stats {

/// Probability density of the maximum of n iid draws, given the base
/// pdf f and cdf F: f_N(t) = N * F(t)^(N-1) * f(t).
[[nodiscard]] double max_order_pdf(double t, std::size_t n,
                                   const std::function<double(double)>& pdf,
                                   const std::function<double(double)>& cdf);

/// CDF of the maximum of n iid draws: F_N(t) = F(t)^N.
[[nodiscard]] double max_order_cdf(double t, std::size_t n,
                                   const std::function<double(double)>& cdf);

/// Quantile of the maximum: F_N^{-1}(q) = F^{-1}(q^{1/N}) applied to an
/// empirical base distribution.
[[nodiscard]] double max_order_quantile(const EmpiricalDistribution& base,
                                        std::size_t n, double q);

/// Evaluate f_N on a grid against an empirical base distribution
/// (density from a histogram-difference estimate of F).
struct MaxOrderCurve {
  std::vector<double> t;
  std::vector<double> density;
};
[[nodiscard]] MaxOrderCurve max_order_curve(const EmpiricalDistribution& base,
                                            std::size_t n,
                                            std::size_t grid_points = 256);

/// Monte-Carlo estimate of E[max of n draws] by resampling the
/// empirical distribution (used to cross-check the plug-in estimator).
[[nodiscard]] double expected_max_monte_carlo(const EmpiricalDistribution& base,
                                              std::size_t n, std::size_t trials,
                                              std::uint64_t seed);

}  // namespace eio::stats
