// Trace diagrams (Figures 1a, 4a/d, 5c, 6a/d/g/j).
//
// The classic IPM-I/O picture: one horizontal line per task (task 0 on
// top), wall-clock time on the x axis, colored bars while the task is
// inside an I/O call. Rendered here as a downsampled character raster:
// '#' write, 'o' read, '+' both, '.' metadata-only, ' ' idle/barrier.
// The paper itself notes the diagram's limited value at 10,240 tasks —
// which the downsampling makes visible in exactly the same way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipm/trace.h"
#include "ipm/trace_source.h"

namespace eio::analysis {

/// A rasterized trace diagram.
class TraceDiagram {
 public:
  struct Options {
    std::size_t max_rows = 32;   ///< rank rows after downsampling
    std::size_t columns = 100;   ///< time bins
  };

  /// Streaming form: fix the geometry (rank mapping and time axis) up
  /// front, then fold events with add() in any order. Memory is
  /// O(rows * columns), independent of the event count.
  TraceDiagram(std::uint32_t ranks, double span, Options options);

  /// Build from a trace (uses trace.ranks() for the row mapping).
  TraceDiagram(const ipm::Trace& trace, Options options);

  /// Build from a source (one pass for the span, one to rasterize).
  TraceDiagram(const ipm::TraceSource& source, Options options);

  /// Fold one event into the raster.
  void add(const ipm::TraceEvent& event);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t columns() const noexcept { return cols_; }
  [[nodiscard]] double seconds_per_column() const noexcept { return dt_; }

  /// Busy-time fraction of a cell attributable to writes / reads.
  [[nodiscard]] double write_fraction(std::size_t row, std::size_t col) const;
  [[nodiscard]] double read_fraction(std::size_t row, std::size_t col) const;

  /// Fraction of all cells that are idle (the "mostly white space"
  /// observation of Figure 6a).
  [[nodiscard]] double idle_fraction() const;

  /// Character raster, one string per row.
  [[nodiscard]] std::vector<std::string> render() const;

  /// render() joined with newlines plus an x-axis ruler.
  [[nodiscard]] std::string render_text() const;

 private:
  [[nodiscard]] double& cell(std::vector<double>& plane, std::size_t row,
                             std::size_t col) {
    return plane[row * cols_ + col];
  }
  [[nodiscard]] double plane_at(const std::vector<double>& plane, std::size_t row,
                                std::size_t col) const {
    return plane[row * cols_ + col];
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double dt_ = 0.0;
  double span_ = 0.0;
  double ranks_per_row_ = 1.0;
  std::vector<double> write_;  ///< busy fraction per cell
  std::vector<double> read_;
  std::vector<double> meta_;
};

}  // namespace eio::analysis
