// Observability exporters: Chrome trace-event JSON, flat metrics
// reports, and the --obs-summary table.
//
// The Chrome trace loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one process, one track per registry thread id,
// balanced B/E duration events reconstructed from the recorded span
// intervals. The metrics report has a deliberately layered layout:
//
//   {
//     "schema_version": 1,
//     "generated_at": "...",          <- wall clock, varies
//     "build": { ... },               <- configure-time provenance
//     "counters": { name: value },    <- deterministic: byte-identical
//                                        for any --jobs value
//     "gauges": { name: value },
//     "spans": { name: {count, total_s, mean_s, p50_s, p95_s, ...} }
//   }
//
// so consumers diffing two runs can compare the counter section
// exactly while treating timings as distributions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace eio::obs {

/// Version of the metrics-report layout (also stamped into the bench
/// JSON files by bench/bench_common.h).
inline constexpr int kMetricsSchemaVersion = 1;

/// Write `spans` as Chrome trace-event JSON. Spans from one thread are
/// emitted as properly nested, balanced B/E pairs in non-decreasing
/// timestamp order (ties broken by nesting depth, so Perfetto never
/// sees an E before its B).
void write_chrome_trace(std::ostream& out, const std::vector<NamedSpan>& spans);

/// As above, plus instant events (ph:"i") — monitor incidents and
/// other point-in-time marks, rendered by Perfetto as timeline ticks.
void write_chrome_trace(std::ostream& out, const std::vector<NamedSpan>& spans,
                        const std::vector<NamedInstant>& instants);

/// Convenience: export the registry's current spans and instants.
void write_chrome_trace(std::ostream& out);

/// The layered metrics report described above.
void write_metrics_json(std::ostream& out, const Snapshot& snap);

/// Flat TSV: `kind<TAB>name<TAB>value...` rows (counters, gauges, then
/// span statistics), for spreadsheet/awk consumers.
void write_metrics_tsv(std::ostream& out, const Snapshot& snap);

/// Human-readable end-of-run table (the --obs-summary output).
void print_summary(std::ostream& out, const Snapshot& snap);

/// Pick JSON or TSV from the path suffix (".tsv" selects TSV) and
/// write the file. Throws std::runtime_error when the file cannot be
/// written.
void write_metrics_file(const std::string& path, const Snapshot& snap);

/// Write the registry's spans as a Chrome trace file. Throws
/// std::runtime_error when the file cannot be written.
void write_chrome_trace_file(const std::string& path);

}  // namespace eio::obs
