#include "obs/build_info.h"

#include <cstdio>
#include <ctime>
#include <ostream>

namespace eio::obs {

// The CMake side injects these through COMPILE_DEFINITIONS on this one
// translation unit; missing definitions (e.g. a bare compiler
// invocation) degrade to "unknown" rather than failing the build.
#ifndef EIO_BUILD_VERSION
#define EIO_BUILD_VERSION "unknown"
#endif
#ifndef EIO_BUILD_GIT_SHA
#define EIO_BUILD_GIT_SHA "unknown"
#endif
#ifndef EIO_BUILD_FLAGS
#define EIO_BUILD_FLAGS "unknown"
#endif
#ifndef EIO_BUILD_TYPE
#define EIO_BUILD_TYPE "unknown"
#endif

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("g++ ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      EIO_BUILD_VERSION,    EIO_BUILD_GIT_SHA, compiler_string(),
      EIO_BUILD_FLAGS,      EIO_BUILD_TYPE,
#if defined(EIO_OBS_DISABLED)
      false,
#else
      true,
#endif
  };
  return info;
}

void write_build_info_json(std::ostream& out, const std::string& indent) {
  const BuildInfo& b = build_info();
  out << "{\n"
      << indent << "  \"version\": \"" << json_escape(b.version) << "\",\n"
      << indent << "  \"git_sha\": \"" << json_escape(b.git_sha) << "\",\n"
      << indent << "  \"compiler\": \"" << json_escape(b.compiler) << "\",\n"
      << indent << "  \"flags\": \"" << json_escape(b.flags) << "\",\n"
      << indent << "  \"build_type\": \"" << json_escape(b.build_type)
      << "\",\n"
      << indent << "  \"obs_compiled_in\": "
      << (b.obs_compiled_in ? "true" : "false") << "\n"
      << indent << "}";
}

std::string iso8601_utc_now() {
  std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace eio::obs
