// Self-observability: the process-wide metrics registry and span
// tracer.
//
// The paper's thesis — you cannot understand a parallel system without
// instrumenting it and looking at distributions of its internal events
// — applied to ensembleio itself. Every layer of the tool (sim engine,
// sink chain, chunk-parallel scanner, ensemble runner) reports into one
// Registry of named counters, gauges, and latency statistics, and
// wraps its wall-clock phases in RAII spans. Exporters (obs/export.h)
// turn the result into a Chrome trace-event JSON, a flat metrics
// report, or an end-of-run summary table.
//
// Overhead contract:
//  * compiled out (-DEIO_OBS=OFF): every macro expands to nothing;
//  * compiled in, runtime-disabled (the default): one relaxed atomic
//    load and a predictable branch per instrumentation site;
//  * enabled: counters and gauges are lock-free — each thread owns a
//    shard and bumps it through std::atomic_ref with relaxed ordering,
//    so the hot path never takes a lock and never contends a cache
//    line with another thread. Span ends and latency records take only
//    the recording thread's own shard mutex, which is uncontended
//    except while a snapshot or export is being cut.
//
// Determinism contract: counter values depend only on the work done
// (chunks decoded, events captured, bytes moved), never on thread
// interleaving — a metrics report's counter section is byte-identical
// for any --jobs value. Span timestamps and latency distributions are
// wall-clock and therefore vary run to run; they live in separate
// report sections.
//
// The latency cells reuse the repo's own streaming kernels
// (stats::StreamingMoments per shard, stats::Histogram bins merged
// exactly on snapshot), so the tool measures its runtime with the same
// mathematics it applies to I/O traces.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/distribution.h"
#include "core/histogram.h"

namespace eio::obs {

/// True when observability is compiled in (the default; configure with
/// -DEIO_OBS=OFF to compile every site out).
#if defined(EIO_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// The runtime master switch. Off by default; the CLI and benches turn
/// it on when any --chrome-trace / --metrics / --obs-summary flag is
/// present. The check is a relaxed load — safe to call from any thread
/// at any rate.
[[nodiscard]] inline bool enabled() noexcept {
  return kCompiledIn && detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Interned id of a metric or span name. Ids are dense, stable for the
/// process lifetime (reset() clears values, not names), and assigned in
/// interning order.
using MetricId = std::uint32_t;

/// One completed span, timestamped in seconds since the registry epoch.
struct SpanRecord {
  MetricId name = 0;
  std::uint32_t tid = 0;    ///< registry-assigned dense thread id
  std::uint32_t depth = 0;  ///< nesting depth inside this thread
  double t_begin = 0.0;
  double t_end = 0.0;
};

/// A SpanRecord with its name resolved (export form).
struct NamedSpan {
  std::string name;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  double t_begin = 0.0;
  double t_end = 0.0;
};

/// One instant event (a point on the timeline — e.g. a monitor
/// incident opening), timestamped like spans.
struct InstantRecord {
  MetricId name = 0;  ///< span-name id space
  std::uint32_t tid = 0;
  double t = 0.0;
};

/// An InstantRecord with its name resolved (export form).
struct NamedInstant {
  std::string name;
  std::uint32_t tid = 0;
  double t = 0.0;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// Merged latency statistics for one span name: every per-thread shard
/// folded together (moments via Pébay's pairwise update, histogram bins
/// exactly).
struct LatencySummary {
  std::string name;
  stats::Moments moments;  ///< of span durations, in seconds
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;  ///< histogram-bin quantiles (log-binned)
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// A merged, name-resolved view of the registry, cut at one instant.
/// Counters and gauges are sorted by name so serialized snapshots are
/// deterministic.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<LatencySummary> latency;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
};

/// The process-wide registry. All members are thread-safe.
class Registry {
 public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Intern a name (idempotent). Counter, gauge, and span names live in
  /// separate id spaces.
  [[nodiscard]] MetricId counter_id(std::string_view name);
  [[nodiscard]] MetricId gauge_id(std::string_view name);
  [[nodiscard]] MetricId span_id(std::string_view name);

  /// Lock-free on the hot path (per-thread shard, relaxed atomic_ref).
  void counter_add(MetricId id, std::uint64_t delta);
  /// Gauges sum across threads: add/sub track shared totals (queue
  /// depths); set() from a single thread records an absolute value.
  void gauge_add(MetricId id, std::int64_t delta);
  void gauge_set(MetricId id, std::int64_t value);

  /// Record one completed span: appends a SpanRecord and folds the
  /// duration into the per-thread latency cell for `id`. Takes only the
  /// calling thread's shard mutex.
  void span_end(MetricId id, double t_begin, double t_end,
                std::uint32_t depth);

  /// Record an instant event at now() (span-name id space). Instants
  /// land on the Chrome-trace timeline next to the spans; they carry
  /// no latency cell.
  void instant_mark(MetricId id);

  /// Current nesting depth bookkeeping for the calling thread (used by
  /// Span; owner-thread-only, no synchronization needed).
  [[nodiscard]] std::uint32_t enter_span();
  void leave_span();

  /// Seconds since the registry epoch (steady clock; reset() rebases).
  [[nodiscard]] double now() const noexcept;

  /// Merge every shard into one name-resolved view.
  [[nodiscard]] Snapshot snapshot() const;

  /// All recorded spans, name-resolved, in per-thread completion order.
  [[nodiscard]] std::vector<NamedSpan> spans() const;

  /// All recorded instants, name-resolved, in per-thread record order.
  [[nodiscard]] std::vector<NamedInstant> instants() const;

  /// Zero every counter/gauge, drop spans and latency cells, and rebase
  /// the epoch. Interned names and thread ids survive. Must not be
  /// called while a span is open.
  void reset();

 private:
  Registry();
  ~Registry();  // defined where Shard/Names are complete

  struct Shard;
  struct Names;

  [[nodiscard]] Shard& local_shard();

  std::unique_ptr<Names> names_;
  mutable std::mutex shards_mu_;  ///< guards the shard list itself
  std::vector<std::shared_ptr<Shard>> shards_;
  /// Epoch as a raw steady_clock tick count, atomic so reset() can
  /// rebase while other threads stamp spans.
  std::atomic<std::chrono::steady_clock::rep> epoch_{0};
};

/// RAII wall-clock span. Construction samples the clock and pushes the
/// thread's span stack; destruction records the completed SpanRecord
/// and its duration. A span built while obs is disabled records
/// nothing, even if obs is enabled before it closes.
class Span {
 public:
  explicit Span(MetricId id) {
    if (!enabled()) return;
    Registry& r = Registry::instance();
    id_ = id;
    depth_ = r.enter_span();
    t_begin_ = r.now();
    active_ = true;
  }

  ~Span() {
    if (!active_) return;
    Registry& r = Registry::instance();
    r.span_end(id_, t_begin_, r.now(), depth_);
    r.leave_span();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  MetricId id_ = 0;
  std::uint32_t depth_ = 0;
  double t_begin_ = 0.0;
  bool active_ = false;
};

/// Record a named instant event (no-op while disabled). Unlike the
/// macros below the name may be dynamic — instants are rare (monitor
/// incidents), so per-call interning is fine.
inline void record_instant(std::string_view name) {
  if (!enabled()) return;
  Registry& r = Registry::instance();
  r.instant_mark(r.span_id(name));
}

}  // namespace eio::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal (or at least
// stable for the process lifetime); interning happens once per site via
// a function-local static.

#define EIO_OBS_CONCAT2(a, b) a##b
#define EIO_OBS_CONCAT(a, b) EIO_OBS_CONCAT2(a, b)

#if defined(EIO_OBS_DISABLED)

// The value expression stays unevaluated (sizeof operand) so arguments
// that only exist to feed a metric don't trip -Wunused when the layer
// is compiled out, yet still cost nothing.
#define OBS_SPAN(name) ((void)0)
#define OBS_COUNTER_ADD(name, delta) ((void)sizeof(delta))
#define OBS_GAUGE_ADD(name, delta) ((void)sizeof(delta))
#define OBS_GAUGE_SET(name, value) ((void)sizeof(value))

#else

/// Open a wall-clock span that closes at end of scope.
#define OBS_SPAN(name)                                                     \
  static const ::eio::obs::MetricId EIO_OBS_CONCAT(eio_obs_sid_,           \
                                                   __LINE__) =             \
      ::eio::obs::Registry::instance().span_id(name);                      \
  ::eio::obs::Span EIO_OBS_CONCAT(eio_obs_span_, __LINE__)(                \
      EIO_OBS_CONCAT(eio_obs_sid_, __LINE__))

/// Bump a named counter by `delta` (no-op while disabled).
#define OBS_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    if (::eio::obs::enabled()) {                                           \
      static const ::eio::obs::MetricId eio_obs_cid =                      \
          ::eio::obs::Registry::instance().counter_id(name);               \
      ::eio::obs::Registry::instance().counter_add(                        \
          eio_obs_cid, static_cast<std::uint64_t>(delta));                 \
    }                                                                      \
  } while (0)

#define OBS_GAUGE_ADD(name, delta)                                         \
  do {                                                                     \
    if (::eio::obs::enabled()) {                                           \
      static const ::eio::obs::MetricId eio_obs_gid =                      \
          ::eio::obs::Registry::instance().gauge_id(name);                 \
      ::eio::obs::Registry::instance().gauge_add(                          \
          eio_obs_gid, static_cast<std::int64_t>(delta));                  \
    }                                                                      \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                         \
  do {                                                                     \
    if (::eio::obs::enabled()) {                                           \
      static const ::eio::obs::MetricId eio_obs_gid =                      \
          ::eio::obs::Registry::instance().gauge_id(name);                 \
      ::eio::obs::Registry::instance().gauge_set(                          \
          eio_obs_gid, static_cast<std::int64_t>(value));                  \
    }                                                                      \
  } while (0)

#endif  // EIO_OBS_DISABLED
