// Build provenance: which binary produced this output?
//
// Every exported artifact (metrics reports, Chrome traces,
// BENCH_*.json rows) embeds the same block — git SHA, compiler, flags,
// build type — so a number can always be traced back to the commit and
// configuration that produced it. Values are captured at CMake
// configure time (see src/obs/CMakeLists.txt) and fall back to
// "unknown" when built outside the repo.
#pragma once

#include <iosfwd>
#include <string>

namespace eio::obs {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_sha;     ///< HEAD at configure time ("unknown" outside git)
  std::string compiler;    ///< compiler id + version (predefined macros)
  std::string flags;       ///< CMAKE_CXX_FLAGS + per-config flags
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  bool obs_compiled_in = true;
};

/// The process's build provenance (computed once).
[[nodiscard]] const BuildInfo& build_info();

/// Emit the provenance as a JSON object, each line prefixed with
/// `indent` (no trailing newline after the closing brace).
void write_build_info_json(std::ostream& out, const std::string& indent);

/// Current wall-clock time as ISO-8601 UTC ("2026-08-05T12:34:56Z").
[[nodiscard]] std::string iso8601_utc_now();

}  // namespace eio::obs
