#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/streaming.h"

namespace eio::obs {

namespace {

/// Fixed log10 binning for span durations: 1 ns .. 1000 s, 4 bins per
/// decade. Every latency cell shares it, so shard histograms merge
/// exactly and quantiles are bin-center estimates with a known bound.
constexpr double kLatencyLo = 1e-9;
constexpr double kLatencyHi = 1e3;
constexpr std::size_t kLatencyBins = 48;

/// Span records kept per thread before dropping (and counting the
/// drops): bounds memory on pathological always-on captures.
constexpr std::size_t kMaxSpansPerShard = 1u << 20;

stats::Histogram make_latency_histogram() {
  return stats::Histogram(stats::BinScale::kLog10, kLatencyLo, kLatencyHi,
                          kLatencyBins);
}

/// Quantile from exact histogram bins: center of the bin holding the
/// rank-ceil(q*N) sample (same convention as
/// stats::StreamingSummary::histogram_quantile).
double histogram_quantile(const stats::Histogram& h, std::size_t n, double q) {
  if (n == 0) return 0.0;
  auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = h.underflow();
  if (seen >= rank) return h.lo();
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    seen += h.count(b);
    if (seen >= rank) return h.bin_center(b);
  }
  return h.hi();
}

}  // namespace

/// One latency cell: the shard-local accumulators for one span name.
struct LatencyCell {
  stats::StreamingMoments moments;
  stats::Histogram hist = make_latency_histogram();
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double d) {
    if (moments.count() == 0) {
      min = max = d;
    } else {
      min = std::min(min, d);
      max = std::max(max, d);
    }
    moments.add(d);
    hist.add(d);
    total += d;
  }
};

/// Per-thread storage. Counters/gauges are written only by the owning
/// thread (through relaxed atomic_ref) and read by snapshots; `mu`
/// excludes the rare structural changes (vector growth) and snapshot
/// reads from each other. Latency cells and span records are mutated
/// under `mu` (uncontended for the owner except while a snapshot is
/// being cut).
struct Registry::Shard {
  mutable std::mutex mu;
  std::vector<std::uint64_t> counters;
  std::vector<std::int64_t> gauges;
  std::vector<LatencyCell> latency;
  std::vector<SpanRecord> spans;
  std::vector<InstantRecord> instants;
  std::uint64_t spans_dropped = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< owner-thread-only span nesting depth
};

struct Registry::Names {
  std::mutex mu;
  std::map<std::string, MetricId, std::less<>> counters;
  std::map<std::string, MetricId, std::less<>> gauges;
  std::map<std::string, MetricId, std::less<>> spans;

  static MetricId intern(std::map<std::string, MetricId, std::less<>>& table,
                         std::string_view name) {
    auto it = table.find(name);
    if (it != table.end()) return it->second;
    auto id = static_cast<MetricId>(table.size());
    table.emplace(std::string(name), id);
    return id;
  }

  /// name-by-id view (ids are dense interning ranks).
  static std::vector<std::string> resolve(
      const std::map<std::string, MetricId, std::less<>>& table) {
    std::vector<std::string> names(table.size());
    for (const auto& [name, id] : table) names[id] = name;
    return names;
  }
};

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: shards
  return *registry;                            // outlive exiting threads
}

Registry::~Registry() = default;

Registry::Registry() : names_(std::make_unique<Names>()) {
  epoch_.store(std::chrono::steady_clock::now().time_since_epoch().count(),
               std::memory_order_relaxed);
}

MetricId Registry::counter_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_->mu);
  return Names::intern(names_->counters, name);
}

MetricId Registry::gauge_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_->mu);
  return Names::intern(names_->gauges, name);
}

MetricId Registry::span_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_->mu);
  return Names::intern(names_->spans, name);
}

Registry::Shard& Registry::local_shard() {
  thread_local std::shared_ptr<Shard> shard = [this] {
    auto s = std::make_shared<Shard>();
    std::lock_guard<std::mutex> lock(shards_mu_);
    s->tid = static_cast<std::uint32_t>(shards_.size());
    shards_.push_back(s);
    return s;
  }();
  return *shard;
}

void Registry::counter_add(MetricId id, std::uint64_t delta) {
  Shard& s = local_shard();
  if (id >= s.counters.size()) {
    // Growth is owner-only and rare; the lock fences it against a
    // concurrent snapshot walking the vector.
    std::lock_guard<std::mutex> lock(s.mu);
    s.counters.resize(id + 1, 0);
  }
  std::atomic_ref<std::uint64_t>(s.counters[id])
      .fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_add(MetricId id, std::int64_t delta) {
  Shard& s = local_shard();
  if (id >= s.gauges.size()) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.gauges.resize(id + 1, 0);
  }
  std::atomic_ref<std::int64_t>(s.gauges[id])
      .fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_set(MetricId id, std::int64_t value) {
  Shard& s = local_shard();
  if (id >= s.gauges.size()) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.gauges.resize(id + 1, 0);
  }
  std::atomic_ref<std::int64_t>(s.gauges[id])
      .store(value, std::memory_order_relaxed);
}

void Registry::span_end(MetricId id, double t_begin, double t_end,
                        std::uint32_t depth) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (id >= s.latency.size()) s.latency.resize(id + 1);
  s.latency[id].add(t_end - t_begin);
  if (s.spans.size() >= kMaxSpansPerShard) {
    ++s.spans_dropped;
    return;
  }
  s.spans.push_back(SpanRecord{id, s.tid, depth, t_begin, t_end});
}

void Registry::instant_mark(MetricId id) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.instants.size() >= kMaxSpansPerShard) {
    ++s.spans_dropped;
    return;
  }
  s.instants.push_back(InstantRecord{id, s.tid, now()});
}

std::uint32_t Registry::enter_span() { return local_shard().depth++; }

void Registry::leave_span() { --local_shard().depth; }

double Registry::now() const noexcept {
  using clock = std::chrono::steady_clock;
  clock::rep ticks = clock::now().time_since_epoch().count() -
                     epoch_.load(std::memory_order_relaxed);
  return static_cast<double>(ticks) *
         (static_cast<double>(clock::period::num) /
          static_cast<double>(clock::period::den));
}

Snapshot Registry::snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards = shards_;
  }
  std::vector<std::string> counter_names, gauge_names, span_names;
  {
    std::lock_guard<std::mutex> lock(names_->mu);
    counter_names = Names::resolve(names_->counters);
    gauge_names = Names::resolve(names_->gauges);
    span_names = Names::resolve(names_->spans);
  }

  std::vector<std::uint64_t> counters(counter_names.size(), 0);
  std::vector<std::int64_t> gauges(gauge_names.size(), 0);
  struct MergedCell {
    stats::StreamingMoments moments;
    stats::Histogram hist = make_latency_histogram();
    double total = 0.0, min = 0.0, max = 0.0;
    bool any = false;
  };
  std::vector<MergedCell> latency(span_names.size());
  std::uint64_t spans_recorded = 0, spans_dropped = 0;

  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (std::size_t i = 0; i < shard->counters.size() && i < counters.size();
         ++i) {
      counters[i] += std::atomic_ref<std::uint64_t>(shard->counters[i])
                         .load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard->gauges.size() && i < gauges.size();
         ++i) {
      gauges[i] += std::atomic_ref<std::int64_t>(shard->gauges[i])
                       .load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard->latency.size() && i < latency.size();
         ++i) {
      const LatencyCell& cell = shard->latency[i];
      if (cell.moments.count() == 0) continue;
      MergedCell& m = latency[i];
      m.min = m.any ? std::min(m.min, cell.min) : cell.min;
      m.max = m.any ? std::max(m.max, cell.max) : cell.max;
      m.any = true;
      m.total += cell.total;
      m.moments.merge(cell.moments);
      m.hist.merge(cell.hist);
    }
    spans_recorded += shard->spans.size();
    spans_dropped += shard->spans_dropped;
  }

  Snapshot snap;
  snap.spans_recorded = spans_recorded;
  snap.spans_dropped = spans_dropped;
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    snap.counters.push_back(CounterValue{counter_names[i], counters[i]});
  }
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    snap.gauges.push_back(GaugeValue{gauge_names[i], gauges[i]});
  }
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const MergedCell& m = latency[i];
    if (!m.any) continue;
    LatencySummary s;
    s.name = span_names[i];
    s.moments = m.moments.moments();
    s.total_s = m.total;
    s.min_s = m.min;
    s.max_s = m.max;
    std::size_t n = m.moments.count();
    s.p50_s = histogram_quantile(m.hist, n, 0.50);
    s.p95_s = histogram_quantile(m.hist, n, 0.95);
    s.p99_s = histogram_quantile(m.hist, n, 0.99);
    snap.latency.push_back(std::move(s));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.latency.begin(), snap.latency.end(), by_name);
  return snap;
}

std::vector<NamedSpan> Registry::spans() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards = shards_;
  }
  std::vector<std::string> span_names;
  {
    std::lock_guard<std::mutex> lock(names_->mu);
    span_names = Names::resolve(names_->spans);
  }
  std::vector<NamedSpan> out;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->spans.size());
    for (const SpanRecord& r : shard->spans) {
      out.push_back(NamedSpan{r.name < span_names.size() ? span_names[r.name]
                                                         : "?",
                              r.tid, r.depth, r.t_begin, r.t_end});
    }
  }
  return out;
}

std::vector<NamedInstant> Registry::instants() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards = shards_;
  }
  std::vector<std::string> span_names;
  {
    std::lock_guard<std::mutex> lock(names_->mu);
    span_names = Names::resolve(names_->spans);
  }
  std::vector<NamedInstant> out;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->instants.size());
    for (const InstantRecord& r : shard->instants) {
      out.push_back(NamedInstant{
          r.name < span_names.size() ? span_names[r.name] : "?", r.tid, r.t});
    }
  }
  return out;
}

void Registry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    std::fill(shard->gauges.begin(), shard->gauges.end(), 0);
    shard->latency.clear();
    shard->spans.clear();
    shard->instants.clear();
    shard->spans_dropped = 0;
  }
  epoch_.store(std::chrono::steady_clock::now().time_since_epoch().count(),
               std::memory_order_relaxed);
}

}  // namespace eio::obs
