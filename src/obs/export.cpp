#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/build_info.h"

namespace eio::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

/// Fixed-format double with enough precision for microsecond
/// timestamps; never scientific (Chrome's JSON parser accepts it, but
/// fixed keeps diffs and greps sane).
std::string fixed(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<NamedSpan>& spans) {
  write_chrome_trace(out, spans, {});
}

void write_chrome_trace(std::ostream& out, const std::vector<NamedSpan>& spans,
                        const std::vector<NamedInstant>& instants) {
  // Group per tid, then rebuild each thread's B/E stream with an
  // explicit stack sweep. RAII spans nest properly within a thread, so
  // sorting by (begin, depth, completion order) and closing every span
  // at depth >= the incoming one yields balanced, monotonic events even
  // when timestamps tie at microsecond resolution.
  struct Indexed {
    const NamedSpan* s;
    std::size_t seq;
  };
  std::vector<std::uint32_t> tids;
  for (const NamedSpan& s : spans) {
    if (std::find(tids.begin(), tids.end(), s.tid) == tids.end()) {
      tids.push_back(s.tid);
    }
  }
  std::sort(tids.begin(), tids.end());

  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"ensembleio\"}}";
  for (std::uint32_t tid : tids) {
    std::vector<Indexed> mine;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].tid == tid) mine.push_back(Indexed{&spans[i], i});
    }
    std::sort(mine.begin(), mine.end(), [](const Indexed& a, const Indexed& b) {
      if (a.s->t_begin != b.s->t_begin) return a.s->t_begin < b.s->t_begin;
      if (a.s->depth != b.s->depth) return a.s->depth < b.s->depth;
      return a.seq < b.seq;
    });
    auto emit = [&out, tid](const char* ph, const std::string& name,
                            double ts_s) {
      out << ",\n{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
          << ",\"ts\":" << fixed(ts_s * 1e6) << ",\"name\":\"" << escape(name)
          << "\"}";
    };
    std::vector<const NamedSpan*> stack;
    for (const Indexed& it : mine) {
      while (!stack.empty() && stack.back()->depth >= it.s->depth) {
        emit("E", stack.back()->name, stack.back()->t_end);
        stack.pop_back();
      }
      emit("B", it.s->name, it.s->t_begin);
      stack.push_back(it.s);
    }
    while (!stack.empty()) {
      emit("E", stack.back()->name, stack.back()->t_end);
      stack.pop_back();
    }
  }
  // Instant events (ph:"i") — points on the timeline next to the
  // spans; thread scope keeps Perfetto from drawing full-height bars.
  for (const NamedInstant& i : instants) {
    out << ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << i.tid
        << ",\"ts\":" << fixed(i.t * 1e6) << ",\"name\":\"" << escape(i.name)
        << "\"}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":"
         "\"ensembleio\",\"git_sha\":\""
      << escape(build_info().git_sha) << "\"}}\n";
}

void write_chrome_trace(std::ostream& out) {
  write_chrome_trace(out, Registry::instance().spans(),
                     Registry::instance().instants());
}

void write_metrics_json(std::ostream& out, const Snapshot& snap) {
  out << "{\n";
  out << "  \"schema_version\": " << kMetricsSchemaVersion << ",\n";
  out << "  \"generated_at\": \"" << iso8601_utc_now() << "\",\n";
  out << "  \"build\": ";
  write_build_info_json(out, "  ");
  out << ",\n";
  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << escape(snap.counters[i].name)
        << "\": " << snap.counters[i].value;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n";
  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << escape(snap.gauges[i].name)
        << "\": " << snap.gauges[i].value;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n";
  out << "  \"spans_recorded\": " << snap.spans_recorded << ",\n";
  out << "  \"spans_dropped\": " << snap.spans_dropped << ",\n";
  out << "  \"spans\": {";
  for (std::size_t i = 0; i < snap.latency.size(); ++i) {
    const LatencySummary& s = snap.latency[i];
    out << (i ? "," : "") << "\n    \"" << escape(s.name) << "\": {"
        << "\"count\": " << s.moments.count
        << ", \"total_s\": " << fixed(s.total_s, 6)
        << ", \"mean_s\": " << fixed(s.moments.mean, 9)
        << ", \"min_s\": " << fixed(s.min_s, 9)
        << ", \"p50_s\": " << fixed(s.p50_s, 9)
        << ", \"p95_s\": " << fixed(s.p95_s, 9)
        << ", \"p99_s\": " << fixed(s.p99_s, 9)
        << ", \"max_s\": " << fixed(s.max_s, 9) << "}";
  }
  out << (snap.latency.empty() ? "" : "\n  ") << "}\n";
  out << "}\n";
}

void write_metrics_tsv(std::ostream& out, const Snapshot& snap) {
  out << "kind\tname\tcount\tvalue\ttotal_s\tmean_s\tp50_s\tp95_s\tmax_s\n";
  for (const CounterValue& c : snap.counters) {
    out << "counter\t" << c.name << "\t\t" << c.value << "\t\t\t\t\t\n";
  }
  for (const GaugeValue& g : snap.gauges) {
    out << "gauge\t" << g.name << "\t\t" << g.value << "\t\t\t\t\t\n";
  }
  for (const LatencySummary& s : snap.latency) {
    out << "span\t" << s.name << "\t" << s.moments.count << "\t\t"
        << fixed(s.total_s, 6) << "\t" << fixed(s.moments.mean, 9) << "\t"
        << fixed(s.p50_s, 9) << "\t" << fixed(s.p95_s, 9) << "\t"
        << fixed(s.max_s, 9) << "\n";
  }
}

void print_summary(std::ostream& out, const Snapshot& snap) {
  out << "observability summary\n";
  if (!snap.counters.empty()) {
    out << "  counters:\n";
    for (const CounterValue& c : snap.counters) {
      char line[160];
      std::snprintf(line, sizeof line, "    %-36s %14llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out << line;
    }
  }
  if (!snap.gauges.empty()) {
    out << "  gauges:\n";
    for (const GaugeValue& g : snap.gauges) {
      char line[160];
      std::snprintf(line, sizeof line, "    %-36s %14lld\n", g.name.c_str(),
                    static_cast<long long>(g.value));
      out << line;
    }
  }
  if (!snap.latency.empty()) {
    out << "  spans:                                  count     total(s)"
           "      mean(s)       p95(s)       max(s)\n";
    for (const LatencySummary& s : snap.latency) {
      char line[200];
      std::snprintf(line, sizeof line,
                    "    %-36s %9zu %12.4f %12.6f %12.6f %12.6f\n",
                    s.name.c_str(), s.moments.count, s.total_s, s.moments.mean,
                    s.p95_s, s.max_s);
      out << line;
    }
  }
  if (snap.spans_dropped > 0) {
    out << "  (" << snap.spans_dropped
        << " span records dropped past the per-thread cap)\n";
  }
}

void write_metrics_file(const std::string& path, const Snapshot& snap) {
  std::ofstream file(path);
  if (!file.good()) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".tsv") == 0) {
    write_metrics_tsv(file, snap);
  } else {
    write_metrics_json(file, snap);
  }
  if (!file.good()) throw std::runtime_error("write failed: " + path);
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream file(path);
  if (!file.good()) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  write_chrome_trace(file);
  if (!file.good()) throw std::runtime_error("write failed: " + path);
}

}  // namespace eio::obs
