// File striping layout (Lustre-style round-robin RAID-0 over OSTs).
//
// A file is carved into `stripe_size` pieces; stripe i lives on OST
// `(start_ost + i) % stripe_count` (indices into the file's OST set,
// which is the first `stripe_count` OSTs rotated by `start_ost`).
// The layout answers the two questions the performance model needs:
// which OSTs an extent touches, and how many stripe boundaries it
// crosses (each boundary is an extent-lock conflict opportunity for
// unaligned shared-file writes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace eio::lustre {

/// Striping description for one file.
struct FileLayout {
  Bytes stripe_size = 1 * MiB;   ///< bytes per stripe
  std::uint32_t stripe_count = 1;  ///< number of OSTs the file uses
  OstId start_ost = 0;           ///< first OST (rotated per file)
  std::uint32_t total_osts = 1;  ///< OSTs available in the file system

  /// OST storing stripe index `stripe`.
  [[nodiscard]] OstId ost_for_stripe(std::uint64_t stripe) const noexcept {
    return static_cast<OstId>((start_ost + stripe % stripe_count) % total_osts);
  }

  /// OST holding the byte at `offset`.
  [[nodiscard]] OstId ost_for_offset(Bytes offset) const noexcept {
    return ost_for_stripe(offset / stripe_size);
  }

  /// Distinct OSTs an extent [offset, offset+length) touches.
  /// Extents spanning >= stripe_count stripes touch every OST in the
  /// file's set.
  [[nodiscard]] std::vector<OstId> osts_for_extent(Bytes offset, Bytes length) const {
    EIO_CHECK(length > 0);
    std::uint64_t first = offset / stripe_size;
    std::uint64_t last = (offset + length - 1) / stripe_size;
    std::uint64_t span = last - first + 1;
    std::vector<OstId> result;
    if (span >= stripe_count) {
      result.reserve(stripe_count);
      for (std::uint32_t i = 0; i < stripe_count; ++i) {
        result.push_back(static_cast<OstId>((start_ost + i) % total_osts));
      }
    } else {
      result.reserve(span);
      for (std::uint64_t s = first; s <= last; ++s) {
        result.push_back(ost_for_stripe(s));
      }
    }
    return result;
  }

  /// Number of stripe-boundary crossings inside the extent (0 when the
  /// extent fits in one stripe).
  [[nodiscard]] std::uint64_t boundaries_crossed(Bytes offset, Bytes length) const noexcept {
    if (length == 0) return 0;
    std::uint64_t first = offset / stripe_size;
    std::uint64_t last = (offset + length - 1) / stripe_size;
    return last - first;
  }

  /// True when both ends of the extent sit on stripe boundaries
  /// (no read-modify-write and no shared-stripe lock conflicts).
  [[nodiscard]] bool aligned(Bytes offset, Bytes length) const noexcept {
    return offset % stripe_size == 0 && (offset + length) % stripe_size == 0;
  }
};

}  // namespace eio::lustre
