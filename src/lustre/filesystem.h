// The Lustre-like parallel file system model.
//
// `Filesystem` is the facade the POSIX layer talks to. It owns the
// fluid-flow network (NICs + OSTs), the serialized metadata service,
// per-node client caches, and the read-ahead tracker, and it translates
// read/write requests into flows with the cost-model features the
// paper's case studies hinge on:
//
//  * write-back absorption up to a per-node dirty ceiling (the initial
//    fast plateau of Figure 1(b)), with background drain flows and the
//    memory pressure that arms the read-ahead defect;
//  * the strided read-ahead bug (Figures 4–5): strided reads recognized
//    on the 3rd match are serviced as 4 KiB page reads when the client
//    is under dirty-memory pressure, progressively worse per match;
//  * unaligned shared-file writes: read-modify-write byte inflation
//    plus per-stripe-boundary lock latency (Figure 6(g–i));
//  * a serialized small-I/O path for sub-threshold transfers, modelling
//    HDF5 metadata traffic through the MDS (Figure 6(j–l));
//  * lognormal service noise and rare Pareto stragglers (the run-to-run
//    event variability that motivates ensemble analysis).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "fault/injector.h"
#include "lustre/machine.h"
#include "lustre/readahead.h"
#include "lustre/striping.h"
#include "sim/engine.h"
#include "sim/fluid.h"
#include "sim/run_context.h"
#include "sim/serial_server.h"

namespace eio::lustre {

/// Completion callback for asynchronous file-system requests. Inline
/// (no heap) and move-only: one is created per data op, so a heap
/// capture here would put an allocation on the simulator hot path.
/// 160 bytes fits the POSIX layer's completion chain (its finish
/// lambda nests a SizeCallback) with room to grow a few words.
using IoCallback = sim::InlineFunction<void(), 160>;

/// Options fixed at file creation.
struct FileOptions {
  std::uint32_t stripe_count = 1;  ///< OSTs the file stripes over
  bool shared = false;             ///< opened by more than one node
};

/// Summary counters exposed for tests and reports.
struct FilesystemStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t small_ops = 0;
  std::uint64_t degraded_reads = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  Bytes bytes_absorbed = 0;
};

/// Facade over the simulated storage system.
class Filesystem {
 public:
  /// Build a file system backing `node_count` client nodes on the given
  /// platform. All state — clock, flows, caches, RNG substreams — is
  /// owned by or derived from `run`, never shared across runs.
  /// `injector` (optional, not owned, same run) perturbs bulk data ops
  /// per its fault plan: jitter stalls here, slow-OST windows armed on
  /// the fluid network at construction.
  Filesystem(sim::RunContext& run, const MachineConfig& machine,
             std::uint32_t node_count, fault::Injector* injector = nullptr);

  Filesystem(const Filesystem&) = delete;
  Filesystem& operator=(const Filesystem&) = delete;

  /// Create a file; returns its id. `start_ost` rotates per file.
  FileId create(std::string name, const FileOptions& options);

  /// Layout of an existing file.
  [[nodiscard]] const FileLayout& layout(FileId file) const;

  /// Look up a file id by name (kInvalidFile when absent).
  [[nodiscard]] FileId lookup(const std::string& name) const;

  /// High-water mark of written extents (the POSIX "file size").
  [[nodiscard]] Bytes size(FileId file) const;

  /// Write `length` bytes at `offset`; `done` fires when the call would
  /// return to the application (absorbed into cache or fully drained).
  /// `rank` identifies the issuing process (per-process read-ahead
  /// streams; the node is the Lustre client).
  void write(NodeId node, RankId rank, FileId file, Bytes offset, Bytes length,
             IoCallback done);

  /// Read `length` bytes at `offset`.
  void read(NodeId node, RankId rank, FileId file, Bytes offset, Bytes length,
            IoCallback done);

  /// Wait for every outstanding background drain from `node`.
  void flush(NodeId node, IoCallback done);

  /// Start the other-jobs interference stream (no-op unless
  /// machine.background.enabled). Runs until stop_background().
  void start_background();

  /// Stop generating interference (in-flight requests drain normally).
  void stop_background();

  /// Interference bytes injected so far.
  [[nodiscard]] Bytes background_bytes() const noexcept {
    return background_bytes_;
  }

  /// Dirty (absorbed, not yet drained) bytes on a node.
  [[nodiscard]] Bytes dirty(NodeId node) const;

  /// Cached-page residue of recently completed writes on a node.
  [[nodiscard]] Bytes residue(NodeId node) const;

  /// True when the node's client memory is under enough pressure to arm
  /// the read-ahead defect for reads of `file`: dirty/residue load on
  /// the node, or the job still interleaving writes into the file.
  [[nodiscard]] bool under_pressure(NodeId node, FileId file) const;

  [[nodiscard]] const FilesystemStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MachineConfig& machine() const noexcept { return machine_; }
  [[nodiscard]] sim::FluidNetwork& network() noexcept { return network_; }
  [[nodiscard]] const sim::FluidNetwork& network() const noexcept { return network_; }
  [[nodiscard]] sim::SerialServer& mds() noexcept { return mds_; }
  [[nodiscard]] ReadaheadTracker& readahead() noexcept { return readahead_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Base latency charged for open/seek/close style calls.
  [[nodiscard]] Seconds syscall_latency() const noexcept {
    return machine_.syscall_latency;
  }

 private:
  struct FileState {
    std::string name;
    FileLayout layout;
    bool shared = false;
    bool saw_unaligned = false;  ///< any unaligned shared write so far
    Bytes size = 0;              ///< high-water mark of written extents
    Seconds last_write_done = -1e18;  ///< job-wide most recent write
  };

  struct NodeState {
    Bytes dirty = 0;                ///< absorbed bytes not yet drained
    Bytes residue = 0;              ///< cached pages of completed writes
    Bytes sync_in_flight = 0;       ///< bytes in synchronous write flows
    std::uint32_t drains = 0;       ///< active background drain flows
    std::vector<IoCallback> flush_waiters;
    rng::Stream noise;
    rng::Stream straggler;
    rng::Stream readahead;
  };

  /// Multiplicative slowdown: lognormal noise, occasionally a straggler.
  /// Applied as a post-transfer time tax of (slowdown-1) x the event's
  /// measured service time, so splitting transfers into more calls
  /// averages it away — the Law-of-Large-Numbers effect of Figure 2.
  [[nodiscard]] double draw_slowdown(NodeState& n);
  void write_impl(NodeId node, RankId rank, FileId file, Bytes offset,
                  Bytes length, IoCallback done);
  void read_impl(NodeId node, RankId rank, FileId file, Bytes offset,
                 Bytes length, IoCallback done);
  void start_drain(NodeId node, FileId file, Bytes offset, Bytes bytes);
  void start_sync_write(NodeId node, FileId file, Bytes offset, Bytes length,
                        Seconds pre_delay, double inflation, IoCallback done);
  void small_io(NodeId node, const FileState& f, bool is_write, Bytes length,
                IoCallback done);
  void finish_drain(NodeId node, Bytes bytes);
  void background_arrival();

  [[nodiscard]] static sim::FluidNetwork::Config network_config(
      const MachineConfig& machine, std::uint32_t node_count,
      std::uint64_t seed);

  sim::Engine& engine_;
  fault::Injector* injector_;  ///< optional, not owned, same run
  MachineConfig machine_;
  sim::FluidNetwork network_;
  sim::SerialServer mds_;
  ReadaheadTracker readahead_;
  std::vector<NodeState> nodes_;
  std::unordered_map<FileId, FileState> files_;
  std::unordered_map<std::string, FileId> names_;
  FileId next_file_ = 1;
  OstId next_start_ost_ = 0;
  FilesystemStats stats_;
  // interference generator: the phantom node is the last NIC index
  bool background_active_ = false;
  sim::EventId background_event_ = sim::kInvalidEvent;
  Bytes background_bytes_ = 0;
  rng::Stream background_rng_;
};

}  // namespace eio::lustre
