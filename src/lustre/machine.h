// Hardware/middleware configuration of a simulated platform.
//
// Two calibrated presets mirror the paper's testbeds: `franklin()`
// (NERSC Cray XT4, Lustre scratch with 48 OSTs, the strided read-ahead
// bug present) and `jaguar()` (ORNL XT4 partition, 144 OSTs, no bug).
// Absolute bandwidths are calibrated so that the paper's headline run
// times land in the right ballpark; the *mechanisms* (token scheduling,
// client-count contention, alignment penalties, the read-ahead bug) are
// what the reproduction rests on.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/fluid.h"

namespace eio::lustre {

/// Interference from other jobs sharing the file system ("factors
/// affecting performance include the load from other jobs on the HPC
/// system"). Modeled as a Poisson stream of bulk requests from a
/// phantom client node against random OSTs.
struct BackgroundLoad {
  bool enabled = false;
  /// Target fraction of aggregate OST bandwidth consumed on average.
  double intensity = 0.2;
  Bytes mean_request = 32 * MiB;   ///< exponential request sizes
  std::uint32_t spread = 2;        ///< OSTs touched per request
  /// Distinct phantom client nodes the interference appears to come
  /// from (other jobs are many clients, so they claim many per-client
  /// OST shares, not one).
  std::uint32_t phantom_nodes = 32;
};

/// Everything the file-system model needs to know about a platform.
struct MachineConfig {
  std::string name = "franklin";

  // --- fabric ---
  std::uint32_t tasks_per_node = 4;      ///< MPI tasks per compute node
  Rate nic_bandwidth = 1200.0 * MiB;     ///< per-node injection bandwidth

  // --- object storage ---
  std::uint32_t ost_count = 48;
  Rate ost_bandwidth = 350.0 * MiB;      ///< per-OST streaming bandwidth
  Bytes stripe_size = 1 * MiB;
  /// Client-count contention: essentially free up to ~hundreds of
  /// clients per OST (IOR at 256 nodes saturates fine), biting at the
  /// thousands-of-clients scale of the GCRM baseline.
  sim::ContentionModel contention{/*alpha=*/0.012, /*knee=*/280};

  // --- client I/O scheduler (source of the Fig. 1c harmonics) ---
  sim::ConcurrencyPolicy node_policy = sim::ConcurrencyPolicy::franklin_mix();

  // --- client write-back cache ---
  // Shared-file extents are effectively write-through on these systems
  // (extent-lock callbacks flush aggressively), so absorption is off by
  // default; the knob exists for private-file studies and tests.
  Bytes write_absorb_limit = 0;          ///< per-node dirty ceiling (0 = off)
  Rate absorb_bandwidth = 240.0 * MiB;   ///< page-cache ingest rate
  /// Pages of a completed write linger in the client cache before
  /// reclaim; this *residue* is the memory pressure that arms the
  /// read-ahead defect during MADbench's interleaved middle phase.
  Bytes dirty_residue_cap = 160 * MiB;   ///< residue credited per write
  Seconds dirty_residue_ttl = 18.0;      ///< reclaim delay
  Bytes pressure_threshold = 64 * MiB;   ///< residue+in-flight ⇒ pressure
  /// Reads within this window of the file's most recent write
  /// completion are considered interleaved with writes ("system memory
  /// was being filled with interleaved writes") — the arming condition
  /// of the read-ahead defect.
  Seconds interleave_pressure_window = 25.0;

  // --- reads ---
  double read_efficiency = 0.25;         ///< read share of OST bandwidth

  // --- strided read-ahead defect (Figures 4–5) ---
  bool strided_readahead_bug = true;     ///< the pre-patch Lustre behaviour
  std::uint32_t strided_trigger = 3;     ///< pattern recognized on this match
  Seconds readahead_page_latency = ms(0.55);  ///< per 4 KiB page when degraded
  double readahead_pipeline = 1.0;       ///< overlapped in-flight pages
  double readahead_growth = 1.30;        ///< window growth per extra match
  double readahead_task_sigma = 0.30;    ///< cross-event severity spread
  Bytes page_size = 4 * KiB;

  // --- small-I/O (metadata) path ---
  Bytes small_io_threshold = 64 * KiB;   ///< below this → serialized path
  Seconds small_io_base_latency = ms(13.0);
  Rate small_io_bandwidth = 4.0 * MiB;
  double unaligned_meta_factor = 1.6;    ///< extra latency on unaligned files

  // --- unaligned bulk writes ---
  double rmw_inflation = 0.6;            ///< extra bytes moved (fraction)
  Seconds lock_latency_per_boundary = ms(1.5);

  // --- stochastic service variation ---
  double service_noise_sigma = 0.10;     ///< lognormal σ on every transfer
  double straggler_probability = 0.0008; ///< rare heavy-tail events
  double straggler_alpha = 3.5;          ///< Pareto shape of straggler factor
  double straggler_min = 1.2;            ///< minimum straggler slowdown
  Seconds syscall_latency = us(2.0);     ///< open/seek/close base cost

  // --- interference from other jobs ---
  BackgroundLoad background;

  std::uint64_t seed = 0x5EED;

  /// NERSC Franklin (Cray XT4) — the platform with the read-ahead bug.
  [[nodiscard]] static MachineConfig franklin() { return MachineConfig{}; }

  /// Franklin after the Lustre patch that removed strided read-ahead
  /// detection (Figure 5).
  [[nodiscard]] static MachineConfig franklin_patched() {
    MachineConfig m;
    m.name = "franklin-patched";
    m.strided_readahead_bug = false;
    return m;
  }

  /// ORNL Jaguar XT4 partition: 72 OSSs x 2 OSTs = 144 OSTs, modest
  /// per-OST bandwidth, tighter client scheduling, no read-ahead bug.
  [[nodiscard]] static MachineConfig jaguar() {
    MachineConfig m;
    m.name = "jaguar";
    m.ost_count = 144;
    m.ost_bandwidth = 120.0 * MiB;
    m.nic_bandwidth = 1100.0 * MiB;
    m.strided_readahead_bug = false;
    m.read_efficiency = 0.75;
    m.node_policy = sim::ConcurrencyPolicy{{{2, 0.15}, {4, 0.85}}};
    m.service_noise_sigma = 0.08;
    m.straggler_probability = 0.002;
    m.seed = 0x7A67;
    return m;
  }
};

}  // namespace eio::lustre
