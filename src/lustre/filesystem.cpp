#include "lustre/filesystem.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/registry.h"

namespace eio::lustre {

sim::FluidNetwork::Config Filesystem::network_config(const MachineConfig& machine,
                                                     std::uint32_t node_count,
                                                     std::uint64_t seed) {
  sim::FluidNetwork::Config cfg;
  // Extra NICs for the phantom client nodes the interference stream
  // issues from (other jobs are many distinct Lustre clients).
  std::uint32_t phantoms =
      std::max<std::uint32_t>(machine.background.phantom_nodes, 1);
  cfg.nic_capacity.assign(node_count + phantoms, machine.nic_bandwidth);
  cfg.ost_capacity.assign(machine.ost_count, machine.ost_bandwidth);
  cfg.node_policy = machine.node_policy;
  cfg.contention = machine.contention;
  cfg.seed = seed;
  return cfg;
}

Filesystem::Filesystem(sim::RunContext& run, const MachineConfig& machine,
                       std::uint32_t node_count, fault::Injector* injector)
    : engine_(run.engine()),
      injector_(injector),
      machine_(machine),
      network_(run.engine(), network_config(machine, node_count, run.seed())),
      mds_(run.engine()) {
  EIO_CHECK(node_count > 0);
  background_rng_ = run.stream(rng::StreamKind::kBackground, 0);
  nodes_.resize(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    nodes_[i].noise = run.stream(rng::StreamKind::kFlowNoise, i);
    nodes_[i].straggler = run.stream(rng::StreamKind::kStraggler, i);
    nodes_[i].readahead = run.stream(rng::StreamKind::kReadahead, i);
  }
  // Slow-OST windows attach to the network as soon as it exists, so a
  // window starting at t=0 is in force before the first rank issues.
  if (injector_ != nullptr) {
    injector_->arm_storage(network_, machine_.ost_bandwidth);
  }
}

FileId Filesystem::create(std::string name, const FileOptions& options) {
  EIO_CHECK_MSG(names_.find(name) == names_.end(), "file exists: " << name);
  FileId id = next_file_++;
  FileState f;
  f.name = name;
  f.shared = options.shared;
  f.layout.stripe_size = machine_.stripe_size;
  f.layout.stripe_count =
      std::min<std::uint32_t>(std::max<std::uint32_t>(options.stripe_count, 1),
                              machine_.ost_count);
  f.layout.total_osts = machine_.ost_count;
  f.layout.start_ost = next_start_ost_;
  next_start_ost_ = (next_start_ost_ + 1) % machine_.ost_count;
  names_.emplace(std::move(name), id);
  files_.emplace(id, std::move(f));
  return id;
}

const FileLayout& Filesystem::layout(FileId file) const {
  auto it = files_.find(file);
  EIO_CHECK_MSG(it != files_.end(), "unknown file " << file);
  return it->second.layout;
}

FileId Filesystem::lookup(const std::string& name) const {
  auto it = names_.find(name);
  return it == names_.end() ? kInvalidFile : it->second;
}

Bytes Filesystem::size(FileId file) const {
  auto it = files_.find(file);
  EIO_CHECK_MSG(it != files_.end(), "size of unknown file " << file);
  return it->second.size;
}

double Filesystem::draw_slowdown(NodeState& n) {
  double factor = n.noise.noise(machine_.service_noise_sigma);
  if (machine_.straggler_probability > 0.0 &&
      n.straggler.chance(machine_.straggler_probability)) {
    factor *= n.straggler.pareto(machine_.straggler_min, machine_.straggler_alpha);
  }
  return factor;
}


void Filesystem::write(NodeId node, RankId rank, FileId file, Bytes offset,
                       Bytes length, IoCallback done) {
  // Jitter clause of the fault plan: an unlucky op stalls before the
  // storage system even sees it (server hiccup / RPC resend). The stall
  // is part of the call's critical path, so traces and summaries see it.
  if (injector_ != nullptr) {
    Seconds stall = injector_->data_op_stall(rank, /*is_write=*/true);
    if (stall > 0.0) {
      engine_.schedule_in(stall, [this, node, rank, file, offset, length,
                                  done = std::move(done)]() mutable {
        write_impl(node, rank, file, offset, length, std::move(done));
      });
      return;
    }
  }
  write_impl(node, rank, file, offset, length, std::move(done));
}

void Filesystem::write_impl(NodeId node, RankId rank, FileId file, Bytes offset,
                            Bytes length, IoCallback done) {
  (void)rank;  // writes carry no per-stream state today
  EIO_CHECK(node < nodes_.size());
  auto fit = files_.find(file);
  EIO_CHECK_MSG(fit != files_.end(), "write to unknown file " << file);
  FileState& f = fit->second;
  NodeState& n = nodes_[node];

  ++stats_.writes;
  stats_.bytes_written += length;
  OBS_COUNTER_ADD("fs.writes", 1);
  OBS_COUNTER_ADD("fs.bytes_written", length);
  f.size = std::max(f.size, offset + length);

  if (length == 0) {
    engine_.schedule_in(machine_.syscall_latency,
                        [done = std::move(done)]() mutable {
                          if (done) done();
                        });
    return;
  }

  // Sub-threshold transfers take the serialized small-I/O path
  // (metadata traffic: HDF5 headers, attributes, H5Part bookkeeping).
  if (length < machine_.small_io_threshold) {
    small_io(node, f, /*is_write=*/true, length, std::move(done));
    return;
  }

  const bool aligned = f.layout.aligned(offset, length);
  const bool locky = f.shared && !aligned;
  if (locky) f.saw_unaligned = true;

  // --- write-back absorption ---
  // Aligned (or private) writes may land in the client cache up to a
  // per-task quota of the node's dirty ceiling; unaligned shared-file
  // writes are forced write-through by extent-lock semantics.
  Bytes absorbed = 0;
  if (machine_.write_absorb_limit > 0 && !locky) {
    Bytes quota = machine_.write_absorb_limit /
                  std::max<std::uint32_t>(machine_.tasks_per_node, 1);
    Bytes free = machine_.write_absorb_limit > n.dirty
                     ? machine_.write_absorb_limit - n.dirty
                     : 0;
    absorbed = std::min({length, quota, free});
  }
  Bytes sync_part = length - absorbed;
  Seconds absorb_time =
      absorbed > 0 ? static_cast<double>(absorbed) / machine_.absorb_bandwidth : 0.0;

  if (absorbed > 0) {
    n.dirty += absorbed;
    stats_.bytes_absorbed += absorbed;
    OBS_COUNTER_ADD("fs.bytes_absorbed", absorbed);
    start_drain(node, file, offset, absorbed);
  }

  if (sync_part == 0) {
    engine_.schedule_in(absorb_time + machine_.syscall_latency,
                        [this, file, done = std::move(done)]() mutable {
                          files_.at(file).last_write_done = engine_.now();
                          if (done) done();
                        });
    return;
  }

  // --- synchronous remainder ---
  double inflation = 1.0;
  Seconds pre_delay = absorb_time;
  if (locky) {
    inflation += machine_.rmw_inflation;
    double crossings =
        static_cast<double>(f.layout.boundaries_crossed(offset, length)) + 1.0;
    pre_delay += machine_.lock_latency_per_boundary * crossings *
                 n.noise.noise(machine_.service_noise_sigma);
  }
  start_sync_write(node, file, offset + absorbed, sync_part, pre_delay, inflation,
                   std::move(done));
}

void Filesystem::start_sync_write(NodeId node, FileId file, Bytes offset,
                                  Bytes length, Seconds pre_delay, double inflation,
                                  IoCallback done) {
  NodeState& n = nodes_[node];
  const FileState& f = files_.at(file);
  // Per-event service luck: an unlucky transfer pays a time tax
  // proportional to its own service time (server hiccups, RPC
  // retries), charged after the data movement so it extends the call's
  // critical path. Because the tax is drawn per event and scales with
  // the event, splitting a transfer into k calls averages it away —
  // the Law-of-Large-Numbers effect of Figure 2.
  double slowdown = draw_slowdown(n);
  auto bytes = static_cast<Bytes>(static_cast<double>(length) * inflation);
  bytes = std::max<Bytes>(bytes, 1);

  n.sync_in_flight += length;
  auto launch = [this, node, file, length, bytes, slowdown,
                 done = std::move(done),
                 osts = f.layout.osts_for_extent(offset, length)]() mutable {
    Seconds issued = engine_.now();
    sim::FlowSpec spec;
    spec.node = node;
    spec.bytes = bytes;
    spec.osts = std::move(osts);
    spec.on_complete = [this, node, file, length, slowdown, issued,
                        done = std::move(done)](sim::FlowId) mutable {
      NodeState& ns = nodes_[node];
      EIO_CHECK(ns.sync_in_flight >= length);
      ns.sync_in_flight -= length;
      files_.at(file).last_write_done = engine_.now();
      Seconds tax = std::max(0.0, slowdown - 1.0) * (engine_.now() - issued);
      // The written pages linger in the client cache until reclaim;
      // that residue is what the read-ahead pressure check sees.
      Bytes residue = std::min(length, machine_.dirty_residue_cap);
      ns.residue += residue;
      engine_.schedule_in(machine_.dirty_residue_ttl, [this, node, residue] {
        NodeState& n2 = nodes_[node];
        EIO_CHECK(n2.residue >= residue);
        n2.residue -= residue;
      });
      if (tax > 0.0) {
        engine_.schedule_in(tax, [this, file, done = std::move(done)]() mutable {
          // Write activity extends through the tax (retries are still
          // writing); keep the interleave window anchored to it.
          files_.at(file).last_write_done = engine_.now();
          if (done) done();
        });
      } else if (done) {
        done();
      }
    };
    network_.start_flow(std::move(spec));
  };
  if (pre_delay > 0.0) {
    engine_.schedule_in(pre_delay, std::move(launch));
  } else {
    launch();
  }
}

void Filesystem::start_drain(NodeId node, FileId file, Bytes offset, Bytes bytes) {
  NodeState& n = nodes_[node];
  const FileState& f = files_.at(file);
  ++n.drains;
  sim::FlowSpec spec;
  spec.node = node;
  spec.bytes = bytes;
  spec.osts = f.layout.osts_for_extent(offset, std::max<Bytes>(bytes, 1));
  // Write-out streams compete for the client's stream tokens like any
  // other transfer; a serialized client serializes its drains too.
  spec.scheduled = true;
  spec.on_complete = [this, node, bytes](sim::FlowId) { finish_drain(node, bytes); };
  network_.start_flow(std::move(spec));
}

void Filesystem::finish_drain(NodeId node, Bytes bytes) {
  NodeState& n = nodes_[node];
  EIO_CHECK(n.dirty >= bytes);
  EIO_CHECK(n.drains > 0);
  n.dirty -= bytes;
  --n.drains;
  if (n.drains == 0) {
    auto waiters = std::move(n.flush_waiters);
    n.flush_waiters.clear();
    for (auto& w : waiters) {
      if (w) w();
    }
  }
}

void Filesystem::start_background() {
  if (!machine_.background.enabled || background_active_) return;
  background_active_ = true;
  background_arrival();
}

void Filesystem::stop_background() {
  background_active_ = false;
  if (background_event_ != sim::kInvalidEvent) {
    engine_.cancel(background_event_);
    background_event_ = sim::kInvalidEvent;
  }
}

void Filesystem::background_arrival() {
  background_event_ = sim::kInvalidEvent;
  if (!background_active_) return;
  const BackgroundLoad& bg = machine_.background;

  // Exponential request size against `spread` random OSTs, issued from
  // the phantom client node (the last NIC).
  auto bytes = static_cast<Bytes>(
      std::max(1.0, background_rng_.exponential(
                        static_cast<double>(bg.mean_request))));
  sim::FlowSpec spec;
  std::uint32_t phantoms = std::max<std::uint32_t>(bg.phantom_nodes, 1);
  spec.node = static_cast<NodeId>(nodes_.size() +
                                  background_rng_.index(phantoms));
  spec.bytes = bytes;
  for (std::uint32_t i = 0; i < std::max<std::uint32_t>(bg.spread, 1); ++i) {
    spec.osts.push_back(
        static_cast<OstId>(background_rng_.index(machine_.ost_count)));
  }
  spec.scheduled = false;
  network_.start_flow(std::move(spec));
  background_bytes_ += bytes;

  // Poisson arrivals tuned so average injected load = intensity x
  // aggregate OST bandwidth.
  double aggregate = machine_.ost_bandwidth * machine_.ost_count;
  double rate = bg.intensity * aggregate /
                static_cast<double>(std::max<Bytes>(bg.mean_request, 1));
  Seconds gap = background_rng_.exponential(1.0 / std::max(rate, 1e-9));
  background_event_ = engine_.schedule_in(gap, [this] { background_arrival(); });
}

void Filesystem::flush(NodeId node, IoCallback done) {
  EIO_CHECK(node < nodes_.size());
  NodeState& n = nodes_[node];
  if (n.drains == 0) {
    engine_.schedule_in(machine_.syscall_latency,
                        [done = std::move(done)]() mutable {
                          if (done) done();
                        });
  } else {
    n.flush_waiters.push_back(std::move(done));
  }
}

void Filesystem::read(NodeId node, RankId rank, FileId file, Bytes offset,
                      Bytes length, IoCallback done) {
  if (injector_ != nullptr) {
    Seconds stall = injector_->data_op_stall(rank, /*is_write=*/false);
    if (stall > 0.0) {
      engine_.schedule_in(stall, [this, node, rank, file, offset, length,
                                  done = std::move(done)]() mutable {
        read_impl(node, rank, file, offset, length, std::move(done));
      });
      return;
    }
  }
  read_impl(node, rank, file, offset, length, std::move(done));
}

void Filesystem::read_impl(NodeId node, RankId rank, FileId file, Bytes offset,
                           Bytes length, IoCallback done) {
  EIO_CHECK(node < nodes_.size());
  auto fit = files_.find(file);
  EIO_CHECK_MSG(fit != files_.end(), "read of unknown file " << file);
  FileState& f = fit->second;
  NodeState& n = nodes_[node];

  ++stats_.reads;
  stats_.bytes_read += length;
  OBS_COUNTER_ADD("fs.reads", 1);
  OBS_COUNTER_ADD("fs.bytes_read", length);

  if (length == 0) {
    engine_.schedule_in(machine_.syscall_latency,
                        [done = std::move(done)]() mutable {
                          if (done) done();
                        });
    return;
  }
  if (length < machine_.small_io_threshold) {
    small_io(node, f, /*is_write=*/false, length, std::move(done));
    return;
  }

  std::uint32_t matches = readahead_.observe(rank, file, offset, length);

  sim::FlowSpec spec;
  spec.node = node;
  spec.osts = f.layout.osts_for_extent(offset, length);
  spec.ost_efficiency = machine_.read_efficiency;
  spec.bytes = std::max<Bytes>(length, 1);

  double slowdown = 1.0;
  // The strided read-ahead defect: on the pattern's 3rd+ appearance,
  // with client memory full of dirty write pages, the enlarged window
  // degenerates into single 4 KiB page reads — and keeps growing.
  if (machine_.strided_readahead_bug && matches >= machine_.strided_trigger &&
      under_pressure(node, file)) {
    ++stats_.degraded_reads;
    OBS_COUNTER_ADD("fs.degraded_reads", 1);
    double pages = static_cast<double>(length) /
                   static_cast<double>(machine_.page_size);
    double severity =
        std::pow(machine_.readahead_growth,
                 static_cast<double>(matches - machine_.strided_trigger)) *
        n.readahead.noise(machine_.readahead_task_sigma);
    Seconds duration = pages * machine_.readahead_page_latency /
                       std::max(machine_.readahead_pipeline, 1.0) * severity;
    duration = std::max(duration, 1e-6);
    spec.cap = static_cast<double>(length) / duration;
  } else {
    slowdown = draw_slowdown(n);
  }
  Seconds issued = engine_.now();
  spec.on_complete = [this, slowdown, issued,
                      done = std::move(done)](sim::FlowId) mutable {
    Seconds tax = std::max(0.0, slowdown - 1.0) * (engine_.now() - issued);
    if (tax > 0.0) {
      if (done) engine_.schedule_in(tax, std::move(done));
    } else if (done) {
      done();
    }
  };
  network_.start_flow(std::move(spec));
}

void Filesystem::small_io(NodeId node, const FileState& f, bool is_write,
                          Bytes length, IoCallback done) {
  NodeState& n = nodes_[node];
  ++stats_.small_ops;
  OBS_COUNTER_ADD("fs.small_ops", 1);
  double meta_factor = 1.0;
  // Metadata regions of unaligned files ping-pong locks with data
  // writes; alignment calms them down (Figure 6(i) vs 6(f)).
  if (f.saw_unaligned) meta_factor = machine_.unaligned_meta_factor;
  Seconds service = machine_.small_io_base_latency * meta_factor *
                        n.noise.noise(machine_.service_noise_sigma * 2.0) +
                    static_cast<double>(length) / machine_.small_io_bandwidth;
  (void)is_write;
  mds_.submit(service, [done = std::move(done)]() mutable {
    if (done) done();
  });
}

Bytes Filesystem::dirty(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].dirty;
}

Bytes Filesystem::residue(NodeId node) const {
  EIO_CHECK(node < nodes_.size());
  return nodes_[node].residue;
}

bool Filesystem::under_pressure(NodeId node, FileId file) const {
  EIO_CHECK(node < nodes_.size());
  const NodeState& n = nodes_[node];
  Bytes load = n.dirty + n.residue + n.sync_in_flight;
  if (load >= machine_.pressure_threshold) return true;
  auto it = files_.find(file);
  if (it == files_.end()) return false;
  return engine_.now() - it->second.last_write_done <
         machine_.interleave_pressure_window;
}

}  // namespace eio::lustre
