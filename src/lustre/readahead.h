// Client-side read-ahead with the strided-detection defect.
//
// The paper traced MADbench's catastrophic middle-phase reads to a
// Lustre client behaviour: a strided read pattern is *recognized on its
// third appearance*, after which matching reads get an enlarged
// read-ahead window. When client memory is full of dirty write pages
// (the seek-read-seek-write phase), the window is serviced as 4 KiB
// single-page reads, and the window keeps growing with every further
// match — so reads 4 through 8 get progressively worse (Figure 5a).
// The installed patch removed strided detection entirely.
//
// This module reproduces exactly that state machine per (client node,
// file) read stream.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.h"
#include "common/units.h"

namespace eio::lustre {

/// Per-stream strided-pattern detector.
///
/// A "match" is a *non-contiguous* read whose start offset continues
/// the previously seen constant stride. Contiguous (sequential) access
/// is the healthy read-ahead path and never accumulates matches — the
/// Lustre defect lived specifically in strided-pattern detection. The
/// first occurrence of a stride sets it; the second confirms it (match
/// count 1), and so on; the defect activates once the pattern has
/// appeared `trigger` times.
class StridedDetector {
 public:
  /// Feed a read; returns the updated match count for this stream.
  std::uint32_t observe(Bytes offset, Bytes length = 0) {
    if (has_prev_) {
      if (offset == prev_offset_ + prev_length_) {
        // Sequential continuation: the well-behaved case.
        has_stride_ = false;
        matches_ = 0;
      } else {
        std::int64_t stride = static_cast<std::int64_t>(offset) -
                              static_cast<std::int64_t>(prev_offset_);
        if (has_stride_ && stride == stride_ && stride != 0) {
          ++matches_;
        } else {
          stride_ = stride;
          has_stride_ = (stride != 0);
          matches_ = has_stride_ ? 1 : 0;
        }
      }
    }
    prev_offset_ = offset;
    prev_length_ = length;
    has_prev_ = true;
    return matches_;
  }

  /// Current consecutive-match count (appearances of the stride).
  [[nodiscard]] std::uint32_t matches() const noexcept { return matches_; }

  /// The stride currently being tracked (0 if none).
  [[nodiscard]] std::int64_t stride() const noexcept {
    return has_stride_ ? stride_ : 0;
  }

  void reset() { *this = StridedDetector{}; }

 private:
  Bytes prev_offset_ = 0;
  Bytes prev_length_ = 0;
  std::int64_t stride_ = 0;
  std::uint32_t matches_ = 0;
  bool has_prev_ = false;
  bool has_stride_ = false;
};

/// Registry of detectors keyed by (rank, file): read-ahead state is
/// per process/file-descriptor stream, not per client node.
class ReadaheadTracker {
 public:
  /// Observe a read on the given stream; returns the match count.
  std::uint32_t observe(RankId rank, FileId file, Bytes offset, Bytes length = 0) {
    return detectors_[key(rank, file)].observe(offset, length);
  }

  [[nodiscard]] std::uint32_t matches(RankId rank, FileId file) const {
    auto it = detectors_.find(key(rank, file));
    return it == detectors_.end() ? 0 : it->second.matches();
  }

  void forget(RankId rank, FileId file) { detectors_.erase(key(rank, file)); }

  [[nodiscard]] std::size_t stream_count() const noexcept {
    return detectors_.size();
  }

 private:
  [[nodiscard]] static std::uint64_t key(RankId rank, FileId file) noexcept {
    return (static_cast<std::uint64_t>(rank) << 40) ^ file;
  }
  std::unordered_map<std::uint64_t, StridedDetector> detectors_;
};

}  // namespace eio::lustre
