// Ablation: interference from other jobs sharing the file system.
//
// Section III: "Factors affecting performance include the load from
// other jobs on the HPC system ... Our goal is to determine robust
// ways of examining I/O performance that are stable under the changing
// conditions from one run to the next." This bench sweeps the
// interference intensity and shows (a) the foreground distribution
// shifting and widening, and (b) the ensemble statistics remaining a
// stable fingerprint at any fixed load level.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/histogram.h"
#include "core/ks.h"
#include "workloads/scenario.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("ablation_interference — other-jobs load sweep",
                "Section III run-to-run variability sources");

  std::size_t jobs = bench::jobs_flag(argc, argv);
  workloads::IorConfig cfg;
  cfg.tasks = 256;
  cfg.block_size = 64 * MiB;
  cfg.segments = 3;

  // Each load level is examples/scenarios/interference.json with a
  // different intensity, built through the shared ScenarioBuilder.
  const std::vector<double> intensities{0.0, 0.2, 0.4, 0.6};
  std::vector<workloads::JobSpec> specs;
  for (double intensity : intensities) {
    workloads::ScenarioBuilder scenario;
    scenario.machine("franklin").background(intensity).ior(cfg);
    specs.push_back(scenario.job());
  }
  std::vector<workloads::RunResult> sweep = workloads::run_jobs(specs, jobs);

  bench::section("foreground IOR under increasing background load");
  std::printf("  %10s %12s %14s %12s %12s\n", "intensity", "job (s)",
              "rate (MiB/s)", "write med", "write p95");
  std::vector<stats::Histogram> hists;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    double intensity = intensities[i];
    workloads::RunResult& r = sweep[i];
    auto writes = analysis::durations(r.trace, {.op = posix::OpType::kWrite,
                                                .min_bytes = MiB});
    stats::EmpiricalDistribution d(writes);
    std::printf("  %10.1f %12.1f %14.0f %12.2f %12.2f\n", intensity,
                r.job_time, to_mib_per_s(r.reported_rate()), d.median(),
                d.quantile(0.95));
    if (hists.empty()) {
      hists.emplace_back(
          stats::Histogram::from_samples(writes, stats::BinScale::kLinear, 40));
      // widen the shared range to fit slower runs
      double hi = hists[0].hi() * 3.0;
      hists[0] = stats::Histogram(stats::BinScale::kLinear, 0.0, hi, 40);
      hists[0].add_all(writes);
    } else {
      hists.emplace_back(stats::BinScale::kLinear, hists[0].lo(), hists[0].hi(),
                         40);
      hists.back().add_all(writes);
    }
    names.push_back("bg=" + std::to_string(intensity).substr(0, 3));
  }

  bench::section("write-duration distributions across load levels");
  std::vector<const stats::Histogram*> hp;
  for (const auto& h : hists) hp.push_back(&h);
  std::printf("%s", analysis::render_histograms(
                        hp, names, {.width = 84, .height = 12,
                                    .x_label = "seconds"})
                        .c_str());

  bench::section("stability at a fixed load level (two seeds, bg=0.4)");
  workloads::ScenarioBuilder busy;
  busy.machine("franklin").background(0.4).ior(cfg);
  workloads::JobSpec job = busy.job();
  auto runs = workloads::run_ensemble(job, 2, jobs);
  auto wa = analysis::durations(runs[0].trace, {.op = posix::OpType::kWrite,
                                                .min_bytes = MiB});
  auto wb = analysis::durations(runs[1].trace, {.op = posix::OpType::kWrite,
                                                .min_bytes = MiB});
  stats::KsResult ks = stats::ks_two_sample(wa, wb);
  std::printf("  two-sample KS D = %.3f — the widened ensemble is still a\n"
              "  reproducible fingerprint of machine + workload + load level.\n",
              ks.statistic);
  return 0;
}
