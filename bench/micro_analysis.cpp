// Analysis-path throughput and memory: materialized vs streaming vs
// batched vs chunk-parallel.
//
// Builds synthetic traces at two sizes (N and 4N events), saves them
// as indexed binary v2, and runs the same analysis bundle — per-op
// write summary (count/median/p95/moments), histogram bins, rate
// series — through each path:
//
//  * materialized: Trace::load + the batch helpers over the full
//    event vector (memory O(N));
//  * streaming: the PR-2 shape — per-event std::function visitors over
//    FileTraceSource, plus the extra full pass rates used to need for
//    the span (memory O(reservoir));
//  * batched: the serial span-per-chunk API (for_each_batch_hinted),
//    extrema reused from the summary pass, span from the index;
//  * parallel jN: the same bundle through ParallelTraceScanner with N
//    worker threads (three scans, one per analysis);
//  * fused jN / fused_v3 jN: the whole bundle as ONE KernelSet pass —
//    the scan_kernels path every eiotrace subcommand now uses.
//
// Separate kernel_* rows run the statistics kernels on an in-memory
// value stream (no decode), isolating per-event kernel cost: the
// historical per-draw Algorithm R reservoir vs the Vitter skip-gap
// sampler (scalar and batched), and scalar vs batched
// StreamingHistogram fills.
//
// Every row runs in a forked child that reports its own VmHWM through
// a pipe: fork resets the child's high-water mark to the current RSS,
// so rows are independent instead of inheriting the largest earlier
// footprint. Parallel speedups are only observable when the host
// grants more than one CPU; hardware_concurrency is recorded in the
// JSON so the numbers are interpretable.
#include <sys/utsname.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/histogram.h"
#include "core/parallel_analysis.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "ipm/parallel_scan.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"
#include "ipm/trace_stream.h"
#include "monitor/health.h"

namespace {

using namespace eio;

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 when
/// unavailable (non-Linux).
long peak_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  while (status >> key) {
    if (key == "VmHWM:") {
      status >> value;
      return value;
    }
    status.ignore(1 << 12, '\n');
  }
  return 0;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic synthetic trace: a bimodal write population plus a
/// read population, spread over ranks and phases like an IOR run.
/// The same event stream is written through `writer` for every format,
/// so v2 and v3 files hold identical chunking and values.
template <typename Writer>
void write_synthetic(Writer& writer, std::size_t events) {
  std::uint64_t state = 0x243F6A8885A308D3ULL;
  auto next_u01 = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (std::size_t i = 0; i < events; ++i) {
    ipm::TraceEvent e;
    bool write = i % 4 != 0;
    double u = next_u01();
    e.op = write ? posix::OpType::kWrite : posix::OpType::kRead;
    // Bimodal: fast path ~0.2s, contended tail ~1.5s.
    e.duration = (u < 0.8 ? 0.2 : 1.5) * (0.75 + 0.5 * next_u01());
    e.start = 600.0 * static_cast<double>(i) / static_cast<double>(events);
    e.rank = static_cast<RankId>(i % 256);
    e.file = 1;
    e.offset = static_cast<Bytes>(i) * (8 << 20);
    e.bytes = 8 << 20;
    e.phase = static_cast<std::int32_t>(i * 8 / events);
    writer.add(e);
  }
  writer.finish();
}

void write_synthetic_v2(const std::string& path, std::size_t events) {
  std::ofstream file(path, std::ios::binary);
  ipm::TraceWriterV2 writer(file, "micro-analysis", /*ranks=*/256);
  write_synthetic(writer, events);
}

void write_synthetic_v3(const std::string& path, std::size_t events) {
  std::ofstream file(path, std::ios::binary);
  ipm::TraceWriterV3 writer(file, "micro-analysis", /*ranks=*/256);
  write_synthetic(writer, events);
}

struct PathResult {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  long peak_rss_kib = 0;
  // Cross-checked against the materialized reference: the mean is
  // exact at any stream length; the median is reservoir-sampled beyond
  // 65536 write events, so it is only statistically close at bench
  // sizes.
  double mean = 0.0;
  double median = 0.0;
};

/// Run `fn` in a forked child and collect its PathResult through a
/// pipe. The child's VmHWM starts at the fork point, so each row's
/// peak RSS reflects only its own analysis footprint.
template <typename Fn>
PathResult measure(const Fn& fn) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    PathResult r = fn();
    r.peak_rss_kib = peak_rss_kib();
    ssize_t wrote = write(fds[1], &r, sizeof r);
    _exit(wrote == static_cast<ssize_t>(sizeof r) ? 0 : 1);
  }
  close(fds[1]);
  PathResult r{};
  ssize_t got = read(fds[0], &r, sizeof r);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof r) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "measurement child failed\n");
    std::exit(1);
  }
  return r;
}

const analysis::EventFilter kWrites{.op = posix::OpType::kWrite};

PathResult run_materialized(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::Trace trace = ipm::Trace::load(path);

  auto d = analysis::durations(trace, kWrites);
  stats::EmpiricalDistribution dist(d);
  stats::Moments moments = stats::compute_moments(d);
  stats::Histogram hist =
      stats::Histogram::from_samples(d, stats::BinScale::kLinear, 40);
  analysis::TimeSeries rates = analysis::aggregate_rate(trace, kWrites, 100);

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = moments.mean;
  r.median = dist.median();
  if (moments.count == 0 || hist.total() == 0 || rates.values.empty()) {
    std::abort();
  }
  return r;
}

/// The pre-batch streaming shape: per-event std::function dispatch on
/// every pass, plus the extra unfiltered pass rates needed for the
/// span. Kept as the baseline the batch API is measured against.
PathResult run_streaming(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::FileTraceSource source(path);

  analysis::SummarySink summary(kWrites);
  source.for_each_hinted(
      analysis::hint_for(kWrites),
      [&summary](const ipm::TraceEvent& e) { summary.on_event(e); });

  double lo = 0.0, hi = 0.0;
  std::size_t n = 0;
  analysis::for_each_matching(source, kWrites, [&](const ipm::TraceEvent& e) {
    lo = n == 0 ? e.duration : std::min(lo, e.duration);
    hi = n == 0 ? e.duration : std::max(hi, e.duration);
    ++n;
  });
  auto range = stats::Histogram::padded_range(lo, hi, stats::BinScale::kLinear);
  stats::Histogram hist(stats::BinScale::kLinear, range.lo, range.hi, 40);
  analysis::for_each_matching(source, kWrites, [&hist](const ipm::TraceEvent& e) {
    hist.add(e.duration);
  });

  double span = 0.0;
  source.for_each(
      [&span](const ipm::TraceEvent& e) { span = std::max(span, e.end()); });
  analysis::RateSeriesBuilder rates(span, 100);
  analysis::for_each_matching(
      source, kWrites, [&rates](const ipm::TraceEvent& e) { rates.add(e); });

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = summary.summary().moments().mean;
  r.median = summary.summary().median();
  // Keep the results observable so the passes cannot be elided.
  if (hist.total() == 0 || rates.series().values.empty()) std::abort();
  return r;
}

/// Serial batch API: one span per decoded chunk, histogram extrema
/// reused from the summary pass, rate span from the index — three
/// event passes total, none of them per-event-dispatched.
PathResult run_batched(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::FileTraceSource source(path);
  const ipm::ChunkHint hint = analysis::hint_for(kWrites);

  analysis::SummarySink summary(kWrites);
  source.for_each_batch_hinted(
      hint, [&summary](std::span<const ipm::TraceEvent> span) {
        summary.on_batch(span);
      });
  const stats::StreamingSummary& s = summary.summary();
  if (s.empty()) std::abort();

  auto range = stats::Histogram::padded_range(s.min(), s.max(),
                                              stats::BinScale::kLinear);
  stats::Histogram hist(stats::BinScale::kLinear, range.lo, range.hi, 40);
  source.for_each_batch_hinted(
      hint, [&hist](std::span<const ipm::TraceEvent> span) {
        for (const ipm::TraceEvent& e : span) {
          if (kWrites.matches(e)) hist.add(e.duration);
        }
      });

  analysis::RateSeriesBuilder rates(source.time_span(), 100);
  source.for_each_batch_hinted(
      hint, [&rates](std::span<const ipm::TraceEvent> span) {
        for (const ipm::TraceEvent& e : span) {
          if (kWrites.matches(e)) rates.add(e);
        }
      });

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = s.moments().mean;
  r.median = s.median();
  if (hist.total() == 0 || rates.series().values.empty()) std::abort();
  return r;
}

/// The same three-pass bundle through the columnar batch API: each
/// pass names the columns it reads, so a v3 source decodes only those
/// (zero-copy from the mmap when available) and never materializes
/// TraceEvent rows at all.
PathResult run_batched_columns(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::FileTraceSource source(path);
  const ipm::ChunkHint hint = analysis::hint_for(kWrites);

  analysis::SummarySink summary(kWrites);
  source.for_each_columns_hinted(
      hint, summary.required_columns(),
      [&summary](const ipm::ColumnBatch& b) { summary.on_columns(b); });
  const stats::StreamingSummary& s = summary.summary();
  if (s.empty()) std::abort();

  auto range = stats::Histogram::padded_range(s.min(), s.max(),
                                              stats::BinScale::kLinear);
  stats::Histogram hist(stats::BinScale::kLinear, range.lo, range.hi, 40);
  const ipm::ColumnMask hist_mask =
      kWrites.required_columns() | ipm::kColDuration;
  source.for_each_columns_hinted(
      hint, hist_mask, [&hist](const ipm::ColumnBatch& b) {
        for (std::size_t i = 0; i < b.size(); ++i) {
          if (kWrites.matches_at(b, i)) hist.add(b.duration[i]);
        }
      });

  analysis::RateSeriesBuilder rates(source.time_span(), 100);
  const ipm::ColumnMask rate_mask = kWrites.required_columns() |
                                    ipm::kColStart | ipm::kColDuration |
                                    ipm::kColBytes;
  source.for_each_columns_hinted(
      hint, rate_mask, [&rates](const ipm::ColumnBatch& b) {
        for (std::size_t i = 0; i < b.size(); ++i) {
          if (kWrites.matches_at(b, i)) {
            rates.add(b.start[i], b.duration[i], b.bytes[i]);
          }
        }
      });

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = s.moments().mean;
  r.median = s.median();
  if (hist.total() == 0 || rates.series().values.empty()) std::abort();
  return r;
}

/// Selective columnar analytics: per-rank byte totals, the imbalance
/// question the paper's ensemble view asks of every run. Reads two of
/// the eight columns (rank, bytes) through the same for_each_columns
/// entry point for both formats — a v2 file must decode every field of
/// every event to answer it, a v3 file touches only the two column
/// streams (both typically run-length-compressed). This is the access
/// pattern the columnar layout exists for, so the v2-vs-v3 gap here is
/// the format-level speedup with the per-event statistics floor
/// removed. PathResult.mean carries a rank-weighted checksum (exact in
/// doubles at bench scale) and median the event count, so main() can
/// assert the two formats computed identical answers.
PathResult run_rank_bytes(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::FileTraceSource source(path);
  std::vector<std::uint64_t> sums;
  std::uint64_t seen = 0;
  source.for_each_columns(
      ipm::kColRank | ipm::kColBytes, [&](const ipm::ColumnBatch& b) {
        for (std::size_t i = 0; i < b.size(); ++i) {
          RankId rank = b.rank[i];
          if (rank >= sums.size()) sums.resize(std::size_t{rank} + 1, 0);
          sums[rank] += b.bytes[i];
        }
        seen += b.size();
      });

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  double checksum = 0.0;
  for (std::size_t rank = 0; rank < sums.size(); ++rank) {
    checksum += static_cast<double>(sums[rank] >> 20) *
                static_cast<double>(rank + 1);
  }
  r.mean = checksum;
  r.median = static_cast<double>(seen);
  if (seen != events || sums.empty()) std::abort();
  return r;
}

/// The fused bundle: summary + histogram + rates folded by ONE
/// KernelSet pass — the trace is decoded once, filters are evaluated
/// once per kernel, and no kernel waits on another pass. This is the
/// row the three-scan `parallel` bundle above is measured against.
PathResult run_fused(const std::string& path, std::size_t events,
                     std::size_t jobs) {
  double t0 = now_seconds();
  ipm::ParallelTraceScanner scanner(path, {.jobs = jobs});
  const ipm::ChunkHint hint = analysis::hint_for(kWrites);
  const double span = scanner.time_span();

  auto fused = scanner.scan_kernels(
      [&](std::size_t chunk) {
        return analysis::KernelSet(
            analysis::SummarySink(kWrites,
                                  analysis::chunk_summary_options({}, chunk)),
            analysis::HistogramKernel(
                kWrites, {.scale = stats::BinScale::kLinear, .bins = 40}),
            analysis::RateKernel(kWrites, span, 100));
      },
      &hint);
  const stats::StreamingSummary& s = fused.get<0>().summary();
  if (s.empty()) std::abort();

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = s.moments().mean;
  r.median = s.median();
  if (fused.get<1>().histogram().count() == 0 ||
      fused.get<2>().series().values.empty()) {
    std::abort();
  }
  return r;
}

/// The fused bundle with the online health monitor folded in as a
/// fourth kernel — what `eiotrace analyze --monitor` runs. The hint
/// widens to all-chunks (the monitor must see fault-marker chunks), so
/// the row prices both the kernel itself and the lost chunk pruning;
/// compare against fused_jN for the monitor's relative overhead.
PathResult run_fused_monitored(const std::string& path, std::size_t events,
                               std::size_t jobs) {
  double t0 = now_seconds();
  ipm::ParallelTraceScanner scanner(path, {.jobs = jobs});
  const ipm::ChunkHint hint;  // all chunks: markers must survive
  const double span = scanner.time_span();

  monitor::HealthOptions mopt;
  mopt.ost_count = 48;  // the `analyze --monitor` default (franklin)
  auto fused = scanner.scan_kernels(
      [&](std::size_t chunk) {
        return analysis::KernelSet(
            analysis::SummarySink(kWrites,
                                  analysis::chunk_summary_options({}, chunk)),
            analysis::HistogramKernel(
                kWrites, {.scale = stats::BinScale::kLinear, .bins = 40}),
            analysis::RateKernel(kWrites, span, 100),
            monitor::HealthKernel(mopt, chunk));
      },
      &hint);
  const stats::StreamingSummary& s = fused.get<0>().summary();
  if (s.empty()) std::abort();
  fused.get<3>().finish();

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = s.moments().mean;
  r.median = s.median();
  if (fused.get<1>().histogram().count() == 0 ||
      fused.get<2>().series().values.empty()) {
    std::abort();
  }
  return r;
}

// ---------------------------------------------------------------------------
// Kernel-cost rows: per-event cost of the statistics kernels in
// isolation (no I/O, no decode), so regressions in the inner loops are
// visible separately from scan plumbing. events_per_sec here is
// values/sec through one kernel.

/// The historical Algorithm R update — one uniform draw per element
/// past capacity — kept as the baseline the skip-gap rows are compared
/// against.
struct PerDrawReservoir {
  std::size_t capacity;
  rng::Stream rng;
  std::vector<double> samples;
  std::uint64_t seen = 0;

  PerDrawReservoir(std::size_t cap, std::uint64_t seed)
      : capacity(cap), rng(seed) {
    samples.reserve(cap);
  }
  void add(double x) {
    ++seen;
    if (samples.size() < capacity) {
      samples.push_back(x);
      return;
    }
    std::uint64_t j = rng.index(seen);
    if (j < capacity) samples[static_cast<std::size_t>(j)] = x;
  }
};

std::vector<double> kernel_input(std::size_t n) {
  std::vector<double> xs(n);
  std::uint64_t state = 0x243F6A8885A308D3ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    xs[i] = 1e-3 + static_cast<double>(state >> 11) / 9007199254740992.0;
  }
  return xs;
}

template <typename Fn>
PathResult run_kernel(std::size_t n, const Fn& fn) {
  const std::vector<double> xs = kernel_input(n);
  double t0 = now_seconds();
  double checksum = fn(xs);
  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(n) / r.seconds;
  r.mean = checksum;
  r.median = checksum;
  return r;
}

PathResult run_kernel_reservoir_per_draw(std::size_t n) {
  return run_kernel(n, [](std::span<const double> xs) {
    PerDrawReservoir r(1024, 42);
    for (double x : xs) r.add(x);
    return r.samples[0];
  });
}

PathResult run_kernel_reservoir_skip_gap(std::size_t n) {
  return run_kernel(n, [](std::span<const double> xs) {
    stats::ReservoirSampler r(1024, 42);
    for (double x : xs) r.add(x);
    return r.samples()[0];
  });
}

PathResult run_kernel_reservoir_skip_gap_batch(std::size_t n) {
  return run_kernel(n, [](std::span<const double> xs) {
    stats::ReservoirSampler r(1024, 42);
    r.absorb(xs);
    return r.samples()[0];
  });
}

PathResult run_kernel_hist_fill_scalar(std::size_t n) {
  return run_kernel(n, [n](std::span<const double> xs) {
    stats::StreamingHistogram h(
        {.scale = stats::BinScale::kLinear, .bins = 40, .exact_capacity = n});
    for (double x : xs) h.add(x);
    return static_cast<double>(h.count());
  });
}

PathResult run_kernel_hist_fill_batched(std::size_t n) {
  return run_kernel(n, [n](std::span<const double> xs) {
    stats::StreamingHistogram h(
        {.scale = stats::BinScale::kLinear, .bins = 40, .exact_capacity = n});
    h.add_batch(xs);
    return static_cast<double>(h.count());
  });
}

/// The same three-pass bundle through the chunk-parallel scanner.
PathResult run_parallel(const std::string& path, std::size_t events,
                        std::size_t jobs) {
  double t0 = now_seconds();
  ipm::ParallelTraceScanner scanner(path, {.jobs = jobs});
  const ipm::ChunkHint hint = analysis::hint_for(kWrites);

  stats::StreamingSummary s = analysis::scan_summary(scanner, kWrites);
  if (s.empty()) std::abort();

  auto range = stats::Histogram::padded_range(s.min(), s.max(),
                                              stats::BinScale::kLinear);
  stats::Histogram hist = scanner.scan(
      [&](std::size_t) {
        return stats::Histogram(stats::BinScale::kLinear, range.lo, range.hi,
                                40);
      },
      [&](stats::Histogram& h, std::span<const ipm::TraceEvent> span) {
        for (const ipm::TraceEvent& e : span) {
          if (kWrites.matches(e)) h.add(e.duration);
        }
      },
      [](stats::Histogram& a, stats::Histogram&& b) { a.merge(b); }, &hint);

  analysis::TimeSeries rates = analysis::scan_rate(scanner, kWrites, 100);

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.mean = s.moments().mean;
  r.median = s.median();
  if (hist.total() == 0 || rates.values.empty()) std::abort();
  return r;
}

void check_against_reference(const char* path_name, const PathResult& r,
                             const PathResult& ref) {
  if (std::abs(r.mean - ref.mean) > 1e-12 * ref.mean) {
    std::fprintf(stderr, "%s mean mismatch: %.17g vs %.17g\n", path_name,
                 r.mean, ref.mean);
    std::exit(1);
  }
  if (std::abs(r.median - ref.median) > 0.02 * ref.median) {
    std::fprintf(stderr, "%s median diverged: %.17g vs %.17g\n", path_name,
                 r.median, ref.median);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  eio::bench::ObsFlags obs = eio::bench::obs_flags(argc, argv);
  // --quick: one small size, fewer job counts, small kernel inputs —
  // the CI smoke configuration (same rows, minutes less runtime).
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t base = quick ? 50'000 : 200'000;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{base}
            : std::vector<std::size_t>{base, 4 * base};
  const std::vector<std::size_t> job_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t kernel_n = quick ? 200'000 : 4'000'000;

  std::printf("micro_analysis: analysis-path throughput and memory\n");
  std::printf("%10s %14s %16s %14s\n", "events", "path", "events/sec",
              "peak RSS KiB");

  // A parallel row is only honest when the host can actually run that
  // many workers at once; rows where cores are scarce (the bench
  // process itself takes one, so hardware_concurrency <= jobs already
  // oversubscribes) are annotated instead of being passed off as
  // scaling data, and the printed table skips the speedup claim.
  const std::size_t cores = std::thread::hardware_concurrency();

  struct Row {
    std::size_t events;
    std::string path_name;
    PathResult result;
    bool meaningful = true;
  };
  std::vector<Row> rows;
  auto emit = [&rows](std::size_t events, std::string name, PathResult r,
                      std::size_t jobs = 0) {
    bool meaningful = jobs == 0 || !eio::bench::cores_scarce(jobs);
    std::printf("%10zu %16s %16.0f %14ld%s\n", events, name.c_str(),
                r.events_per_sec, r.peak_rss_kib,
                meaningful ? "" : "  [cores scarce: not scaling data]");
    rows.push_back({events, std::move(name), r, meaningful});
  };

  for (std::size_t events : sizes) {
    std::string path = "micro_analysis_tmp.v2";
    std::string path_v3 = "micro_analysis_tmp.v3";
    write_synthetic_v2(path, events);
    write_synthetic_v3(path_v3, events);

    PathResult materialized =
        measure([&] { return run_materialized(path, events); });
    emit(events, "materialized", materialized);

    PathResult streaming =
        measure([&] { return run_streaming(path, events); });
    check_against_reference("streaming", streaming, materialized);
    emit(events, "streaming", streaming);

    PathResult batched = measure([&] { return run_batched(path, events); });
    check_against_reference("batched", batched, materialized);
    emit(events, "batched", batched);

    PathResult batched_v3 =
        measure([&] { return run_batched_columns(path_v3, events); });
    check_against_reference("batched_v3", batched_v3, materialized);
    emit(events, "batched_v3", batched_v3);

    PathResult rank_bytes = measure([&] { return run_rank_bytes(path, events); });
    PathResult rank_bytes_v3 =
        measure([&] { return run_rank_bytes(path_v3, events); });
    if (rank_bytes.mean != rank_bytes_v3.mean ||
        rank_bytes.median != rank_bytes_v3.median) {
      std::fprintf(stderr, "rank_bytes v2/v3 disagree: %.17g vs %.17g\n",
                   rank_bytes.mean, rank_bytes_v3.mean);
      return 1;
    }
    emit(events, "rank_bytes", rank_bytes);
    emit(events, "rank_bytes_v3", rank_bytes_v3);

    for (std::size_t jobs : job_counts) {
      PathResult parallel =
          measure([&] { return run_parallel(path, events, jobs); });
      std::string name = "parallel_j" + std::to_string(jobs);
      check_against_reference(name.c_str(), parallel, materialized);
      emit(events, std::move(name), parallel, jobs);

      PathResult parallel_v3 =
          measure([&] { return run_parallel(path_v3, events, jobs); });
      std::string name_v3 = "parallel_v3_j" + std::to_string(jobs);
      check_against_reference(name_v3.c_str(), parallel_v3, materialized);
      emit(events, std::move(name_v3), parallel_v3, jobs);

      PathResult fused = measure([&] { return run_fused(path, events, jobs); });
      std::string fused_name = "fused_j" + std::to_string(jobs);
      check_against_reference(fused_name.c_str(), fused, materialized);
      emit(events, std::move(fused_name), fused, jobs);

      PathResult fused_v3 =
          measure([&] { return run_fused(path_v3, events, jobs); });
      std::string fused_v3_name = "fused_v3_j" + std::to_string(jobs);
      check_against_reference(fused_v3_name.c_str(), fused_v3, materialized);
      emit(events, std::move(fused_v3_name), fused_v3, jobs);

      PathResult monitored =
          measure([&] { return run_fused_monitored(path, events, jobs); });
      std::string mon_name = "monitor_overhead_j" + std::to_string(jobs);
      check_against_reference(mon_name.c_str(), monitored, materialized);
      emit(events, std::move(mon_name), monitored, jobs);
    }
    std::remove(path.c_str());
    std::remove(path_v3.c_str());
  }

  // Kernel-in-isolation rows (per-event cost, no I/O). The two
  // reservoir rows sharing one seed must agree exactly; so must the
  // two histogram fills.
  PathResult res_per_draw =
      measure([&] { return run_kernel_reservoir_per_draw(kernel_n); });
  emit(kernel_n, "kernel_reservoir_per_draw", res_per_draw);
  PathResult res_skip =
      measure([&] { return run_kernel_reservoir_skip_gap(kernel_n); });
  emit(kernel_n, "kernel_reservoir_skip_gap", res_skip);
  PathResult res_skip_batch =
      measure([&] { return run_kernel_reservoir_skip_gap_batch(kernel_n); });
  emit(kernel_n, "kernel_reservoir_skip_gap_batch", res_skip_batch);
  if (res_skip.mean != res_skip_batch.mean) {
    std::fprintf(stderr, "skip-gap scalar/batch reservoirs disagree\n");
    return 1;
  }
  PathResult hist_scalar =
      measure([&] { return run_kernel_hist_fill_scalar(kernel_n); });
  emit(kernel_n, "kernel_hist_fill_scalar", hist_scalar);
  PathResult hist_batched =
      measure([&] { return run_kernel_hist_fill_batched(kernel_n); });
  emit(kernel_n, "kernel_hist_fill_batched", hist_batched);
  if (hist_scalar.mean != hist_batched.mean) {
    std::fprintf(stderr, "histogram scalar/batch fills disagree\n");
    return 1;
  }

  utsname uts{};
  uname(&uts);
  std::ofstream json("BENCH_analysis.json");
  json << "{\n";
  eio::bench::write_provenance(json);
  json << "  \"benchmark\": \"micro_analysis\",\n"
       << "  \"note\": \"each row measured in a forked child, so "
          "peak_rss_kib is per-path VmHWM, not a shared high-water mark; "
          "rows with meaningful=false ran with scarce cores "
          "(hardware_concurrency <= jobs) and say nothing about scaling; "
          "batched/batched_v3 run the full summary+histogram+rates "
          "bundle (per-event statistics dominate both), while "
          "rank_bytes/rank_bytes_v3 run a two-column selective pass "
          "where the decode cost itself is the workload; parallel rows "
          "run the bundle as three scans, fused rows as one KernelSet "
          "scan; monitor_overhead rows run the fused bundle with the "
          "online health monitor as a fourth kernel and an all-chunks "
          "hint, so (fused_jN - monitor_overhead_jN) / fused_jN is the "
          "monitor's relative cost; kernel_* rows time the statistics "
          "kernels alone on an in-memory stream with no decode\",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n";
  eio::bench::write_scaling_note(json, job_counts.back());
  json << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n"
         << "      \"events\": " << r.events << ",\n"
         << "      \"path\": \"" << r.path_name << "\",\n"
         << "      \"events_per_sec\": " << r.result.events_per_sec << ",\n"
         << "      \"seconds\": " << r.result.seconds << ",\n"
         << "      \"peak_rss_kib\": " << r.result.peak_rss_kib << ",\n"
         << "      \"meaningful\": " << (r.meaningful ? "true" : "false");
    if (!r.meaningful) {
      json << ",\n      \"annotation\": \"cores scarce "
              "(hardware_concurrency <= jobs): not scaling data\"";
    }
    json << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"machine\": \"" << uts.sysname << " " << uts.release << " "
       << uts.machine << "\"\n"
       << "}\n";
  std::printf("[json] BENCH_analysis.json written\n");
  eio::bench::finish_obs(obs);
  return 0;
}
