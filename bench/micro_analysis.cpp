// Streaming-vs-materialized analysis throughput and memory.
//
// Builds synthetic traces at two sizes (N and 4N events), saves them
// as indexed binary v2, and runs the same analysis bundle — per-op
// summary (count/median/p95/moments), histogram bins, rate series —
// through both paths:
//
//  * streaming: FileTraceSource passes feeding the incremental
//    accumulators (memory O(reservoir), independent of N);
//  * materialized: Trace::load + the batch helpers over the full
//    event vector (memory O(N)).
//
// Writes BENCH_analysis.json with events/sec and peak RSS (VmHWM) for
// each path at each size. VmHWM is a process-lifetime high-water mark,
// so the streaming path runs FIRST; the materialized numbers then show
// the watermark being dragged up by the event vectors.
#include <sys/utsname.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "core/streaming.h"
#include "ipm/trace.h"
#include "ipm/trace_source.h"
#include "ipm/trace_stream.h"

namespace {

using namespace eio;

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 when
/// unavailable (non-Linux).
long peak_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  while (status >> key) {
    if (key == "VmHWM:") {
      status >> value;
      return value;
    }
    status.ignore(1 << 12, '\n');
  }
  return 0;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic synthetic trace: a bimodal write population plus a
/// read population, spread over ranks and phases like an IOR run.
void write_synthetic_v2(const std::string& path, std::size_t events) {
  std::ofstream file(path, std::ios::binary);
  ipm::TraceWriterV2 writer(file, "micro-analysis",
                            /*ranks=*/256);
  std::uint64_t state = 0x243F6A8885A308D3ULL;
  auto next_u01 = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (std::size_t i = 0; i < events; ++i) {
    ipm::TraceEvent e;
    bool write = i % 4 != 0;
    double u = next_u01();
    e.op = write ? posix::OpType::kWrite : posix::OpType::kRead;
    // Bimodal: fast path ~0.2s, contended tail ~1.5s.
    e.duration = (u < 0.8 ? 0.2 : 1.5) * (0.75 + 0.5 * next_u01());
    e.start = 600.0 * static_cast<double>(i) / static_cast<double>(events);
    e.rank = static_cast<RankId>(i % 256);
    e.file = 1;
    e.offset = static_cast<Bytes>(i) * (8 << 20);
    e.bytes = 8 << 20;
    e.phase = static_cast<std::int32_t>(i * 8 / events);
    writer.add(e);
  }
  writer.finish();
}

struct PathResult {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  long peak_rss_kib = 0;
  // Cross-checked between the two paths: the mean is exact at any
  // stream length; the median is reservoir-sampled beyond 65536 write
  // events, so it is only statistically close at bench sizes.
  double mean = 0.0;
  double median = 0.0;
};

PathResult run_streaming(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::FileTraceSource source(path);
  analysis::EventFilter writes{.op = posix::OpType::kWrite};

  analysis::SummarySink summary(writes);
  source.for_each_hinted(
      analysis::hint_for(writes),
      [&summary](const ipm::TraceEvent& e) { summary.on_event(e); });

  double lo = 0.0, hi = 0.0;
  std::size_t n = 0;
  analysis::for_each_matching(source, writes, [&](const ipm::TraceEvent& e) {
    lo = n == 0 ? e.duration : std::min(lo, e.duration);
    hi = n == 0 ? e.duration : std::max(hi, e.duration);
    ++n;
  });
  auto range = stats::Histogram::padded_range(lo, hi, stats::BinScale::kLinear);
  stats::Histogram hist(stats::BinScale::kLinear, range.lo, range.hi, 40);
  analysis::for_each_matching(source, writes, [&hist](const ipm::TraceEvent& e) {
    hist.add(e.duration);
  });

  analysis::TimeSeries rates = analysis::aggregate_rate(source, writes, 100);

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.peak_rss_kib = peak_rss_kib();
  r.mean = summary.summary().moments().mean;
  r.median = summary.summary().median();
  // Keep the results observable so the passes cannot be elided.
  if (hist.total() == 0 || rates.values.empty()) std::abort();
  return r;
}

PathResult run_materialized(const std::string& path, std::size_t events) {
  double t0 = now_seconds();
  ipm::Trace trace = ipm::Trace::load(path);
  analysis::EventFilter writes{.op = posix::OpType::kWrite};

  auto d = analysis::durations(trace, writes);
  stats::EmpiricalDistribution dist(d);
  stats::Moments moments = stats::compute_moments(d);
  stats::Histogram hist =
      stats::Histogram::from_samples(d, stats::BinScale::kLinear, 40);
  analysis::TimeSeries rates = analysis::aggregate_rate(trace, writes, 100);

  PathResult r;
  r.seconds = now_seconds() - t0;
  r.events_per_sec = static_cast<double>(events) / r.seconds;
  r.peak_rss_kib = peak_rss_kib();
  r.mean = moments.mean;
  r.median = dist.median();
  if (moments.count == 0 || hist.total() == 0 || rates.values.empty()) {
    std::abort();
  }
  return r;
}

}  // namespace

int main() {
  const std::size_t base = 200'000;
  const std::vector<std::size_t> sizes{base, 4 * base};

  std::printf("micro_analysis: streaming vs materialized trace analysis\n");
  std::printf("%10s %14s %16s %14s\n", "events", "path", "events/sec",
              "peak RSS KiB");

  struct Row {
    std::size_t events;
    PathResult streaming, materialized;
  };
  std::vector<Row> rows;
  for (std::size_t events : sizes) {
    std::string path = "micro_analysis_tmp.v2";
    write_synthetic_v2(path, events);

    Row row{events, {}, {}};
    // Streaming first: VmHWM only ever grows, so this order proves the
    // streaming pass did not need the materialized footprint.
    row.streaming = run_streaming(path, events);
    row.materialized = run_materialized(path, events);
    std::remove(path.c_str());

    if (std::abs(row.streaming.mean - row.materialized.mean) >
        1e-12 * row.materialized.mean) {
      std::fprintf(stderr, "mean mismatch: %.17g vs %.17g\n",
                   row.streaming.mean, row.materialized.mean);
      return 1;
    }
    if (std::abs(row.streaming.median - row.materialized.median) >
        0.02 * row.materialized.median) {
      std::fprintf(stderr, "median diverged: %.17g vs %.17g\n",
                   row.streaming.median, row.materialized.median);
      return 1;
    }
    std::printf("%10zu %14s %16.0f %14ld\n", events, "streaming",
                row.streaming.events_per_sec, row.streaming.peak_rss_kib);
    std::printf("%10zu %14s %16.0f %14ld\n", events, "materialized",
                row.materialized.events_per_sec, row.materialized.peak_rss_kib);
    rows.push_back(row);
  }

  utsname uts{};
  uname(&uts);
  std::ofstream json("BENCH_analysis.json");
  json << "{\n  \"benchmark\": \"micro_analysis\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n"
         << "      \"events\": " << r.events << ",\n"
         << "      \"streaming_events_per_sec\": "
         << r.streaming.events_per_sec << ",\n"
         << "      \"streaming_peak_rss_kib\": " << r.streaming.peak_rss_kib
         << ",\n"
         << "      \"materialized_events_per_sec\": "
         << r.materialized.events_per_sec << ",\n"
         << "      \"materialized_peak_rss_kib\": "
         << r.materialized.peak_rss_kib << "\n"
         << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"machine\": \"" << uts.sysname << " " << uts.release << " "
       << uts.machine << "\"\n"
       << "}\n";
  std::printf("[json] BENCH_analysis.json written\n");
  return 0;
}
