// Figure 2 + Section III-A reproduction: splitting the 512 MiB block
// into k = 1, 2, 4, 8 write() calls.
//
// The per-task total-time distributions narrow and become more
// Gaussian as k grows (Law of Large Numbers), pulling the Nth order
// statistic — and with it the reported data rate — toward the mean:
// paper rates 11,610 / 12,016 / 13,446 / 13,486 MB/s.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/histogram.h"
#include "core/lln.h"
#include "core/normality.h"
#include "core/order_stats.h"
#include "workloads/ior.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("fig2_lln_splitting — IOR 512MiB in k calls",
                "Figure 2(a-c) + Section III-A rates");

  const std::vector<std::uint32_t> ks{1, 2, 4, 8};
  const std::vector<double> paper_rates{11610.0, 12016.0, 13446.0, 13486.0};
  lustre::MachineConfig franklin = lustre::MachineConfig::franklin();

  std::vector<workloads::JobSpec> specs;
  for (std::uint32_t k : ks) {
    workloads::IorConfig cfg;
    cfg.calls_per_block = k;
    specs.push_back(workloads::make_ior_job(franklin, cfg));
  }
  std::vector<workloads::RunResult> results =
      workloads::run_jobs(specs, bench::jobs_flag(argc, argv));

  struct Row {
    std::uint32_t k;
    double rate_mib;
    stats::Moments totals;
    double expected_worst;
    double ppcc;  // probability-plot correlation vs the Gaussian
  };
  std::vector<Row> rows;
  std::vector<stats::Histogram> histograms;

  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::uint32_t k = ks[i];
    workloads::IorConfig cfg;
    cfg.calls_per_block = k;
    workloads::RunResult& result = results[i];
    auto per_call = analysis::per_rank_ordered(
        result.trace, {.op = posix::OpType::kWrite, .min_bytes = MiB},
        static_cast<std::size_t>(k) * cfg.segments);
    auto totals = stats::sum_groups(per_call, k);  // per task per segment
    stats::EmpiricalDistribution dist(totals);

    Row row;
    row.k = k;
    row.rate_mib = to_mib_per_s(result.reported_rate());
    row.totals = dist.moments();
    row.expected_worst = dist.expected_max_of(cfg.tasks);
    row.ppcc = stats::normal_ppcc(totals);
    rows.push_back(row);

    histograms.push_back(
        stats::Histogram(stats::BinScale::kLinear, 10.0, 60.0, 50));
    histograms.back().add_all(totals);
  }

  bench::section("per-task total-time distributions t_k");
  std::vector<const stats::Histogram*> hs;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    hs.push_back(&histograms[i]);
    names.push_back("k=" + std::to_string(rows[i].k));
  }
  std::printf("%s", analysis::render_histograms(
                        hs, names, {.width = 84, .height = 14,
                                    .x_label = "t_k (seconds)",
                                    .y_label = "count"})
                        .c_str());

  bench::section("narrowing and Gaussianization");
  std::printf("  %4s %10s %10s %10s %10s %10s %12s\n", "k", "mean(s)", "cv",
              "skewness", "PPCC", "E[max](s)", "rate MiB/s");
  for (const Row& r : rows) {
    std::printf("  %4u %10.2f %10.3f %10.2f %10.4f %10.2f %12.0f\n", r.k,
                r.totals.mean, r.totals.cv(), r.totals.skewness, r.ppcc,
                r.expected_worst, r.rate_mib);
  }
  std::printf(
      "  (PPCC = probability-plot correlation vs the Gaussian; 1 = normal.\n"
      "   The narrowing and the rate gain reproduce; unlike the paper's\n"
      "   visual Gaussianization, our totals stay left-skewed — the node\n"
      "   scheduler anti-correlates siblings' waits, a model deviation\n"
      "   recorded in EXPERIMENTS.md.)\n");

  bench::section("paper vs measured (reported rate)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::compare_row("k=" + std::to_string(rows[i].k), paper_rates[i],
                       rows[i].rate_mib, "MiB/s");
  }
  double paper_gain = paper_rates.back() / paper_rates.front();
  double measured_gain = rows.back().rate_mib / rows.front().rate_mib;
  bench::compare_row("k=8 / k=1 improvement", (paper_gain - 1.0) * 100.0,
                     (measured_gain - 1.0) * 100.0, "%");

  analysis::CsvWriter csv;
  std::vector<double> kcol, cv, skew, rate;
  for (const Row& r : rows) {
    kcol.push_back(r.k);
    cv.push_back(r.totals.cv());
    skew.push_back(r.totals.skewness);
    rate.push_back(r.rate_mib);
  }
  csv.column("k", kcol).column("cv", cv).column("skewness", skew)
      .column("rate_mib", rate);
  bench::maybe_save_csv("fig2_splitting", csv);
  return 0;
}
