// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints: a banner, the paper's reference numbers next to
// the measured ones, ASCII renderings of the figure panels, and (when
// EIO_BENCH_CSV is set in the environment) CSV files with the raw
// series for external plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "core/ascii_chart.h"
#include "core/csv.h"
#include "core/distribution.h"
#include "core/modes.h"
#include "core/rate_series.h"
#include "core/samples.h"
#include "core/trace_diagram.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "workloads/ensemble.h"
#include "workloads/experiment.h"

namespace eio::bench {

/// Parse `--jobs N` / `--jobs=N` from argv. Returns 0 (meaning "use
/// EIO_JOBS or hardware concurrency") when absent; every figure bench
/// forwards the value to workloads::run_jobs / run_ensemble.
inline std::size_t jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--jobs" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      continue;
    }
    char* end = nullptr;
    unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
    std::fprintf(stderr, "warning: ignoring malformed --jobs value '%s'\n",
                 value.c_str());
  }
  return 0;
}

/// The standard provenance header every BENCH_*.json embeds: report
/// schema version, generation timestamp, and the same build block the
/// eiotrace metrics report carries — so a bench number is always
/// traceable to the commit and flags that produced it. Emits trailing
/// ",\n"; call first inside the object.
inline void write_provenance(std::ostream& json) {
  json << "  \"schema_version\": " << obs::kMetricsSchemaVersion << ",\n"
       << "  \"generated_at\": \"" << obs::iso8601_utc_now() << "\",\n"
       << "  \"build\": ";
  obs::write_build_info_json(json, "  ");
  json << ",\n";
}

/// True when the host cannot actually run `jobs` workers at once, so a
/// parallel timing at that job count measures oversubscription, not
/// scaling. The bench process itself occupies one of the cores, so the
/// boundary is hardware_concurrency <= jobs (equality is scarce too).
[[nodiscard]] inline bool cores_scarce(std::size_t jobs) {
  return static_cast<std::size_t>(std::thread::hardware_concurrency()) <= jobs;
}

/// The structured honest-scaling annotation every BENCH_*.json with
/// parallel rows embeds: how many cores the host granted, the largest
/// job count benchmarked, and whether speedup claims are valid at all.
/// Emits `"scaling_note": {...},\n`; call inside the top-level object.
inline void write_scaling_note(std::ostream& json, std::size_t max_jobs) {
  const auto cores =
      static_cast<std::size_t>(std::thread::hardware_concurrency());
  const bool scarce = cores <= max_jobs;
  json << "  \"scaling_note\": {\n"
       << "    \"hardware_concurrency\": " << cores << ",\n"
       << "    \"max_jobs\": " << max_jobs << ",\n"
       << "    \"cores_scarce\": " << (scarce ? "true" : "false") << ",\n"
       << "    \"note\": \""
       << (scarce ? "cores scarce (hardware_concurrency <= max benchmarked "
                    "jobs): parallel rows measure oversubscription, not "
                    "scaling; speedup claims are suppressed"
                  : "hardware_concurrency exceeds every benchmarked job "
                    "count: parallel rows are valid scaling data")
       << "\"\n  },\n";
}

/// Self-observability flags shared with the eiotrace CLI
/// (--chrome-trace PATH, --metrics PATH, --obs-summary, --obs), in
/// both --flag=value and --flag value forms. Call obs_flags() before
/// the measured work and finish_obs() after it.
struct ObsFlags {
  std::string chrome_trace;
  std::string metrics;
  bool summary = false;
  bool enable = false;

  [[nodiscard]] bool any() const {
    return enable || summary || !chrome_trace.empty() || !metrics.empty();
  }
};

inline ObsFlags obs_flags(int argc, char** argv) {
  ObsFlags f;
  auto value_of = [&](int& i, const char* flag) -> const char* {
    std::string arg = argv[i];
    std::string name = flag;
    if (arg == name && i + 1 < argc) return argv[++i];
    if (arg.rfind(name + "=", 0) == 0) {
      return argv[i] + name.size() + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(i, "--chrome-trace")) {
      f.chrome_trace = v;
    } else if (const char* v = value_of(i, "--metrics")) {
      f.metrics = v;
    } else if (std::string(argv[i]) == "--obs-summary") {
      f.summary = true;
    } else if (std::string(argv[i]) == "--obs") {
      f.enable = true;
    }
  }
  if (f.any()) {
    obs::Registry::instance().reset();
    obs::set_enabled(true);
  }
  return f;
}

inline void finish_obs(const ObsFlags& f) {
  if (!f.any()) return;
  obs::set_enabled(false);
  obs::Snapshot snap = obs::Registry::instance().snapshot();
  if (!f.metrics.empty()) {
    obs::write_metrics_file(f.metrics, snap);
    std::printf("  [obs] %s written\n", f.metrics.c_str());
  }
  if (!f.chrome_trace.empty()) {
    obs::write_chrome_trace_file(f.chrome_trace);
    std::printf("  [obs] %s written\n", f.chrome_trace.c_str());
  }
  if (f.summary) {
    std::ostringstream os;
    obs::print_summary(os, snap);
    std::printf("%s", os.str().c_str());
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// paper-vs-measured row.
inline void compare_row(const std::string& what, double paper, double measured,
                        const std::string& unit) {
  double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-38s paper %10.1f %-6s measured %10.1f %-6s (x%.2f)\n",
              what.c_str(), paper, unit.c_str(), measured, unit.c_str(), ratio);
}

/// True when CSV dumps are requested (EIO_BENCH_CSV=dir).
inline const char* csv_dir() { return std::getenv("EIO_BENCH_CSV"); }

inline void maybe_save_csv(const std::string& name, analysis::CsvWriter& csv) {
  const char* dir = csv_dir();
  if (dir == nullptr) return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  csv.save(path);
  std::printf("  [csv] %s\n", path.c_str());
}

/// Print the standard three panels of a paper figure row: trace
/// diagram, aggregate rate, duration histogram.
inline void print_trace_diagram(const workloads::RunResult& result,
                                std::size_t rows = 24, std::size_t cols = 96) {
  analysis::TraceDiagram diagram(result.trace, {.max_rows = rows, .columns = cols});
  std::printf("%s", diagram.render_text().c_str());
  std::printf("  idle fraction: %.2f\n", diagram.idle_fraction());
}

inline void print_rate_series(const workloads::RunResult& result,
                              const analysis::EventFilter& filter,
                              const std::string& label) {
  analysis::TimeSeries series = analysis::aggregate_rate(result.trace, filter, 120);
  analysis::Series line{label, {}, {}};
  for (std::size_t i = 0; i < series.values.size(); ++i) {
    line.x.push_back(series.time_at(i));
    line.y.push_back(series.values[i] / static_cast<double>(MiB));
  }
  std::printf("%s", analysis::render_lines(
                        std::vector<analysis::Series>{line},
                        {.width = 84, .height = 12, .x_label = "seconds",
                         .y_label = "aggregate MiB/s", .title = ""})
                        .c_str());
}

inline void print_modes(const std::vector<stats::Mode>& modes,
                        const std::string& unit) {
  std::printf("  detected modes:\n");
  for (const auto& m : modes) {
    std::printf("    at %8.2f %-8s mass %4.1f%%  density %.4f\n", m.location,
                unit.c_str(), m.mass * 100.0, m.density);
  }
}

inline void print_summary(const workloads::RunResult& result) {
  std::printf("  run: %-28s  job time %8.1f s   data %8.1f GiB   rate %s\n",
              result.name.c_str(), result.job_time,
              to_gib(result.fs_stats.bytes_written + result.fs_stats.bytes_read),
              analysis::format_rate(result.reported_rate()).c_str());
  std::printf("       events traced %zu, engine events %llu, monitor overhead %s\n",
              result.trace.size(),
              static_cast<unsigned long long>(result.engine_events),
              analysis::format_seconds(result.monitor_overhead).c_str());
}

}  // namespace eio::bench
