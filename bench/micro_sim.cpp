// Simulator hot-path throughput: the slab/inline-action calendar and
// the slab-backed fluid network, against the pre-overhaul engine.
//
// Rows:
//  * engine_churn          — schedule/cancel-heavy calendar traffic
//    (the flow-reschedule shape: batches scheduled, ~98% cancelled,
//    survivors run) through the current engine;
//  * engine_churn_legacy   — the same traffic through a faithful copy
//    of the pre-overhaul calendar (std::function actions, an
//    unordered_map live table, lazy cancel + compaction), kept here so
//    the speedup is measured against the real predecessor rather than
//    remembered numbers;
//  * engine_schedule_run / engine_schedule_run_legacy — pure
//    schedule-then-drain throughput at pseudorandom times;
//  * flow_churn            — FluidNetwork start→complete throughput on
//    a striped, token-scheduled workload (grant, waiting queue, pump,
//    recompute, completion callbacks);
//  * flow_full_stripe      — every flow stripes over every OST, the
//    full-scan recompute shape of collective I/O;
//  * scenario_ior          — end-to-end runs/sec of a 128-task IOR job
//    assembled by ScenarioBuilder, the figure the ensemble benches
//    actually buy with these micro wins.
//
// Every row runs in a forked child reporting its own VmHWM through a
// pipe (fork resets the child's high-water mark, so rows do not
// inherit earlier footprints). BENCH_sim.json carries build
// provenance, hardware_concurrency, and the measured
// churn_speedup_vs_legacy headline.
#include <sys/utsname.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "sim/engine.h"
#include "sim/fluid.h"
#include "workloads/experiment.h"
#include "workloads/scenario.h"

namespace {

using namespace eio;

long peak_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  while (status >> key) {
    if (key == "VmHWM:") {
      status >> value;
      return value;
    }
    status.ignore(1 << 12, '\n');
  }
  return 0;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RowResult {
  double seconds = 0.0;
  double ops_per_sec = 0.0;  ///< row-specific unit; see the row list
  long peak_rss_kib = 0;
  double checksum = 0.0;     ///< keeps work observable / comparable
};

/// Run `fn` in a forked child and collect its RowResult through a pipe.
template <typename Fn>
RowResult measure(const Fn& fn) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    RowResult r = fn();
    r.peak_rss_kib = peak_rss_kib();
    ssize_t wrote = write(fds[1], &r, sizeof r);
    _exit(wrote == static_cast<ssize_t>(sizeof r) ? 0 : 1);
  }
  close(fds[1]);
  RowResult r{};
  ssize_t got = read(fds[0], &r, sizeof r);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof r) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "measurement child failed\n");
    std::exit(1);
  }
  return r;
}

// ---------------------------------------------------------------------------
// The pre-overhaul calendar, verbatim in structure: std::function
// actions (heap-allocated captures), an unordered_map live table
// probed on every schedule/cancel/step, lazy cancellation and
// dead-majority compaction. The baseline the slab engine's rows are
// compared against.
class LegacyCalendar {
 public:
  using Action = std::function<void()>;

  std::uint64_t schedule_at(double when, Action action) {
    std::uint64_t id = ++next_id_;
    live_.emplace(id, std::move(action));
    heap_.push_back(Entry{when, id});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return id;
  }

  bool cancel(std::uint64_t id) {
    if (live_.erase(id) == 0) return false;
    maybe_compact();
    return true;
  }

  bool step() {
    while (!heap_.empty()) {
      Entry top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
      auto it = live_.find(top.id);
      if (it == live_.end()) continue;
      now_ = top.when;
      Action action = std::move(it->second);
      live_.erase(it);
      ++events_run_;
      action();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }

 private:
  struct Entry {
    double when;
    std::uint64_t id;
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  void maybe_compact() {
    if (heap_.size() < 64) return;
    if (heap_.size() - live_.size() <= live_.size()) return;
    std::erase_if(heap_,
                  [this](const Entry& e) { return live_.count(e.id) == 0; });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  double now_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t events_run_ = 0;
  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, Action> live_;
};

/// schedule/cancel churn: per round, schedule a batch, cancel all but
/// one, drain. `ops` = schedules + cancels + executed events.
template <typename Calendar>
RowResult run_engine_churn(std::size_t rounds, std::size_t batch) {
  Calendar cal;
  std::vector<std::uint64_t> doomed;
  doomed.reserve(batch);
  std::uint64_t sink = 0;
  double base = 1e6;
  double t0 = now_seconds();
  std::size_t ops = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    doomed.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      std::uint64_t id = cal.schedule_at(
          base + static_cast<double>(round * batch + i),
          [&sink, round, i] { sink += round * 31 + i; });
      if (i > 0) doomed.push_back(id);
    }
    for (std::uint64_t id : doomed) cal.cancel(id);
    while (cal.step()) {
    }
    ops += batch + doomed.size() + 1;
  }
  RowResult r;
  r.seconds = now_seconds() - t0;
  r.ops_per_sec = static_cast<double>(ops) / r.seconds;
  r.checksum = static_cast<double>(sink);
  if (cal.events_run() != rounds) std::abort();
  return r;
}

/// Pure schedule-then-drain at pseudorandom times (no cancels).
template <typename Calendar>
RowResult run_engine_schedule_run(std::size_t events) {
  Calendar cal;
  std::uint64_t sink = 0;
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  double t0 = now_seconds();
  for (std::size_t i = 0; i < events; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double when = static_cast<double>(state % 1000000) / 10.0;
    cal.schedule_at(when, [&sink, i] { sink += i; });
  }
  cal.run();
  RowResult r;
  r.seconds = now_seconds() - t0;
  r.ops_per_sec = static_cast<double>(events) / r.seconds;
  r.checksum = static_cast<double>(sink);
  if (cal.events_run() != events) std::abort();
  return r;
}

/// FluidNetwork start→complete throughput. `stripe_all` = every flow
/// stripes over every OST (the collective full-scan recompute shape);
/// otherwise flows stripe over 4 of 16 OSTs round-robin.
RowResult run_flow_churn(std::size_t rounds, bool stripe_all) {
  sim::Engine engine;
  sim::FluidNetwork::Config cfg;
  cfg.nic_capacity.assign(8, 1000.0);
  cfg.ost_capacity.assign(16, 100.0);
  cfg.node_policy = sim::ConcurrencyPolicy::franklin_mix();
  sim::FluidNetwork net(engine, cfg);

  std::size_t completed = 0;
  std::vector<OstId> stripe;
  double t0 = now_seconds();
  std::size_t started = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (NodeId node = 0; node < 8; ++node) {
      for (int s = 0; s < 6; ++s) {
        stripe.clear();
        if (stripe_all) {
          for (OstId o = 0; o < 16; ++o) stripe.push_back(o);
        } else {
          for (OstId o = 0; o < 4; ++o) {
            stripe.push_back((node * 4 + static_cast<OstId>(s) + o) % 16);
          }
        }
        sim::FlowSpec spec;
        spec.node = node;
        spec.bytes = 64 << 20;
        spec.osts = stripe;
        spec.on_complete = [&completed](sim::FlowId) { ++completed; };
        net.start_flow(std::move(spec));
        ++started;
      }
    }
    engine.run();
  }
  RowResult r;
  r.seconds = now_seconds() - t0;
  r.ops_per_sec = static_cast<double>(started) / r.seconds;
  r.checksum = static_cast<double>(completed);
  if (completed != started) std::abort();
  return r;
}

/// End-to-end: runs/sec of a 128-task IOR job (the ensemble unit of
/// work every ROADMAP item multiplies).
RowResult run_scenario_ior(std::size_t runs) {
  workloads::IorConfig cfg;
  cfg.tasks = 128;
  cfg.segments = 2;
  workloads::JobSpec job =
      workloads::ScenarioBuilder().machine("franklin").ior(cfg).job();
  double t0 = now_seconds();
  auto results = workloads::run_ensemble(job, runs, /*jobs=*/1);
  RowResult r;
  r.seconds = now_seconds() - t0;
  r.ops_per_sec = static_cast<double>(runs) / r.seconds;
  double total = 0.0;
  for (const auto& res : results) total += res.job_time;
  r.checksum = total;
  if (results.size() != runs) std::abort();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  eio::bench::ObsFlags obs = eio::bench::obs_flags(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t churn_rounds = quick ? 2'000 : 20'000;
  const std::size_t churn_batch = 50;
  const std::size_t drain_events = quick ? 100'000 : 1'000'000;
  const std::size_t flow_rounds = quick ? 200 : 2'000;
  const std::size_t scenario_runs = quick ? 2 : 8;

  std::printf("micro_sim: simulator hot-path throughput\n");
  std::printf("%26s %8s %16s %14s\n", "row", "unit", "ops/sec",
              "peak RSS KiB");

  const std::size_t cores = std::thread::hardware_concurrency();

  struct Row {
    std::string name;
    const char* unit;
    RowResult result;
  };
  std::vector<Row> rows;
  auto emit = [&rows](std::string name, const char* unit, RowResult r) {
    std::printf("%26s %8s %16.0f %14ld\n", name.c_str(), unit, r.ops_per_sec,
                r.peak_rss_kib);
    rows.push_back({std::move(name), unit, r});
  };

  RowResult churn = measure([&] {
    return run_engine_churn<eio::sim::Engine>(churn_rounds, churn_batch);
  });
  emit("engine_churn", "events", churn);
  RowResult churn_legacy = measure([&] {
    return run_engine_churn<LegacyCalendar>(churn_rounds, churn_batch);
  });
  emit("engine_churn_legacy", "events", churn_legacy);
  if (churn.checksum != churn_legacy.checksum) {
    std::fprintf(stderr, "churn checksums disagree across engines\n");
    return 1;
  }
  double churn_speedup = churn.ops_per_sec / churn_legacy.ops_per_sec;
  std::printf("%26s %8s %15.2fx\n", "churn_speedup", "", churn_speedup);

  RowResult drain = measure(
      [&] { return run_engine_schedule_run<eio::sim::Engine>(drain_events); });
  emit("engine_schedule_run", "events", drain);
  RowResult drain_legacy = measure(
      [&] { return run_engine_schedule_run<LegacyCalendar>(drain_events); });
  emit("engine_schedule_run_legacy", "events", drain_legacy);
  if (drain.checksum != drain_legacy.checksum) {
    std::fprintf(stderr, "drain checksums disagree across engines\n");
    return 1;
  }

  RowResult flows = measure(
      [&] { return run_flow_churn(flow_rounds, /*stripe_all=*/false); });
  emit("flow_churn", "flows", flows);
  RowResult full_stripe = measure(
      [&] { return run_flow_churn(flow_rounds, /*stripe_all=*/true); });
  emit("flow_full_stripe", "flows", full_stripe);

  RowResult scenario = measure([&] { return run_scenario_ior(scenario_runs); });
  emit("scenario_ior", "runs", scenario);

  utsname uts{};
  uname(&uts);
  std::ofstream json("BENCH_sim.json");
  json << "{\n";
  eio::bench::write_provenance(json);
  json << "  \"benchmark\": \"micro_sim\",\n"
       << "  \"note\": \"each row measured in a forked child, so "
          "peak_rss_kib is per-row VmHWM; engine rows count calendar "
          "operations (schedules + cancels + executed events for churn, "
          "executed events for schedule_run), flow rows count completed "
          "flows, scenario_ior counts whole simulated runs; *_legacy "
          "rows drive an in-bench copy of the pre-overhaul calendar "
          "(std::function actions + unordered_map live table) over "
          "identical traffic, and churn_speedup_vs_legacy is the "
          "current/legacy ratio of the churn rows\",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"churn_speedup_vs_legacy\": " << churn_speedup << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n"
         << "      \"row\": \"" << r.name << "\",\n"
         << "      \"unit\": \"" << r.unit << "\",\n"
         << "      \"ops_per_sec\": " << r.result.ops_per_sec << ",\n"
         << "      \"seconds\": " << r.result.seconds << ",\n"
         << "      \"peak_rss_kib\": " << r.result.peak_rss_kib << "\n"
         << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"machine\": \"" << uts.sysname << " " << uts.release << " "
       << uts.machine << "\"\n"
       << "}\n";
  std::printf("[json] BENCH_sim.json written\n");
  eio::bench::finish_obs(obs);
  return 0;
}
