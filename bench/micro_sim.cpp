// google-benchmark microbenchmarks for the simulation engine: event
// calendar throughput and fluid-network flow churn, the two costs that
// bound how large a machine the simulator can model.
#include <benchmark/benchmark.h>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/fluid.h"

namespace {

using namespace eio;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t x = 88172645463325252ULL;
    for (std::size_t i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      engine.schedule_at(static_cast<double>(x % 100000) * 1e-3, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_run());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_EngineCancelHalf(benchmark::State& state) {
  const std::size_t n = 10000;
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(engine.events_run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCancelHalf);

/// Flow churn: `flows` concurrent striped flows over a 48-OST system,
/// the shape of a GCRM-scale simulation step.
void BM_FluidFlowChurn(benchmark::State& state) {
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FluidNetwork::Config cfg;
    cfg.nic_capacity.assign(flows / 4 + 1, 1e9);
    cfg.ost_capacity.assign(48, 350.0 * static_cast<double>(MiB));
    cfg.node_policy = sim::ConcurrencyPolicy::fixed(4);
    sim::FluidNetwork net(engine, cfg);
    for (std::uint32_t i = 0; i < flows; ++i) {
      net.start_flow({.node = i / 4,
                      .bytes = 2 * MiB,
                      .osts = {static_cast<OstId>(i % 48),
                               static_cast<OstId>((i + 1) % 48)}});
    }
    engine.run();
    benchmark::DoNotOptimize(net.bytes_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidFlowChurn)->Arg(256)->Arg(4096);

/// Full-stripe flows: every flow touches every OST (the IOR shape),
/// stressing the full-scan recompute path.
void BM_FluidFullStripe(benchmark::State& state) {
  const std::uint32_t flows = 512;
  std::vector<OstId> all_osts;
  for (OstId o = 0; o < 48; ++o) all_osts.push_back(o);
  for (auto _ : state) {
    sim::Engine engine;
    sim::FluidNetwork::Config cfg;
    cfg.nic_capacity.assign(flows / 4, 1e9);
    cfg.ost_capacity.assign(48, 350.0 * static_cast<double>(MiB));
    sim::FluidNetwork net(engine, cfg);
    for (std::uint32_t i = 0; i < flows; ++i) {
      net.start_flow({.node = i / 4, .bytes = 32 * MiB, .osts = all_osts});
    }
    engine.run();
    benchmark::DoNotOptimize(net.bytes_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidFullStripe);

}  // namespace

BENCHMARK_MAIN();
