// Ablation: the node-client stream scheduler policy.
//
// DESIGN.md attributes the Figure 1(c) harmonic modes to intra-node
// stream serialization. This ablation runs the same IOR experiment
// under pure-fair, pure-serial, and the calibrated mixed policy: the
// harmonics appear only when some nodes serialize, while the *node
// aggregate* (and hence the mean rate) barely moves — exactly why
// event-level reasoning misses the effect and ensemble analysis
// catches it.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/histogram.h"
#include "workloads/ior.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("ablation_scheduler — node stream-scheduler policies",
                "DESIGN.md: mechanism behind Figure 1(c) harmonics");

  struct Case {
    const char* label;
    sim::ConcurrencyPolicy policy;
  };
  const Case cases[] = {
      {"fair (4 streams)", sim::ConcurrencyPolicy::fixed(4)},
      {"paired (2 streams)", sim::ConcurrencyPolicy::fixed(2)},
      {"serial (1 stream)", sim::ConcurrencyPolicy::fixed(1)},
      {"franklin mix (25/30/45)", sim::ConcurrencyPolicy::franklin_mix()},
  };

  workloads::IorConfig cfg;
  cfg.tasks = 512;
  cfg.block_size = 256 * MiB;
  cfg.segments = 2;

  std::vector<workloads::JobSpec> specs;
  for (const Case& c : cases) {
    lustre::MachineConfig machine = lustre::MachineConfig::franklin();
    machine.node_policy = c.policy;
    specs.push_back(workloads::make_ior_job(machine, cfg));
  }
  std::vector<workloads::RunResult> results =
      workloads::run_jobs(specs, bench::jobs_flag(argc, argv));

  for (std::size_t i = 0; i < results.size(); ++i) {
    const Case& c = cases[i];
    workloads::RunResult& result = results[i];
    auto writes = analysis::durations(
        result.trace, {.op = posix::OpType::kWrite, .min_bytes = MiB});
    auto modes = stats::find_modes(writes, {.bandwidth_scale = 0.45});
    stats::Moments m = stats::compute_moments(writes);

    bench::section(c.label);
    std::printf("  job %.1f s, rate %s, write mean %.1f s cv %.3f\n",
                result.job_time,
                analysis::format_rate(result.reported_rate()).c_str(), m.mean,
                m.cv());
    bench::print_modes(modes, "s");
    auto matched = stats::harmonic_signature(modes, 0.3);
    std::printf("  harmonics matched:");
    if (matched.size() <= 1) std::printf(" none beyond the fundamental");
    for (int h : matched) {
      if (h > 1) std::printf(" T/%d", h);
    }
    std::printf("\n");
  }

  std::printf(
      "\n  takeaway: serialization reshapes the *distribution* (multi-modal,\n"
      "  high cv) while node aggregates — and thus reported rates — stay\n"
      "  within a few percent. Only the ensemble view exposes it.\n");
  return 0;
}
