// Campaign throughput: the same sweep sharded across 1 vs N worker
// processes, with the byte-identity contract checked in-process (the
// consolidated campaign.jsonl must be identical for every worker
// count, or the rows are meaningless). Writes BENCH_campaign.json.
//
// The bench binary is its own worker: the dispatcher execs
// /proc/self/exe with argv[1] = "campaign-worker", and main() routes
// that straight into the CLI library — the same path the installed
// eiotrace binary takes.
#include <sys/utsname.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "campaign/campaign.h"
#include "cli/eiotrace.h"

namespace {

using eio::campaign::CampaignOptions;
using eio::campaign::run_campaign;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// One campaign execution; returns wall seconds.
double time_campaign(const std::string& manifest, const std::string& out_dir,
                     std::size_t workers) {
  CampaignOptions opt;
  opt.manifest = manifest;
  opt.out_dir = out_dir;
  opt.workers = workers;
  std::ostringstream sink;
  auto t0 = std::chrono::steady_clock::now();
  int rc = run_campaign(opt, sink, sink);
  auto t1 = std::chrono::steady_clock::now();
  if (rc != 0) {
    std::fprintf(stderr, "campaign failed (rc %d):\n%s", rc,
                 sink.str().c_str());
    std::exit(1);
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: the dispatcher exec'd this binary back on itself.
  if (argc > 1 && std::strcmp(argv[1], "campaign-worker") == 0) {
    std::vector<std::string> args(argv + 1, argv + argc);
    return eio::cli::run_eiotrace(args, std::cout, std::cerr);
  }

  eio::bench::ObsFlags obs = eio::bench::obs_flags(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  namespace fs = std::filesystem;
  const fs::path work = "bench_campaign_tmp";
  fs::remove_all(work);
  fs::create_directories(work);

  // The sweep: a grid over seed x tasks x ensemble size on an inline
  // IOR base, expanded identically by every worker-count row.
  const int seeds = quick ? 4 : 8;
  std::ostringstream manifest;
  manifest << "{\n  \"schema_version\": 1,\n  \"name\": \"bench\",\n"
           << "  \"base\": {\n"
           << "    \"schema_version\": 1,\n    \"name\": \"bench-base\",\n"
           << "    \"machine\": \"franklin\",\n    \"runs\": 1,\n"
           << "    \"workload\": {\"kind\": \"ior\", \"tasks\": 32,"
              " \"block_mib\": 64, \"segments\": 2}\n  },\n"
           << "  \"sweep\": {\n    \"mode\": \"grid\",\n    \"axes\": {\n"
           << "      \"seed\": [";
  for (int s = 1; s <= seeds; ++s) manifest << (s > 1 ? ", " : "") << s;
  manifest << "],\n      \"workload.tasks\": [16, 32],\n"
           << "      \"runs\": [1, 2]\n    }\n  }\n}\n";
  const std::string manifest_path = (work / "sweep.json").string();
  std::ofstream(manifest_path) << manifest.str();
  const std::size_t run_count = static_cast<std::size_t>(seeds) * 2 * 2;

  const std::size_t hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> worker_counts{1, 2};
  if (!quick) worker_counts.push_back(4);

  std::printf("bench_campaign: %zu-run sweep, workers 1 vs N\n", run_count);
  std::printf("%9s %12s %12s %10s\n", "workers", "seconds", "runs/sec",
              "speedup");

  struct Row {
    std::size_t workers;
    double seconds;
  };
  std::vector<Row> rows;
  std::string reference_store;
  bool identical = true;
  for (std::size_t w : worker_counts) {
    std::string dir_name = "w";
    dir_name += std::to_string(w);
    const std::string out_dir = (work / dir_name).string();
    double secs = time_campaign(manifest_path, out_dir, w);
    std::string store = slurp(out_dir + "/campaign.jsonl");
    if (reference_store.empty()) {
      reference_store = store;
    } else if (store != reference_store) {
      identical = false;
    }
    // The speedup column is a scaling claim; with scarce cores it is
    // suppressed, not printed-then-disclaimed.
    char speedup[32] = "-";
    if (w > 1 && !eio::bench::cores_scarce(w)) {
      std::snprintf(speedup, sizeof speedup, "x%.2f",
                    rows.front().seconds / secs);
    } else if (w > 1) {
      std::snprintf(speedup, sizeof speedup, "[cores scarce]");
    }
    std::printf("%9zu %12.2f %12.2f %10s\n", w, secs,
                static_cast<double>(run_count) / secs, speedup);
    rows.push_back({w, secs});
  }
  if (reference_store.empty()) {
    std::fprintf(stderr, "empty consolidated store\n");
    return 1;
  }
  std::printf("  consolidated stores byte-identical across worker counts: "
              "%s\n", identical ? "yes" : "NO");

  utsname uts{};
  uname(&uts);
  std::ofstream json("BENCH_campaign.json");
  json << "{\n";
  eio::bench::write_provenance(json);
  json << "  \"benchmark\": \"bench_campaign\",\n"
       << "  \"sweep_runs\": " << run_count << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n";
  eio::bench::write_scaling_note(json, worker_counts.back());
  json << "  \"stores_byte_identical\": " << (identical ? "true" : "false")
       << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n      \"workers\": " << r.workers << ",\n"
         << "      \"seconds\": " << r.seconds << ",\n"
         << "      \"runs_per_sec\": "
         << static_cast<double>(run_count) / r.seconds << ",\n"
         << "      \"meaningful\": "
         << (r.workers == 1 || !eio::bench::cores_scarce(r.workers)
                 ? "true" : "false")
         << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"machine\": \"" << uts.sysname << " " << uts.release
       << " " << uts.machine << "\"\n}\n";
  std::printf("[json] BENCH_campaign.json written\n");

  fs::remove_all(work);
  eio::bench::finish_obs(obs);
  return identical ? 0 : 1;
}
