// Figure 6 reproduction: GCRM I/O kernel, 10,240 tasks writing one
// shared HDF5 file, through the paper's three optimizations:
//
//   baseline                 310 s  (Fig 6 a-c)
//   + collective buffering   190 s  (Fig 6 d-f, 1.6x)
//   + 1 MiB alignment        150 s  (Fig 6 g-i)
//   + metadata aggregation    75 s  (Fig 6 j-l, > 4x total)
//
// Panels per row: trace diagram, aggregate write rate, and the
// normalized sec/MiB histogram split into data vs metadata transfers.
#include <cstdio>

#include "bench_common.h"
#include "core/diagnose.h"
#include "core/histogram.h"
#include "workloads/gcrm.h"

using namespace eio;

namespace {

void report_config(const workloads::RunResult& result, const char* label) {
  bench::section(std::string(label) + ": trace diagram");
  bench::print_trace_diagram(result);

  bench::section(std::string(label) + ": aggregate write rate");
  bench::print_rate_series(result, {.op = posix::OpType::kWrite}, "write");

  bench::section(std::string(label) + ": normalized sec/MiB histograms");
  auto data = analysis::seconds_per_mib(
      result.trace, {.op = posix::OpType::kWrite, .min_bytes = MiB});
  auto meta = analysis::seconds_per_mib(
      result.trace, {.op = posix::OpType::kWrite, .min_bytes = 1,
                     .max_bytes = 64 * KiB});
  stats::Histogram hd(stats::BinScale::kLog10, 1e-3, 1e4, 56);
  hd.add_all(data);
  if (!meta.empty()) {
    stats::Histogram hm(stats::BinScale::kLog10, 1e-3, 1e4, 56);
    hm.add_all(meta);
    std::vector<const stats::Histogram*> hs{&hd, &hm};
    std::vector<std::string> names{"data (1.6 MB records)", "metadata (<3 KiB)"};
    std::printf("%s", analysis::render_histograms(
                          hs, names, {.width = 84, .height = 12, .log_y = true,
                                      .x_label = "sec/MiB (log)",
                                      .y_label = "count (log)"})
                          .c_str());
  } else {
    std::printf("%s", analysis::render_histogram(
                          hd, {.width = 84, .height = 12, .log_y = true,
                               .x_label = "sec/MiB (log)",
                               .y_label = "count (log)"})
                          .c_str());
    std::printf("  (no small metadata transfers in this configuration)\n");
  }
  stats::EmpiricalDistribution dd(std::move(data));
  std::printf("  data: median %.2f MiB/s per task, worst %.3f MiB/s\n",
              1.0 / dd.median(), 1.0 / dd.max());
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("fig6_gcrm_optimizations — GCRM 10,240 tasks, shared file",
                "Figure 6(a-l), Section V");

  lustre::MachineConfig franklin = lustre::MachineConfig::franklin();
  struct Step {
    const char* label;
    workloads::GcrmConfig cfg;
    double paper_seconds;
  };
  const Step steps[] = {
      {"baseline (Fig 6a-c)", workloads::GcrmConfig::baseline(), 310.0},
      {"collective buffering, 80 I/O tasks (Fig 6d-f)",
       workloads::GcrmConfig::with_collective_buffering(), 190.0},
      {"+ 1 MiB alignment (Fig 6g-i)", workloads::GcrmConfig::with_alignment(),
       150.0},
      {"+ aggregated metadata (Fig 6j-l)",
       workloads::GcrmConfig::fully_optimized(), 75.0},
  };

  std::vector<workloads::JobSpec> specs;
  for (const Step& step : steps) {
    specs.push_back(workloads::make_gcrm_job(franklin, step.cfg));
  }
  std::vector<workloads::RunResult> results =
      workloads::run_jobs(specs, bench::jobs_flag(argc, argv));
  for (std::size_t i = 0; i < results.size(); ++i) {
    report_config(results[i], steps[i].label);
  }

  bench::section("diagnosis of the baseline (what the method tells you to fix)");
  analysis::DiagnoserOptions opt;
  opt.fair_share_rate = workloads::fair_share_rate(franklin, 10240);
  for (const auto& f : analysis::diagnose(results[0].trace, opt)) {
    std::printf("  [%-22s sev %.2f] %s\n", analysis::finding_name(f.code),
                f.severity, f.message.c_str());
  }

  bench::section("paper vs measured (run times)");
  for (std::size_t i = 0; i < results.size(); ++i) {
    bench::compare_row(steps[i].label, steps[i].paper_seconds,
                       results[i].job_time, "s");
  }
  bench::compare_row("total speedup", 310.0 / 75.0,
                     results[0].job_time / results[3].job_time, "x");
  bench::compare_row("collective-buffering step", 310.0 / 190.0,
                     results[0].job_time / results[1].job_time, "x");

  for (const auto& r : results) bench::print_summary(r);

  analysis::CsvWriter csv;
  std::vector<double> idx, paper, measured;
  for (std::size_t i = 0; i < results.size(); ++i) {
    idx.push_back(static_cast<double>(i));
    paper.push_back(steps[i].paper_seconds);
    measured.push_back(results[i].job_time);
  }
  csv.column("step", idx).column("paper_s", paper).column("measured_s", measured);
  bench::maybe_save_csv("fig6_runtimes", csv);
  return 0;
}
