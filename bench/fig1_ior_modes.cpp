// Figure 1 reproduction: IOR, 1024 tasks x 512 MiB single-call writes,
// five barrier-separated phases on Franklin.
//
//   (a) trace diagram — synchronous write banding;
//   (b) aggregate data rate over the job;
//   (c) completion-time histogram with modes at R, R/2, R/4 (R = the
//       per-task fair share, ~16 MiB/s -> ~31 s for 512 MiB), plus the
//       scratch-vs-scratch2 reproducibility comparison.
#include <cstdio>

#include "bench_common.h"
#include "core/histogram.h"
#include "core/ks.h"
#include "workloads/ior.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("fig1_ior_modes — IOR 1024x512MiB, k=1",
                "Figure 1(a-c), Section III");

  workloads::IorConfig cfg;  // paper defaults: 1024 tasks, 512 MiB, 5 phases
  lustre::MachineConfig franklin = lustre::MachineConfig::franklin();

  // The paper's second file system: same hardware, independent run.
  lustre::MachineConfig scratch2_machine = franklin;
  scratch2_machine.seed += 1;
  std::vector<workloads::RunResult> results = workloads::run_jobs(
      {workloads::make_ior_job(franklin, cfg),
       workloads::make_ior_job(scratch2_machine, cfg)},
      bench::jobs_flag(argc, argv));
  workloads::RunResult& scratch = results[0];
  workloads::RunResult& scratch2 = results[1];

  bench::section("(a) I/O trace diagram (scratch)");
  bench::print_trace_diagram(scratch);

  bench::section("(b) aggregate write rate");
  analysis::EventFilter writes{.op = posix::OpType::kWrite, .min_bytes = MiB};
  bench::print_rate_series(scratch, writes, "write rate");

  bench::section("(c) write() completion-time distribution");
  auto durations = analysis::durations(scratch.trace, writes);
  auto durations2 = analysis::durations(scratch2.trace, writes);
  stats::Histogram hist =
      stats::Histogram::from_samples(durations, stats::BinScale::kLinear, 50);
  std::printf("%s", analysis::render_histogram(
                        hist, {.width = 84, .height = 12, .x_label = "seconds",
                               .y_label = "count"})
                        .c_str());

  auto modes = stats::find_modes(durations, {.bandwidth_scale = 0.45});
  bench::print_modes(modes, "s");
  auto matched = stats::harmonic_signature(modes, 0.3);
  std::printf("  harmonic signature (T/n matched): ");
  for (int h : matched) std::printf("T/%d ", h);
  std::printf("\n");

  double fair_rate = workloads::fair_share_rate(franklin, cfg.tasks);
  std::printf("  fair-share completion time for %.0f MiB: %.1f s\n",
              to_mib(cfg.block_size),
              static_cast<double>(cfg.block_size) / fair_rate);
  double slowest_mode = 0.0;
  for (const auto& m : modes) slowest_mode = std::max(slowest_mode, m.location);

  bench::section("paper vs measured");
  bench::compare_row("fair-share rate R", 16.5, to_mib_per_s(fair_rate), "MiB/s");
  bench::compare_row("R-mode completion time", 31.0, slowest_mode, "s");
  bench::compare_row("phase run time (N-th order stat)", 45.0,
                     scratch.job_time / cfg.segments, "s");
  bench::compare_row("reported write rate", 11610.0,
                     to_mib_per_s(scratch.reported_rate()), "MiB/s");

  bench::section("scratch vs scratch2 (ensemble reproducibility)");
  stats::KsResult ks = stats::ks_two_sample(durations, durations2);
  std::printf("  two-sample KS distance %.4f (p = %.3f) across %zu + %zu events\n",
              ks.statistic, ks.p_value, durations.size(), durations2.size());
  std::printf("  -> the distributions are statistically indistinguishable while\n"
              "     the runs' event sequences differ (job %.1f s vs %.1f s)\n",
              scratch.job_time, scratch2.job_time);

  bench::print_summary(scratch);
  bench::print_summary(scratch2);

  analysis::CsvWriter csv;
  std::vector<double> centers, counts;
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    centers.push_back(hist.bin_center(b));
    counts.push_back(static_cast<double>(hist.count(b)));
  }
  csv.column("duration_s", centers).column("count", counts);
  bench::maybe_save_csv("fig1c_histogram", csv);
  return 0;
}
