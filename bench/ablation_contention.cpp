// Ablation: writer-count sweep against one shared file.
//
// Backs the paper's Section V observation that "as few as 80 tasks can
// saturate the I/O subsystem" — aggregate throughput rises with writer
// count, saturates near ~10^2 writers, then *declines* as client-count
// contention bites at the thousands-of-writers scale (the force behind
// the GCRM collective-buffering optimization).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "workloads/ior.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("ablation_contention — writer-count sweep, fixed 40 GiB total",
                "Section V: '80 tasks can saturate the I/O subsystem'");

  lustre::MachineConfig franklin = lustre::MachineConfig::franklin();
  const Bytes total = 40 * GiB;

  const std::vector<std::uint32_t> counts{16u, 40u, 80u, 160u, 320u, 640u,
                                          1280u, 2560u, 5120u, 10240u};
  std::vector<workloads::JobSpec> specs;
  for (std::uint32_t n : counts) {
    workloads::IorConfig cfg;
    cfg.tasks = n;
    cfg.block_size = total / n;
    cfg.segments = 1;
    specs.push_back(workloads::make_ior_job(franklin, cfg));
  }
  std::vector<workloads::RunResult> results =
      workloads::run_jobs(specs, bench::jobs_flag(argc, argv));

  bench::section("aggregate write throughput vs writer count");
  std::printf("  %8s %12s %14s %16s\n", "writers", "MiB each", "job time (s)",
              "aggregate GiB/s");
  std::vector<double> writers, rates;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::uint32_t n = counts[i];
    workloads::RunResult& result = results[i];
    double gib_s = to_gib(result.fs_stats.bytes_written) / result.job_time;
    std::printf("  %8u %12.1f %14.1f %16.2f\n", n, to_mib(total / n),
                result.job_time, gib_s);
    writers.push_back(n);
    rates.push_back(gib_s);
  }

  analysis::Series s{"GiB/s", writers, rates};
  std::printf("%s", analysis::render_lines(
                        std::vector<analysis::Series>{s},
                        {.width = 84, .height = 12, .log_x = true,
                         .x_label = "writers (log)", .y_label = "GiB/s"})
                        .c_str());

  // Saturation and decline summary.
  std::size_t arg_peak = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] > rates[arg_peak]) arg_peak = i;
  }
  std::printf("\n  peak %.2f GiB/s at %u writers; at 10,240 writers: %.2f GiB/s "
              "(%.0f%% of peak)\n",
              rates[arg_peak], static_cast<unsigned>(writers[arg_peak]),
              rates.back(), 100.0 * rates.back() / rates[arg_peak]);

  analysis::CsvWriter csv;
  csv.column("writers", writers).column("gib_per_s", rates);
  bench::maybe_save_csv("ablation_contention", csv);
  return 0;
}
