// google-benchmark microbenchmarks for the statistics engine: these
// quantify the cost of the ensemble-analysis primitives themselves
// (the paper's argument for profiling over tracing rests on these
// being cheap).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/distribution.h"
#include "core/histogram.h"
#include "core/ks.h"
#include "core/modes.h"
#include "core/order_stats.h"
#include "core/streaming.h"
#include "ipm/profile.h"

namespace {

using namespace eio;

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  rng::Stream r(seed);
  std::vector<double> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.push_back(r.lognormal(1.0, 0.5));
  return s;
}

void BM_HistogramAdd(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    stats::Histogram h(stats::BinScale::kLog10, 0.1, 100.0, 64);
    h.add_all(samples);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramAdd)->Arg(1024)->Arg(65536);

void BM_ProfileObserve(benchmark::State& state) {
  auto samples = lognormal_sample(4096, 2);
  for (auto _ : state) {
    ipm::Profile p;
    for (double s : samples) {
      p.observe(posix::OpType::kWrite, 1 << 20, s);
    }
    benchmark::DoNotOptimize(p.total());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ProfileObserve);

void BM_EmpiricalDistribution(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    stats::EmpiricalDistribution d(samples);
    benchmark::DoNotOptimize(d.quantile(0.99));
  }
}
BENCHMARK(BM_EmpiricalDistribution)->Arg(1024)->Arg(65536);

void BM_ModeFinding(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto modes = stats::find_modes(samples);
    benchmark::DoNotOptimize(modes.size());
  }
}
BENCHMARK(BM_ModeFinding)->Arg(1024)->Arg(16384);

void BM_KsTwoSample(benchmark::State& state) {
  auto a = lognormal_sample(static_cast<std::size_t>(state.range(0)), 5);
  auto b = lognormal_sample(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_two_sample(a, b).statistic);
  }
}
BENCHMARK(BM_KsTwoSample)->Arg(1024)->Arg(16384);

void BM_ExpectedMax(benchmark::State& state) {
  stats::EmpiricalDistribution d(lognormal_sample(8192, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.expected_max_of(1024));
  }
}
BENCHMARK(BM_ExpectedMax);

// ---------------------------------------------------------------------------
// Reservoir sampling: the per-event cost the skip-gap refactor exists
// to remove. BM_ReservoirPerDraw re-implements the historical Algorithm
// R inner loop (one uniform draw per event past capacity) as the
// baseline; the SkipGap pair measures the shipping Algorithm X kernel
// through both the per-event and the batched entry point.

/// The pre-skip-gap per-event update: one rng draw for every element
/// past capacity. Kept here (not in src/) purely as a measurement
/// baseline.
struct PerDrawReservoir {
  std::size_t capacity;
  rng::Stream rng;
  std::vector<double> samples;
  std::uint64_t seen = 0;

  PerDrawReservoir(std::size_t cap, std::uint64_t seed)
      : capacity(cap), rng(seed) {
    samples.reserve(cap);
  }
  void add(double x) {
    ++seen;
    if (samples.size() < capacity) {
      samples.push_back(x);
      return;
    }
    std::uint64_t j = rng.index(seen);
    if (j < capacity) samples[static_cast<std::size_t>(j)] = x;
  }
};

void BM_ReservoirPerDraw(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    PerDrawReservoir r(1024, 42);
    for (double x : samples) r.add(x);
    benchmark::DoNotOptimize(r.samples.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReservoirPerDraw)->Arg(65536)->Arg(1 << 20);

void BM_ReservoirSkipGap(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    stats::ReservoirSampler r(1024, 42);
    for (double x : samples) r.add(x);
    benchmark::DoNotOptimize(r.samples().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReservoirSkipGap)->Arg(65536)->Arg(1 << 20);

void BM_ReservoirSkipGapBatch(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    stats::ReservoirSampler r(1024, 42);
    r.absorb(samples);
    benchmark::DoNotOptimize(r.samples().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReservoirSkipGapBatch)->Arg(65536)->Arg(1 << 20);

// StreamingHistogram fill: scalar add() vs add_batch() over a dense
// span (the columnar path), both staying in exact mode so the work
// measured is the fill itself.

void BM_StreamingHistogramAddScalar(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    stats::StreamingHistogram h(
        {.scale = stats::BinScale::kLog10, .bins = 64,
         .exact_capacity = samples.size()});
    for (double x : samples) h.add(x);
    benchmark::DoNotOptimize(h.count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamingHistogramAddScalar)->Arg(65536);

void BM_StreamingHistogramAddBatch(benchmark::State& state) {
  auto samples = lognormal_sample(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    stats::StreamingHistogram h(
        {.scale = stats::BinScale::kLog10, .bins = 64,
         .exact_capacity = samples.size()});
    h.add_batch(samples);
    benchmark::DoNotOptimize(h.count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamingHistogramAddBatch)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
