// Ablation: tracing vs in-situ profiling fidelity.
//
// The paper closes: "it may not even be necessary to store a majority
// of the performance data, just enough to define the distribution...
// moving the data captures from an I/O tracing paradigm to an I/O
// profiling paradigm." This bench quantifies the trade on the IOR
// experiment: storage footprint of the full trace (TSV and binary)
// versus the histogram-only profile, and the analysis error the
// compression introduces (moments, modes).
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "core/modes.h"
#include "ipm/profile.h"
#include "workloads/ior.h"

using namespace eio;

int main() {
  bench::banner("ablation_profile_fidelity — tracing vs profiling capture",
                "Section VI future work: trace -> profile paradigm");

  workloads::IorConfig cfg;
  cfg.tasks = 512;
  cfg.block_size = 256 * MiB;
  cfg.segments = 3;
  workloads::JobSpec job =
      workloads::make_ior_job(lustre::MachineConfig::franklin(), cfg);
  job.capture = ipm::Mode::kBoth;
  workloads::RunResult result = workloads::run_job(job);

  bench::section("storage footprint");
  std::ostringstream tsv, bin;
  result.trace.write(tsv);
  result.trace.write_binary(bin);
  // The profile stores (op, size-bucket) cells x fixed bins.
  std::size_t profile_bytes =
      result.profile.cells().size() *
      (sizeof(ipm::Profile::Key) +
       ipm::DurationBins::kBinCount * sizeof(std::uint64_t));
  std::printf("  full trace (TSV)     %10zu bytes  (%zu events)\n",
              tsv.str().size(), result.trace.size());
  std::printf("  full trace (binary)  %10zu bytes\n", bin.str().size());
  std::printf("  in-situ profile      %10zu bytes  (%zu cells)\n",
              profile_bytes, result.profile.cells().size());
  std::printf("  compression vs TSV: %.0fx\n",
              static_cast<double>(tsv.str().size()) /
                  static_cast<double>(profile_bytes));

  bench::section("analysis fidelity (write durations)");
  auto writes = analysis::durations(result.trace, {.op = posix::OpType::kWrite,
                                                   .min_bytes = MiB});
  stats::Moments exact = stats::compute_moments(writes);
  double approx_mean = result.profile.approximate_mean(posix::OpType::kWrite);
  std::printf("  mean: trace %.3f s, profile %.3f s (%.1f%% error)\n",
              exact.mean, approx_mean,
              100.0 * std::abs(approx_mean - exact.mean) / exact.mean);

  // Mode recovery from the profile's weighted bin centers.
  std::vector<double> reconstructed;
  for (const auto& s : result.profile.distribution(posix::OpType::kWrite)) {
    for (std::uint64_t i = 0; i < s.count; ++i) {
      reconstructed.push_back(s.duration);
    }
  }
  auto exact_modes = stats::find_modes(writes, {.bandwidth_scale = 0.45});
  auto approx_modes = stats::find_modes(reconstructed, {.bandwidth_scale = 0.45});
  std::printf("  modes from trace:  ");
  for (const auto& m : exact_modes) std::printf(" %.1fs(%.0f%%)", m.location,
                                                m.mass * 100);
  std::printf("\n  modes from profile:");
  for (const auto& m : approx_modes) std::printf(" %.1fs(%.0f%%)", m.location,
                                                 m.mass * 100);
  std::printf("\n\n  the profile keeps the diagnostic content (modes, moments)"
              "\n  at a tiny fraction of the storage — the paper's closing bet"
              "\n  holds up.\n");
  return 0;
}
