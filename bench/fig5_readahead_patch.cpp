// Figure 5 reproduction: MADbench on Franklin before and after the
// Lustre patch that removed strided read-ahead detection.
//
//   (a) per-phase completion curves F_4..F_8 deteriorating;
//   (b) read histogram before vs after the patch;
//   (c) the trace after the patch (2200 s -> 520 s, > 4.2x).
#include <cstdio>

#include "bench_common.h"
#include "core/diagnose.h"
#include "core/histogram.h"
#include "core/patterns.h"
#include "workloads/madbench.h"

using namespace eio;

int main(int argc, char** argv) {
  bench::banner("fig5_readahead_patch — MADbench before/after Lustre patch",
                "Figure 5(a-c), Section IV-C");

  std::size_t jobs = bench::jobs_flag(argc, argv);
  workloads::MadbenchConfig cfg;
  workloads::MadbenchConfig coll = cfg;
  coll.collective_io = true;
  std::vector<workloads::RunResult> results = workloads::run_jobs(
      {workloads::make_madbench_job(lustre::MachineConfig::franklin(), cfg),
       workloads::make_madbench_job(lustre::MachineConfig::franklin_patched(),
                                    cfg),
       workloads::make_madbench_job(lustre::MachineConfig::franklin(), coll)},
      jobs);
  workloads::RunResult& before = results[0];
  workloads::RunResult& after = results[1];
  workloads::RunResult& collective = results[2];

  bench::section("(a) middle-phase read completion curves F_p, p = 4..8");
  std::vector<analysis::Series> curves;
  for (std::uint32_t i = 4; i <= 8; ++i) {
    analysis::ProgressCurve c = analysis::completion_curve(
        before.trace, {.op = posix::OpType::kRead,
                       .phase = workloads::MadbenchConfig::middle_phase(i),
                       .min_bytes = MiB});
    analysis::Series s;
    s.name = "read" + std::to_string(i);
    s.x = c.t;
    s.y = c.fraction;
    curves.push_back(std::move(s));
  }
  std::printf("%s", analysis::render_lines(
                        curves, {.width = 84, .height = 14,
                                 .x_label = "seconds into phase",
                                 .y_label = "fraction of reads complete"})
                        .c_str());

  bench::section("(b) read histogram before vs after the patch");
  auto reads_before = analysis::durations(
      before.trace, {.op = posix::OpType::kRead, .min_bytes = MiB});
  auto reads_after = analysis::durations(
      after.trace, {.op = posix::OpType::kRead, .min_bytes = MiB});
  stats::Histogram hb(stats::BinScale::kLog10, 0.5, 1000.0, 44);
  stats::Histogram ha(stats::BinScale::kLog10, 0.5, 1000.0, 44);
  hb.add_all(reads_before);
  ha.add_all(reads_after);
  std::vector<const stats::Histogram*> hs{&hb, &ha};
  std::vector<std::string> names{"before", "after"};
  std::printf("%s", analysis::render_histograms(
                        hs, names, {.width = 84, .height = 12, .log_y = true,
                                    .x_label = "seconds (log)",
                                    .y_label = "count (log)"})
                        .c_str());

  bench::section("(c) trace after the patch");
  bench::print_trace_diagram(after);

  bench::section("automatic diagnosis (the ensemble method at work)");
  for (const auto& f : analysis::diagnose(before.trace)) {
    std::printf("  [%-22s sev %.2f] %s\n", analysis::finding_name(f.code),
                f.severity, f.message.c_str());
  }
  std::printf("  findings after the patch: %zu\n",
              analysis::diagnose(after.trace).size());

  bench::section("detected access patterns (the future-work direction)");
  auto patterns = analysis::detect_patterns(before.trace);
  std::size_t strided_reads = 0;
  for (const auto& p : patterns) {
    if (p.op == posix::OpType::kRead &&
        p.pattern == analysis::AccessPattern::kStrided) {
      ++strided_reads;
    }
  }
  std::printf("  %zu streams detected; %zu are strided read streams\n",
              patterns.size(), strided_reads);
  for (const auto& h : analysis::derive_hints(patterns)) {
    std::printf("  hint for file %llu (%s): prefetch %llu KiB — %s\n",
                static_cast<unsigned long long>(h.file), posix::op_name(h.op),
                static_cast<unsigned long long>(h.prefetch_bytes / 1024),
                h.rationale.c_str());
  }
  std::printf("  (a bounded, pattern-derived window is exactly what the "
              "buggy heuristic lacked)\n");

  bench::section("the MPI-IO alternative: collective I/O dodges the bug");
  std::printf("  unpatched Franklin, two-phase collectives: job %.0f s, "
              "%llu degraded reads\n  (aggregators stream sequentially; the "
              "strided detector never reaches its trigger)\n",
              collective.job_time,
              static_cast<unsigned long long>(collective.fs_stats.degraded_reads));

  bench::section("paper vs measured");
  bench::compare_row("job time before patch", 2200.0, before.job_time, "s");
  bench::compare_row("job time after patch", 520.0, after.job_time, "s");
  bench::compare_row("speedup from patch", 4.2,
                     before.job_time / after.job_time, "x");

  bench::print_summary(before);
  bench::print_summary(after);

  analysis::CsvWriter csv;
  std::vector<double> phase, median;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    auto r = analysis::durations(
        before.trace, {.op = posix::OpType::kRead,
                       .phase = workloads::MadbenchConfig::middle_phase(i),
                       .min_bytes = MiB});
    phase.push_back(i);
    median.push_back(stats::EmpiricalDistribution(std::move(r)).median());
  }
  csv.column("read_phase", phase).column("median_s", median);
  bench::maybe_save_csv("fig5a_read_medians", csv);
  return 0;
}
