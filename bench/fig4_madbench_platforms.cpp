// Figure 4 reproduction: MADbench at 256 tasks on Franklin (with the
// strided read-ahead defect) versus Jaguar XT4.
//
//   (a/d) trace diagrams; (b/e) aggregate read/write rates;
//   (c/f) log-log duration histograms. Franklin's middle-phase reads
//   carry a 30-500 s tail; Jaguar's do not; write distributions are
//   similar on both. Paper job times: ~2200 s vs ~275 s.
#include <cstdio>

#include "bench_common.h"
#include "core/histogram.h"
#include "workloads/madbench.h"

using namespace eio;

namespace {

void report_platform(const workloads::RunResult& result, const char* label) {
  bench::section(std::string(label) + ": trace diagram");
  bench::print_trace_diagram(result);

  bench::section(std::string(label) + ": aggregate rates");
  bench::print_rate_series(result,
                           {.op = posix::OpType::kWrite, .min_bytes = MiB},
                           "write");
  bench::print_rate_series(result,
                           {.op = posix::OpType::kRead, .min_bytes = MiB},
                           "read");

  bench::section(std::string(label) + ": log-log duration histograms");
  auto reads = analysis::durations(result.trace,
                                   {.op = posix::OpType::kRead, .min_bytes = MiB});
  auto writes = analysis::durations(result.trace,
                                    {.op = posix::OpType::kWrite, .min_bytes = MiB});
  stats::Histogram hr(stats::BinScale::kLog10, 0.5, 1000.0, 44);
  stats::Histogram hw(stats::BinScale::kLog10, 0.5, 1000.0, 44);
  hr.add_all(reads);
  hw.add_all(writes);
  std::vector<const stats::Histogram*> hs{&hw, &hr};
  std::vector<std::string> names{"write", "read"};
  std::printf("%s", analysis::render_histograms(
                        hs, names, {.width = 84, .height = 12, .log_y = true,
                                    .x_label = "seconds (log)",
                                    .y_label = "count (log)"})
                        .c_str());

  stats::EmpiricalDistribution dr(std::move(reads));
  std::printf("  reads: median %.1f s, p95 %.1f s, max %.1f s\n", dr.median(),
              dr.quantile(0.95), dr.max());
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("fig4_madbench_platforms — MADbench 256 tasks",
                "Figure 4(a-f), Section IV");

  workloads::MadbenchConfig cfg;  // paper defaults: 256 tasks, ~300 MB matrices
  std::vector<workloads::RunResult> results = workloads::run_jobs(
      {workloads::make_madbench_job(lustre::MachineConfig::franklin(), cfg),
       workloads::make_madbench_job(lustre::MachineConfig::jaguar(), cfg)},
      bench::jobs_flag(argc, argv));
  workloads::RunResult& franklin = results[0];
  workloads::RunResult& jaguar = results[1];

  report_platform(franklin, "Franklin");
  report_platform(jaguar, "Jaguar");

  bench::section("per-phase read medians (the middle-phase deterioration)");
  std::printf("  %10s %14s %14s\n", "read #", "franklin (s)", "jaguar (s)");
  for (std::uint32_t i = 1; i <= cfg.matrices; ++i) {
    auto fr = analysis::durations(
        franklin.trace, {.op = posix::OpType::kRead,
                         .phase = workloads::MadbenchConfig::middle_phase(i),
                         .min_bytes = MiB});
    auto jr = analysis::durations(
        jaguar.trace, {.op = posix::OpType::kRead,
                       .phase = workloads::MadbenchConfig::middle_phase(i),
                       .min_bytes = MiB});
    std::printf("  %10u %14.1f %14.1f\n", i,
                stats::EmpiricalDistribution(std::move(fr)).median(),
                stats::EmpiricalDistribution(std::move(jr)).median());
  }

  bench::section("paper vs measured");
  bench::compare_row("Franklin job time", 2200.0, franklin.job_time, "s");
  bench::compare_row("Jaguar job time", 275.0, jaguar.job_time, "s");
  bench::compare_row("Franklin slowest read", 500.0, [&] {
    auto reads = analysis::durations(
        franklin.trace, {.op = posix::OpType::kRead, .min_bytes = MiB});
    return stats::EmpiricalDistribution(std::move(reads)).max();
  }(), "s");
  std::printf("  degraded reads on Franklin: %llu, on Jaguar: %llu\n",
              static_cast<unsigned long long>(franklin.fs_stats.degraded_reads),
              static_cast<unsigned long long>(jaguar.fs_stats.degraded_reads));

  bench::print_summary(franklin);
  bench::print_summary(jaguar);
  return 0;
}
